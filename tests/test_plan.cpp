#include "sim/plan.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(RelayPlan, EmptyPlanHasSourceAtSlotOne) {
  const RelayPlan plan = RelayPlan::empty(8, 3);
  EXPECT_EQ(plan.num_nodes(), 8u);
  EXPECT_EQ(plan.source, 3u);
  EXPECT_TRUE(plan.is_relay(3));
  ASSERT_EQ(plan.tx_offsets[3].size(), 1u);
  EXPECT_EQ(plan.tx_offsets[3][0], 1u);
  for (NodeId v = 0; v < 8; ++v) {
    if (v != 3) {
      EXPECT_FALSE(plan.is_relay(v));
    }
  }
}

TEST(RelayPlan, RelayCountAndPlannedTx) {
  RelayPlan plan = RelayPlan::empty(5, 0);
  plan.tx_offsets[1] = {1};
  plan.tx_offsets[2] = {1, 2};
  EXPECT_EQ(plan.relay_count(), 3u);   // source + 2
  EXPECT_EQ(plan.planned_tx(), 4u);    // 1 + 1 + 2
}

TEST(RelayPlan, RetransmittersAreMultiTxNodes) {
  RelayPlan plan = RelayPlan::empty(6, 0);
  plan.tx_offsets[2] = {1, 2};
  plan.tx_offsets[4] = {1};
  plan.tx_offsets[5] = {2, 3, 7};
  const auto retx = plan.retransmitters();
  ASSERT_EQ(retx.size(), 2u);
  EXPECT_EQ(retx[0], 2u);
  EXPECT_EQ(retx[1], 5u);
}

TEST(RelayPlan, ValidateAcceptsWellFormedPlans) {
  RelayPlan plan = RelayPlan::empty(4, 1);
  plan.tx_offsets[0] = {1, 2, 5};
  plan.tx_offsets[2] = {3};
  plan.validate();  // must not abort
}

using RelayPlanDeathTest = ::testing::Test;

TEST(RelayPlanDeathTest, ValidateRejectsZeroOffset) {
  RelayPlan plan = RelayPlan::empty(4, 0);
  plan.tx_offsets[2] = {0};
  EXPECT_DEATH(plan.validate(), "precondition");
}

TEST(RelayPlanDeathTest, ValidateRejectsNonIncreasingOffsets) {
  RelayPlan plan = RelayPlan::empty(4, 0);
  plan.tx_offsets[2] = {2, 2};
  EXPECT_DEATH(plan.validate(), "precondition");
}

TEST(RelayPlanDeathTest, ValidateRejectsNonRelaySource) {
  RelayPlan plan = RelayPlan::empty(4, 0);
  plan.tx_offsets[0].clear();
  EXPECT_DEATH(plan.validate(), "precondition");
}

}  // namespace
}  // namespace wsn
