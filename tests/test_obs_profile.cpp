#include "obs/profile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace wsn {
namespace {

// The Profiler is process-wide; every test starts from a clean, disabled
// aggregate and leaves it that way for the rest of the suite.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
};

TEST_F(ProfileTest, DisabledSpansRecordNothing) {
  { WSN_SPAN("test.disabled"); }
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
}

TEST_F(ProfileTest, EnabledSpansAggregateByName) {
  Profiler::instance().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    WSN_SPAN("test.phase");
  }
  { WSN_SPAN("test.other"); }
  const std::vector<Profiler::SpanStats> spans =
      Profiler::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::uint64_t phase_count = 0;
  for (const Profiler::SpanStats& s : spans) {
    if (s.name == "test.phase") phase_count = s.count;
    EXPECT_LE(s.min_ns, s.max_ns);
    EXPECT_GE(s.total_ns, s.max_ns);
  }
  EXPECT_EQ(phase_count, 3u);
}

TEST_F(ProfileTest, EnableMidRunOnlyCountsLaterSpans) {
  { WSN_SPAN("test.early"); }
  Profiler::instance().set_enabled(true);
  { WSN_SPAN("test.late"); }
  const auto spans = Profiler::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.late");
}

TEST_F(ProfileTest, RecordFoldsIntoStats) {
  Profiler::instance().record("test.manual", 100);
  Profiler::instance().record("test.manual", 300);
  const auto spans = Profiler::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].count, 2u);
  EXPECT_EQ(spans[0].total_ns, 400u);
  EXPECT_EQ(spans[0].min_ns, 100u);
  EXPECT_EQ(spans[0].max_ns, 300u);
  EXPECT_DOUBLE_EQ(spans[0].mean_ns(), 200.0);
}

TEST_F(ProfileTest, SnapshotSortsByDescendingTotal) {
  Profiler::instance().record("test.small", 10);
  Profiler::instance().record("test.big", 9999);
  const auto spans = Profiler::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.big");
}

TEST_F(ProfileTest, ConcurrentRecordsMergeExactly) {
  // The per-thread shards must fold back into one exact aggregate:
  // 8 threads x 2000 records of 100ns each, all under one name.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Profiler::instance().record("test.concurrent", 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto spans = Profiler::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.concurrent");
  EXPECT_EQ(spans[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(spans[0].total_ns,
            static_cast<std::uint64_t>(kThreads) * kPerThread * 100u);
  EXPECT_EQ(spans[0].min_ns, 100u);
  EXPECT_EQ(spans[0].max_ns, 100u);
}

TEST_F(ProfileTest, ReportsNameEveryRecordedSpan) {
  Profiler::instance().record("test.report", 1500);
  const std::string text = Profiler::instance().report_text();
  EXPECT_NE(text.find("test.report"), std::string::npos);

  std::ostringstream json;
  Profiler::instance().write_report_json(json);
  EXPECT_NE(json.str().find("\"schema\":\"meshbcast.profile\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"name\":\"test.report\""), std::string::npos);
  EXPECT_NE(json.str().find("\"total_ns\":1500"), std::string::npos);
}

}  // namespace
}  // namespace wsn
