// Ledger reconstruction (obs/audit/ledger.h) and the JSONL trace re-reader
// (obs/audit/trace_reader.h): a single forward pass over the event stream
// must rebuild exactly what the simulator recorded -- totals, first
// receptions, per-node energy, the wavefront frontier -- and an exported
// trace must round-trip back into the same Event records.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/audit/ledger.h"
#include "obs/audit/trace_reader.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocol/etr.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

struct SimRun {
  std::unique_ptr<Topology> topo;
  NodeId source = kInvalidNode;
  EventSink sink;
  BroadcastOutcome outcome;
};

SimRun run_paper(const std::string& family, int m, int n, int l = 1) {
  SimRun run;
  run.topo = make_mesh(family, m, n, l);
  run.source = graph_center(*run.topo);
  Observer observer(&run.sink);
  SimOptions options;
  options.record_collisions = true;
  options.record_node_energy = true;
  options.observer = &observer;
  run.outcome =
      simulate_broadcast(*run.topo, paper_plan(*run.topo, run.source), options);
  return run;
}

TEST(AuditLedger, RebuildsOutcomeFromTrace) {
  const SimRun run = run_paper("2D-4", 12, 9);
  const std::vector<Event> events = run.sink.events();
  const TraceLedger ledger = build_ledger(*run.topo, events);

  EXPECT_TRUE(ledger.anomalies.empty());
  EXPECT_EQ(ledger.source, run.source);
  EXPECT_EQ(ledger.num_events, events.size());
  EXPECT_EQ(ledger.tx, run.outcome.stats.tx);
  EXPECT_EQ(ledger.rx, run.outcome.stats.rx);
  EXPECT_EQ(ledger.duplicates, run.outcome.stats.duplicates);
  EXPECT_EQ(ledger.collisions, run.outcome.stats.collisions);
  EXPECT_EQ(ledger.lost_to_fading, 0u);
  EXPECT_EQ(ledger.lost_to_crash, 0u);
  EXPECT_EQ(ledger.reached, run.outcome.stats.reached);
  EXPECT_EQ(ledger.delay, run.outcome.stats.delay);
  EXPECT_EQ(ledger.first_rx, run.outcome.first_rx);

  // Energy replays the simulator's accumulation order: exact equality.
  EXPECT_EQ(ledger.tx_energy, run.outcome.stats.tx_energy);
  EXPECT_EQ(ledger.rx_energy, run.outcome.stats.rx_energy);
  ASSERT_EQ(ledger.node_energy.size(), run.outcome.node_energy.size());
  for (std::size_t v = 0; v < ledger.node_energy.size(); ++v) {
    EXPECT_DOUBLE_EQ(ledger.node_energy[v], run.outcome.node_energy[v])
        << "node " << v;
  }
}

TEST(AuditLedger, TransmissionsCarryTheEtrDecomposition) {
  const SimRun run = run_paper("2D-8", 14, 14);
  const TraceLedger ledger = build_ledger(*run.topo, run.sink.events());

  ASSERT_EQ(ledger.transmissions.size(), run.outcome.stats.tx);
  std::uint64_t fresh = 0, dup = 0;
  for (const TxLedgerEntry& entry : ledger.transmissions) {
    ASSERT_LT(entry.node, run.topo->num_nodes());
    EXPECT_LE(entry.fresh + entry.duplicates, run.topo->degree(entry.node));
    fresh += entry.fresh;
    dup += entry.duplicates;
  }
  // Every successful decode is attributed to exactly one transmission.
  EXPECT_EQ(fresh + dup, run.outcome.stats.rx);
  EXPECT_EQ(dup, run.outcome.stats.duplicates);

  // The ledger's ETR aggregates are the same numbers protocol/etr.h
  // computes from the outcome (Table 1's definitions).
  const int fresh_opt = optimal_etr("2D-8").fresh;
  const EtrSummary etr = summarize_etr(
      *run.topo, run.outcome, static_cast<std::size_t>(fresh_opt), run.source);
  EXPECT_DOUBLE_EQ(ledger.mean_etr(*run.topo), etr.mean);
  EXPECT_DOUBLE_EQ(ledger.optimal_share(*run.topo, fresh_opt),
                   etr.optimal_share());
}

TEST(AuditLedger, CollisionChainsPointAtTheRepairingRetransmission) {
  // 2D-3 at paper size collides plenty (98 collisions at 32x16).
  const SimRun run = run_paper("2D-3", 32, 16);
  const TraceLedger ledger = build_ledger(*run.topo, run.sink.events());

  ASSERT_EQ(ledger.collision_chains.size(),
            static_cast<std::size_t>(run.outcome.stats.collisions));
  std::size_t repaired = 0;
  for (const CollisionChain& chain : ledger.collision_chains) {
    EXPECT_GE(chain.contenders, 2u);
    if (chain.repaired_slot == kNeverSlot) continue;
    ++repaired;
    // The repair is that node's actual first reception, strictly after
    // the collision, delivered by a real neighbor.
    EXPECT_GT(chain.repaired_slot, chain.slot);
    EXPECT_EQ(chain.repaired_slot, ledger.first_rx[chain.node]);
    ASSERT_NE(chain.repaired_by, kInvalidNode);
    const auto peers = run.topo->neighbors(chain.node);
    EXPECT_NE(std::find(peers.begin(), peers.end(), chain.repaired_by),
              peers.end());
  }
  // Full coverage means every collision on a then-unreached node was
  // eventually repaired.
  EXPECT_EQ(run.outcome.stats.reached, run.topo->num_nodes());
  EXPECT_GT(repaired, 0u);
}

TEST(AuditLedger, FrontierEndsAtFullCoverage) {
  const SimRun run = run_paper("2D-4", 10, 10);
  const TraceLedger ledger = build_ledger(*run.topo, run.sink.events());

  ASSERT_EQ(ledger.frontier.size(),
            static_cast<std::size_t>(ledger.delay) + 1);
  EXPECT_GE(ledger.frontier.front(), 1u);  // the source, plus slot-0 decodes
  EXPECT_EQ(ledger.frontier.back(), run.topo->num_nodes());
  for (std::size_t s = 1; s < ledger.frontier.size(); ++s) {
    EXPECT_LE(ledger.frontier[s - 1], ledger.frontier[s]);
  }
  EXPECT_TRUE(ledger.unreached().empty());
}

TEST(AuditLedger, JsonlTraceRoundTrips) {
  const SimRun run = run_paper("2D-8", 8, 8);
  std::ostringstream out;
  write_events_jsonl(out, run.sink);

  TraceDocument doc;
  std::string error;
  ASSERT_TRUE(read_trace_jsonl(out.str(), doc, &error)) << error;
  EXPECT_EQ(doc.version, kEventSchemaVersion);
  EXPECT_EQ(doc.dropped, 0u);
  EXPECT_EQ(doc.declared_events, run.sink.size());

  const std::vector<Event> original = run.sink.events();
  ASSERT_EQ(doc.events.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(doc.events[i].slot, original[i].slot) << "event " << i;
    EXPECT_EQ(doc.events[i].kind, original[i].kind) << "event " << i;
    EXPECT_EQ(doc.events[i].node, original[i].node) << "event " << i;
    EXPECT_EQ(doc.events[i].peer, original[i].peer) << "event " << i;
    EXPECT_EQ(doc.events[i].packet, original[i].packet) << "event " << i;
    EXPECT_EQ(doc.events[i].detail, original[i].detail) << "event " << i;
  }

  // The re-read stream builds the same ledger as the live sink.
  const TraceLedger live = build_ledger(*run.topo, original);
  const TraceLedger replay = build_ledger(*run.topo, doc.events);
  EXPECT_EQ(replay.tx, live.tx);
  EXPECT_EQ(replay.rx, live.rx);
  EXPECT_EQ(replay.first_rx, live.first_rx);
  EXPECT_EQ(replay.tx_energy, live.tx_energy);
  EXPECT_EQ(replay.rx_energy, live.rx_energy);
}

TEST(AuditTraceReader, RejectsMalformedInput) {
  TraceDocument doc;
  std::string error;

  // Wrong schema name.
  EXPECT_FALSE(read_trace_jsonl(
      "{\"schema\":\"meshbcast.metrics\",\"version\":1}\n", doc, &error));
  EXPECT_NE(error.find("meshbcast.trace"), std::string::npos) << error;

  // Unsupported version.
  EXPECT_FALSE(read_trace_jsonl(
      "{\"schema\":\"meshbcast.trace\",\"version\":999}\n", doc, &error));

  // Unknown event kind.
  EXPECT_FALSE(read_trace_jsonl(
      "{\"schema\":\"meshbcast.trace\",\"version\":1}\n"
      "{\"slot\":0,\"kind\":\"warp\",\"node\":1}\n",
      doc, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  // Missing required field.
  EXPECT_FALSE(read_trace_jsonl(
      "{\"schema\":\"meshbcast.trace\",\"version\":1}\n"
      "{\"kind\":\"tx\",\"node\":1}\n",
      doc, &error));

  // Not JSON at all.
  EXPECT_FALSE(read_trace_jsonl(
      "{\"schema\":\"meshbcast.trace\",\"version\":1}\nnot json\n", doc,
      &error));
}

TEST(AuditLedger, PhysicsViolationsLandInAnomalies) {
  const auto topo = make_mesh("2D-4", 4, 4);

  // An rx attributed to a peer that never transmitted this slot.
  std::vector<Event> ghost = {
      {0, EventKind::kTx, 5, kInvalidNode, 0, 0},
      {0, EventKind::kRx, 6, 10, 0, 0},  // node 10 is silent
  };
  const TraceLedger bad_peer = build_ledger(*topo, ghost);
  EXPECT_FALSE(bad_peer.anomalies.empty());

  // Time running backwards.
  std::vector<Event> backwards = {
      {3, EventKind::kTx, 5, kInvalidNode, 0, 0},
      {1, EventKind::kTx, 6, kInvalidNode, 0, 0},
  };
  const TraceLedger rewound = build_ledger(*topo, backwards);
  EXPECT_FALSE(rewound.anomalies.empty());

  // A second first-reception for the same node.
  std::vector<Event> twice = {
      {0, EventKind::kTx, 5, kInvalidNode, 0, 0},
      {0, EventKind::kRx, 6, 5, 0, 0},
      {1, EventKind::kTx, 6, kInvalidNode, 0, 0},
      {1, EventKind::kRx, 5, 6, 0, 0},
      {2, EventKind::kTx, 5, kInvalidNode, 0, 0},
      {2, EventKind::kRx, 6, 5, 0, 0},  // 6 already decoded at slot 0
  };
  const TraceLedger redecoded = build_ledger(*topo, twice);
  EXPECT_FALSE(redecoded.anomalies.empty());
}

}  // namespace
}  // namespace wsn
