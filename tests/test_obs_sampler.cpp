#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_sampler_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TelemetrySampler, WritesHeaderAndAtLeastOneTick) {
  const TempDir tmp("header");
  MetricsRegistry metrics;
  metrics.counter("sim.tx").add(42);
  metrics.gauge("scenario.queue_depth").set(3.0);

  TelemetrySampler::Config config;
  config.period_ms = 1000;  // stop() still takes the final sample
  config.metrics = &metrics;
  TelemetrySampler sampler(config);
  const std::string path = (tmp.path / "ts.jsonl").string();
  ASSERT_TRUE(sampler.start(path));
  sampler.stop();
  EXPECT_GE(sampler.ticks(), 1u);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  JsonValue header;
  ASSERT_TRUE(parse_json(lines[0], header)) << lines[0];
  EXPECT_EQ(header.string_or("schema", ""), "meshbcast.timeseries");
  EXPECT_EQ(header.number_or("version", 0), 1.0);
  EXPECT_EQ(header.number_or("period_ms", 0), 1000.0);

  JsonValue tick;
  ASSERT_TRUE(parse_json(lines[1], tick)) << lines[1];
  ASSERT_NE(tick.find("t_ms"), nullptr);
  const JsonValue* counters = tick.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("sim.tx", -1), 42.0);
  const JsonValue* gauges = tick.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->number_or("scenario.queue_depth", -1), 3.0);
}

TEST(TelemetrySampler, SamplesWorkerStatesAndUtilization) {
  const TempDir tmp("workers");
  MetricsRegistry metrics;
  TelemetrySampler::Config config;
  config.period_ms = 1000;
  config.metrics = &metrics;
  TelemetrySampler sampler(config);
  sampler.set_worker_states([] {
    return std::vector<WorkerState>{WorkerState::kBusy, WorkerState::kIdle,
                                    WorkerState::kBlocked};
  });
  const std::string path = (tmp.path / "ts.jsonl").string();
  ASSERT_TRUE(sampler.start(path));
  sampler.stop();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  JsonValue tick;
  ASSERT_TRUE(parse_json(lines.back(), tick)) << lines.back();
  const JsonValue* workers = tick.find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->number_or("busy", -1), 1.0);
  EXPECT_EQ(workers->number_or("idle", -1), 1.0);
  EXPECT_EQ(workers->number_or("blocked", -1), 1.0);
  const JsonValue* states = workers->find("states");
  ASSERT_NE(states, nullptr);
  ASSERT_TRUE(states->is_array());
  ASSERT_EQ(states->as_array().size(), 3u);
  EXPECT_EQ(states->as_array()[0].as_number(), 1.0);  // kBusy
  EXPECT_EQ(states->as_array()[1].as_number(), 0.0);  // kIdle
  EXPECT_EQ(states->as_array()[2].as_number(), 2.0);  // kBlocked

  // Cumulative utilization shares: every tick saw 1/3 of each state.
  const JsonValue* util = tick.find("utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_NEAR(util->number_or("busy", -1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(util->number_or("idle", -1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(util->number_or("blocked", -1), 1.0 / 3.0, 1e-9);

  // ...and they are mirrored into gauges for later scrapes.
  const MetricsSnapshot snap = metrics.scrape();
  double busy_gauge = -1.0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "scenario.worker_util.busy") busy_gauge = value;
  }
  EXPECT_NEAR(busy_gauge, 1.0 / 3.0, 1e-9);
}

TEST(TelemetrySampler, ProviderRemovalDropsWorkerSections) {
  const TempDir tmp("removal");
  TelemetrySampler::Config config;
  config.period_ms = 1000;
  TelemetrySampler sampler(config);
  sampler.set_worker_states(
      [] { return std::vector<WorkerState>{WorkerState::kBusy}; });
  sampler.set_worker_states({});  // the engine detaches before returning
  const std::string path = (tmp.path / "ts.jsonl").string();
  ASSERT_TRUE(sampler.start(path));
  sampler.stop();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  JsonValue tick;
  ASSERT_TRUE(parse_json(lines.back(), tick));
  EXPECT_EQ(tick.find("workers"), nullptr);
  EXPECT_EQ(tick.find("utilization"), nullptr);
}

TEST(TelemetrySampler, StartWhileRunningFailsAndStopIsIdempotent) {
  const TempDir tmp("lifecycle");
  TelemetrySampler::Config config;
  config.period_ms = 1000;
  TelemetrySampler sampler(config);
  const std::string path = (tmp.path / "a.jsonl").string();
  ASSERT_TRUE(sampler.start(path));
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.start((tmp.path / "b.jsonl").string()));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent
  EXPECT_FALSE(sampler.running());

  // A stopped sampler can start a fresh file.
  const std::string second = (tmp.path / "c.jsonl").string();
  ASSERT_TRUE(sampler.start(second));
  sampler.stop();
  EXPECT_GE(read_lines(second).size(), 2u);
}

TEST(TelemetrySampler, StartFailsOnUnwritablePath) {
  TelemetrySampler::Config config;
  TelemetrySampler sampler(config);
  EXPECT_FALSE(sampler.start("/nonexistent_dir_zz/ts.jsonl"));
  EXPECT_FALSE(sampler.running());
}

}  // namespace
}  // namespace wsn
