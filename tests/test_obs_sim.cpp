#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "obs/event_sink.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "protocol/registry.h"
#include "sim/pipeline.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

/// The issue's core acceptance criterion: the metrics registry must agree
/// with BroadcastStats on every paper topology, and the event sink's
/// per-kind totals must agree with both.
TEST(ObserverSim, MetricsMatchStatsOnEveryPaperTopology) {
  for (const std::string& family : regular_families()) {
    SCOPED_TRACE(family);
    const auto topo = make_paper_topology(family);
    const NodeId src = graph_center(*topo);
    const RelayPlan plan = paper_plan(*topo, src);

    EventSink sink;
    MetricsRegistry registry;
    Observer observer(&sink, &registry);
    SimOptions options;
    options.observer = &observer;
    options.record_collisions = true;
    options.record_node_energy = true;
    const BroadcastOutcome out = simulate_broadcast(*topo, plan, options);

    const MetricsSnapshot snap = registry.scrape();
    EXPECT_EQ(snap.counter_or("sim.runs"), 1u);
    EXPECT_EQ(snap.counter_or("sim.tx"), out.stats.tx);
    EXPECT_EQ(snap.counter_or("sim.rx"), out.stats.rx);
    EXPECT_EQ(snap.counter_or("sim.duplicates"), out.stats.duplicates);
    EXPECT_EQ(snap.counter_or("sim.collisions"), out.stats.collisions);
    EXPECT_EQ(snap.counter_or("sim.lost_to_fading"), 0u);
    EXPECT_EQ(snap.counter_or("sim.lost_to_crash"), 0u);

    EXPECT_EQ(sink.count(EventKind::kTx), out.stats.tx);
    EXPECT_EQ(sink.count(EventKind::kCollision), out.stats.collisions);
    EXPECT_EQ(sink.count(EventKind::kDuplicate), out.stats.duplicates);
    EXPECT_EQ(sink.count(EventKind::kRx) + sink.count(EventKind::kDuplicate),
              out.stats.rx);

    // Distribution histograms: the slot-delay extremum is Table 5's
    // max-delay; per-node energy sums back to the stats total.
    const HistogramSnapshot* delay = snap.histogram("sim.slot_delay");
    ASSERT_NE(delay, nullptr);
    EXPECT_EQ(delay->count, out.stats.reached - 1);  // all but the source
    EXPECT_DOUBLE_EQ(delay->max, static_cast<double>(out.stats.delay));
    const HistogramSnapshot* energy = snap.histogram("sim.node_energy_j");
    ASSERT_NE(energy, nullptr);
    EXPECT_EQ(energy->count, topo->num_nodes());
    EXPECT_NEAR(energy->sum, out.stats.total_energy(), 1e-9);
    const HistogramSnapshot* etr = snap.histogram("sim.etr");
    ASSERT_NE(etr, nullptr);
    EXPECT_EQ(etr->count, out.stats.tx);
  }
}

TEST(ObserverSim, CollisionEventsMatchStatsOn32x16Mesh) {
  const Mesh2D4 topo(32, 16);
  const NodeId src = graph_center(topo);
  const RelayPlan plan = paper_plan(topo, src);

  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.observer = &observer;
  options.record_collisions = true;
  const BroadcastOutcome out = simulate_broadcast(topo, plan, options);

  ASSERT_GT(out.stats.collisions, 0u);  // the 2D-4 plan does collide
  EXPECT_EQ(sink.count(EventKind::kCollision), out.stats.collisions);
  EXPECT_EQ(sink.count(EventKind::kCollision),
            out.collision_events.size());
  std::size_t seen = 0;
  for (const Event& e : sink.events()) {
    if (e.kind != EventKind::kCollision) continue;
    EXPECT_GE(e.detail, 2u);  // detail carries the contender count
    ++seen;
  }
  EXPECT_EQ(seen, out.stats.collisions);
}

TEST(ObserverSim, EventsAreSlotOrdered) {
  const auto topo = make_paper_topology("2D-8");
  const RelayPlan plan = paper_plan(*topo, 0);
  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.observer = &observer;
  (void)simulate_broadcast(*topo, plan, options);

  Slot last = 0;
  for (const Event& e : sink.events()) {
    EXPECT_GE(e.slot, last);
    last = e.slot;
  }
}

TEST(ObserverSim, RunsWithoutEventSinkOrRegistry) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 9);
  Observer observer;  // no sink, no metrics: every emission is a no-op
  SimOptions options;
  options.observer = &observer;
  const BroadcastOutcome out = simulate_broadcast(topo, plan, options);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(ObserverSim, MetricsAccumulateAcrossRuns) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 9);
  MetricsRegistry registry;
  Observer observer(nullptr, &registry);
  SimOptions options;
  options.observer = &observer;
  const BroadcastOutcome out = simulate_broadcast(topo, plan, options);
  (void)simulate_broadcast(topo, plan, options);

  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter_or("sim.runs"), 2u);
  EXPECT_EQ(snap.counter_or("sim.tx"), 2 * out.stats.tx);
  EXPECT_EQ(snap.counter_or("sim.rx"), 2 * out.stats.rx);
}

TEST(ObserverSim, ObserverOutputIsIdenticalToUnobservedRun) {
  const auto topo = make_paper_topology("2D-4");
  const RelayPlan plan = paper_plan(*topo, 42);
  const BroadcastOutcome plain = simulate_broadcast(*topo, plan);

  EventSink sink;
  MetricsRegistry registry;
  Observer observer(&sink, &registry);
  SimOptions options;
  options.observer = &observer;
  const BroadcastOutcome observed = simulate_broadcast(*topo, plan, options);

  EXPECT_EQ(plain.stats.tx, observed.stats.tx);
  EXPECT_EQ(plain.stats.rx, observed.stats.rx);
  EXPECT_EQ(plain.stats.collisions, observed.stats.collisions);
  EXPECT_EQ(plain.stats.delay, observed.stats.delay);
  EXPECT_EQ(plain.first_rx, observed.first_rx);
}

TEST(ObserverSim, PipelineMirrorsAggregateAndCountsDefers) {
  const auto topo = make_paper_topology("2D-4");
  const NodeId src = graph_center(*topo);
  const RelayPlan plan = paper_plan(*topo, src);

  EventSink sink;
  MetricsRegistry registry;
  Observer observer(&sink, &registry);
  PipelineOptions options;
  options.packets = 3;
  options.interval = 4;  // tight enough to force deferrals or collisions
  options.sim.observer = &observer;
  const PipelineOutcome out = simulate_pipeline(*topo, plan, options);

  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter_or("sim.runs"), 1u);
  EXPECT_EQ(snap.counter_or("sim.tx"), out.aggregate.tx);
  EXPECT_EQ(snap.counter_or("sim.rx"), out.aggregate.rx);
  EXPECT_EQ(snap.counter_or("sim.collisions"), out.aggregate.collisions);
  EXPECT_EQ(sink.count(EventKind::kCollision), out.aggregate.collisions);
  EXPECT_EQ(snap.counter_or("sim.pipeline_defers"),
            sink.count(EventKind::kPipelineDefer));
}

/// A metrics-only observer is documented as safe to share across the
/// concurrent runs of a sweep; the merged counters must equal the sums of
/// the per-source stats.
TEST(ObserverSim, SweepMergesMetricsAcrossConcurrentRuns) {
  const Mesh2D4 topo(12, 12);
  MetricsRegistry registry;
  Observer observer(nullptr, &registry);
  SimOptions options;
  options.observer = &observer;
  const SweepResult sweep = sweep_all_sources(topo, options);

  std::size_t tx = 0;
  std::size_t rx = 0;
  std::size_t collisions = 0;
  for (const SourceResult& r : sweep.per_source) {
    tx += r.stats.tx;
    rx += r.stats.rx;
    collisions += r.stats.collisions;
  }
  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter_or("sim.runs"), sweep.per_source.size());
  EXPECT_EQ(snap.counter_or("sim.tx"), tx);
  EXPECT_EQ(snap.counter_or("sim.rx"), rx);
  EXPECT_EQ(snap.counter_or("sim.collisions"), collisions);
}

// Ring-buffer overflow is a first-class metric (ISSUE 5 satellite): a
// sink too small for the run surfaces its dropped count in the scrape,
// so downstream consumers can refuse to trust the truncated trace.
TEST(ObserverSim, EventsDroppedGaugeSurfacesRingOverflow) {
  const Mesh2D4 topo(12, 12);
  const auto gauge_of = [](const MetricsSnapshot& snap,
                           std::string_view name) {
    for (const auto& [key, value] : snap.gauges) {
      if (key == name) return value;
    }
    return -1.0;
  };

  {
    EventSink roomy;
    MetricsRegistry registry;
    Observer observer(&roomy, &registry);
    SimOptions options;
    options.observer = &observer;
    (void)simulate_broadcast(topo, paper_plan(topo, 0), options);
    EXPECT_EQ(gauge_of(registry.scrape(), "sim.events_dropped"), 0.0);
  }
  {
    EventSink tiny(32);
    MetricsRegistry registry;
    Observer observer(&tiny, &registry);
    SimOptions options;
    options.observer = &observer;
    (void)simulate_broadcast(topo, paper_plan(topo, 0), options);
    ASSERT_GT(tiny.dropped(), 0u);
    EXPECT_EQ(gauge_of(registry.scrape(), "sim.events_dropped"),
              static_cast<double>(tiny.dropped()));
  }
}

}  // namespace
}  // namespace wsn
