#include "analysis/sweep.h"

#include <gtest/gtest.h>

#include "protocol/flooding.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Sweep, OneResultPerSource) {
  const Mesh2D4 topo(8, 6);
  const SweepResult sweep = sweep_all_sources(topo);
  ASSERT_EQ(sweep.per_source.size(), topo.num_nodes());
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(sweep.per_source[v].source, v);
  }
}

TEST(Sweep, PaperProtocolReachesEveryoneFromEverySource) {
  const Mesh2D4 topo(8, 6);
  const SweepResult sweep = sweep_all_sources(topo);
  EXPECT_TRUE(sweep.all_fully_reached());
}

TEST(Sweep, BestNeverExceedsWorst) {
  const Mesh2D4 topo(10, 7);
  const SweepResult sweep = sweep_all_sources(topo);
  EXPECT_LE(sweep.best().stats.total_energy(),
            sweep.worst().stats.total_energy());
  EXPECT_LE(sweep.best().stats.total_energy(), sweep.mean_energy());
  EXPECT_LE(sweep.mean_energy(), sweep.worst().stats.total_energy());
}

TEST(Sweep, MaxDelayDominatesEachSource) {
  const Mesh2D4 topo(9, 5);
  const SweepResult sweep = sweep_all_sources(topo);
  for (const SourceResult& r : sweep.per_source) {
    EXPECT_LE(r.stats.delay, sweep.max_delay());
  }
}

TEST(Sweep, DeterministicAcrossWorkerCounts) {
  const Mesh2D4 topo(8, 6);
  const SweepResult a = sweep_all_sources(topo, {}, /*workers=*/1);
  const SweepResult b = sweep_all_sources(topo, {}, /*workers=*/4);
  ASSERT_EQ(a.per_source.size(), b.per_source.size());
  for (std::size_t i = 0; i < a.per_source.size(); ++i) {
    EXPECT_EQ(a.per_source[i].stats.tx, b.per_source[i].stats.tx);
    EXPECT_EQ(a.per_source[i].stats.delay, b.per_source[i].stats.delay);
    EXPECT_DOUBLE_EQ(a.per_source[i].stats.total_energy(),
                     b.per_source[i].stats.total_energy());
  }
}

TEST(Sweep, CustomFactoryIsUsed) {
  const Mesh2D4 topo(6, 6);
  const Flooding flooding(0);
  const SweepResult sweep = sweep_all_sources_with(
      topo,
      [&](const Topology& t, NodeId src) { return flooding.plan(t, src); });
  // Synchronous flooding always transmits from every node it reaches, which
  // is far fewer than all of them on a mesh (collisions), so reachability
  // cannot be universal.
  EXPECT_FALSE(sweep.all_fully_reached());
}

TEST(Sweep, SingleNodeEnvelope) {
  // Degenerate but legal: a 1x1 mesh sweeps one source and the envelope
  // collapses to it.  The broadcast is already complete at slot 0.
  const Mesh2D4 topo(1, 1);
  const SweepResult sweep = sweep_all_sources(topo);
  ASSERT_EQ(sweep.per_source.size(), 1u);
  EXPECT_EQ(sweep.best().source, 0u);
  EXPECT_EQ(sweep.worst().source, 0u);
  EXPECT_DOUBLE_EQ(sweep.best().stats.total_energy(),
                   sweep.worst().stats.total_energy());
  EXPECT_TRUE(sweep.all_fully_reached());
  EXPECT_EQ(sweep.max_delay(), 0u);
}

using SweepDeathTest = ::testing::Test;

TEST(SweepDeathTest, EmptyEnvelopeQueriesAbort) {
  // best()/worst() on an empty sweep are contract violations, not silent
  // garbage: the scenario engine surfaces an empty matrix as a per-job
  // error record instead of ever reaching this state.
  const SweepResult empty;
  EXPECT_DEATH((void)empty.best(), "precondition");
  EXPECT_DEATH((void)empty.worst(), "precondition");
}

}  // namespace
}  // namespace wsn
