#include "topology/mesh2d3.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Mesh2D3, PaperExampleAdjacency) {
  // §3.3 assumes node (5,5) is NOT node (5,4)'s neighbor.
  const Mesh2D3 mesh(10, 10);
  const Grid2D& g = mesh.grid();
  EXPECT_FALSE(mesh.adjacent(g.to_id({5, 4}), g.to_id({5, 5})));
  EXPECT_TRUE(mesh.adjacent(g.to_id({5, 4}), g.to_id({5, 3})));
  EXPECT_TRUE(mesh.adjacent(g.to_id({5, 4}), g.to_id({4, 4})));
  EXPECT_TRUE(mesh.adjacent(g.to_id({5, 4}), g.to_id({6, 4})));
}

TEST(Mesh2D3, ExactlyOneVerticalLinkPerNode) {
  const Mesh2D3 mesh(8, 8);
  const Grid2D& g = mesh.grid();
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    const Vec2 c = g.to_coord(v);
    int vertical = 0;
    for (NodeId u : mesh.neighbors(v)) {
      if (g.to_coord(u).x == c.x) ++vertical;
    }
    EXPECT_LE(vertical, 1) << to_string(c);
    // Interior rows always have their vertical link; border rows may lose it
    // when it points outside.
    if (c.y > 1 && c.y < 8) {
      EXPECT_EQ(vertical, 1) << to_string(c);
    }
  }
}

TEST(Mesh2D3, VerticalNeighborHelperAgreesWithAdjacency) {
  const Mesh2D3 mesh(8, 8);
  const Grid2D& g = mesh.grid();
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    const Vec2 c = g.to_coord(v);
    const Vec2 u = Mesh2D3::vertical_neighbor(c);
    if (g.contains(u)) {
      EXPECT_TRUE(mesh.adjacent(v, g.to_id(u))) << to_string(c);
    }
  }
}

TEST(Mesh2D3, MaxDegreeIsThree) {
  const Mesh2D3 mesh(32, 16);
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    EXPECT_LE(mesh.degree(v), 3u);
  }
  EXPECT_EQ(mesh.full_degree(), 3);
}

TEST(Mesh2D3, DegreeHistogramAtPaperSize) {
  const Mesh2D3 mesh(32, 16);
  std::size_t by_degree[4] = {};
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    by_degree[mesh.degree(v)] += 1;
  }
  // All 512 nodes have their two horizontal links except the 2 per row on
  // the x borders; vertical links exist except where they point off-grid
  // (half of the top and bottom rows).
  EXPECT_EQ(by_degree[0], 0u);
  // Two opposite corners lose BOTH the off-grid horizontal and the off-grid
  // vertical link: (32,1) points down and (32,16) points up.
  EXPECT_EQ(by_degree[1], 2u);
  EXPECT_EQ(by_degree[1] + by_degree[2] + by_degree[3], 512u);
  EXPECT_GT(by_degree[3], 400u);
}

TEST(Mesh2D3, StillConnectedDespiteSparsity) {
  // Walk the brick wall: (1,1) to (8,8) must be reachable; verified more
  // thoroughly by graph_algos tests -- here just adjacency chains exist.
  const Mesh2D3 mesh(8, 8);
  const Grid2D& g = mesh.grid();
  // A vertical zigzag from (1,1): (1,1)->(1,2)? depends on parity of 2.
  EXPECT_TRUE(brick_has_up(Vec2{1, 1}));
  EXPECT_TRUE(mesh.adjacent(g.to_id({1, 1}), g.to_id({1, 2})));
}

}  // namespace
}  // namespace wsn
