#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

namespace wsn {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for(0, kCount, [&](std::size_t i) { visits[i] += 1; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, RespectsRangeBounds) {
  std::vector<std::atomic<int>> visits(100);
  parallel_for(10, 90, [&](std::size_t i) { visits[i] += 1; });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(visits[i].load(), (i >= 10 && i < 90) ? 1 : 0);
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleWorkerRunsSequentially) {
  std::vector<std::size_t> order;
  parallel_for(
      0, 100, [&](std::size_t i) { order.push_back(i); }, /*workers=*/1);
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for(
      0, 3, [&](std::size_t i) { visits[i] += 1; }, /*workers=*/16);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelMap, ResultsLandInTheirSlots) {
  const auto out = parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SumMatchesSequential) {
  const auto out =
      parallel_map<std::uint64_t>(5000, [](std::size_t i) { return i; });
  const std::uint64_t total =
      std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  EXPECT_EQ(total, 5000ull * 4999ull / 2);
}

TEST(DefaultWorkerCount, IsPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

// Restores (or clears) MESHBCAST_THREADS when the test ends.
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* old = std::getenv("MESHBCAST_THREADS")) saved_ = old;
  }
  ~ThreadsEnvGuard() {
    if (saved_.empty()) {
      ::unsetenv("MESHBCAST_THREADS");
    } else {
      ::setenv("MESHBCAST_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(DefaultWorkerCount, HonorsThreadsEnvOverride) {
  ThreadsEnvGuard guard;
  ::setenv("MESHBCAST_THREADS", "3", 1);
  EXPECT_EQ(default_worker_count(), 3u);
  ::setenv("MESHBCAST_THREADS", "1", 1);
  EXPECT_EQ(default_worker_count(), 1u);
}

TEST(DefaultWorkerCount, IgnoresMalformedThreadsEnv) {
  ThreadsEnvGuard guard;
  ::unsetenv("MESHBCAST_THREADS");
  const std::size_t hardware = default_worker_count();
  for (const char* bad : {"", "0", "-2", "abc", "4cores", "3.5"}) {
    ::setenv("MESHBCAST_THREADS", bad, 1);
    EXPECT_EQ(default_worker_count(), hardware) << "env '" << bad << "'";
  }
}

TEST(ParallelFor, RunsUnderThreadsEnvOverride) {
  ThreadsEnvGuard guard;
  ::setenv("MESHBCAST_THREADS", "2", 1);
  std::vector<std::atomic<int>> visits(500);
  parallel_for(0, visits.size(), [&](std::size_t i) { visits[i] += 1; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace wsn
