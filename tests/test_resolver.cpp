#include "protocol/resolver.h"

#include <gtest/gtest.h>

#include "protocol/gossip.h"
#include "protocol/mesh2d3_broadcast.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/random_geometric.h"

namespace wsn {
namespace {

TEST(Resolver, CompletePlanNeedsNoRepairs) {
  // An already-complete plan: all-relay on a path.
  const Mesh2D4 line(10, 1);
  RelayPlan line_plan = RelayPlan::empty(10, 0);
  for (NodeId v = 1; v < 10; ++v) line_plan.tx_offsets[v] = {1};
  ResolveReport report;
  const RelayPlan resolved =
      resolve_full_reachability(line, line_plan, {}, &report);
  EXPECT_EQ(report.repairs, 0u);
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_EQ(resolved.planned_tx(), line_plan.planned_tx());
}

TEST(Resolver, RepairsABrokenRelayChain) {
  // Path of 6, but node 3 is not a relay: nodes 4 and 5 start unreached.
  const Mesh2D4 line(6, 1);
  RelayPlan plan = RelayPlan::empty(6, 0);
  plan.tx_offsets[1] = {1};
  plan.tx_offsets[2] = {1};
  plan.tx_offsets[4] = {1};
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(line, plan, {},
                                                       &report);
  const auto out = simulate_broadcast(line, resolved);
  EXPECT_TRUE(out.stats.fully_reached());
  EXPECT_GE(report.repairs, 1u);
  // Node 3 (the gap) must have been given a transmission by the resolver.
  EXPECT_TRUE(resolved.is_relay(3));
}

TEST(Resolver, RepairsCollisionStrandedNodes) {
  // 3×3 cross-fire: corners collide forever under the naive plan.
  const Mesh2D4 topo(3, 3);
  const Grid2D& g = topo.grid();
  RelayPlan plan = RelayPlan::empty(9, g.to_id({2, 2}));
  for (Vec2 v : {Vec2{1, 2}, Vec2{3, 2}, Vec2{2, 1}, Vec2{2, 3}}) {
    plan.tx_offsets[g.to_id(v)] = {1};
  }
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(topo, plan, {},
                                                       &report);
  const auto out = simulate_broadcast(topo, resolved);
  EXPECT_TRUE(out.stats.fully_reached());
  EXPECT_GE(report.repairs, 1u);
  EXPECT_LE(report.repairs, 6u);
}

TEST(Resolver, ReportsDisconnectedRemainder) {
  // A sparse random graph: other components can never be reached and the
  // resolver must say so rather than loop.
  const RandomGeometric topo(40, 100.0, 5.0, 11);
  ASSERT_FALSE(is_connected(topo));
  RelayPlan plan = RelayPlan::empty(topo.num_nodes(), 0);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) plan.tx_offsets[v] = {1};
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(topo, plan, {},
                                                       &report);
  const auto out = simulate_broadcast(topo, resolved);
  EXPECT_FALSE(out.stats.fully_reached());
  EXPECT_EQ(report.unreachable, out.unreached().size());
}

TEST(Resolver, UnrepairedPopulatedOnDisconnectedTopology) {
  // Graceful degradation contract: instead of aborting, the resolver
  // reports exactly the nodes it could not repair, and the returned plan
  // still reaches the whole source component.
  const RandomGeometric topo(40, 100.0, 5.0, 11);
  ASSERT_FALSE(is_connected(topo));
  RelayPlan plan = RelayPlan::empty(topo.num_nodes(), 0);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) plan.tx_offsets[v] = {1};
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(topo, plan, {},
                                                       &report);
  const auto out = simulate_broadcast(topo, resolved);
  EXPECT_GT(report.unrepaired, 0u);
  EXPECT_EQ(report.unrepaired, out.unreached().size());
  EXPECT_EQ(report.unrepaired, report.unreachable);
  // The source component itself is fully served.
  EXPECT_EQ(out.stats.reached + report.unrepaired, topo.num_nodes());
}

TEST(Resolver, UnrepairedZeroOnConnectedTopology) {
  const Mesh2D4 topo(7, 5);
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(
      topo, RelayPlan::empty(topo.num_nodes(), 3), {}, &report);
  const auto out = simulate_broadcast(topo, resolved);
  EXPECT_TRUE(out.stats.fully_reached());
  EXPECT_EQ(report.unrepaired, 0u);
}

TEST(Resolver, DeterministicAcrossRuns) {
  const Mesh2D3 topo(16, 16);
  const Mesh2d3Broadcast proto;
  const RelayPlan base = proto.plan(topo, 40);
  ResolveReport ra;
  ResolveReport rb;
  const RelayPlan a = resolve_full_reachability(topo, base, {}, &ra);
  const RelayPlan b = resolve_full_reachability(topo, base, {}, &rb);
  EXPECT_EQ(ra.repairs, rb.repairs);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(a.tx_offsets[v], b.tx_offsets[v]);
  }
}

TEST(Resolver, RepairsCountPlannedTransmissions) {
  const Mesh2D3 topo(16, 16);
  const Mesh2d3Broadcast proto;
  const RelayPlan base = proto.plan(topo, 100);
  ResolveReport report;
  const RelayPlan resolved = resolve_full_reachability(topo, base, {},
                                                       &report);
  // planned_tx moves by (added repairs) - (pruned stranded-relay txs), so
  // repairs alone must upper-bound any growth.
  EXPECT_LE(resolved.planned_tx(),
            base.planned_tx() + report.repairs);
}


TEST(Resolver, FuzzedGossipPlansAlwaysResolve) {
  // Property fuzz: start from sparse random gossip plans (heavily broken:
  // low forwarding probability strands big regions) on several topologies;
  // the resolver must always reach a fixpoint with 100% reachability on
  // connected graphs, within a sane repair budget.
  const Mesh2D4 mesh(11, 9);
  const Mesh2D3 brick(12, 10);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const Topology* topo :
         std::initializer_list<const Topology*>{&mesh, &brick}) {
      const Gossip gossip(0.25, 2, seed);
      const NodeId src = static_cast<NodeId>(
          (seed * 37) % topo->num_nodes());
      ResolveReport report;
      const RelayPlan resolved = resolve_full_reachability(
          *topo, gossip.plan(*topo, src), {}, &report);
      const auto out = simulate_broadcast(*topo, resolved);
      ASSERT_TRUE(out.stats.fully_reached())
          << "seed " << seed << " on " << topo->name();
      ASSERT_LE(report.repairs, topo->num_nodes());
    }
  }
}

TEST(Resolver, FuzzedPlansResolveOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RandomGeometric topo(90, 8.0, 2.2, seed * 1000 + 7);
    if (!is_connected(topo)) continue;
    const Gossip gossip(0.3, 3, seed);
    const RelayPlan resolved =
        resolve_full_reachability(topo, gossip.plan(topo, 0));
    const auto out = simulate_broadcast(topo, resolved);
    ASSERT_TRUE(out.stats.fully_reached()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wsn
