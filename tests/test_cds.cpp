#include "protocol/cds_broadcast.h"

#include <gtest/gtest.h>

#include "protocol/mesh2d4_broadcast.h"
#include "protocol/resolver.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d4.h"
#include "topology/random_geometric.h"
#include "topology/torus.h"

namespace wsn {
namespace {

TEST(CdsBroadcast, RelaysFormAConnectedDominatingStructure) {
  const Mesh2D4 topo(10, 10);
  const CdsBroadcast proto(0);
  const RelayPlan plan = proto.plan(topo, 37);
  // Dominating: every node is the source, a relay, or adjacent to a relay.
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (plan.is_relay(v)) continue;
    bool dominated = false;
    for (NodeId u : topo.neighbors(v)) {
      if (plan.is_relay(u)) dominated = true;
    }
    EXPECT_TRUE(dominated) << v;
  }
}

TEST(CdsBroadcast, ReachesEveryoneAfterResolution) {
  const Mesh2D4 topo(12, 9);
  const CdsBroadcast proto;
  for (NodeId src = 0; src < topo.num_nodes(); src += 7) {
    const RelayPlan plan =
        resolve_full_reachability(topo, proto.plan(topo, src));
    const auto out = simulate_broadcast(topo, plan);
    ASSERT_TRUE(out.stats.fully_reached()) << src;
  }
}

TEST(CdsBroadcast, WorksOnRandomTopology) {
  // A dense-enough unit-disk graph; the specialized protocols cannot run
  // here at all.
  const RandomGeometric topo(200, 10.0, 1.6, 99);
  ASSERT_TRUE(is_connected(topo));
  const CdsBroadcast proto;
  const RelayPlan plan = resolve_full_reachability(topo, proto.plan(topo, 0));
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_TRUE(out.stats.fully_reached());
  // And with far fewer transmissions than flooding every node.
  EXPECT_LT(plan.relay_count(), topo.num_nodes() / 2);
}

TEST(CdsBroadcast, WorksOnTorus) {
  const Torus2D4 topo(12, 12);
  const CdsBroadcast proto;
  const RelayPlan plan = resolve_full_reachability(topo, proto.plan(topo, 50));
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(CdsBroadcast, CompetitiveWithSpecializedOnMesh) {
  // Generality check: on the paper's 2D-4 mesh the CDS plan should land
  // within 2x of the specialized protocol's transmissions (it typically
  // lands much closer).
  const Mesh2D4 topo(32, 16);
  const NodeId src = topo.grid().to_id({16, 8});
  const auto cds = simulate_broadcast(
      topo, resolve_full_reachability(topo, CdsBroadcast().plan(topo, src)));
  const auto specialized = simulate_broadcast(
      topo,
      resolve_full_reachability(topo, Mesh2d4Broadcast().plan(topo, src)));
  ASSERT_TRUE(cds.stats.fully_reached());
  EXPECT_LT(cds.stats.tx, 2 * specialized.stats.tx);
}

TEST(CdsBroadcast, DeterministicPerSeed) {
  const Mesh2D4 topo(8, 8);
  const CdsBroadcast a(2, 7);
  const CdsBroadcast b(2, 7);
  const RelayPlan pa = a.plan(topo, 5);
  const RelayPlan pb = b.plan(topo, 5);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(pa.tx_offsets[v], pb.tx_offsets[v]);
  }
}

TEST(CdsBroadcast, NameEncodesWindow) {
  EXPECT_EQ(CdsBroadcast(3).name(), "cds-broadcast(window=3)");
}

}  // namespace
}  // namespace wsn
