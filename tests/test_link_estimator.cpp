#include "fault/link_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/models.h"
#include "topology/mesh2d4.h"
#include "topology/topology.h"

namespace wsn {
namespace {

TEST(LinkEstimator, RecoversTheIidDeliveryRate) {
  const Mesh2D4 topo(8, 8);
  IidLossModel model(0.25, 1234);
  LinkEstimatorConfig config;
  config.probe_rounds = 256;
  const std::vector<double> quality =
      estimate_link_quality(topo, model, config);
  ASSERT_EQ(quality.size(), topo.num_directed_links());
  double sum = 0.0;
  for (const double q : quality) {
    EXPECT_GE(q, config.min_delivery);
    EXPECT_LE(q, 1.0);
    // Per-link binomial noise at 256 probes: 5 sigma ~ 0.14.
    EXPECT_NEAR(q, 0.75, 0.15);
    sum += q;
  }
  // The mean over all links tightens by sqrt(#links).
  EXPECT_NEAR(sum / static_cast<double>(quality.size()), 0.75, 0.02);
}

TEST(LinkEstimator, IsDeterministic) {
  const Mesh2D4 topo(6, 6);
  IidLossModel a(0.3, 77);
  IidLossModel b(0.3, 77);
  EXPECT_EQ(estimate_link_quality(topo, a), estimate_link_quality(topo, b));
}

TEST(LinkEstimator, ClampsDeadLinksToMinDelivery) {
  const Mesh2D4 topo(4, 4);
  IidLossModel model(1.0, 5);
  const std::vector<double> quality = estimate_link_quality(topo, model);
  for (const double q : quality) {
    EXPECT_DOUBLE_EQ(q, LinkEstimatorConfig{}.min_delivery);
  }
}

TEST(LinkEstimator, LearnInstallsTheAnnotation) {
  Mesh2D4 topo(4, 4);
  EXPECT_FALSE(topo.has_link_quality());
  IidLossModel model(0.2, 9);
  learn_link_quality(topo, model);
  EXPECT_TRUE(topo.has_link_quality());
  // broadcast_etx is 1/min out-link delivery: >= 1 everywhere, and > 1
  // on a lossy annotation.
  EXPECT_GT(broadcast_etx(topo, 0), 1.0);
}

TEST(LinkEstimator, PerfectChannelYieldsUnitEtx) {
  Mesh2D4 topo(4, 4);
  EXPECT_DOUBLE_EQ(broadcast_etx(topo, 5), 1.0);  // no annotation
}

}  // namespace
}  // namespace wsn
