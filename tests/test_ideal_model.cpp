#include "protocol/ideal_model.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(OptimalEtr, MatchesTable1) {
  EXPECT_EQ(optimal_etr("2D-3").fresh, 2);
  EXPECT_EQ(optimal_etr("2D-3").neighbors, 3);
  EXPECT_EQ(optimal_etr("2D-4").fresh, 3);
  EXPECT_EQ(optimal_etr("2D-4").neighbors, 4);
  EXPECT_EQ(optimal_etr("2D-8").fresh, 5);
  EXPECT_EQ(optimal_etr("2D-8").neighbors, 8);
  EXPECT_EQ(optimal_etr("3D-6").fresh, 5);
  EXPECT_EQ(optimal_etr("3D-6").neighbors, 6);
  EXPECT_NEAR(optimal_etr("3D-6").value(), 5.0 / 6.0, 1e-15);
}

TEST(IdealCase, Table2TransmissionsExactly) {
  EXPECT_EQ(ideal_case("2D-3", 32, 16).tx, 255u);
  EXPECT_EQ(ideal_case("2D-4", 32, 16).tx, 170u);
  EXPECT_EQ(ideal_case("2D-8", 32, 16).tx, 102u);
  EXPECT_EQ(ideal_case("3D-6", 8, 8, 8).tx, 124u);
}

TEST(IdealCase, Table2ReceptionsExactly) {
  EXPECT_EQ(ideal_case("2D-3", 32, 16).rx, 765u);
  EXPECT_EQ(ideal_case("2D-4", 32, 16).rx, 680u);
  EXPECT_EQ(ideal_case("2D-8", 32, 16).rx, 816u);
  EXPECT_EQ(ideal_case("3D-6", 8, 8, 8).rx, 744u);
}

TEST(IdealCase, Table2PowerWithinRounding) {
  // The paper prints 3 significant digits.
  EXPECT_NEAR(ideal_case("2D-3", 32, 16).power, 2.61e-2, 0.005e-2);
  EXPECT_NEAR(ideal_case("2D-4", 32, 16).power, 2.18e-2, 0.005e-2);
  EXPECT_NEAR(ideal_case("2D-8", 32, 16).power, 2.35e-2, 0.005e-2);
  EXPECT_NEAR(ideal_case("3D-6", 8, 8, 8).power, 2.22e-2, 0.005e-2);
}

TEST(IdealCase, TinyMeshNeedsOnlySourceTransmission) {
  // Everything within one hop of the source: a single transmission.
  EXPECT_EQ(ideal_case("2D-4", 2, 2).tx, 1u);
  EXPECT_EQ(ideal_case("2D-8", 3, 3).tx, 1u);
}

TEST(IdealCase, Mesh2D8PaysDiagonalAmplifier) {
  // 2D-8 transmissions reach the diagonal neighbor at d√2; the per-tx
  // energy must exceed the axis families'.
  const FirstOrderRadioModel radio;
  const auto i8 = ideal_case("2D-8", 32, 16);
  const double per_tx_8 =
      (i8.power - static_cast<double>(i8.rx) * radio.rx_energy(512)) /
      static_cast<double>(i8.tx);
  const auto i4 = ideal_case("2D-4", 32, 16);
  const double per_tx_4 =
      (i4.power - static_cast<double>(i4.rx) * radio.rx_energy(512)) /
      static_cast<double>(i4.tx);
  EXPECT_GT(per_tx_8, per_tx_4);
}

TEST(IdealCase, ScalesWithPacketLength) {
  const auto k512 = ideal_case("2D-4", 32, 16, 1, 0.5, 512);
  const auto k1024 = ideal_case("2D-4", 32, 16, 1, 0.5, 1024);
  EXPECT_EQ(k512.tx, k1024.tx);
  EXPECT_NEAR(k1024.power, 2.0 * k512.power, 1e-12);
}

using IdealModelDeathTest = ::testing::Test;

TEST(IdealModelDeathTest, UnknownFamilyAborts) {
  EXPECT_DEATH((void)optimal_etr("4D-80"), "precondition");
}

}  // namespace
}  // namespace wsn
