#include "sim/stats.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Stats, ReachabilityFraction) {
  BroadcastStats stats;
  stats.num_nodes = 512;
  stats.reached = 512;
  EXPECT_DOUBLE_EQ(stats.reachability(), 1.0);
  EXPECT_TRUE(stats.fully_reached());
  stats.reached = 256;
  EXPECT_DOUBLE_EQ(stats.reachability(), 0.5);
  EXPECT_FALSE(stats.fully_reached());
}

TEST(Stats, ReachabilityOfEmptyNetworkIsZero) {
  const BroadcastStats stats;
  EXPECT_DOUBLE_EQ(stats.reachability(), 0.0);
}

TEST(Stats, TotalEnergySumsTxAndRx) {
  BroadcastStats stats;
  stats.tx_energy = 1.5e-3;
  stats.rx_energy = 2.5e-3;
  EXPECT_DOUBLE_EQ(stats.total_energy(), 4.0e-3);
}

TEST(Stats, SummaryMentionsEveryMetric) {
  BroadcastStats stats;
  stats.num_nodes = 10;
  stats.reached = 10;
  stats.tx = 7;
  stats.rx = 21;
  stats.duplicates = 3;
  stats.collisions = 2;
  stats.delay = 5;
  stats.tx_energy = 1e-4;
  stats.rx_energy = 1e-4;
  const std::string s = stats.summary();
  EXPECT_NE(s.find("tx=7"), std::string::npos);
  EXPECT_NE(s.find("rx=21"), std::string::npos);
  EXPECT_NE(s.find("dup=3"), std::string::npos);
  EXPECT_NE(s.find("coll=2"), std::string::npos);
  EXPECT_NE(s.find("delay=5"), std::string::npos);
  EXPECT_NE(s.find("reach=100.0%"), std::string::npos);
}

}  // namespace
}  // namespace wsn
