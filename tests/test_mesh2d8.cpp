#include "topology/mesh2d8.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Mesh2D8, InteriorNodeHasMooreNeighborhood) {
  const Mesh2D8 mesh(5, 5);
  const Grid2D& g = mesh.grid();
  const NodeId center = g.to_id({3, 3});
  ASSERT_EQ(mesh.degree(center), 8u);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      EXPECT_TRUE(mesh.adjacent(center, g.to_id({3 + dx, 3 + dy})));
    }
  }
}

TEST(Mesh2D8, CornerAndEdgeDegrees) {
  const Mesh2D8 mesh(6, 4);
  const Grid2D& g = mesh.grid();
  EXPECT_EQ(mesh.degree(g.to_id({1, 1})), 3u);
  EXPECT_EQ(mesh.degree(g.to_id({3, 1})), 5u);
  EXPECT_EQ(mesh.degree(g.to_id({3, 2})), 8u);
}

TEST(Mesh2D8, DegreeHistogramAtPaperSize) {
  const Mesh2D8 mesh(32, 16);
  std::size_t by_degree[9] = {};
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    by_degree[mesh.degree(v)] += 1;
  }
  EXPECT_EQ(by_degree[3], 4u);
  EXPECT_EQ(by_degree[5], 2u * 30 + 2u * 14);
  EXPECT_EQ(by_degree[8], 30u * 14);
}

TEST(Mesh2D8, SupersetOfMesh2D4Adjacency) {
  const Mesh2D8 m8(6, 5);
  const Grid2D& g = m8.grid();
  // Every axis link of the 4-neighbor mesh exists here too.
  for (int y = 1; y <= 5; ++y) {
    for (int x = 1; x < 6; ++x) {
      EXPECT_TRUE(m8.adjacent(g.to_id({x, y}), g.to_id({x + 1, y})));
    }
  }
}

TEST(Mesh2D8, DiagonalHopReducesDistance) {
  // The paper's Fig. 6 point: (1,4) to (4,1) is 3 diagonal hops.
  const Mesh2D8 mesh(4, 4);
  const Grid2D& g = mesh.grid();
  EXPECT_TRUE(mesh.adjacent(g.to_id({1, 4}), g.to_id({2, 3})));
  EXPECT_TRUE(mesh.adjacent(g.to_id({2, 3}), g.to_id({3, 2})));
  EXPECT_TRUE(mesh.adjacent(g.to_id({3, 2}), g.to_id({4, 1})));
}

}  // namespace
}  // namespace wsn
