#include "topology/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "topology/factory.h"
#include "topology/mesh2d4.h"
#include "topology/grid3d.h"
#include "topology/mesh2d8.h"

namespace wsn {
namespace {

// Cross-family structural invariants, parameterized over every regular
// topology at paper size.
class AllTopologies : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Topology> topo_ = make_paper_topology(GetParam());
};

TEST_P(AllTopologies, Has512Nodes) {
  EXPECT_EQ(topo_->num_nodes(), PaperConfig::kNumNodes);
}

TEST_P(AllTopologies, AdjacencyIsSymmetric) {
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    for (NodeId u : topo_->neighbors(v)) {
      EXPECT_TRUE(topo_->adjacent(u, v));
    }
  }
}

TEST_P(AllTopologies, AdjacencyIsIrreflexive) {
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    EXPECT_FALSE(topo_->adjacent(v, v));
  }
}

TEST_P(AllTopologies, NeighborsAreSortedAndUnique) {
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    const auto span = topo_->neighbors(v);
    for (std::size_t i = 1; i < span.size(); ++i) {
      EXPECT_LT(span[i - 1], span[i]);
    }
  }
}

TEST_P(AllTopologies, DegreeNeverExceedsFullDegree) {
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    EXPECT_LE(topo_->degree(v),
              static_cast<std::size_t>(topo_->full_degree()));
    EXPECT_GE(topo_->degree(v), 1u);
  }
}

TEST_P(AllTopologies, SomeNodeAttainsFullDegree) {
  bool found = false;
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    if (topo_->degree(v) ==
        static_cast<std::size_t>(topo_->full_degree())) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(AllTopologies, DirectedLinkCountMatchesDegreeSum) {
  std::size_t sum = 0;
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) sum += topo_->degree(v);
  EXPECT_EQ(topo_->num_directed_links(), sum);
}

TEST_P(AllTopologies, TxRangeCoversEveryNeighbor) {
  for (NodeId v = 0; v < topo_->num_nodes(); ++v) {
    for (NodeId u : topo_->neighbors(v)) {
      EXPECT_LE(topo_->distance(v, u), topo_->tx_range(v) + 1e-12);
    }
  }
}

TEST_P(AllTopologies, DistanceIsSymmetricMetric) {
  // Spot-check a few pairs.
  for (NodeId v : {NodeId{0}, NodeId{100}, NodeId{511}}) {
    for (NodeId u : {NodeId{1}, NodeId{250}, NodeId{510}}) {
      EXPECT_DOUBLE_EQ(topo_->distance(v, u), topo_->distance(u, v));
    }
    EXPECT_DOUBLE_EQ(topo_->distance(v, v), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RegularFamilies, AllTopologies,
                         ::testing::Values("2D-3", "2D-4", "2D-8", "3D-6"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TopologyNames, FamilyAndNameAreConsistent) {
  for (const std::string& family : regular_families()) {
    const auto topo = make_paper_topology(family);
    EXPECT_EQ(topo->family(), family);
    EXPECT_NE(topo->name().find(family), std::string::npos);
  }
}

TEST(TopologyFactory, PaperSizesAreCorrect) {
  EXPECT_EQ(make_paper_topology("2D-4")->num_nodes(), 512u);
  EXPECT_EQ(make_paper_topology("3D-6")->num_nodes(), 512u);
}

TEST(TopologyFactory, CustomMeshSizes) {
  EXPECT_EQ(make_mesh("2D-4", 5, 7)->num_nodes(), 35u);
  EXPECT_EQ(make_mesh("3D-6", 3, 4, 5)->num_nodes(), 60u);
}

TEST(TopologyGeometry, PositionsMatchSpacing) {
  const Mesh2D4 mesh(4, 4, 0.5);
  const NodeId origin = mesh.grid().to_id({1, 1});
  const NodeId right = mesh.grid().to_id({2, 1});
  const NodeId diag = mesh.grid().to_id({2, 2});
  EXPECT_DOUBLE_EQ(mesh.distance(origin, right), 0.5);
  EXPECT_NEAR(mesh.distance(origin, diag), 0.5 * std::sqrt(2.0), 1e-12);
}

TEST(TopologyGeometry, Mesh2D8TxRangeIsDiagonal) {
  const Mesh2D8 mesh(5, 5, 0.5);
  // Interior node: farthest neighbor is diagonal at 0.5·√2.
  const NodeId center = mesh.grid().to_id({3, 3});
  EXPECT_NEAR(mesh.tx_range(center), 0.5 * std::sqrt(2.0), 1e-12);
}

TEST(TopologyGeometry, Mesh2D4TxRangeIsAxis) {
  const Mesh2D4 mesh(5, 5, 0.5);
  const NodeId center = mesh.grid().to_id({3, 3});
  EXPECT_DOUBLE_EQ(mesh.tx_range(center), 0.5);
}

// NodeId reaches to 2^32; the coordinate maps must not truncate through
// int on the way.  These ids are all above 2^31 -- the old int-indexed
// to_coord/to_id produced garbage (or UB) for every one of them.  The
// grids are pure value types, so no node storage is allocated here.
TEST(BigGrid, CoordMapsSurvivePast31Bits) {
  const Grid2D g2(65536, 40000, 0.5);  // 2.62e9 nodes
  ASSERT_GT(g2.num_nodes(), static_cast<std::size_t>(1) << 31);
  for (const NodeId id : {2200000000u, 2621439999u, 2147483648u}) {
    const Vec2 v = g2.to_coord(id);
    EXPECT_TRUE(g2.contains(v));
    EXPECT_EQ(g2.to_id(v), id);
  }
  EXPECT_EQ(g2.to_id({65536, 40000}),
            static_cast<NodeId>(g2.num_nodes() - 1));

  const Grid3D g3(1300, 1300, 1300, 0.5);  // 2.197e9 nodes
  ASSERT_GT(g3.num_nodes(), static_cast<std::size_t>(1) << 31);
  for (const NodeId id : {2190000001u, 2196999999u, 2147483649u}) {
    const Vec3 v = g3.to_coord(id);
    EXPECT_TRUE(g3.contains(v));
    EXPECT_EQ(g3.to_id(v), id);
  }
  EXPECT_EQ(g3.to_id({1300, 1300, 1300}),
            static_cast<NodeId>(g3.num_nodes() - 1));
}

}  // namespace
}  // namespace wsn
