// obs/heartbeat: record rendering, the SignalDrain latch, and the
// periodic emitter shared by scenario_runner and meshbcastd.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/heartbeat.h"

namespace wsn {
namespace {

TEST(HeartbeatTest, JsonShapeRoundTrips) {
  HeartbeatRecord beat;
  beat.emitted = 7;
  beat.jobs_total = 48;
  beat.errors = 1;
  beat.queue_depth = 3;
  beat.workers_busy = 2;
  const std::string line = heartbeat_json(beat);
  JsonValue doc;
  ASSERT_TRUE(parse_json(line, doc));
  EXPECT_EQ(doc.string_or("schema", ""), "meshbcast.heartbeat");
  EXPECT_EQ(doc.number_or("version", 0), 1.0);
  EXPECT_EQ(doc.number_or("emitted", 0), 7.0);
  EXPECT_EQ(doc.number_or("jobs", 0), 48.0);
  EXPECT_EQ(doc.number_or("errors", 0), 1.0);
  EXPECT_EQ(doc.number_or("queue_depth", 0), 3.0);
  EXPECT_EQ(doc.number_or("workers_busy", 0), 2.0);
}

TEST(HeartbeatTest, SignalDrainTriggerAndFlag) {
  SignalDrain drain;
  EXPECT_FALSE(drain.requested());
  ASSERT_NE(drain.flag(), nullptr);
  EXPECT_FALSE(drain.flag()->load());
  drain.trigger();
  EXPECT_TRUE(drain.requested());
  EXPECT_TRUE(drain.flag()->load());
}

TEST(HeartbeatTest, SignalDrainCatchesSigterm) {
  SignalDrain drain;
  EXPECT_FALSE(drain.requested());
  // raise() delivers synchronously on this thread; the handler only sets
  // the atomic, so the process survives and the latch flips.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(drain.requested());
}

TEST(HeartbeatTest, SignalDrainScopesCleanly) {
  {
    SignalDrain drain;
    drain.trigger();
  }
  // A fresh latch starts clear: the destructor released the process
  // slot and the constructor resets the flag.
  SignalDrain next;
  EXPECT_FALSE(next.requested());
}

TEST(HeartbeatTest, EmitterEmitsAndFlushesFinalBeat) {
  std::mutex mutex;
  std::vector<HeartbeatRecord> beats;
  std::atomic<std::size_t> emitted{0};
  HeartbeatEmitter::Config config;
  config.period_ms = 10;
  config.sample = [&] {
    HeartbeatRecord beat;
    beat.emitted = emitted.load();
    return beat;
  };
  config.sink = [&](const HeartbeatRecord& beat) {
    const std::lock_guard<std::mutex> lock(mutex);
    beats.push_back(beat);
  };
  HeartbeatEmitter emitter(std::move(config));
  emitter.start();
  emitted.store(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  emitter.stop();
  const std::lock_guard<std::mutex> lock(mutex);
  // At least one periodic beat plus the closing beat from stop().
  ASSERT_GE(beats.size(), 2u);
  EXPECT_EQ(beats.back().emitted, 42u);
}

TEST(HeartbeatTest, EmitterStopIsIdempotent) {
  std::atomic<int> sunk{0};
  HeartbeatEmitter::Config config;
  config.period_ms = 1000;
  config.sample = [] { return HeartbeatRecord{}; };
  config.sink = [&](const HeartbeatRecord&) { sunk.fetch_add(1); };
  HeartbeatEmitter emitter(std::move(config));
  emitter.start();
  emitter.stop();
  emitter.stop();  // no-op
  EXPECT_EQ(sunk.load(), 1);  // just the closing beat
}

}  // namespace
}  // namespace wsn
