#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace wsn {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.try_pop(), 1);
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, TryPopOnEmptyIsNullopt) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(BoundedQueue, CloseDrainsThenSignalsExit) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(7));
  EXPECT_TRUE(queue.push(8));
  queue.close();
  EXPECT_FALSE(queue.push(9));  // closed to producers immediately
  EXPECT_EQ(queue.pop(), 7);    // but the backlog still drains
  EXPECT_EQ(queue.pop(), 8);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CancelDiscardsBacklog) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.cancel(), 2u);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_FALSE(queue.push(3));
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks: capacity 1 and one item queued
    pushed.store(true);
  });
  // The producer cannot finish until we pop.  (No sleep: we only assert
  // the happens-before edge, not timing.)
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, CancelUnblocksAWaitingProducer) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(2));  // blocked, then rejected by cancel
  });
  queue.cancel();
  producer.join();
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  // MPMC soak: every pushed value is popped exactly once.  This is the
  // test the TSan job leans on for the scenario engine's spine.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  long long expect = 0;
  for (int v = 0; v < total; ++v) expect += v;
  EXPECT_EQ(sum.load(), expect);
}

TEST(BoundedQueue, ConcurrentCancelIsRaceFree) {
  // Producers, consumers and a cancelling thread all collide; the queue
  // must stay internally consistent (checked by TSan) and every side must
  // terminate.
  BoundedQueue<int> queue(2);
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!queue.push(i)) return;
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
    });
  }
  threads.emplace_back([&] { queue.cancel(); });
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, WaitHooksFireOnlyWhenBlocked) {
  BoundedQueue<int> queue(1);
  std::atomic<std::uint64_t> push_waits{0};
  std::atomic<std::uint64_t> pop_waits{0};
  QueueWaitHooks hooks;
  hooks.on_push_wait = [&](std::uint64_t wait_ns) {
    EXPECT_GE(wait_ns, 1u);
    push_waits.fetch_add(1, std::memory_order_relaxed);
  };
  hooks.on_pop_wait = [&](std::uint64_t wait_ns) {
    EXPECT_GE(wait_ns, 1u);
    pop_waits.fetch_add(1, std::memory_order_relaxed);
  };
  queue.set_wait_hooks(std::move(hooks));

  // Unblocked traffic never reaches the hooks.
  EXPECT_TRUE(queue.push(1));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_EQ(queue.try_pop(), 2);
  EXPECT_EQ(push_waits.load(), 0u);
  EXPECT_EQ(pop_waits.load(), 0u);

  // A producer blocked on a full queue reports its wait.  Whether the
  // helper reaches its blocking call before we unblock it is scheduling;
  // the handshake plus a short grace makes a miss rare and the retry
  // loop makes the test deterministic anyway.
  for (int attempt = 0; attempt < 100 && push_waits.load() == 0; ++attempt) {
    ASSERT_TRUE(queue.push(3));
    std::atomic<bool> started{false};
    std::thread producer([&] {
      started.store(true, std::memory_order_release);
      EXPECT_TRUE(queue.push(4));
    });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(queue.pop(), 3);
    producer.join();
    EXPECT_EQ(queue.pop(), 4);
  }
  EXPECT_GE(push_waits.load(), 1u);

  // ...and a consumer blocked on an empty one reports too.
  for (int attempt = 0; attempt < 100 && pop_waits.load() == 0; ++attempt) {
    std::atomic<bool> started{false};
    std::thread consumer([&] {
      started.store(true, std::memory_order_release);
      EXPECT_EQ(queue.pop(), 7);
    });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(queue.push(7));
    consumer.join();
  }
  EXPECT_GE(pop_waits.load(), 1u);
  EXPECT_EQ(queue.size(), 0u);
}

using BoundedQueueDeathTest = ::testing::Test;

TEST(BoundedQueueDeathTest, ZeroCapacityRejected) {
  EXPECT_DEATH(BoundedQueue<int>(0), "precondition");
}

}  // namespace
}  // namespace wsn
