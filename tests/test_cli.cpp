#include "common/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace wsn {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("size", "mesh size", "32");
  cli.add_option("spacing", "meters", "0.5");
  cli.add_flag("verbose", "print more");
  return cli;
}

bool parse(CliParser& cli, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get("size"), "32");
  EXPECT_EQ(cli.get_u64("size"), 32u);
  EXPECT_DOUBLE_EQ(cli.get_f64("spacing"), 0.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValue) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--size", "64"}));
  EXPECT_EQ(cli.get_u64("size"), 64u);
}

TEST(Cli, EqualsSeparatedValue) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--size=128", "--spacing=0.25"}));
  EXPECT_EQ(cli.get_u64("size"), 128u);
  EXPECT_DOUBLE_EQ(cli.get_f64("spacing"), 0.25);
}

TEST(Cli, FlagPresence) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose"}));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"input.csv", "--size", "8", "more"}));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--nope"}));
}

TEST(Cli, MissingValueFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--size"}));
}

TEST(Cli, FlagWithValueFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--verbose=yes"}));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, UsageListsOptionsAndDefaults) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--size"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 32"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Cli, LastOccurrenceWins) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--size", "1", "--size", "2"}));
  EXPECT_EQ(cli.get_u64("size"), 2u);
}

}  // namespace
}  // namespace wsn
