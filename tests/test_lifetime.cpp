#include <gtest/gtest.h>

#include "protocol/registry.h"
#include "radio/battery.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

// Integration of simulator + battery: repeated broadcasts drain the network
// the way the lifetime example does.

TEST(Lifetime, RepeatedBroadcastsDrainMonotonically) {
  const Mesh2D4 topo(8, 8);
  const NodeId src = topo.grid().to_id({4, 4});
  const RelayPlan plan = paper_plan(topo, src);
  BatteryBank bank(topo.num_nodes(), 1.0);
  SimOptions options;
  options.battery = &bank;

  Joules last_min = bank.min_charge();
  for (int round = 0; round < 5; ++round) {
    const auto out = simulate_broadcast(topo, plan, options);
    ASSERT_TRUE(out.stats.fully_reached());
    EXPECT_LE(bank.min_charge(), last_min);
    last_min = bank.min_charge();
  }
  EXPECT_LT(bank.min_charge(), 1.0);
  EXPECT_GT(bank.total_consumed(), 0.0);
}

TEST(Lifetime, RelaysDieBeforePassiveNodes) {
  // Relay duty is the lifetime bottleneck: with a fixed source, relays
  // spend Tx+Rx energy while passive nodes spend only Rx.
  const Mesh2D4 topo(8, 8);
  const NodeId src = topo.grid().to_id({4, 4});
  const RelayPlan plan = paper_plan(topo, src);
  BatteryBank bank(topo.num_nodes(), 1.0);
  SimOptions options;
  options.battery = &bank;
  for (int round = 0; round < 3; ++round) {
    (void)simulate_broadcast(topo, plan, options);
  }
  // The source (transmits every round) must hold less charge than the
  // best-off passive node.
  Joules max_passive = 0.0;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (!plan.is_relay(v)) max_passive = std::max(max_passive, bank.charge(v));
  }
  EXPECT_LT(bank.charge(src), max_passive);
}

TEST(Lifetime, NetworkDegradesAfterFirstDeath) {
  // Run until some relay dies; the next broadcast must lose reachability
  // (the protocols have no route-around logic -- that's the LEACH-style
  // motivation for rotating duties).
  const Mesh2D4 topo(6, 6);
  const NodeId src = 0;
  const RelayPlan plan = paper_plan(topo, src);
  // Budget only a handful of broadcasts for the hottest node.
  const FirstOrderRadioModel radio;
  const Joules budget = 5.5 * (radio.tx_energy(512, 0.5) +
                               4.0 * radio.rx_energy(512));
  BatteryBank bank(topo.num_nodes(), budget);
  SimOptions options;
  options.battery = &bank;

  int rounds = 0;
  while (bank.alive_count() == topo.num_nodes() && rounds < 100) {
    (void)simulate_broadcast(topo, plan, options);
    ++rounds;
  }
  ASSERT_LT(rounds, 100) << "nobody ever died";
  const auto after = simulate_broadcast(topo, plan, options);
  EXPECT_FALSE(after.stats.fully_reached());
}

}  // namespace
}  // namespace wsn
