#include "protocol/gossip.h"

#include <gtest/gtest.h>

#include "protocol/flooding.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Gossip, ZeroProbabilityMeansOnlySource) {
  const Mesh2D4 topo(8, 8);
  const Gossip proto(0.0);
  const RelayPlan plan = proto.plan(topo, 12);
  EXPECT_EQ(plan.relay_count(), 1u);
  EXPECT_TRUE(plan.is_relay(12));
}

TEST(Gossip, FullProbabilityRelaysEverywhere) {
  const Mesh2D4 topo(8, 8);
  const Gossip proto(1.0);
  const RelayPlan plan = proto.plan(topo, 12);
  EXPECT_EQ(plan.relay_count(), topo.num_nodes());
}

TEST(Gossip, RelayFractionTracksProbability) {
  const Mesh2D4 topo(32, 32);  // 1024 nodes for a tight estimate
  const Gossip proto(0.6, 0, 42);
  const RelayPlan plan = proto.plan(topo, 0);
  const double fraction = static_cast<double>(plan.relay_count()) /
                          static_cast<double>(topo.num_nodes());
  EXPECT_NEAR(fraction, 0.6, 0.05);
}

TEST(Gossip, DeterministicPerSeed) {
  const Mesh2D4 topo(10, 10);
  const Gossip a(0.5, 3, 11);
  const Gossip b(0.5, 3, 11);
  const RelayPlan pa = a.plan(topo, 7);
  const RelayPlan pb = b.plan(topo, 7);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(pa.tx_offsets[v], pb.tx_offsets[v]);
  }
}

TEST(Gossip, SeedsChangeTheDraw) {
  const Mesh2D4 topo(10, 10);
  const RelayPlan pa = Gossip(0.5, 0, 1).plan(topo, 7);
  const RelayPlan pb = Gossip(0.5, 0, 2).plan(topo, 7);
  bool differs = false;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (pa.tx_offsets[v] != pb.tx_offsets[v]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Gossip, LowerProbabilityLowersReachability) {
  const Mesh2D4 topo(16, 16);
  SimOptions options;
  const NodeId src = topo.grid().to_id({8, 8});
  const auto high = simulate_broadcast(
      topo, Gossip(0.9, 5, 3).plan(topo, src), options);
  const auto low = simulate_broadcast(
      topo, Gossip(0.2, 5, 3).plan(topo, src), options);
  EXPECT_GT(high.stats.reachability(), low.stats.reachability());
}

TEST(Gossip, NameEncodesParameters) {
  EXPECT_EQ(Gossip(0.65).name(), "gossip(p=0.65)");
  EXPECT_EQ(Gossip(0.5, 4).name(), "gossip(p=0.50,jitter=4)");
}

}  // namespace
}  // namespace wsn
