#include "topology/torus.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/graph_algos.h"

namespace wsn {
namespace {

TEST(TorusWrap, WrapsBothAxes) {
  EXPECT_EQ(torus_wrap({0, 5}, 8, 8), (Vec2{8, 5}));
  EXPECT_EQ(torus_wrap({9, 5}, 8, 8), (Vec2{1, 5}));
  EXPECT_EQ(torus_wrap({3, 0}, 8, 8), (Vec2{3, 8}));
  EXPECT_EQ(torus_wrap({3, 9}, 8, 8), (Vec2{3, 1}));
  EXPECT_EQ(torus_wrap({4, 4}, 8, 8), (Vec2{4, 4}));
  EXPECT_EQ(torus_wrap({-1, 17}, 8, 8), (Vec2{7, 1}));
}

TEST(Torus2D4, EveryNodeHasFullDegree) {
  const Torus2D4 topo(8, 6);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(topo.degree(v), 4u);
  }
}

TEST(Torus2D8, EveryNodeHasFullDegree) {
  const Torus2D8 topo(8, 6);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(topo.degree(v), 8u);
  }
}

TEST(Torus2D4, WrapLinksExist) {
  const Torus2D4 topo(8, 6);
  const Grid2D& g = topo.grid();
  EXPECT_TRUE(topo.adjacent(g.to_id({1, 3}), g.to_id({8, 3})));
  EXPECT_TRUE(topo.adjacent(g.to_id({4, 1}), g.to_id({4, 6})));
  EXPECT_FALSE(topo.adjacent(g.to_id({1, 1}), g.to_id({8, 6})));
}

TEST(Torus2D8, CornerWrapsDiagonally) {
  const Torus2D8 topo(8, 6);
  const Grid2D& g = topo.grid();
  EXPECT_TRUE(topo.adjacent(g.to_id({1, 1}), g.to_id({8, 6})));
}

TEST(Torus2D4, UniformTxRange) {
  const Torus2D4 topo(8, 6, 0.5);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(topo.tx_range(v), 0.5);
  }
}

TEST(Torus2D8, UniformDiagonalTxRange) {
  const Torus2D8 topo(8, 6, 0.5);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_NEAR(topo.tx_range(v), 0.5 * std::sqrt(2.0), 1e-12);
  }
}

TEST(Torus2D4, DiameterHalvesAgainstTheMesh) {
  // Wrapping halves per-axis worst distances: 8x6 mesh diameter 7+5=12,
  // torus 4+3=7.
  const Torus2D4 topo(8, 6);
  EXPECT_EQ(diameter(topo), 7u);
  EXPECT_TRUE(is_connected(topo));
}

TEST(Torus2D4, VertexTransitiveEccentricity) {
  // No borders: every node has the same eccentricity.
  const Torus2D4 topo(6, 6);
  const auto first = eccentricity(topo, 0);
  for (NodeId v = 1; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(eccentricity(topo, v), first);
  }
}

TEST(Torus2D4, FamilyTags) {
  EXPECT_EQ(Torus2D4(4, 4).family(), "2D-4T");
  EXPECT_EQ(Torus2D8(4, 4).family(), "2D-8T");
}

}  // namespace
}  // namespace wsn
