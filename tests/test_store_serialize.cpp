// Plan serialization: bit-exact round-trips across every topology kind the
// library builds, and total decoding -- every way an artifact can be damaged
// maps to a PlanSerdeStatus, never an abort, and never a partially-written
// output.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "protocol/cds_broadcast.h"
#include "protocol/registry.h"
#include "protocol/resolver.h"
#include "store/serialize.h"
#include "topology/factory.h"
#include "topology/random_geometric.h"
#include "topology/torus.h"

namespace wsn {
namespace {

/// A resolved plan for `topo`: the paper protocol where one exists, the
/// CDS baseline (which works on any connected topology) otherwise.
StoredPlan make_stored(const Topology& topo, NodeId source) {
  StoredPlan stored;
  const std::string family = topo.family();
  RelayPlan plan;
  if (family == "2D-3" || family == "2D-4" || family == "2D-8" ||
      family == "3D-6") {
    plan = paper_plan(topo, source, {}, &stored.report);
  } else {
    plan = resolve_full_reachability(topo, CdsBroadcast().plan(topo, source),
                                     {}, &stored.report);
  }
  stored.plan = FlatRelayPlan::from(plan);
  return stored;
}

void expect_exact_round_trip(const StoredPlan& original,
                             const std::string& context) {
  const std::string bytes = serialize_plan(original);
  StoredPlan restored;
  ASSERT_EQ(deserialize_plan(bytes, restored), PlanSerdeStatus::kOk)
      << context;
  EXPECT_EQ(restored.plan.source(), original.plan.source()) << context;
  ASSERT_EQ(restored.plan.num_nodes(), original.plan.num_nodes()) << context;
  EXPECT_EQ(restored.plan.total_offsets(), original.plan.total_offsets())
      << context;
  for (NodeId v = 0; v < original.plan.num_nodes(); ++v) {
    const auto want = original.plan.offsets(v);
    const auto got = restored.plan.offsets(v);
    ASSERT_EQ(got.size(), want.size()) << context << " node " << v;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << context << " node " << v;
    }
  }
  EXPECT_EQ(restored.report.repairs, original.report.repairs) << context;
  EXPECT_EQ(restored.report.rounds, original.report.rounds) << context;
  EXPECT_EQ(restored.report.unreachable, original.report.unreachable)
      << context;
  EXPECT_EQ(restored.report.unrepaired, original.report.unrepaired)
      << context;
  // The restored plan must survive the aborting contract check, too.
  restored.plan.validate();
}

TEST(StoreSerialize, RoundTripAllPaperTopologies) {
  for (const std::string& family : regular_families()) {
    const auto topo = make_paper_topology(family);
    for (const NodeId source :
         {NodeId{0}, static_cast<NodeId>(topo->num_nodes() / 2)}) {
      expect_exact_round_trip(make_stored(*topo, source),
                              family + " source " + std::to_string(source));
    }
  }
}

TEST(StoreSerialize, RoundTripTorus) {
  const Torus2D4 torus4(8, 6);
  expect_exact_round_trip(make_stored(torus4, 5), torus4.name());
  const Torus2D8 torus8(8, 6);
  expect_exact_round_trip(make_stored(torus8, 17), torus8.name());
}

TEST(StoreSerialize, RoundTripRandomGeometric) {
  const RandomGeometric topo(64, /*side=*/10.0, /*radius=*/3.0,
                             /*seed=*/0xfeedu);
  expect_exact_round_trip(make_stored(topo, 0), topo.name());
}

TEST(StoreSerialize, RoundTripDegenerateGrids) {
  const auto one = make_mesh("2D-4", 1, 1);
  expect_exact_round_trip(make_stored(*one, 0), "1x1 2D-4");
  const auto path = make_mesh("2D-4", 1, 7);
  expect_exact_round_trip(make_stored(*path, 3), "1x7 2D-4");
}

TEST(StoreSerialize, RoundTripMinimalPlan) {
  // The smallest valid plan: one node, the source, transmitting once.
  StoredPlan minimal;
  minimal.plan = FlatRelayPlan::from(RelayPlan::empty(1, 0));
  expect_exact_round_trip(minimal, "single-node plan");
}

TEST(StoreSerialize, EmptyBytesAreTruncated) {
  StoredPlan out;
  EXPECT_EQ(deserialize_plan(std::string_view{}, out),
            PlanSerdeStatus::kTruncated);
}

TEST(StoreSerialize, TruncationAtEveryBoundaryIsDetected) {
  const auto topo = make_mesh("2D-4", 6, 4);
  const std::string bytes = serialize_plan(make_stored(*topo, 2));
  // Cut off before the header + trailer minimum: structural truncation.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{12}, std::size_t{63},
        std::size_t{71}}) {
    StoredPlan out;
    EXPECT_EQ(deserialize_plan(std::string_view(bytes).substr(0, keep), out),
              PlanSerdeStatus::kTruncated)
        << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(out.plan.num_nodes(), 0u);
  }
  // Cut mid-body: the last 8 surviving bytes get read as the trailer, so
  // the damage lands on the checksum -- still a miss, never kOk.
  for (const std::size_t keep : {bytes.size() - 9, bytes.size() - 1}) {
    StoredPlan out;
    EXPECT_EQ(deserialize_plan(std::string_view(bytes).substr(0, keep), out),
              PlanSerdeStatus::kChecksumMismatch)
        << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(out.plan.num_nodes(), 0u);
  }
}

TEST(StoreSerialize, ZeroNodePlanIsMalformedNotFatal) {
  // A default StoredPlan serializes (nothing aborts) but can never decode:
  // a plan with no nodes has no source relay.
  const StoredPlan empty{};
  StoredPlan out;
  EXPECT_EQ(deserialize_plan(serialize_plan(empty), out),
            PlanSerdeStatus::kMalformed);
}

TEST(StoreSerialize, FlippedByteIsChecksumMismatch) {
  const auto topo = make_mesh("2D-4", 6, 4);
  std::string bytes = serialize_plan(make_stored(*topo, 2));
  // Flip one payload byte (past the header fields that have their own
  // statuses) and one byte of the trailer itself.
  for (const std::size_t victim : {std::size_t{70}, bytes.size() - 3}) {
    std::string damaged = bytes;
    damaged[victim] = static_cast<char>(damaged[victim] ^ 0x40);
    StoredPlan out;
    EXPECT_EQ(deserialize_plan(damaged, out),
              PlanSerdeStatus::kChecksumMismatch)
        << "byte " << victim;
  }
}

TEST(StoreSerialize, WrongFormatVersionIsRejectedBeforeChecksum) {
  const auto topo = make_mesh("2D-4", 6, 4);
  std::string bytes = serialize_plan(make_stored(*topo, 2));
  bytes[8] = static_cast<char>(kPlanFormatVersion + 1);  // u32 LE low byte
  StoredPlan out;
  EXPECT_EQ(deserialize_plan(bytes, out), PlanSerdeStatus::kBadVersion);
}

TEST(StoreSerialize, BadMagicIsRejected) {
  const auto topo = make_mesh("2D-4", 6, 4);
  std::string bytes = serialize_plan(make_stored(*topo, 2));
  bytes[0] = 'X';
  StoredPlan out;
  EXPECT_EQ(deserialize_plan(bytes, out), PlanSerdeStatus::kBadMagic);
}

TEST(StoreSerialize, StructurallyInvalidPlansAreMalformed) {
  // adopt() skips validation, so these serialize fine -- and must then be
  // caught by the decoder's structural re-verification.
  const StoredPlan zero_offset{
      FlatRelayPlan::adopt(0, {0, 1}, {Slot{0}}), {}};
  const StoredPlan non_increasing{
      FlatRelayPlan::adopt(0, {0, 2}, {Slot{2}, Slot{2}}), {}};
  const StoredPlan silent_source{
      FlatRelayPlan::adopt(1, {0, 1, 1}, {Slot{1}}), {}};
  for (const StoredPlan* bad :
       {&zero_offset, &non_increasing, &silent_source}) {
    StoredPlan out;
    EXPECT_EQ(deserialize_plan(serialize_plan(*bad), out),
              PlanSerdeStatus::kMalformed);
  }
}

TEST(StoreSerialize, FailedDecodeLeavesOutputUntouched) {
  const auto topo = make_mesh("2D-4", 6, 4);
  std::string bytes = serialize_plan(make_stored(*topo, 2));
  bytes[70] = static_cast<char>(bytes[70] ^ 0x01);

  StoredPlan out = make_stored(*make_mesh("2D-4", 3, 3), 4);
  const std::size_t nodes_before = out.plan.num_nodes();
  ASSERT_EQ(deserialize_plan(bytes, out), PlanSerdeStatus::kChecksumMismatch);
  EXPECT_EQ(out.plan.num_nodes(), nodes_before);
  EXPECT_EQ(out.plan.source(), 4u);
}

TEST(StoreSerialize, FileRoundTripAndMissingFile) {
  const auto topo = make_mesh("2D-4", 6, 4);
  const StoredPlan original = make_stored(*topo, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_test_store_serialize.plan")
          .string();
  ASSERT_TRUE(write_plan_file(path, original));
  StoredPlan restored;
  EXPECT_EQ(read_plan_file(path, restored), PlanSerdeStatus::kOk);
  EXPECT_EQ(restored.plan.total_offsets(), original.plan.total_offsets());
  std::remove(path.c_str());

  StoredPlan out;
  EXPECT_EQ(read_plan_file(path, out), PlanSerdeStatus::kNotFound);
}

TEST(StoreSerialize, FlatPlanConvertsLosslessly) {
  const auto topo = make_mesh("2D-8", 5, 4);
  ResolveReport report;
  const RelayPlan plan = paper_plan(*topo, 7, {}, &report);
  const FlatRelayPlan flat = FlatRelayPlan::from(plan);
  flat.validate();
  EXPECT_EQ(flat.num_nodes(), plan.num_nodes());
  EXPECT_EQ(flat.total_offsets(), plan.planned_tx());
  const RelayPlan back = flat.to_relay_plan();
  EXPECT_EQ(back.source, plan.source);
  EXPECT_EQ(back.tx_offsets, plan.tx_offsets);
}

TEST(StoreSerialize, StatusStringsAreDistinct) {
  EXPECT_NE(to_string(PlanSerdeStatus::kTruncated),
            to_string(PlanSerdeStatus::kChecksumMismatch));
  EXPECT_NE(to_string(PlanSerdeStatus::kBadMagic),
            to_string(PlanSerdeStatus::kBadVersion));
}

}  // namespace
}  // namespace wsn
