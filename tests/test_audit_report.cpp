// The invariant auditor (obs/audit/auditor.h): golden audits on every
// paper topology, the fault-injection posture (coverage loss is a flagged
// finding with the exact unreached set, never a crash), truncated-trace
// detection, and the meshbcast.audit JSON document.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "fault/models.h"
#include "obs/audit/auditor.h"
#include "obs/event_sink.h"
#include "obs/observer.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

// The tentpole acceptance: a paper-config run audits cleanly on all four
// 512-node topologies -- every check runs, zero violations, and the
// headline figures line up with the analytic model's Tables 1-2 view.
TEST(AuditReport, GoldenPassOnEveryPaperTopology) {
  for (const std::string& family : regular_families()) {
    SCOPED_TRACE(family);
    const auto topo = make_paper_topology(family);
    const NodeId src = graph_center(*topo);

    EventSink sink;
    Observer observer(&sink);
    SimOptions options;
    options.record_collisions = true;
    options.observer = &observer;
    const RelayPlan plan = paper_plan(*topo, src);
    const BroadcastOutcome out = simulate_broadcast(*topo, plan, options);

    AuditConfig config;
    config.source = src;
    config.stats = &out.stats;
    config.family = family;
    // Enable the lossy-mode checks too (9-11) so every check runs; on a
    // perfect medium they are exact: delivery ratio 1, tx == planned,
    // zero coverage shortfall.
    config.mean_link_delivery = 1.0;
    config.planned_tx = plan.planned_tx();
    config.arq = true;
    const AuditReport report = audit_sink(*topo, sink, config);

    EXPECT_TRUE(report.passed()) << audit_summary_text(report);
    EXPECT_EQ(report.checks_run, kAuditCheckCount);
    EXPECT_TRUE(report.unreached.empty());
    EXPECT_EQ(report.dropped_events, 0u);
    EXPECT_EQ(report.ledger.reached, topo->num_nodes());
    // Mean relay ETR sits at or below the family optimum (Table 1) and
    // the energy ledger reproduced the run's total exactly.
    EXPECT_LE(report.mean_etr, optimal_etr(family).value() + 1e-9);
    EXPECT_GT(report.mean_etr, 0.0);
    EXPECT_DOUBLE_EQ(report.total_energy, out.stats.total_energy());
  }
}

// Source inference: auditing the same trace without naming the source
// must find it and reach the same verdict.
TEST(AuditReport, InfersTheSourceWhenUnspecified) {
  const auto topo = make_mesh("2D-8", 12, 10);
  const NodeId src = graph_center(*topo);
  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  (void)simulate_broadcast(*topo, paper_plan(*topo, src), options);

  AuditConfig config;
  config.family = "2D-8";
  const AuditReport report = audit_sink(*topo, sink, config);
  EXPECT_EQ(report.ledger.source, src);
  EXPECT_TRUE(report.passed()) << audit_summary_text(report);
}

// Crash faults with no recovery: the audit must flag the coverage
// violation and name the exact unreached set -- while every bookkeeping
// check (stats, energy, physics) still passes, because the trace itself
// is a faithful record of the degraded run.
TEST(AuditReport, FlagsCoverageLossUnderCrashFaultsExactly) {
  const auto topo = make_mesh("2D-4", 10, 8);
  const NodeId src = 0;
  // Sever a far corner: crash its neighbors from slot 0, forever.
  const NodeId corner = static_cast<NodeId>(topo->num_nodes() - 1);
  std::vector<CrashEvent> outages;
  for (const NodeId v : topo->neighbors(corner)) {
    outages.push_back(CrashEvent{v, 0, kNeverSlot});
  }
  CrashScheduleModel crashes(topo->num_nodes(), std::move(outages));

  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.record_collisions = true;
  options.faults = &crashes;
  options.observer = &observer;
  const BroadcastOutcome out =
      simulate_broadcast(*topo, paper_plan(*topo, src), options);
  const std::vector<NodeId> expected = out.unreached();
  ASSERT_FALSE(expected.empty());
  ASSERT_NE(std::find(expected.begin(), expected.end(), corner),
            expected.end());

  AuditConfig config;
  config.source = src;
  config.stats = &out.stats;
  config.family = "2D-4";
  const AuditReport report = audit_sink(*topo, sink, config);

  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.violated(AuditCheck::kCoverage));
  EXPECT_EQ(report.unreached, expected);
  // The finding is the coverage loss alone: the trace still reconciles
  // against SimStats, the energy model, and the medium's physics.
  EXPECT_FALSE(report.violated(AuditCheck::kStatsMatch));
  EXPECT_FALSE(report.violated(AuditCheck::kEnergyModel));
  EXPECT_FALSE(report.violated(AuditCheck::kTraceConsistent));
  EXPECT_FALSE(report.violated(AuditCheck::kCausality));

  // A fault-study audit opts out of the coverage expectation and passes,
  // still listing the unreached set for the report.
  config.expect_full_coverage = false;
  const AuditReport tolerant = audit_sink(*topo, sink, config);
  EXPECT_TRUE(tolerant.passed()) << audit_summary_text(tolerant);
  EXPECT_EQ(tolerant.unreached, expected);
}

// Lossy-medium run: trace-vs-SimStats equality holds under fading too
// (the satellite's "audit equals stats under fault injection").
TEST(AuditReport, StatsReconcileUnderFadingLoss) {
  const auto topo = make_mesh("2D-4", 9, 9);
  const NodeId src = graph_center(*topo);
  IidLossModel loss(0.2, 42);

  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.record_collisions = true;
  options.faults = &loss;
  options.observer = &observer;
  const BroadcastOutcome out =
      simulate_broadcast(*topo, paper_plan(*topo, src), options);
  ASSERT_GT(out.stats.lost_to_fading, 0u);

  AuditConfig config;
  config.source = src;
  config.stats = &out.stats;
  config.expect_full_coverage = false;
  const AuditReport report = audit_sink(*topo, sink, config);
  EXPECT_FALSE(report.violated(AuditCheck::kStatsMatch))
      << audit_summary_text(report);
  EXPECT_FALSE(report.violated(AuditCheck::kEnergyModel));
  EXPECT_FALSE(report.violated(AuditCheck::kTraceConsistent));
  EXPECT_EQ(report.ledger.lost_to_fading, out.stats.lost_to_fading);
}

// A ring buffer that overflowed produced a suffix of the run: that trace
// must never audit clean, whatever else checks out.
TEST(AuditReport, TruncatedTraceNeverPassesSilently) {
  const auto topo = make_mesh("2D-4", 12, 12);
  EventSink tiny(64);
  Observer observer(&tiny);
  SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  const BroadcastOutcome out =
      simulate_broadcast(*topo, paper_plan(*topo, 0), options);
  ASSERT_GT(tiny.dropped(), 0u);

  AuditConfig config;
  config.source = 0;
  config.stats = &out.stats;
  const AuditReport report = audit_sink(*topo, tiny, config);
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(report.violated(AuditCheck::kTraceComplete));
  EXPECT_EQ(report.dropped_events, tiny.dropped());
}

// Header/stream disagreement is the offline flavor of the same check.
TEST(AuditReport, DeclaredCountMismatchIsAViolation) {
  const auto topo = make_mesh("2D-4", 6, 6);
  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.observer = &observer;
  (void)simulate_broadcast(*topo, paper_plan(*topo, 0), options);
  const std::vector<Event> events = sink.events();

  AuditConfig config;
  config.source = 0;
  config.declared_events = events.size() + 5;
  const AuditReport report = audit_trace(*topo, events, config);
  EXPECT_TRUE(report.violated(AuditCheck::kTraceComplete));

  config.declared_events = events.size();
  const AuditReport exact = audit_trace(*topo, events, config);
  EXPECT_FALSE(exact.violated(AuditCheck::kTraceComplete));
}

TEST(AuditReport, JsonDocumentRoundTrips) {
  const auto topo = make_paper_topology("2D-4");
  const NodeId src = graph_center(*topo);
  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  const BroadcastOutcome out =
      simulate_broadcast(*topo, paper_plan(*topo, src), options);

  AuditConfig config;
  config.source = src;
  config.stats = &out.stats;
  config.family = "2D-4";
  const AuditReport report = audit_sink(*topo, sink, config);

  std::ostringstream text;
  write_audit_json(text, report);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(text.str(), doc, &error)) << error;
  EXPECT_EQ(doc.string_or("schema", ""), "meshbcast.audit");
  EXPECT_EQ(doc.number_or("version", 0), 1.0);
  EXPECT_TRUE(doc.bool_or("passed", false));
  const JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->number_or("reached", 0),
            static_cast<double>(topo->num_nodes()));
  EXPECT_EQ(summary->number_or("delay", 0),
            static_cast<double>(out.stats.delay));
  const JsonValue* frontier = doc.find("frontier");
  ASSERT_NE(frontier, nullptr);
  ASSERT_TRUE(frontier->is_array());
  EXPECT_EQ(frontier->as_array().size(),
            static_cast<std::size_t>(out.stats.delay) + 1);
  const JsonValue* violations = doc.find("violations");
  ASSERT_NE(violations, nullptr);
  EXPECT_TRUE(violations->is_array());
  EXPECT_TRUE(violations->as_array().empty());
}

TEST(AuditReport, CheckNamesAreStable) {
  EXPECT_EQ(to_string(AuditCheck::kTraceComplete), "trace_complete");
  EXPECT_EQ(to_string(AuditCheck::kTraceConsistent), "trace_consistent");
  EXPECT_EQ(to_string(AuditCheck::kStatsMatch), "stats_match");
  EXPECT_EQ(to_string(AuditCheck::kEnergyModel), "energy_model");
  EXPECT_EQ(to_string(AuditCheck::kCoverage), "coverage");
  EXPECT_EQ(to_string(AuditCheck::kCausality), "causality");
  EXPECT_EQ(to_string(AuditCheck::kEtrBound), "etr_bound");
  EXPECT_EQ(to_string(AuditCheck::kDelayBound), "delay_bound");
}

}  // namespace
}  // namespace wsn
