#include "protocol/flooding.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Flooding, EveryNodeIsARelay) {
  const Mesh2D4 topo(6, 6);
  const Flooding proto;
  const RelayPlan plan = proto.plan(topo, 5);
  EXPECT_EQ(plan.relay_count(), topo.num_nodes());
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    ASSERT_EQ(plan.tx_offsets[v].size(), 1u);
  }
}

TEST(Flooding, NoJitterMeansNextSlot) {
  const Mesh2D4 topo(4, 4);
  const Flooding proto(0);
  const RelayPlan plan = proto.plan(topo, 0);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(plan.tx_offsets[v][0], 1u);
  }
}

TEST(Flooding, JitterStaysInsideWindow) {
  const Mesh2D4 topo(8, 8);
  const Flooding proto(5, 123);
  const RelayPlan plan = proto.plan(topo, 3);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_GE(plan.tx_offsets[v][0], 1u);
    EXPECT_LE(plan.tx_offsets[v][0], 6u);
  }
  EXPECT_EQ(plan.tx_offsets[3][0], 1u);  // the source never jitters
}

TEST(Flooding, DeterministicPerSeedAndSource) {
  const Mesh2D4 topo(8, 8);
  const Flooding proto(4, 7);
  const RelayPlan a = proto.plan(topo, 9);
  const RelayPlan b = proto.plan(topo, 9);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(a.tx_offsets[v], b.tx_offsets[v]);
  }
  // A different source re-rolls the jitter.
  const RelayPlan c = proto.plan(topo, 10);
  bool differs = false;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (a.tx_offsets[v] != c.tx_offsets[v]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Flooding, SynchronousFloodingStrandsNodesOnMeshes) {
  // The paper's motivation: naive flooding causes severe collisions.  On a
  // 2D-4 mesh with a central source, the slot-synchronous flood never
  // reaches large parts of the mesh.
  const Mesh2D4 topo(16, 16);
  const Flooding proto(0);
  const RelayPlan plan = proto.plan(topo, topo.grid().to_id({8, 8}));
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_LT(out.stats.reachability(), 0.75);
  EXPECT_GT(out.stats.collisions, 50u);
}

TEST(Flooding, JitterRestoresMostReachability) {
  const Mesh2D4 topo(16, 16);
  const Flooding proto(7, 99);
  const RelayPlan plan = proto.plan(topo, topo.grid().to_id({8, 8}));
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_GT(out.stats.reachability(), 0.9);
}

TEST(Flooding, NameReflectsJitter) {
  EXPECT_EQ(Flooding(0).name(), "flooding");
  EXPECT_EQ(Flooding(4).name(), "flooding(jitter=4)");
}

}  // namespace
}  // namespace wsn
