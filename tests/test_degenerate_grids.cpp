// Degenerate-size coverage: 1xN paths, 2x2 squares and single-node
// topologies exercise border logic the paper's 32x16 / 8x8x8 evaluation
// sizes never hit.  The contract under test: for every family and every
// source, the paper protocol + resolver still produce a valid plan that
// reaches every node.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

/// The strongest claim degenerate sizes support: from every source, the
/// protocol + resolver reach the source's whole connected component, and
/// the resolver reports exactly the disconnected remainder as unrepaired.
/// (Some degenerate shapes ARE disconnected -- a width-1 2D-3 brick mesh
/// leaves every third node with its only vertical link pointing off-grid.)
void expect_component_reach_from_every_source(const Topology& topo) {
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const std::vector<std::uint32_t> dist = bfs_distances(topo, src);
    std::size_t component = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachable) component += 1;
    }
    ResolveReport report;
    const RelayPlan plan = paper_plan(topo, src, {}, &report);
    plan.validate();
    const auto out = simulate_broadcast(topo, plan);
    EXPECT_EQ(out.stats.reached, component)
        << topo.name() << " from source " << src << ": "
        << out.unreached().size() << " unreached of "
        << topo.num_nodes();
    EXPECT_EQ(report.unrepaired, topo.num_nodes() - component)
        << topo.name() << " from source " << src;
  }
}

void expect_full_reach_from_every_source(const Topology& topo) {
  ASSERT_TRUE(is_connected(topo)) << topo.name();
  expect_component_reach_from_every_source(topo);
}

TEST(DegenerateGrids, SingleNode2D) {
  for (const char* family : {"2D-3", "2D-4", "2D-8"}) {
    const auto topo = make_mesh(family, 1, 1);
    ASSERT_EQ(topo->num_nodes(), 1u);
    expect_full_reach_from_every_source(*topo);
  }
}

TEST(DegenerateGrids, SingleNode3D) {
  const auto topo = make_mesh("3D-6", 1, 1, 1);
  ASSERT_EQ(topo->num_nodes(), 1u);
  expect_full_reach_from_every_source(*topo);
}

TEST(DegenerateGrids, PathsOneByN) {
  for (const char* family : {"2D-3", "2D-4", "2D-8"}) {
    for (const int n : {2, 3, 7}) {
      SCOPED_TRACE(std::string(family) + " 1x" + std::to_string(n));
      // Horizontal paths are always connected (every family keeps the
      // (x±1, y) links); vertical 1-wide columns may not be (2D-3), so
      // only the component contract applies there.
      expect_full_reach_from_every_source(*make_mesh(family, n, 1));
      expect_component_reach_from_every_source(*make_mesh(family, 1, n));
    }
  }
}

TEST(DegenerateGrids, TwoByTwo) {
  for (const char* family : {"2D-3", "2D-4", "2D-8"}) {
    SCOPED_TRACE(family);
    expect_full_reach_from_every_source(*make_mesh(family, 2, 2));
  }
}

TEST(DegenerateGrids, Small3D) {
  expect_full_reach_from_every_source(*make_mesh("3D-6", 2, 2, 2));
  expect_full_reach_from_every_source(*make_mesh("3D-6", 1, 1, 5));
  expect_full_reach_from_every_source(*make_mesh("3D-6", 3, 1, 2));
}

TEST(DegenerateGrids, PlansStayMinimalOnSingleNode) {
  // A 1-node broadcast is just the source talking to nobody: one planned
  // transmission, zero receptions, full reach.
  const auto topo = make_mesh("2D-4", 1, 1);
  const RelayPlan plan = paper_plan(*topo, 0);
  const auto out = simulate_broadcast(*topo, plan);
  EXPECT_TRUE(out.stats.fully_reached());
  EXPECT_EQ(out.stats.rx, 0u);
  EXPECT_GE(out.stats.tx, 1u);
}

}  // namespace
}  // namespace wsn
