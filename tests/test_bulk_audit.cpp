#include "sim/bulk/bulk_audit.h"

#include <gtest/gtest.h>

#include <chrono>
#include <iostream>
#include <memory>

#include "protocol/implicit_plan.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"

namespace wsn {
namespace {

// The closed-form relay-mean model holds against actual simulations of
// the full protocol across mesh shapes and source positions, *exactly* --
// both sides accumulate fresh/degree in 1/840 integer units, so a correct
// parent model forces bitwise-equal doubles.
TEST(BulkAudit, AnalyticRelayMeanMatchesSimulation2D4) {
  const struct {
    int m, n;
  } dims[] = {{3, 3}, {4, 7}, {7, 4}, {5, 5}, {8, 6},
              {9, 9}, {12, 5}, {5, 12}, {13, 11}, {32, 16}};
  for (const auto& d : dims) {
    const std::unique_ptr<Topology> topo = make_mesh("2D-4", d.m, d.n);
    const ImplicitLattice lat = ImplicitLattice::mesh2d4(d.m, d.n);
    for (NodeId src = 0; src < topo->num_nodes();
         src += (topo->num_nodes() > 64 ? 17u : 1u)) {
      const RelayPlan plan = paper_plan(*topo, src);
      const BroadcastOutcome outcome = simulate_broadcast(*topo, plan);
      ASSERT_EQ(outcome.stats.reached, topo->num_nodes());
      const BulkAuditReport report =
          audit_bulk_outcome(lat, outcome, src, 1);
      const auto coord = lat.to_coord(src);
      const double analytic = Mesh2d4Broadcast::analytic_relay_mean_etr(
          coord.x, coord.y, d.m, d.n);
      EXPECT_EQ(report.relay_mean_etr, analytic)
          << d.m << "x" << d.n << " src " << src;
      EXPECT_EQ(outcome.transmissions.size(),
                Mesh2d4Broadcast::analytic_tx_count(coord.x, d.m, d.n));
    }
  }
}

TEST(BulkAudit, ConservationAndCoverageChecks) {
  const ImplicitLattice lat = ImplicitLattice::mesh2d8(9, 7);
  const RelayPlan plan = implicit_paper_plan(lat, 13);
  const BroadcastOutcome outcome = bulk_simulate(lat, plan);

  const BulkAuditReport full = audit_bulk_outcome(lat, outcome, 13, 1);
  EXPECT_TRUE(full.conservation_ok());
  EXPECT_TRUE(full.full_coverage());
  EXPECT_EQ(full.sampled, lat.num_nodes());
  EXPECT_EQ(full.sampled_unreached, 0u);
  EXPECT_EQ(full.fresh_total, lat.num_nodes() - 1);

  const BulkAuditReport strided = audit_bulk_outcome(lat, outcome, 13, 10);
  EXPECT_EQ(strided.sampled, (lat.num_nodes() + 9) / 10);
  EXPECT_TRUE(strided.full_coverage());
  EXPECT_EQ(strided.relay_mean_etr, full.relay_mean_etr);
}

TEST(BulkAudit, DetectsTruncatedBroadcast) {
  const ImplicitLattice lat = ImplicitLattice::mesh2d4(16, 16);
  const RelayPlan plan = implicit_paper_plan(lat, 0);
  SimOptions options;
  options.max_slots = 4;  // cut the broadcast short
  const BroadcastOutcome outcome = bulk_simulate(lat, plan, options);
  const BulkAuditReport report = audit_bulk_outcome(lat, outcome, 0, 1);
  EXPECT_TRUE(report.conservation_ok());  // what landed is still conserved
  EXPECT_FALSE(report.full_coverage());
  EXPECT_GT(report.sampled_unreached, 0u);
}

// The tentpole's acceptance criterion: one million nodes, full coverage,
// relay-mean ETR matching the closed form within 1e-9 (bitwise, in fact),
// completing in seconds.  This is ~60x the node count the materialized
// path handles comfortably and exercises schedule compilation (bulk
// resolver probes) plus the final instrumented run.
TEST(BulkAudit, MillionNode2D4BroadcastMatchesAnalyticModel) {
  constexpr int kM = 1000;
  constexpr int kN = 1000;
  const auto t0 = std::chrono::steady_clock::now();
  const ImplicitLattice lat = ImplicitLattice::mesh2d4(kM, kN);
  const NodeId src = lat.central_node();
  const RelayPlan plan = implicit_paper_plan(lat, src);
  const BroadcastOutcome outcome = bulk_simulate(lat, plan);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  EXPECT_EQ(outcome.stats.num_nodes, 1000000u);
  EXPECT_EQ(outcome.stats.reached, 1000000u);

  const BulkAuditReport report = audit_bulk_outcome(lat, outcome, src, 997);
  EXPECT_TRUE(report.conservation_ok());
  EXPECT_TRUE(report.full_coverage());

  const auto coord = lat.to_coord(src);
  const double analytic = Mesh2d4Broadcast::analytic_relay_mean_etr(
      coord.x, coord.y, kM, kN);
  EXPECT_NEAR(report.relay_mean_etr, analytic, 1e-9);
  EXPECT_EQ(report.relay_mean_etr, analytic);  // exact, same arithmetic
  EXPECT_EQ(outcome.transmissions.size(),
            Mesh2d4Broadcast::analytic_tx_count(coord.x, kM, kN));
  // The mean sits just under the 3/4 optimum (border relays have smaller
  // degree but feed fewer fresh nodes).
  EXPECT_GT(report.relay_mean_etr, 0.70);
  EXPECT_LE(report.relay_mean_etr, 0.75 + 1e-9);

  std::cout << "[ bulk 1M ] plan+sim+audit in " << elapsed << " s, "
            << "relay-mean ETR " << report.relay_mean_etr << "\n";
#ifdef NDEBUG
  // Optimized builds only -- sanitizer/debug builds run this 50-100x
  // slower; the bench tracks the real single-digit-seconds number.
  EXPECT_LT(elapsed, 120.0);
#endif
}

}  // namespace
}  // namespace wsn
