// common/socket: the length-prefixed frame codec and its failure
// discipline.  Every malformed input a peer can produce -- oversized
// length prefix, torn header, torn payload, vanishing mid-frame -- must
// come back as a status, never a crash, never a hang, and never an
// allocation sized by the attacker.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "common/socket.h"

namespace wsn {
namespace {

/// One loopback TCP connection: `client` and `server` ends.
struct Pair {
  Listener listener;
  Socket client;
  Socket server;

  Pair() {
    std::string error;
    EXPECT_TRUE(Listener::listen_tcp(0, listener, error)) << error;
    EXPECT_TRUE(
        connect_tcp("127.0.0.1", listener.port(), client, error))
        << error;
    EXPECT_TRUE(listener.accept(server, 1000));
  }
};

/// Raw big-endian length header.
std::string header_bytes(std::uint32_t length) {
  std::string out(4, '\0');
  out[0] = static_cast<char>((length >> 24) & 0xff);
  out[1] = static_cast<char>((length >> 16) & 0xff);
  out[2] = static_cast<char>((length >> 8) & 0xff);
  out[3] = static_cast<char>(length & 0xff);
  return out;
}

TEST(SocketTest, FrameRoundTrip) {
  Pair pair;
  ASSERT_TRUE(write_frame(pair.client, "{\"type\":\"health\"}"));
  std::string payload;
  ASSERT_EQ(read_frame(pair.server, payload, 1 << 20), FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"type\":\"health\"}");
}

TEST(SocketTest, EmptyFrameRoundTrip) {
  Pair pair;
  ASSERT_TRUE(write_frame(pair.client, ""));
  std::string payload = "stale";
  ASSERT_EQ(read_frame(pair.server, payload, 1 << 20), FrameStatus::kOk);
  EXPECT_TRUE(payload.empty());
}

TEST(SocketTest, LargeFrameRoundTrip) {
  Pair pair;
  const std::string big(1 << 20, 'x');
  // Writer and reader on separate threads: a megabyte does not fit the
  // socket buffers, so a single-threaded round trip would deadlock.
  std::thread writer(
      [&] { EXPECT_TRUE(write_frame(pair.client, big)); });
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 2 << 20), FrameStatus::kOk);
  writer.join();
  EXPECT_EQ(payload, big);
}

TEST(SocketTest, CleanCloseBetweenFramesIsClosed) {
  Pair pair;
  pair.client.close();
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 1 << 20),
            FrameStatus::kClosed);
}

TEST(SocketTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  Pair pair;
  // A hostile 4 GiB declaration: the reader must reject it from the
  // header alone -- `payload` stays untouched (no attacker-sized
  // allocation) and the call returns immediately.
  const std::string header = header_bytes(0xfffffff0u);
  ASSERT_TRUE(pair.client.write_all(header.data(), header.size()));
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 1 << 20),
            FrameStatus::kOversized);
  EXPECT_TRUE(payload.empty());
}

TEST(SocketTest, FrameAtTheCapIsAccepted) {
  Pair pair;
  const std::string payload_in(64, 'y');
  ASSERT_TRUE(write_frame(pair.client, payload_in));
  std::string payload;
  // Cap exactly at the declared size: allowed (<= semantics).
  EXPECT_EQ(read_frame(pair.server, payload, 64), FrameStatus::kOk);
  EXPECT_EQ(payload, payload_in);
}

TEST(SocketTest, FrameJustOverTheCapIsOversized) {
  Pair pair;
  ASSERT_TRUE(write_frame(pair.client, std::string(65, 'y')));
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 64), FrameStatus::kOversized);
}

TEST(SocketTest, TornHeaderIsTruncated) {
  Pair pair;
  ASSERT_TRUE(pair.client.write_all("\x00\x00", 2));
  pair.client.close();
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 1 << 20),
            FrameStatus::kTruncated);
}

TEST(SocketTest, TornPayloadIsTruncated) {
  Pair pair;
  const std::string header = header_bytes(100);
  ASSERT_TRUE(pair.client.write_all(header.data(), header.size()));
  ASSERT_TRUE(pair.client.write_all("short", 5));
  pair.client.close();
  std::string payload;
  EXPECT_EQ(read_frame(pair.server, payload, 1 << 20),
            FrameStatus::kTruncated);
}

TEST(SocketTest, ShutdownUnblocksReader) {
  Pair pair;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.server.shutdown_both();
  });
  std::string payload;
  // Blocked mid-header; the half-close must yield EOF, not a hang.
  EXPECT_EQ(read_frame(pair.server, payload, 1 << 20),
            FrameStatus::kClosed);
  closer.join();
}

TEST(SocketTest, EphemeralPortIsResolved) {
  Listener listener;
  std::string error;
  ASSERT_TRUE(Listener::listen_tcp(0, listener, error)) << error;
  EXPECT_GT(listener.port(), 0);
}

TEST(SocketTest, AcceptTimesOutWithoutConnection) {
  Listener listener;
  std::string error;
  ASSERT_TRUE(Listener::listen_tcp(0, listener, error)) << error;
  Socket sock;
  EXPECT_FALSE(listener.accept(sock, 10));
  EXPECT_FALSE(sock.valid());
}

TEST(SocketTest, UnixSocketRoundTripAndStaleFileRecovery) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_test_socket.sock")
          .string();
  std::string error;
  {
    Listener listener;
    ASSERT_TRUE(Listener::listen_unix(path, listener, error)) << error;
    Socket client, server;
    ASSERT_TRUE(connect_unix(path, client, error)) << error;
    ASSERT_TRUE(listener.accept(server, 1000));
    ASSERT_TRUE(write_frame(client, "ping"));
    std::string payload;
    ASSERT_EQ(read_frame(server, payload, 1024), FrameStatus::kOk);
    EXPECT_EQ(payload, "ping");
    // Simulate a crashed daemon: leak the socket file by closing the fd
    // behind the listener's back, then rebind over the stale path.
  }
  // close() unlinked; a rebind on the same path must also survive a
  // stale file from a crash (no unlink ran).
  Listener again;
  ASSERT_TRUE(Listener::listen_unix(path, again, error)) << error;
  again.close();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SocketTest, OverlongUnixPathIsAnError) {
  Listener listener;
  std::string error;
  EXPECT_FALSE(
      Listener::listen_unix(std::string(200, 'a'), listener, error));
  EXPECT_FALSE(error.empty());
}

TEST(SocketTest, FrameStatusNames) {
  EXPECT_EQ(to_string(FrameStatus::kOk), "ok");
  EXPECT_EQ(to_string(FrameStatus::kClosed), "closed");
  EXPECT_EQ(to_string(FrameStatus::kOversized), "oversized");
  EXPECT_EQ(to_string(FrameStatus::kTruncated), "truncated");
  EXPECT_EQ(to_string(FrameStatus::kError), "error");
}

}  // namespace
}  // namespace wsn
