#include "analysis/resilience.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/string_util.h"
#include "protocol/registry.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

ResilienceConfig small_config() {
  ResilienceConfig config;
  config.loss_rates = {0.0, 0.1};
  config.trials = 24;
  config.seed = 2024;
  config.workers = 2;
  return config;
}

TEST(Resilience, ZeroLossIsAlwaysFullyReached) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  const ResilienceSweep sweep =
      run_resilience_sweep(topo, plan, small_config());
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kNone, RecoveryPolicy::kRepeatK,
        RecoveryPolicy::kEchoRepair}) {
    const ResilienceCell* cell = sweep.find(0.0, policy);
    ASSERT_NE(cell, nullptr);
    EXPECT_DOUBLE_EQ(cell->mean_reachability, 1.0);
    EXPECT_DOUBLE_EQ(cell->full_reach_share, 1.0);
    EXPECT_DOUBLE_EQ(cell->mean_lost_fading, 0.0);
  }
}

TEST(Resilience, RecoveryLiftsReachabilityAtTenPercentLoss) {
  // The acceptance criterion: at 10% i.i.d. link loss on 2D-4, both
  // recovery policies must lift mean reachability by a measurable margin
  // over the unmodified plan.
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  const ResilienceSweep sweep =
      run_resilience_sweep(topo, plan, small_config());
  const ResilienceCell* none = sweep.find(0.1, RecoveryPolicy::kNone);
  const ResilienceCell* repeat = sweep.find(0.1, RecoveryPolicy::kRepeatK);
  const ResilienceCell* echo = sweep.find(0.1, RecoveryPolicy::kEchoRepair);
  ASSERT_NE(none, nullptr);
  ASSERT_NE(repeat, nullptr);
  ASSERT_NE(echo, nullptr);
  EXPECT_LT(none->mean_reachability, 1.0);  // loss does bite the bare plan
  EXPECT_GT(repeat->mean_reachability, none->mean_reachability + 0.02);
  EXPECT_GT(echo->mean_reachability, none->mean_reachability + 0.02);
  // And the policies' cost is visible: more planned transmissions, more
  // energy.
  EXPECT_GT(repeat->planned_tx, none->planned_tx);
  EXPECT_GT(echo->planned_tx, none->planned_tx);
  EXPECT_GT(repeat->mean_energy, none->mean_energy);
}

TEST(Resilience, SweepIsReproducible) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan plan = paper_plan(topo, 5);
  ResilienceConfig config = small_config();
  config.trials = 8;
  const ResilienceSweep a = run_resilience_sweep(topo, plan, config);
  const ResilienceSweep b = run_resilience_sweep(topo, plan, config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].mean_reachability,
                     b.cells[i].mean_reachability);
    EXPECT_DOUBLE_EQ(a.cells[i].mean_delay, b.cells[i].mean_delay);
    EXPECT_DOUBLE_EQ(a.cells[i].mean_energy, b.cells[i].mean_energy);
    EXPECT_DOUBLE_EQ(a.cells[i].mean_lost_fading,
                     b.cells[i].mean_lost_fading);
  }
}

TEST(Resilience, WorkerCountDoesNotChangeResults) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan plan = paper_plan(topo, 5);
  ResilienceConfig config = small_config();
  config.trials = 8;
  config.workers = 1;
  const ResilienceSweep serial = run_resilience_sweep(topo, plan, config);
  config.workers = 4;
  const ResilienceSweep parallel = run_resilience_sweep(topo, plan, config);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.cells[i].mean_reachability,
                     parallel.cells[i].mean_reachability);
    EXPECT_DOUBLE_EQ(serial.cells[i].mean_energy,
                     parallel.cells[i].mean_energy);
  }
}

TEST(Resilience, BurstyAndCrashConfigurationsRun) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan plan = paper_plan(topo, 0);
  ResilienceConfig config = small_config();
  config.trials = 8;
  config.bursty = true;
  config.crash_prob = 0.05;
  config.crash_outage = 4;
  const ResilienceSweep sweep = run_resilience_sweep(topo, plan, config);
  ASSERT_EQ(sweep.cells.size(), 2u * 3u);
  // Crashes bite even at zero link loss.
  const ResilienceCell* cell = sweep.find(0.0, RecoveryPolicy::kNone);
  ASSERT_NE(cell, nullptr);
  EXPECT_GT(cell->mean_lost_crash, 0.0);
}

TEST(Resilience, CsvHasHeaderAndOneRowPerCell) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan plan = paper_plan(topo, 0);
  ResilienceConfig config = small_config();
  config.trials = 4;
  const ResilienceSweep sweep = run_resilience_sweep(topo, plan, config);
  std::ostringstream out;
  sweep.write_csv(out);
  const std::vector<std::string> lines = split(trim(out.str()), '\n');
  ASSERT_EQ(lines.size(), 1 + sweep.cells.size());
  EXPECT_TRUE(starts_with(lines[0], "topology,loss_rate,policy,trials"));
  const std::vector<std::string> first_row = split(lines[1], ',');
  ASSERT_EQ(first_row.size(), 13u);
  EXPECT_EQ(first_row[2], "none");
  // Reachability, delay and energy are recorded per cell (the acceptance
  // criterion's CSV contract).
  EXPECT_TRUE(lines[0].find("mean_reachability") != std::string::npos);
  EXPECT_TRUE(lines[0].find("mean_delay") != std::string::npos);
  EXPECT_TRUE(lines[0].find("mean_energy_j") != std::string::npos);
}

}  // namespace
}  // namespace wsn
