#include "topology/mesh2d4.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Mesh2D4, InteriorNodeHasVonNeumannNeighborhood) {
  const Mesh2D4 mesh(5, 5);
  const Grid2D& g = mesh.grid();
  const NodeId center = g.to_id({3, 3});
  ASSERT_EQ(mesh.degree(center), 4u);
  for (Vec2 u : {Vec2{2, 3}, Vec2{4, 3}, Vec2{3, 2}, Vec2{3, 4}}) {
    EXPECT_TRUE(mesh.adjacent(center, g.to_id(u))) << to_string(u);
  }
  EXPECT_FALSE(mesh.adjacent(center, g.to_id({2, 2})));  // no diagonals
}

TEST(Mesh2D4, CornerAndEdgeDegrees) {
  const Mesh2D4 mesh(6, 4);
  const Grid2D& g = mesh.grid();
  EXPECT_EQ(mesh.degree(g.to_id({1, 1})), 2u);
  EXPECT_EQ(mesh.degree(g.to_id({6, 4})), 2u);
  EXPECT_EQ(mesh.degree(g.to_id({3, 1})), 3u);
  EXPECT_EQ(mesh.degree(g.to_id({1, 2})), 3u);
  EXPECT_EQ(mesh.degree(g.to_id({3, 2})), 4u);
}

TEST(Mesh2D4, DegreeHistogramAtPaperSize) {
  const Mesh2D4 mesh(32, 16);
  std::size_t by_degree[5] = {};
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    by_degree[mesh.degree(v)] += 1;
  }
  EXPECT_EQ(by_degree[2], 4u);                       // corners
  EXPECT_EQ(by_degree[3], 2u * 30 + 2u * 14);        // edges
  EXPECT_EQ(by_degree[4], 30u * 14);                 // interior
}

TEST(Mesh2D4, IdCoordRoundTrip) {
  const Mesh2D4 mesh(7, 3);
  const Grid2D& g = mesh.grid();
  for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
    EXPECT_EQ(g.to_id(g.to_coord(id)), id);
  }
}

TEST(Mesh2D4, GridContains) {
  const Grid2D g(4, 4, 0.5);
  EXPECT_TRUE(g.contains({1, 1}));
  EXPECT_TRUE(g.contains({4, 4}));
  EXPECT_FALSE(g.contains({0, 1}));
  EXPECT_FALSE(g.contains({5, 1}));
  EXPECT_FALSE(g.contains({1, 0}));
  EXPECT_FALSE(g.contains({1, 5}));
}

TEST(Mesh2D4, SingleRowDegenerateMesh) {
  const Mesh2D4 mesh(8, 1);
  EXPECT_EQ(mesh.num_nodes(), 8u);
  EXPECT_EQ(mesh.degree(0), 1u);
  EXPECT_EQ(mesh.degree(3), 2u);
}

}  // namespace
}  // namespace wsn
