#include "common/table.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(AsciiTable, RendersHeaderRuleAndRows) {
  AsciiTable table({"Topology", "Tx"});
  table.add_row({"2D-4", "170"});
  const std::string out = table.render();
  EXPECT_EQ(out,
            "| Topology | Tx  |\n"
            "|----------|-----|\n"
            "| 2D-4     | 170 |\n");
}

TEST(AsciiTable, ColumnWidthTracksWidestCell) {
  AsciiTable table({"A", "B"});
  table.add_row({"very-long-cell", "x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| very-long-cell | x |"), std::string::npos);
  EXPECT_NE(out.find("| A              | B |"), std::string::npos);
}

TEST(AsciiTable, TitleGoesAboveGrid) {
  AsciiTable table({"A"});
  table.set_title("Table 2");
  table.add_row({"x"});
  const std::string out = table.render();
  EXPECT_EQ(out.find("Table 2\n"), 0u);
}

TEST(AsciiTable, RuleInsertsBeforeNextRow) {
  AsciiTable table({"A"});
  table.add_row({"one"});
  table.add_rule();
  table.add_row({"two"});
  const std::string out = table.render();
  // header rule + midrule = two rule lines
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("|-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(AsciiTable, EveryLineEndsWithNewline) {
  AsciiTable table({"A", "B", "C"});
  table.add_row({"1", "2", "3"});
  table.add_row({"4", "5", "6"});
  const std::string out = table.render();
  EXPECT_EQ(out.back(), '\n');
  // 1 header + 1 rule + 2 rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace wsn
