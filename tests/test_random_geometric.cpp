#include "topology/random_geometric.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(RandomGeometric, DeterministicForEqualSeeds) {
  const RandomGeometric a(100, 10.0, 1.5, 42);
  const RandomGeometric b(100, 10.0, 1.5, 42);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(RandomGeometric, DifferentSeedsDiffer) {
  const RandomGeometric a(100, 10.0, 1.5, 1);
  const RandomGeometric b(100, 10.0, 1.5, 2);
  bool differs = false;
  for (NodeId v = 0; v < a.num_nodes() && !differs; ++v) {
    if (a.degree(v) != b.degree(v)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomGeometric, PositionsInsideTheSquare) {
  const RandomGeometric topo(200, 8.0, 1.0, 7);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const auto p = topo.position(v);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 8.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LT(p[1], 8.0);
    EXPECT_DOUBLE_EQ(p[2], 0.0);
  }
}

TEST(RandomGeometric, LinksRespectRadius) {
  const RandomGeometric topo(150, 10.0, 1.2, 5);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (NodeId u : topo.neighbors(v)) {
      EXPECT_LE(topo.distance(v, u), 1.2 + 1e-12);
    }
  }
}

TEST(RandomGeometric, LargerRadiusNeverDropsLinks) {
  const RandomGeometric small(80, 10.0, 1.0, 3);
  const RandomGeometric large(80, 10.0, 2.0, 3);  // same seed => same points
  for (NodeId v = 0; v < small.num_nodes(); ++v) {
    for (NodeId u : small.neighbors(v)) {
      EXPECT_TRUE(large.adjacent(v, u));
    }
  }
}

TEST(RandomGeometric, FamilyTag) {
  const RandomGeometric topo(10, 5.0, 2.0, 1);
  EXPECT_EQ(topo.family(), "random");
}

}  // namespace
}  // namespace wsn
