// service/rpc: the meshbcast.rpc v1 codec -- strict layered parsing
// (encoding, JSON, schema), id echo on every error path, and the
// response/error frame renderers.  Plus the KeyedMutex single-flight
// primitive the server builds plan deduplication on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/rpc.h"
#include "service/single_flight.h"

namespace wsn {
namespace {

RpcRequest parse_ok(const std::string& payload) {
  RpcRequest req;
  RpcError error;
  EXPECT_TRUE(parse_rpc_request(payload, req, error))
      << error.code << ": " << error.message;
  return req;
}

RpcError parse_fail(const std::string& payload, RpcRequest& req) {
  RpcError error;
  EXPECT_FALSE(parse_rpc_request(payload, req, error));
  return error;
}

TEST(RpcTest, ParsesEveryControlType) {
  EXPECT_EQ(parse_ok("{\"type\":\"health\"}").type, RpcType::kHealth);
  EXPECT_EQ(parse_ok("{\"type\":\"metrics\"}").type, RpcType::kMetrics);
  EXPECT_EQ(parse_ok("{\"type\":\"shutdown\"}").type, RpcType::kShutdown);
}

TEST(RpcTest, IdIsOptionalAndEchoable) {
  const RpcRequest bare = parse_ok("{\"type\":\"health\"}");
  EXPECT_FALSE(bare.has_id);
  const RpcRequest tagged = parse_ok("{\"type\":\"health\",\"id\":7}");
  EXPECT_TRUE(tagged.has_id);
  EXPECT_EQ(tagged.id, 7u);
}

TEST(RpcTest, PlanParsesAllFields) {
  const RpcRequest req = parse_ok(
      "{\"type\":\"plan\",\"id\":3,\"family\":\"2D-4\","
      "\"dims\":[32,16],\"spacing\":0.25,\"source\":100,"
      "\"protocol\":\"cds\",\"packet_bits\":1024}");
  EXPECT_EQ(req.type, RpcType::kPlan);
  EXPECT_EQ(req.plan.family, "2D-4");
  EXPECT_EQ(req.plan.m, 32);
  EXPECT_EQ(req.plan.n, 16);
  EXPECT_EQ(req.plan.l, 1);
  EXPECT_DOUBLE_EQ(req.plan.spacing, 0.25);
  EXPECT_EQ(req.plan.source, 100u);
  EXPECT_EQ(req.plan.protocol, "cds");
  EXPECT_EQ(req.plan.packet_bits, 1024u);
}

TEST(RpcTest, PlanAcceptsThreeDims) {
  const RpcRequest req = parse_ok(
      "{\"type\":\"plan\",\"family\":\"3D-6\",\"dims\":[8,8,8]}");
  EXPECT_EQ(req.plan.m, 8);
  EXPECT_EQ(req.plan.n, 8);
  EXPECT_EQ(req.plan.l, 8);
}

TEST(RpcTest, PlanDefaultsWithoutDims) {
  const RpcRequest req =
      parse_ok("{\"type\":\"plan\",\"family\":\"2D-4\"}");
  // Zero dims = "use the paper defaults"; the server resolves them.
  EXPECT_EQ(req.plan.m, 0);
  EXPECT_EQ(req.plan.n, 0);
  EXPECT_EQ(req.plan.protocol, "paper");
  EXPECT_EQ(req.plan.packet_bits, 512u);
}

TEST(RpcTest, PlanRejectsUnknownKeys) {
  RpcRequest req;
  const RpcError error = parse_fail(
      "{\"type\":\"plan\",\"family\":\"2D-4\",\"sorce\":3}", req);
  EXPECT_EQ(error.code, rpc_code::kBadRequest);
  // The message names the offending key so typos are diagnosable.
  EXPECT_NE(error.message.find("sorce"), std::string::npos);
}

TEST(RpcTest, PlanRejectsBadShapes) {
  RpcRequest req;
  // family is required.
  EXPECT_EQ(parse_fail("{\"type\":\"plan\"}", req).code,
            rpc_code::kBadRequest);
  // dims must be [m,n] or [m,n,l].
  EXPECT_EQ(parse_fail("{\"type\":\"plan\",\"family\":\"2D-4\","
                       "\"dims\":[32]}",
                       req)
                .code,
            rpc_code::kBadRequest);
  // dims entries must be positive integers.
  EXPECT_EQ(parse_fail("{\"type\":\"plan\",\"family\":\"2D-4\","
                       "\"dims\":[32,-1]}",
                       req)
                .code,
            rpc_code::kBadRequest);
  // protocol is a closed enum.
  EXPECT_EQ(parse_fail("{\"type\":\"plan\",\"family\":\"2D-4\","
                       "\"protocol\":\"magic\"}",
                       req)
                .code,
            rpc_code::kBadRequest);
  // packet_bits must be positive.
  EXPECT_EQ(parse_fail("{\"type\":\"plan\",\"family\":\"2D-4\","
                       "\"packet_bits\":0}",
                       req)
                .code,
            rpc_code::kBadRequest);
}

TEST(RpcTest, SimulateWrapsEntryIntoOneEntrySpec) {
  const RpcRequest req = parse_ok(
      "{\"type\":\"simulate\",\"id\":9,\"family\":\"2D-4\","
      "\"dims\":[8,8],\"sources\":[0],\"protocols\":[\"paper\"],"
      "\"audit\":true}");
  EXPECT_EQ(req.type, RpcType::kSimulate);
  EXPECT_TRUE(req.simulate.audit);
  const JsonValue& doc = req.simulate.spec_doc;
  // Envelope keys (type/id/audit) are stripped; the rest becomes the
  // single entry of a synthetic spec document.
  const JsonValue* scenarios = doc.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  ASSERT_EQ(scenarios->as_array().size(), 1u);
  const JsonValue& entry = scenarios->as_array()[0];
  EXPECT_EQ(entry.string_or("family", ""), "2D-4");
  EXPECT_EQ(entry.find("type"), nullptr);
  EXPECT_EQ(entry.find("id"), nullptr);
  EXPECT_EQ(entry.find("audit"), nullptr);
  // A name is synthesized when absent so the spec parser is satisfied.
  EXPECT_FALSE(entry.string_or("name", "").empty());
}

TEST(RpcTest, ScenarioRequiresSpecObject) {
  const RpcRequest req = parse_ok(
      "{\"type\":\"scenario\",\"workers\":4,"
      "\"spec\":{\"name\":\"s\",\"scenarios\":[]}}");
  EXPECT_EQ(req.type, RpcType::kScenario);
  EXPECT_EQ(req.scenario.workers, 4u);
  EXPECT_EQ(req.scenario.spec_doc.string_or("name", ""), "s");

  RpcRequest bad;
  EXPECT_EQ(parse_fail("{\"type\":\"scenario\"}", bad).code,
            rpc_code::kBadRequest);
  EXPECT_EQ(
      parse_fail("{\"type\":\"scenario\",\"spec\":[1,2]}", bad).code,
      rpc_code::kBadRequest);
}

TEST(RpcTest, InvalidUtf8IsBadEncoding) {
  RpcRequest req;
  std::string payload = "{\"type\":\"health\",\"x\":\"";
  payload.push_back(static_cast<char>(0xff));
  payload.push_back(static_cast<char>(0xfe));
  payload += "\"}";
  EXPECT_EQ(parse_fail(payload, req).code, rpc_code::kBadEncoding);
}

TEST(RpcTest, UnparseableJsonIsBadJson) {
  RpcRequest req;
  EXPECT_EQ(parse_fail("{\"type\":", req).code, rpc_code::kBadJson);
  EXPECT_EQ(parse_fail("not json at all", req).code, rpc_code::kBadJson);
}

TEST(RpcTest, NonObjectAndUnknownTypeAreBadRequest) {
  RpcRequest req;
  EXPECT_EQ(parse_fail("[1,2,3]", req).code, rpc_code::kBadRequest);
  EXPECT_EQ(parse_fail("{\"no_type\":true}", req).code,
            rpc_code::kBadRequest);
  EXPECT_EQ(parse_fail("{\"type\":\"teleport\"}", req).code,
            rpc_code::kBadRequest);
}

TEST(RpcTest, IdSurvivesSchemaErrors) {
  // The id is extracted before type dispatch, so even a rejected
  // request's error frame can be correlated by the client.
  RpcRequest req;
  const RpcError error =
      parse_fail("{\"type\":\"teleport\",\"id\":41}", req);
  EXPECT_EQ(error.code, rpc_code::kBadRequest);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 41u);
}

TEST(RpcTest, ErrorFrameRendersAndRoundTrips) {
  const std::string frame =
      rpc_error_json(true, 12, rpc_code::kOverloaded, "queue full");
  JsonValue doc;
  ASSERT_TRUE(parse_json(frame, doc));
  EXPECT_EQ(doc.string_or("type", ""), "error");
  EXPECT_EQ(doc.number_or("id", -1), 12.0);
  const JsonValue* error = doc.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->string_or("code", ""), "overloaded");
  EXPECT_EQ(error->string_or("message", ""), "queue full");
}

TEST(RpcTest, ErrorFrameOmitsIdWhenAbsent) {
  const std::string frame =
      rpc_error_json(false, 0, rpc_code::kBadJson, "nope");
  JsonValue doc;
  ASSERT_TRUE(parse_json(frame, doc));
  EXPECT_EQ(doc.find("id"), nullptr);
}

TEST(RpcTest, ErrorFrameCarriesServerRequestId) {
  const std::string frame =
      rpc_error_json(true, 12, rpc_code::kOverloaded, "queue full", 77);
  JsonValue doc;
  ASSERT_TRUE(parse_json(frame, doc));
  EXPECT_EQ(doc.number_or("id", -1), 12.0);
  EXPECT_EQ(doc.number_or("req", -1), 77.0);

  // The request-taking overload forwards has_id/id/seq as a unit.
  RpcRequest req = parse_ok("{\"type\":\"health\",\"id\":4}");
  req.seq = 31;
  JsonValue doc2;
  ASSERT_TRUE(parse_json(
      rpc_error_json(req, rpc_code::kInternal, "boom"), doc2));
  EXPECT_EQ(doc2.number_or("id", -1), 4.0);
  EXPECT_EQ(doc2.number_or("req", -1), 31.0);

  // seq 0 means "no server id assigned" and must stay absent.
  JsonValue doc3;
  ASSERT_TRUE(parse_json(
      rpc_error_json(false, 0, rpc_code::kBadJson, "nope", 0), doc3));
  EXPECT_EQ(doc3.find("req"), nullptr);
}

TEST(RpcTest, ResponseBeginEchoesServerRequestId) {
  RpcRequest req = parse_ok("{\"type\":\"health\",\"id\":5}");
  req.seq = 99;
  JsonWriter w = rpc_response_begin(req);
  const std::string frame =
      std::move(w.member("x", true).end_object()).str();
  JsonValue doc;
  ASSERT_TRUE(parse_json(frame, doc));
  EXPECT_EQ(doc.number_or("id", -1), 5.0);
  EXPECT_EQ(doc.number_or("req", -1), 99.0);

  // Default seq 0: the member is omitted entirely.
  RpcRequest bare = parse_ok("{\"type\":\"health\"}");
  JsonWriter w2 = rpc_response_begin(bare);
  JsonValue doc2;
  ASSERT_TRUE(parse_json(std::move(w2.end_object()).str(), doc2));
  EXPECT_EQ(doc2.find("req"), nullptr);
}

TEST(RpcTest, ResponseBeginEchoesIdAndOk) {
  RpcRequest req = parse_ok("{\"type\":\"health\",\"id\":5}");
  JsonWriter w = rpc_response_begin(req);
  const std::string frame = std::move(w.member("extra", true).end_object())
                                .str();
  JsonValue doc;
  ASSERT_TRUE(parse_json(frame, doc));
  EXPECT_EQ(doc.string_or("type", ""), "response");
  EXPECT_EQ(doc.number_or("id", -1), 5.0);
  EXPECT_EQ(doc.bool_or("ok", false), true);
  EXPECT_EQ(doc.bool_or("extra", false), true);
}

TEST(RpcTest, RpcTypeNames) {
  EXPECT_EQ(to_string(RpcType::kHealth), "health");
  EXPECT_EQ(to_string(RpcType::kMetrics), "metrics");
  EXPECT_EQ(to_string(RpcType::kPlan), "plan");
  EXPECT_EQ(to_string(RpcType::kSimulate), "simulate");
  EXPECT_EQ(to_string(RpcType::kScenario), "scenario");
  EXPECT_EQ(to_string(RpcType::kShutdown), "shutdown");
}

TEST(RpcTest, KeyedMutexSerializesOnlySameKey) {
  KeyedMutex flights;
  std::atomic<int> in_a{0};
  std::atomic<int> max_in_a{0};
  std::atomic<bool> b_entered{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      const KeyedMutex::Guard guard = flights.lock("a");
      const int now = in_a.fetch_add(1) + 1;
      int prev = max_in_a.load();
      while (now > prev && !max_in_a.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_a.fetch_sub(1);
    });
  }
  threads.emplace_back([&] {
    // A different key must not queue behind "a".
    const KeyedMutex::Guard guard = flights.lock("b");
    b_entered.store(true);
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(max_in_a.load(), 1);  // mutual exclusion per key
  EXPECT_TRUE(b_entered.load());
}

TEST(RpcTest, KeyedMutexGuardMoves) {
  KeyedMutex flights;
  KeyedMutex::Guard outer = [&] {
    KeyedMutex::Guard inner = flights.lock("k");
    return inner;
  }();
  // Still held after the move; releasing via destructor must not crash
  // and must leave the key lockable again.
  {
    KeyedMutex::Guard dropped = std::move(outer);
  }
  const KeyedMutex::Guard again = flights.lock("k");
}

}  // namespace
}  // namespace wsn
