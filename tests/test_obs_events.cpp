#include "obs/event_sink.h"

#include <gtest/gtest.h>

#include <vector>

namespace wsn {
namespace {

TEST(EventKind, NamesAreStable) {
  EXPECT_EQ(to_string(EventKind::kTx), "tx");
  EXPECT_EQ(to_string(EventKind::kRx), "rx");
  EXPECT_EQ(to_string(EventKind::kDuplicate), "dup");
  EXPECT_EQ(to_string(EventKind::kCollision), "coll");
  EXPECT_EQ(to_string(EventKind::kLossFading), "fade");
  EXPECT_EQ(to_string(EventKind::kLossCrash), "crash");
  EXPECT_EQ(to_string(EventKind::kRelayActivation), "relay_on");
  EXPECT_EQ(to_string(EventKind::kPipelineDefer), "defer");
}

TEST(EventSink, RecordsInOrder) {
  EventSink sink(8);
  sink.record({1, EventKind::kTx, 3});
  sink.record({1, EventKind::kRx, 4, 3});
  sink.record({2, EventKind::kCollision, 5, kInvalidNode, 0, 2});
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);

  const std::vector<Event> events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (Event{1, EventKind::kTx, 3}));
  EXPECT_EQ(events[1], (Event{1, EventKind::kRx, 4, 3}));
  EXPECT_EQ(events[2].detail, 2u);
}

TEST(EventSink, RingKeepsTheMostRecentEvents) {
  EventSink sink(4);
  EXPECT_EQ(sink.capacity(), 4u);
  for (Slot s = 1; s <= 10; ++s) sink.record({s, EventKind::kTx, 0});
  EXPECT_EQ(sink.total(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);

  const std::vector<Event> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].slot, 7u + i);  // oldest retained first
  }
}

TEST(EventSink, KindCountsIncludeDroppedEvents) {
  EventSink sink(2);
  for (int i = 0; i < 5; ++i) sink.record({1, EventKind::kCollision, 0});
  sink.record({2, EventKind::kTx, 0});
  EXPECT_EQ(sink.count(EventKind::kCollision), 5u);
  EXPECT_EQ(sink.count(EventKind::kTx), 1u);
  EXPECT_EQ(sink.count(EventKind::kRx), 0u);
  EXPECT_EQ(sink.size(), 2u);  // only the tail is retained...
  EXPECT_EQ(sink.total(), 6u);  // ...but the totals see everything
}

TEST(EventSink, ClearForgetsEventsAndCounts) {
  EventSink sink(4);
  sink.record({1, EventKind::kTx, 0});
  sink.record({1, EventKind::kRx, 1, 0});
  sink.clear();
  EXPECT_EQ(sink.total(), 0u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.count(EventKind::kTx), 0u);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.capacity(), 4u);

  sink.record({3, EventKind::kDuplicate, 2, 1});
  EXPECT_EQ(sink.total(), 1u);
  EXPECT_EQ(sink.events().front().slot, 3u);
}

}  // namespace
}  // namespace wsn
