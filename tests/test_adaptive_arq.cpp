#include "fault/adaptive.h"

#include <gtest/gtest.h>

#include "fault/models.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(AdaptiveArq, PerfectMediumSpendsNothing) {
  // With no faults the probe run already covers everyone: zero rounds,
  // zero retries, and the outcome matches a plain simulation exactly.
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  Simulator sim;
  const BroadcastOutcome plain = sim.run(topo, plan, {});
  AdaptiveArqReport report;
  const BroadcastOutcome arq = run_adaptive_arq(topo, plan, {}, {}, &report);
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_FALSE(report.budget_exhausted);
  EXPECT_EQ(report.unrepaired, 0u);
  EXPECT_EQ(arq.stats.tx, plain.stats.tx);
  EXPECT_EQ(arq.stats.reached, plain.stats.reached);
  EXPECT_TRUE(arq.stats.fully_reached());
}

TEST(AdaptiveArq, LiftsCoverageUnderIidLoss) {
  // 20% i.i.d. loss on the bare paper plan strands nodes; ARQ retries
  // must recover a strictly better coverage on the identical channel
  // (counter-mode loss: appending retransmissions never perturbs the
  // original timeline's draws).
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  Simulator sim;
  std::size_t lifted = 0;
  std::size_t retries_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    IidLossModel bare_model(0.2, seed);
    SimOptions bare_options;
    bare_options.faults = &bare_model;
    const BroadcastOutcome bare = sim.run(topo, plan, bare_options);

    IidLossModel arq_model(0.2, seed);
    SimOptions arq_options;
    arq_options.faults = &arq_model;
    AdaptiveArqReport report;
    const BroadcastOutcome arq =
        run_adaptive_arq(topo, plan, arq_options, {}, &report);
    EXPECT_GE(arq.stats.reached, bare.stats.reached);
    if (arq.stats.reached > bare.stats.reached) lifted += 1;
    retries_total += report.retries;
    EXPECT_LE(report.retries, AdaptiveArqConfig{}.retry_budget);
  }
  // At 20% loss the bare plan essentially never covers 64 nodes; the
  // lift must materialize in most seeds and cost actual retries.
  EXPECT_GE(lifted, 5u);
  EXPECT_GT(retries_total, 0u);
}

TEST(AdaptiveArq, RespectsTheRetryBudget) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  IidLossModel model(0.4, 7);
  SimOptions options;
  options.faults = &model;
  AdaptiveArqConfig config;
  config.retry_budget = 3;
  AdaptiveArqReport report;
  const BroadcastOutcome out =
      run_adaptive_arq(topo, plan, options, config, &report);
  EXPECT_LE(report.retries, 3u);
  // Graceful degradation: partial coverage plus a structured account,
  // never an abort.
  EXPECT_GT(out.stats.reached, 0u);
  if (!out.stats.fully_reached()) {
    EXPECT_TRUE(report.budget_exhausted ||
                report.rounds >= config.max_rounds);
    EXPECT_EQ(report.unrepaired,
              out.stats.num_nodes - out.stats.reached);
  }
}

TEST(AdaptiveArq, RoundLimitBoundsTheWaves) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  IidLossModel model(0.4, 11);
  SimOptions options;
  options.faults = &model;
  AdaptiveArqConfig config;
  config.max_rounds = 1;
  AdaptiveArqReport report;
  (void)run_adaptive_arq(topo, plan, options, config, &report);
  EXPECT_LE(report.rounds, 1u);
}

TEST(AdaptiveArq, IsDeterministic) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan plan = paper_plan(topo, 5);
  BroadcastStats first;
  for (int run = 0; run < 2; ++run) {
    IidLossModel model(0.25, 42);
    SimOptions options;
    options.faults = &model;
    AdaptiveArqReport report;
    const BroadcastOutcome out =
        run_adaptive_arq(topo, plan, options, {}, &report);
    if (run == 0) {
      first = out.stats;
    } else {
      EXPECT_EQ(out.stats.tx, first.tx);
      EXPECT_EQ(out.stats.rx, first.rx);
      EXPECT_EQ(out.stats.reached, first.reached);
      EXPECT_EQ(out.stats.delay, first.delay);
    }
  }
}

}  // namespace
}  // namespace wsn
