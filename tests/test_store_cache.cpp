// ShardedPlanCache: LRU semantics, capacity bounds, counter mirroring and
// concurrent access.  The concurrency tests double as the TSan targets for
// the store subsystem (ci.yml runs *Store* suites under TSan).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "store/memory_cache.h"

namespace wsn {
namespace {

PlanKey key_of(std::uint64_t n) { return PlanKey{n * 0x9e37u, n}; }

std::shared_ptr<const StoredPlan> plan_of(NodeId source) {
  auto value = std::make_shared<StoredPlan>();
  value->plan = FlatRelayPlan::from(RelayPlan::empty(source + 1, source));
  return value;
}

TEST(StoreCache, MissThenHit) {
  ShardedPlanCache cache;
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
  cache.put(key_of(1), plan_of(3));
  const auto hit = cache.get(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->plan.source(), 3u);

  const ShardedPlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StoreCache, EvictsLeastRecentlyUsedAtCapacity) {
  // One shard so the LRU order is global and deterministic.
  ShardedPlanCache cache(ShardedPlanCache::Config{/*capacity=*/2,
                                                  /*shards=*/1});
  cache.put(key_of(1), plan_of(1));
  cache.put(key_of(2), plan_of(2));
  ASSERT_NE(cache.get(key_of(1)), nullptr);  // refresh 1; 2 is now LRU
  cache.put(key_of(3), plan_of(3));          // evicts 2

  EXPECT_NE(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);
  EXPECT_NE(cache.get(key_of(3)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(StoreCache, PutRefreshesExistingKeyWithoutEviction) {
  ShardedPlanCache cache(ShardedPlanCache::Config{/*capacity=*/2,
                                                  /*shards=*/1});
  cache.put(key_of(1), plan_of(1));
  cache.put(key_of(2), plan_of(2));
  cache.put(key_of(1), plan_of(7));  // refresh, not insert: nothing evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto hit = cache.get(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->plan.source(), 7u);
}

TEST(StoreCache, EvictedValueOutlivesEviction) {
  ShardedPlanCache cache(ShardedPlanCache::Config{/*capacity=*/1,
                                                  /*shards=*/1});
  cache.put(key_of(1), plan_of(4));
  const auto borrowed = cache.get(key_of(1));
  ASSERT_NE(borrowed, nullptr);
  cache.put(key_of(2), plan_of(5));  // evicts key 1
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
  // The handed-out shared_ptr keeps the plan alive and intact.
  EXPECT_EQ(borrowed->plan.source(), 4u);
  borrowed->plan.validate();
}

TEST(StoreCache, ClearEmptiesEveryShard) {
  ShardedPlanCache cache;
  for (std::uint64_t i = 0; i < 64; ++i) cache.put(key_of(i), plan_of(0));
  EXPECT_EQ(cache.size(), 64u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(key_of(5)), nullptr);
}

TEST(StoreCache, MirrorsCountersIntoMetricsRegistry) {
  ShardedPlanCache cache;
  MetricsRegistry registry;
  cache.bind_metrics(registry);

  (void)cache.get(key_of(1));       // miss
  cache.put(key_of(1), plan_of(0));  // insertion
  (void)cache.get(key_of(1));       // hit

  EXPECT_EQ(registry.counter("store.mem.misses").value(), 1u);
  EXPECT_EQ(registry.counter("store.mem.insertions").value(), 1u);
  EXPECT_EQ(registry.counter("store.mem.hits").value(), 1u);
  EXPECT_EQ(registry.counter("store.mem.evictions").value(), 0u);
}

TEST(StoreCache, ConcurrentGetPutStaysConsistent) {
  // The sweep contention profile: every worker gets, and on miss puts, the
  // same keyspace.  Run under TSan in CI.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 2000;
  constexpr std::uint64_t kKeySpace = 97;
  ShardedPlanCache cache(ShardedPlanCache::Config{/*capacity=*/64,
                                                  /*shards=*/8});
  MetricsRegistry registry;
  cache.bind_metrics(registry);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const PlanKey key = key_of((t * 31 + i) % kKeySpace);
        const auto hit = cache.get(key);
        if (hit == nullptr) {
          cache.put(key, plan_of(static_cast<NodeId>(t)));
        } else {
          hit->plan.validate();  // shared immutable value stays readable
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const ShardedPlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  // Racing putters of one key: the first inserts, the rest refresh.
  EXPECT_GE(stats.insertions, kKeySpace);
  EXPECT_LE(stats.insertions, stats.misses);
  // Worst-case footprint documented in memory_cache.h.
  EXPECT_LE(cache.size(), 64u + 8u - 1u);
  EXPECT_EQ(registry.counter("store.mem.hits").value(), stats.hits);
}

}  // namespace
}  // namespace wsn
