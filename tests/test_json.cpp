#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace wsn {
namespace {

JsonValue parsed(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, &error)) << error;
  return doc;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parsed("null").is_null());
  EXPECT_TRUE(parsed("true").as_bool());
  EXPECT_FALSE(parsed("false").as_bool());
  EXPECT_DOUBLE_EQ(parsed("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(parsed("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue doc =
      parsed("{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(doc.string_or("c", ""), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const JsonValue doc = parsed("{\"z\": 1, \"a\": 2, \"m\": 3}");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  const JsonValue doc =
      parsed("\"line\\n tab\\t quote\\\" back\\\\ unicode\\u00e9\"");
  EXPECT_EQ(doc.as_string(), "line\n tab\t quote\" back\\ unicode\xc3\xa9");
}

TEST(Json, SurrogatePairDecodesToUtf8) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const JsonValue doc = parsed("\"\\ud83d\\ude00\"");
  EXPECT_EQ(doc.as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(parse_json("{\"a\": }", doc, &error));
  EXPECT_FALSE(parse_json("[1, 2,]", doc, &error));
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing", doc, &error));
  EXPECT_FALSE(parse_json("\"unterminated", doc, &error));
  EXPECT_FALSE(parse_json("nul", doc, &error));
  EXPECT_FALSE(parse_json("", doc, &error));
  // Errors carry a line number for spec diagnostics.
  EXPECT_FALSE(parse_json("{\n\"a\": oops\n}", doc, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  JsonValue doc;
  EXPECT_FALSE(parse_json(deep, doc));
}

TEST(Json, ToU64AcceptsExactIntegersOnly) {
  std::uint64_t out = 0;
  EXPECT_TRUE(parsed("7").to_u64(out));
  EXPECT_EQ(out, 7u);
  EXPECT_FALSE(parsed("-1").to_u64(out));
  EXPECT_FALSE(parsed("1.5").to_u64(out));
  EXPECT_FALSE(parsed("\"7\"").to_u64(out));
}

TEST(Json, FallbackAccessors) {
  const JsonValue doc = parsed("{\"n\": 3, \"s\": \"v\", \"b\": true}");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1.0), -1.0);  // wrong kind
  EXPECT_EQ(doc.string_or("s", "d"), "v");
  EXPECT_EQ(doc.string_or("n", "d"), "d");
  EXPECT_TRUE(doc.bool_or("b", false));
  EXPECT_FALSE(doc.bool_or("n", false));
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01 f";
  std::string quoted = "\"";
  quoted += json_escape(nasty);
  quoted += "\"";
  const JsonValue doc = parsed(quoted);
  EXPECT_EQ(doc.as_string(), nasty);
}

}  // namespace
}  // namespace wsn
