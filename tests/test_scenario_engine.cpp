// ScenarioEngine: streaming JSONL emission, the checkpoint/resume
// contract (valid prefix kept, corrupt tail redone, fingerprint mismatch
// refused), cooperative cancellation, error-record surfacing, and the
// observability mirrors (manifest, metrics).

#include "scenario/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_scenario_engine_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

void expand(const std::string& text, JobMatrix& matrix) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(text, doc, &error)) << error;
  ScenarioSpec spec;
  ASSERT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// A small, fast matrix: 3x2 mesh, all six sources, two protocols.
constexpr const char* kSmallSpec =
    "{\"name\": \"engine-test\", \"scenarios\": [{"
    "\"name\": \"small\", \"family\": \"2D-4\", \"dims\": [3, 2],"
    "\"sources\": \"all\", \"protocols\": [\"paper\", \"ideal\"]}]}";

TEST(ScenarioEngine, EmitsHeaderAndOrderedRecords) {
  const TempDir tmp("ordered");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);

  ScenarioEngine engine(matrix, {});
  const RunSummary summary = engine.run((tmp.path / "out.jsonl").string());
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_FALSE(summary.cancelled);
  EXPECT_EQ(summary.jobs_total, 12u);
  EXPECT_EQ(summary.jobs_run, 12u);
  EXPECT_EQ(summary.errors, 0u);
  EXPECT_EQ(summary.emitted, 12u);

  const auto lines = lines_of(read_file(tmp.path / "out.jsonl"));
  ASSERT_EQ(lines.size(), 13u);  // header + one record per job
  EXPECT_EQ(lines[0], engine.header_line());
  JsonValue header;
  ASSERT_TRUE(parse_json(lines[0], header));
  EXPECT_EQ(header.string_or("schema", ""), "meshbcast.scenario.results");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    JsonValue record;
    ASSERT_TRUE(parse_json(lines[i], record)) << lines[i];
    EXPECT_DOUBLE_EQ(record.number_or("job", -1.0),
                     static_cast<double>(i - 1));
    EXPECT_EQ(record.string_or("status", ""), "ok");
    EXPECT_EQ(record.string_or("scenario", ""), "small");
  }

  // The per-scenario envelope folded during the run matches the records.
  ASSERT_EQ(summary.envelopes.size(), 1u);
  const ScenarioEnvelope& env = summary.envelopes[0];
  EXPECT_EQ(env.scenario, "small");
  EXPECT_EQ(env.jobs, 12u);
  EXPECT_TRUE(env.all_reached);
  EXPECT_LE(env.best_energy, env.worst_energy);
  EXPECT_NE(env.best_source, kInvalidNode);
}

TEST(ScenarioEngine, FingerprintMismatchOnResumeIsAHardError) {
  const TempDir tmp("mismatch");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  {
    ScenarioEngine engine(matrix, {});
    ASSERT_TRUE(engine.run(out).ok);
  }

  // A different spec (one more seed) produces a different fingerprint; a
  // resume against the old file must refuse rather than mix result sets.
  JobMatrix other;
  expand(
      "{\"name\": \"engine-test\", \"scenarios\": [{"
      "\"name\": \"small\", \"family\": \"2D-4\", \"dims\": [3, 2],"
      "\"sources\": \"all\", \"protocols\": [\"paper\", \"ideal\"],"
      "\"seeds\": [1, 2]}]}",
      other);
  EngineConfig config;
  config.resume = true;
  ScenarioEngine engine(other, config);
  const RunSummary summary = engine.run(out);
  EXPECT_FALSE(summary.ok);
  EXPECT_NE(summary.error.find("fingerprint"), std::string::npos)
      << summary.error;
}

TEST(ScenarioEngine, ResumeKeepsValidPrefixAndRedoesCorruptTail) {
  const TempDir tmp("corrupt");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine golden_engine(matrix, {});
  ASSERT_TRUE(golden_engine.run(out).ok);
  const std::string golden = read_file(out);
  const auto lines = lines_of(golden);
  ASSERT_EQ(lines.size(), 13u);

  // Keep header + 5 records, then a torn write: half a record followed by
  // a record that would otherwise be valid.  Everything from the tear on
  // is stale and must be redone.
  {
    std::ofstream damaged(out, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < 6; ++i) damaged << lines[i] << "\n";
    damaged << lines[6].substr(0, lines[6].size() / 2);
    damaged << "\n" << lines[7] << "\n";
  }

  EngineConfig config;
  config.resume = true;
  ScenarioEngine engine(matrix, config);
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_TRUE(summary.resumed);
  EXPECT_EQ(summary.jobs_skipped, 5u);
  EXPECT_EQ(summary.jobs_run, 7u);
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioEngine, ResumeWithCorruptHeaderStartsFresh) {
  const TempDir tmp("badheader");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine golden_engine(matrix, {});
  ASSERT_TRUE(golden_engine.run(out).ok);
  const std::string golden = read_file(out);

  {
    std::ofstream damaged(out, std::ios::binary | std::ios::trunc);
    damaged << "not json at all\n";
  }
  EngineConfig config;
  config.resume = true;
  ScenarioEngine engine(matrix, config);
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_FALSE(summary.resumed);
  EXPECT_EQ(summary.jobs_run, 12u);
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioEngine, ResumeOfCompleteRunIsANoOp) {
  const TempDir tmp("complete");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine first(matrix, {});
  ASSERT_TRUE(first.run(out).ok);
  const std::string golden = read_file(out);

  EngineConfig config;
  config.resume = true;
  ScenarioEngine engine(matrix, config);
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_TRUE(summary.resumed);
  EXPECT_EQ(summary.jobs_skipped, 12u);
  EXPECT_EQ(summary.jobs_run, 0u);
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioEngine, EmptyMatrixEntrySurfacesAsErrorRecord) {
  const TempDir tmp("errorjob");
  JobMatrix matrix;
  expand(
      "{\"scenarios\": [{\"name\": \"void\", \"family\": \"2D-4\","
      " \"dims\": [3, 2], \"sources\": []}]}",
      matrix);

  ScenarioEngine engine(matrix, {});
  const RunSummary summary = engine.run((tmp.path / "out.jsonl").string());
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.jobs_total, 1u);
  EXPECT_EQ(summary.errors, 1u);

  const auto lines = lines_of(read_file(tmp.path / "out.jsonl"));
  ASSERT_EQ(lines.size(), 2u);
  JsonValue record;
  ASSERT_TRUE(parse_json(lines[1], record));
  EXPECT_EQ(record.string_or("status", ""), "error");
  EXPECT_NE(record.string_or("error", "").find("empty job matrix"),
            std::string::npos);

  ASSERT_EQ(summary.envelopes.size(), 1u);
  EXPECT_EQ(summary.envelopes[0].errors, 1u);
  EXPECT_EQ(summary.envelopes[0].jobs, 1u);
  // No ok record ever folded: the envelope extrema stay at their inits.
  EXPECT_EQ(summary.envelopes[0].best_source, kInvalidNode);
}

TEST(ScenarioEngine, CancellationLeavesAValidResumablePrefix) {
  const TempDir tmp("cancel");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string golden_path = (tmp.path / "golden.jsonl").string();
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine golden_engine(matrix, {});
  ASSERT_TRUE(golden_engine.run(golden_path).ok);
  const std::string golden = read_file(golden_path);

  // Cancel as soon as the third record lands.  One worker makes the cut
  // deterministic: the cancel takes effect before the next pop, so the
  // file holds exactly the records emitted so far -- a clean prefix.
  EngineConfig config;
  config.workers = 1;
  ScenarioEngine* handle = nullptr;
  config.on_emit = [&handle](std::size_t emitted) {
    if (emitted >= 3) handle->request_cancel();
  };
  ScenarioEngine engine(matrix, config);
  handle = &engine;
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_TRUE(summary.cancelled);
  EXPECT_GE(summary.emitted, 3u);
  EXPECT_LT(summary.emitted, 12u);
  const std::string partial = read_file(out);
  EXPECT_EQ(partial, golden.substr(0, partial.size()));

  EngineConfig resume_config;
  resume_config.resume = true;
  ScenarioEngine resumed(matrix, resume_config);
  const RunSummary rest = resumed.run(out);
  ASSERT_TRUE(rest.ok) << rest.error;
  EXPECT_TRUE(rest.resumed);
  EXPECT_EQ(rest.emitted, 12u);
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioEngine, ManifestMirrorsProgress) {
  const TempDir tmp("manifest");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine engine(matrix, {});
  ASSERT_TRUE(engine.run(out).ok);

  JsonValue manifest;
  std::string error;
  ASSERT_TRUE(parse_json(read_file(out + ".manifest"), manifest, &error))
      << error;
  EXPECT_EQ(manifest.string_or("schema", ""),
            "meshbcast.scenario.checkpoint");
  EXPECT_DOUBLE_EQ(manifest.number_or("emitted", -1.0), 12.0);
  EXPECT_DOUBLE_EQ(manifest.number_or("jobs", -1.0), 12.0);
  EXPECT_TRUE(manifest.bool_or("complete", false));
}

TEST(ScenarioEngine, MetricsMirrorCountsJobs) {
  const TempDir tmp("metrics");
  JobMatrix matrix;
  // One good entry plus one empty entry: 12 completed, 1 failed.
  expand(
      "{\"name\": \"engine-test\", \"scenarios\": ["
      "{\"name\": \"small\", \"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"sources\": \"all\", \"protocols\": [\"paper\", \"ideal\"]},"
      "{\"name\": \"void\", \"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"sources\": []}]}",
      matrix);

  MetricsRegistry metrics;
  EngineConfig config;
  config.metrics = &metrics;
  {
    ScenarioEngine engine(matrix, config);
    ASSERT_TRUE(engine.run((tmp.path / "a.jsonl").string()).ok);
  }
  EXPECT_EQ(metrics.counter("scenario.jobs_completed").value(), 12u);
  EXPECT_EQ(metrics.counter("scenario.jobs_failed").value(), 1u);
  EXPECT_EQ(metrics.counter("scenario.jobs_skipped").value(), 0u);

  // A resume of the finished run only touches the skipped counter.
  config.resume = true;
  ScenarioEngine engine(matrix, config);
  ASSERT_TRUE(engine.run((tmp.path / "a.jsonl").string()).ok);
  EXPECT_EQ(metrics.counter("scenario.jobs_completed").value(), 12u);
  EXPECT_EQ(metrics.counter("scenario.jobs_skipped").value(), 13u);
}

TEST(ScenarioEngine, TraceDirCapturesPerJobEventStreams) {
  const TempDir tmp("traces");
  JobMatrix matrix;
  const std::string trace_dir = (tmp.path / "traces").string();
  expand(
      "{\"scenarios\": [{\"name\": \"traced\", \"family\": \"2D-4\","
      " \"dims\": [3, 2], \"protocols\": [\"paper\"],"
      " \"outputs\": {\"trace_dir\": \"" + json_escape(trace_dir) +
          "\"}}]}",
      matrix);

  ScenarioEngine engine(matrix, {});
  ASSERT_TRUE(engine.run((tmp.path / "out.jsonl").string()).ok);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(trace_dir) / "job_0.jsonl"));
}

TEST(ScenarioEngine, ErrorRecordsStillCountTowardResume) {
  // A matrix mixing an error job and real jobs resumes cleanly: the error
  // record is part of the prefix like any other record.
  const TempDir tmp("errresume");
  JobMatrix matrix;
  expand(
      "{\"name\": \"engine-test\", \"scenarios\": ["
      "{\"name\": \"void\", \"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"sources\": []},"
      "{\"name\": \"small\", \"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"sources\": \"all\", \"protocols\": [\"paper\"]}]}",
      matrix);
  const std::string out = (tmp.path / "out.jsonl").string();

  ScenarioEngine first(matrix, {});
  const RunSummary full = first.run(out);
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.jobs_total, 7u);
  EXPECT_EQ(full.errors, 1u);
  const std::string golden = read_file(out);

  // Drop the last two lines and resume.
  const auto lines = lines_of(golden);
  {
    std::ofstream damaged(out, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i + 2 < lines.size(); ++i) {
      damaged << lines[i] << "\n";
    }
  }
  EngineConfig config;
  config.resume = true;
  ScenarioEngine engine(matrix, config);
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.jobs_skipped, 5u);
  EXPECT_EQ(summary.errors, 1u);  // error record in the kept prefix
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioEngine, EtxAdaptiveJobsEmitRetryFieldsAndAuditClean) {
  // The lossy workload end-to-end: etx planning + adaptive ARQ under a
  // Gilbert-Elliott channel, audited in-stream.  Every job must succeed,
  // adaptive records must carry the retry accounting, and the lossy-mode
  // audit checks must pass on every swept job (the tentpole acceptance).
  const TempDir tmp("etxarq");
  JobMatrix matrix;
  expand(
      "{\"name\": \"lossy\", \"scenarios\": [{"
      "\"name\": \"etx-arq\", \"family\": \"2D-4\", \"dims\": [6, 6],"
      "\"sources\": [0], \"protocols\": [\"etx\", \"paper\"],"
      "\"faults\": [{\"kind\": \"gilbert\", \"loss\": 0.2, \"burst\": 4}],"
      "\"recovery\": [\"adaptive\", \"repeat-k\"],"
      "\"arq_budget\": 64, \"arq_rounds\": 6, \"seeds\": [1, 2]}]}",
      matrix);
  ASSERT_EQ(matrix.jobs.size(), 8u);

  EngineConfig config;
  config.workers = 2;
  config.audit = true;
  ScenarioEngine engine(matrix, config);
  const std::string out = (tmp.path / "out.jsonl").string();
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.errors, 0u);

  const auto lines = lines_of(read_file(out));
  ASSERT_EQ(lines.size(), 1u + matrix.jobs.size());
  std::size_t adaptive_records = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& record = lines[i];
    EXPECT_NE(record.find("\"status\":\"ok\""), std::string::npos) << record;
    EXPECT_NE(record.find("\"audit_violations\":0"), std::string::npos)
        << record;
    if (record.find("\"recovery\":\"adaptive\"") != std::string::npos) {
      adaptive_records += 1;
      EXPECT_NE(record.find("\"retries\":"), std::string::npos) << record;
      EXPECT_NE(record.find("\"arq_rounds\":"), std::string::npos) << record;
    }
  }
  EXPECT_EQ(adaptive_records, 4u);
}

TEST(ScenarioEngine, WatchdogResolvesStalledJobsIntoErrorRecords) {
  // Satellite (a): a stalled job must become an error record carrying the
  // elapsed time and stage -- emission proceeds past it, the run
  // completes, and only the stalled job is affected.
  const TempDir tmp("watchdog");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);  // 12 tiny jobs
  const std::size_t stalled = 3;

  EngineConfig config;
  config.workers = 2;
  config.job_timeout_ms = 250;
  config.before_job = [&](const ScenarioJob& job) {
    if (job.index == stalled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
  };
  MetricsRegistry metrics;
  config.metrics = &metrics;
  ScenarioEngine engine(matrix, config);
  const std::string out = (tmp.path / "out.jsonl").string();
  const RunSummary summary = engine.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.emitted, matrix.jobs.size());
  EXPECT_GE(summary.errors, 1u);
  EXPECT_GE(metrics.counter("scenario.jobs_timed_out").value(), 1u);

  const auto lines = lines_of(read_file(out));
  ASSERT_EQ(lines.size(), 1u + matrix.jobs.size());
  const std::string& record = lines[1 + stalled];
  EXPECT_NE(record.find("\"status\":\"error\""), std::string::npos) << record;
  EXPECT_NE(record.find("watchdog"), std::string::npos) << record;
  EXPECT_NE(record.find("\"elapsed_ms\":"), std::string::npos) << record;
  EXPECT_NE(record.find("\"stage\":\"plan\""), std::string::npos) << record;
  // The stalled worker's late real result was discarded, not emitted.
  EXPECT_EQ(record.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScenarioEngine, WatchdogIsInertWhenNothingStalls) {
  // With the watchdog armed but no stall, the results file is
  // byte-identical to a run without it -- the deadline is pure policy.
  const TempDir tmp("watchdog_inert");
  JobMatrix matrix;
  expand(kSmallSpec, matrix);

  ScenarioEngine plain(matrix, {});
  const std::string golden_path = (tmp.path / "golden.jsonl").string();
  ASSERT_TRUE(plain.run(golden_path).ok);

  EngineConfig config;
  config.job_timeout_ms = 60000;
  ScenarioEngine guarded(matrix, config);
  const std::string out = (tmp.path / "out.jsonl").string();
  const RunSummary summary = guarded.run(out);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.errors, 0u);
  EXPECT_EQ(read_file(out), read_file(golden_path));
}

}  // namespace
}  // namespace wsn
