#include "protocol/etr.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Etr, SamplesMirrorTheTrace) {
  const Mesh2D4 topo(6, 1);
  RelayPlan plan = RelayPlan::empty(6, 0);
  for (NodeId v = 1; v < 6; ++v) plan.tx_offsets[v] = {1};
  const auto out = simulate_broadcast(topo, plan);
  const auto samples = etr_samples(topo, out);
  ASSERT_EQ(samples.size(), out.transmissions.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].node, out.transmissions[i].node);
    EXPECT_EQ(samples[i].slot, out.transmissions[i].slot);
    EXPECT_EQ(samples[i].fresh, out.transmissions[i].fresh);
    EXPECT_EQ(samples[i].neighbors, topo.degree(samples[i].node));
  }
}

TEST(Etr, PathValuesAreHalfExceptEnds) {
  // On a path, every interior relay delivers 1 fresh node out of 2
  // neighbors (ETR 1/2); the end node delivers 0.
  const Mesh2D4 topo(5, 1);
  RelayPlan plan = RelayPlan::empty(5, 0);
  for (NodeId v = 1; v < 5; ++v) plan.tx_offsets[v] = {1};
  const auto out = simulate_broadcast(topo, plan);
  for (const EtrSample& s : etr_samples(topo, out)) {
    if (s.node == 0) {
      EXPECT_DOUBLE_EQ(s.value(), 1.0);  // source: 1 fresh / 1 neighbor
    } else if (s.node == 4) {
      EXPECT_DOUBLE_EQ(s.value(), 0.0);  // end: nothing new
    } else {
      EXPECT_DOUBLE_EQ(s.value(), 0.5);
    }
  }
}

TEST(Etr, SummaryAggregates) {
  const Mesh2D4 topo(5, 1);
  RelayPlan plan = RelayPlan::empty(5, 0);
  for (NodeId v = 1; v < 5; ++v) plan.tx_offsets[v] = {1};
  const auto out = simulate_broadcast(topo, plan);
  const EtrSummary summary = summarize_etr(topo, out, /*fresh_opt=*/1, 0);
  EXPECT_EQ(summary.transmissions, 5u);
  EXPECT_DOUBLE_EQ(summary.max, 1.0);
  // fresh >= 1 for relays 1..3; the end relay misses; the source excluded.
  EXPECT_EQ(summary.at_optimum, 3u);
  EXPECT_NEAR(summary.optimal_share(), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(summary.mean, (1.0 + 0.5 + 0.5 + 0.5 + 0.0) / 5.0, 1e-12);
}

TEST(Etr, IncludeSourceOption) {
  const Mesh2D4 topo(3, 1);
  RelayPlan plan = RelayPlan::empty(3, 0);
  plan.tx_offsets[1] = {1};
  const auto out = simulate_broadcast(topo, plan);
  const EtrSummary with_source =
      summarize_etr(topo, out, 1, 0, /*exclude_source=*/false);
  const EtrSummary without_source = summarize_etr(topo, out, 1, 0);
  EXPECT_EQ(with_source.at_optimum, without_source.at_optimum + 1);
}

TEST(Etr, EmptyOutcome) {
  const Mesh2D4 topo(2, 1);
  BroadcastOutcome out;
  out.first_rx = {0, kNeverSlot};
  const EtrSummary summary = summarize_etr(topo, out, 1, 0);
  EXPECT_EQ(summary.transmissions, 0u);
  EXPECT_DOUBLE_EQ(summary.optimal_share(), 0.0);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
}

}  // namespace
}  // namespace wsn
