#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "protocol/registry.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Pipeline, SinglePacketMatchesSingleBroadcast) {
  const Mesh2D4 topo(12, 9);
  const RelayPlan plan = paper_plan(topo, 40);
  const BroadcastOutcome single = simulate_broadcast(topo, plan);

  PipelineOptions options;
  options.packets = 1;
  const PipelineOutcome piped = simulate_pipeline(topo, plan, options);
  ASSERT_EQ(piped.per_packet.size(), 1u);
  EXPECT_EQ(piped.per_packet[0].tx, single.stats.tx);
  EXPECT_EQ(piped.per_packet[0].rx, single.stats.rx);
  EXPECT_EQ(piped.per_packet[0].delay, single.stats.delay);
  EXPECT_EQ(piped.per_packet[0].reached, single.stats.reached);
}

TEST(Pipeline, WideIntervalDecouplesPackets) {
  // Interval beyond the single-shot completion: every packet behaves like
  // an independent broadcast.
  const Mesh2D4 topo(10, 8);
  const RelayPlan plan = paper_plan(topo, 33);
  const BroadcastOutcome single = simulate_broadcast(topo, plan);

  PipelineOptions options;
  options.packets = 4;
  options.interval = single.stats.delay + 4;
  const PipelineOutcome piped = simulate_pipeline(topo, plan, options);
  ASSERT_TRUE(piped.all_fully_reached());
  for (const BroadcastStats& stats : piped.per_packet) {
    EXPECT_EQ(stats.tx, single.stats.tx);
    EXPECT_EQ(stats.delay, single.stats.delay);
  }
  EXPECT_EQ(piped.aggregate.tx, 4 * single.stats.tx);
}

TEST(Pipeline, TightIntervalInterferes) {
  // Back-to-back injection: wavefronts overlap and interfere -- either
  // some packet misses nodes or at least the pipeline pays extra
  // collisions / deferred transmissions.
  const Mesh2D4 topo(10, 8);
  const RelayPlan plan = paper_plan(topo, 33);
  PipelineOptions wide;
  wide.packets = 3;
  wide.interval = 64;
  PipelineOptions tight;
  tight.packets = 3;
  tight.interval = 1;
  const PipelineOutcome ok = simulate_pipeline(topo, plan, wide);
  const PipelineOutcome jam = simulate_pipeline(topo, plan, tight);
  ASSERT_TRUE(ok.all_fully_reached());
  const bool interfered = !jam.all_fully_reached() ||
                          jam.aggregate.collisions >
                              3 * ok.aggregate.collisions / 2;
  EXPECT_TRUE(interfered);
}

TEST(Pipeline, MinIntervalIsConsistent) {
  const Mesh2D4 topo(10, 8);
  const RelayPlan plan = paper_plan(topo, 33);
  const Slot min_interval = min_pipeline_interval(topo, plan, 3, 128);
  ASSERT_GT(min_interval, 0u);
  // The found interval works...
  PipelineOptions options;
  options.packets = 3;
  options.interval = min_interval;
  EXPECT_TRUE(simulate_pipeline(topo, plan, options).all_fully_reached());
  // ...and is minimal.
  if (min_interval > 1) {
    options.interval = min_interval - 1;
    EXPECT_FALSE(simulate_pipeline(topo, plan, options).all_fully_reached());
  }
}

TEST(Pipeline, EnergyScalesWithPacketCount) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 20);
  PipelineOptions options;
  options.packets = 5;
  options.interval = 64;
  const PipelineOutcome piped = simulate_pipeline(topo, plan, options);
  const BroadcastOutcome single = simulate_broadcast(topo, plan);
  EXPECT_NEAR(piped.aggregate.total_energy(),
              5.0 * single.stats.total_energy(),
              1e-9);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const Mesh2D4 topo(9, 7);
  const RelayPlan plan = paper_plan(topo, 30);
  PipelineOptions options;
  options.packets = 4;
  options.interval = 3;
  const PipelineOutcome a = simulate_pipeline(topo, plan, options);
  const PipelineOutcome b = simulate_pipeline(topo, plan, options);
  ASSERT_EQ(a.per_packet.size(), b.per_packet.size());
  for (std::size_t p = 0; p < a.per_packet.size(); ++p) {
    EXPECT_EQ(a.per_packet[p].tx, b.per_packet[p].tx);
    EXPECT_EQ(a.per_packet[p].reached, b.per_packet[p].reached);
    EXPECT_EQ(a.per_packet[p].delay, b.per_packet[p].delay);
  }
}

}  // namespace
}  // namespace wsn
