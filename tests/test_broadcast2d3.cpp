#include "protocol/mesh2d3_broadcast.h"

#include <gtest/gtest.h>

#include "geometry/diagonal.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d3.h"

namespace wsn {
namespace {

TEST(Broadcast2D3, FamilyMembershipResidues) {
  // Source (10,7) (Fig. 8): links down, so B1 pairs are {c, c-1} around
  // anchors spaced 4: S1 indices {17,16}, {21,20}, {13,12}, ...
  const Vec2 src{10, 7};
  for (int c : {17, 16, 21, 20, 13, 12, 25, 24, 9, 8}) {
    EXPECT_TRUE(Mesh2d3Broadcast::in_b1_family({c - 5, 5}, src)) << c;
  }
  for (int c : {15, 14, 19, 18}) {
    EXPECT_FALSE(Mesh2d3Broadcast::in_b1_family({c - 5, 5}, src)) << c;
  }
  // B2 pairs {3,4}, {7,8}, {-1,0}, ... (S2 indices).
  for (int c : {3, 4, 7, 8, -1, 0, 11, 12}) {
    EXPECT_TRUE(Mesh2d3Broadcast::in_b2_family({c + 5, 5}, src)) << c;
  }
  for (int c : {1, 2, 5, 6}) {
    EXPECT_FALSE(Mesh2d3Broadcast::in_b2_family({c + 5, 5}, src)) << c;
  }
}

TEST(Broadcast2D3, SourceRowAlwaysRelays) {
  const Mesh2D3 topo(20, 14);
  const Grid2D& g = topo.grid();
  const Mesh2d3Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({10, 7}));
  for (int x = 1; x <= 20; ++x) {
    EXPECT_TRUE(plan.is_relay(g.to_id({x, 7}))) << x;
  }
}

TEST(Broadcast2D3, Fig8StaircasesAreRelays) {
  // Fig. 8's listed relay sets: nodes of S1(16)/S1(17) (B1 through the
  // source) and S2(3)/S2(4) (B2 through the source) are relays in their
  // regions.
  const Mesh2D3 topo(20, 14);
  const Grid2D& g = topo.grid();
  const Mesh2d3Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({10, 7}));
  // Up-right of the source, on the B2 staircase through it.
  EXPECT_TRUE(plan.is_relay(g.to_id({12, 9})));   // s2 = 3
  EXPECT_TRUE(plan.is_relay(g.to_id({13, 9})));   // s2 = 4
  // Up-left, on the B1 staircase through the source.
  EXPECT_TRUE(plan.is_relay(g.to_id({8, 9})));    // s1 = 17
  EXPECT_TRUE(plan.is_relay(g.to_id({7, 9})));    // s1 = 16
}

class Broadcast2D3AllSources
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Broadcast2D3AllSources, ResolvedPlanReachesEveryone) {
  const auto [m, n] = GetParam();
  const Mesh2D3 topo(m, n);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const RelayPlan plan = paper_plan(topo, src);
    const auto out = simulate_broadcast(topo, plan);
    ASSERT_TRUE(out.stats.fully_reached())
        << "source " << to_string(topo.grid().to_coord(src));
  }
}

TEST_P(Broadcast2D3AllSources, RawPlanCoversTheBulk) {
  // Floors sit just under the measured per-size minima: wide meshes stay
  // above ~70% before any repair; tall narrow meshes (5x9) clip most
  // staircase anchors and lean harder on the resolver.
  const auto [m, n] = GetParam();
  const double floor = m >= 2 * n ? 0.65 : (m >= n ? 0.40 : 0.25);
  const Mesh2D3 topo(m, n);
  const Mesh2d3Broadcast proto;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, proto.plan(topo, src));
    ASSERT_GT(out.stats.reachability(), floor)
        << "source " << to_string(topo.grid().to_coord(src));
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, Broadcast2D3AllSources,
                         ::testing::Values(std::pair{32, 16},
                                           std::pair{16, 16},
                                           std::pair{7, 5}, std::pair{8, 6},
                                           std::pair{5, 9},
                                           std::pair{12, 3}));

TEST(Broadcast2D3, DelayWithinResolverSlack) {
  const Mesh2D3 topo(32, 16);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, paper_plan(topo, src));
    const auto ecc = eccentricity(topo, src);
    ASSERT_GE(out.stats.delay, ecc);
    ASSERT_LE(out.stats.delay, ecc + 12);
  }
}

TEST(Broadcast2D3, PaperSizeTxEnvelope) {
  const Mesh2D3 topo(32, 16);
  std::size_t min_tx = ~std::size_t{0};
  std::size_t max_tx = 0;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, paper_plan(topo, src));
    min_tx = std::min(min_tx, out.stats.tx);
    max_tx = std::max(max_tx, out.stats.tx);
  }
  // Paper envelope [301, 308]; ours carries the resolver's repairs on top
  // of slightly denser staircase coverage.
  EXPECT_GE(min_tx, 280u);
  EXPECT_LE(min_tx, 320u);
  EXPECT_LE(max_tx, 400u);
}

TEST(Broadcast2D3, StaircasesTouchTheRowTwice) {
  // Structural property behind the seeding argument: every staircase of
  // both families crosses the source row at two adjacent relay cells.
  const Mesh2D3 topo(16, 16);
  const Grid2D& g = topo.grid();
  const Mesh2d3Broadcast proto;
  const Vec2 src{7, 8};
  const RelayPlan plan = proto.plan(topo, g.to_id(src));
  // Every off-row relay must have a relay neighbor with smaller |y - j|,
  // i.e. relays form chains rooted at the row.
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (!plan.is_relay(v)) continue;
    const Vec2 c = g.to_coord(v);
    if (c.y == src.y) continue;
    bool has_rooted_neighbor = false;
    for (NodeId u : topo.neighbors(v)) {
      const Vec2 cu = g.to_coord(u);
      if (plan.is_relay(u) &&
          std::abs(cu.y - src.y) <= std::abs(c.y - src.y)) {
        has_rooted_neighbor = true;
      }
    }
    EXPECT_TRUE(has_rooted_neighbor) << to_string(c);
  }
}

}  // namespace
}  // namespace wsn
