#include "protocol/implicit_plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"

namespace wsn {
namespace {

void expect_same_plan(const RelayPlan& a, const RelayPlan& b) {
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.tx_offsets.size(), b.tx_offsets.size());
  for (std::size_t v = 0; v < a.tx_offsets.size(); ++v) {
    EXPECT_EQ(a.tx_offsets[v], b.tx_offsets[v]) << "node " << v;
  }
}

// The implicit path's whole value rests on this: raw plan AND resolver
// repairs equal the materialized paper_plan pipeline, node for node, slot
// for slot -- the resolver's decisions are forced by byte-identical
// neighbor sets and bit-identical probe outcomes.
TEST(ImplicitPlan, ResolvedPlanMatchesPaperPlan) {
  const struct {
    const char* family;
    int m, n, l;
  } cases[] = {{"2D-3", 9, 7, 1},  {"2D-3", 6, 10, 1}, {"2D-4", 8, 6, 1},
               {"2D-4", 11, 4, 1}, {"2D-8", 7, 7, 1},  {"2D-8", 10, 5, 1},
               {"3D-6", 4, 3, 5},  {"3D-6", 5, 5, 3}};
  for (const auto& c : cases) {
    const std::unique_ptr<Topology> topo =
        make_mesh(c.family, c.m, c.n, c.l);
    const ImplicitLattice lat =
        ImplicitLattice::make(c.family, c.m, c.n, c.l);
    const std::vector<NodeId> sources = {
        0, static_cast<NodeId>(topo->num_nodes() / 2),
        static_cast<NodeId>(topo->num_nodes() - 1)};
    for (const NodeId src : sources) {
      ResolveReport ref_report;
      ResolveReport bulk_report;
      const RelayPlan ref = paper_plan(*topo, src, {}, &ref_report);
      const RelayPlan bulk = implicit_paper_plan(lat, src, {}, &bulk_report);
      expect_same_plan(ref, bulk);
      EXPECT_EQ(ref_report.repairs, bulk_report.repairs);
      EXPECT_EQ(ref_report.rounds, bulk_report.rounds);
      EXPECT_EQ(ref_report.unrepaired, bulk_report.unrepaired);
    }
  }
}

TEST(ImplicitPlan, RawPlanMatchesProtocolPlan) {
  for (const std::string family : {"2D-3", "2D-4", "2D-8"}) {
    const std::unique_ptr<Topology> topo = make_mesh(family, 9, 6);
    const ImplicitLattice lat = ImplicitLattice::make(family, 9, 6);
    const auto protocol = make_paper_protocol(family);
    for (const NodeId src : {0u, 25u, 53u}) {
      expect_same_plan(protocol->plan(*topo, src),
                       implicit_protocol_plan(lat, src));
    }
  }
  const std::unique_ptr<Topology> topo = make_mesh("3D-6", 4, 5, 3);
  const ImplicitLattice lat = ImplicitLattice::make("3D-6", 4, 5, 3);
  const auto protocol = make_paper_protocol("3D-6");
  for (const NodeId src : {0u, 31u, 59u}) {
    expect_same_plan(protocol->plan(*topo, src),
                     implicit_protocol_plan(lat, src));
  }
}

TEST(ImplicitPlan, PaperDimsResolveToFullCoverage) {
  for (const std::string& family : regular_families()) {
    const ImplicitLattice lat =
        family == "3D-6"
            ? ImplicitLattice::mesh3d6(PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kSpacing)
            : ImplicitLattice::make(family, PaperConfig::kMesh2dM,
                                    PaperConfig::kMesh2dN, 1,
                                    PaperConfig::kSpacing);
    const NodeId src = lat.central_node();
    const RelayPlan plan = implicit_paper_plan(lat, src);
    const BroadcastOutcome outcome = bulk_simulate(lat, plan);
    EXPECT_EQ(outcome.stats.reached, lat.num_nodes()) << family;
  }
}

}  // namespace
}  // namespace wsn
