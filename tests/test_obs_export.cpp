#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/event_sink.h"

namespace wsn {
namespace {

EventSink small_sink() {
  EventSink sink(8);
  sink.record({1, EventKind::kTx, 5});
  sink.record({1, EventKind::kRx, 6, 5});
  sink.record({2, EventKind::kCollision, 7, kInvalidNode, 0, 3});
  sink.record({2, EventKind::kPipelineDefer, 8, kInvalidNode, 2, 1});
  return sink;
}

TEST(JsonlExport, MatchesGolden) {
  const EventSink sink = small_sink();
  std::ostringstream out;
  write_events_jsonl(out, sink);
  EXPECT_EQ(out.str(),
            "{\"schema\":\"meshbcast.trace\",\"version\":1,"
            "\"events\":4,\"dropped\":0}\n"
            "{\"slot\":1,\"kind\":\"tx\",\"node\":5}\n"
            "{\"slot\":1,\"kind\":\"rx\",\"node\":6,\"peer\":5}\n"
            "{\"slot\":2,\"kind\":\"coll\",\"node\":7,\"detail\":3}\n"
            "{\"slot\":2,\"kind\":\"defer\",\"node\":8,\"packet\":2,"
            "\"detail\":1}\n");
}

TEST(JsonlExport, HeaderReportsDrops) {
  EventSink sink(2);
  for (Slot s = 1; s <= 5; ++s) sink.record({s, EventKind::kTx, 0});
  std::ostringstream out;
  write_events_jsonl(out, sink);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"events\":2,\"dropped\":3}"), std::string::npos);
}

TEST(ChromeExport, MatchesGolden) {
  EventSink sink(8);
  sink.record({1, EventKind::kTx, 3});
  sink.record({2, EventKind::kCollision, 4, kInvalidNode, 0, 2});
  std::ostringstream out;
  write_chrome_trace(out, sink);
  EXPECT_EQ(
      out.str(),
      "[\n"
      R"({"name":"process_name","ph":"M","pid":0,)"
      R"("args":{"name":"meshbcast"}})"
      ",\n"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":3,)"
      R"("args":{"name":"node 3"}})"
      ",\n"
      R"({"name":"thread_sort_index","ph":"M","pid":0,"tid":3,)"
      R"("args":{"sort_index":3}})"
      ",\n"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":4,)"
      R"("args":{"name":"node 4"}})"
      ",\n"
      R"({"name":"thread_sort_index","ph":"M","pid":0,"tid":4,)"
      R"("args":{"sort_index":4}})"
      ",\n"
      R"({"name":"tx","cat":"sim","ph":"X","ts":1000,"dur":1000,)"
      R"("pid":0,"tid":3,"args":{"slot":1}})"
      ",\n"
      R"({"name":"collision","cat":"sim","ph":"i","s":"t","ts":2000,)"
      R"("pid":0,"tid":4,"args":{"slot":2,"detail":2}})"
      "\n]\n");
}

TEST(ChromeExport, HonorsSlotDuration) {
  EventSink sink(4);
  sink.record({3, EventKind::kTx, 0});
  std::ostringstream out;
  write_chrome_trace(out, sink, /*slot_us=*/10);
  EXPECT_NE(out.str().find("\"ts\":30,\"dur\":10,"), std::string::npos);
}

TEST(ChromeExport, EmptySinkIsAValidArray) {
  const EventSink sink(4);
  std::ostringstream out;
  write_chrome_trace(out, sink);
  EXPECT_EQ(out.str(),
            "[\n"
            R"({"name":"process_name","ph":"M","pid":0,)"
            R"("args":{"name":"meshbcast"}})"
            "\n]\n");
}

}  // namespace
}  // namespace wsn
