#include "sim/bulk/bulk_simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/torus.h"

namespace wsn {
namespace {

/// Full-outcome bitwise comparison: every stats counter, every TxRecord,
/// every first_rx slot, and the energy doubles compared with == (no
/// tolerance anywhere -- the bulk engine's contract is replication, not
/// approximation).
void expect_identical(const BroadcastOutcome& ref,
                      const BroadcastOutcome& bulk) {
  EXPECT_EQ(ref.stats.num_nodes, bulk.stats.num_nodes);
  EXPECT_EQ(ref.stats.tx, bulk.stats.tx);
  EXPECT_EQ(ref.stats.rx, bulk.stats.rx);
  EXPECT_EQ(ref.stats.duplicates, bulk.stats.duplicates);
  EXPECT_EQ(ref.stats.collisions, bulk.stats.collisions);
  EXPECT_EQ(ref.stats.reached, bulk.stats.reached);
  EXPECT_EQ(ref.stats.delay, bulk.stats.delay);
  EXPECT_EQ(ref.stats.lost_to_crash, bulk.stats.lost_to_crash);
  EXPECT_EQ(ref.stats.lost_to_fading, bulk.stats.lost_to_fading);
  EXPECT_EQ(ref.stats.tx_energy, bulk.stats.tx_energy);   // bitwise
  EXPECT_EQ(ref.stats.rx_energy, bulk.stats.rx_energy);   // bitwise
  ASSERT_EQ(ref.first_rx.size(), bulk.first_rx.size());
  EXPECT_EQ(ref.first_rx, bulk.first_rx);
  ASSERT_EQ(ref.transmissions.size(), bulk.transmissions.size());
  for (std::size_t i = 0; i < ref.transmissions.size(); ++i) {
    EXPECT_EQ(ref.transmissions[i].slot, bulk.transmissions[i].slot);
    EXPECT_EQ(ref.transmissions[i].node, bulk.transmissions[i].node);
    EXPECT_EQ(ref.transmissions[i].delivered,
              bulk.transmissions[i].delivered);
    EXPECT_EQ(ref.transmissions[i].fresh, bulk.transmissions[i].fresh);
  }
  EXPECT_EQ(ref.node_energy, bulk.node_energy);
}

void cross_check(const Topology& topo, const ImplicitLattice& lat,
                 const RelayPlan& plan, const SimOptions& options = {}) {
  Simulator ref_sim(topo.num_nodes());
  BulkSimulator bulk_sim(lat.num_nodes());
  const FlatRelayPlan flat = FlatRelayPlan::from(plan);
  expect_identical(ref_sim.run(topo, plan, options),
                   bulk_sim.run(lat, plan, options));
  expect_identical(ref_sim.run(topo, flat, options),
                   bulk_sim.run(lat, flat, options));
}

/// Everybody forwards once: maximally collision-heavy, a stress test for
/// the SWAR counter and the wrap rules.
RelayPlan flooding_plan(std::size_t count, NodeId source) {
  RelayPlan plan = RelayPlan::empty(count, source);
  for (auto& offsets : plan.tx_offsets) offsets = {1};
  return plan;
}

// The tentpole acceptance check: the paper's own protocol (resolved to
// full reachability) replayed bit-exactly at paper dims, several seeded
// sources per family.
TEST(BulkSimulator, MatchesReferenceOnPaperTopologies) {
  std::mt19937 rng(20260808u);
  for (const std::string& family : regular_families()) {
    const std::unique_ptr<Topology> topo = make_paper_topology(family);
    const ImplicitLattice lat =
        family == "3D-6"
            ? ImplicitLattice::mesh3d6(PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kSpacing)
            : ImplicitLattice::make(family, PaperConfig::kMesh2dM,
                                    PaperConfig::kMesh2dN, 1,
                                    PaperConfig::kSpacing);
    std::uniform_int_distribution<NodeId> pick(
        0, static_cast<NodeId>(topo->num_nodes() - 1));
    std::vector<NodeId> sources = {0,
                                   static_cast<NodeId>(topo->num_nodes() / 2),
                                   static_cast<NodeId>(topo->num_nodes() - 1),
                                   pick(rng), pick(rng)};
    for (const NodeId src : sources) {
      cross_check(*topo, lat, paper_plan(*topo, src));
    }
  }
}

TEST(BulkSimulator, MatchesReferenceFloodingOnMeshes) {
  const struct {
    const char* family;
    int m, n, l;
  } cases[] = {{"2D-3", 9, 7, 1}, {"2D-4", 8, 6, 1},
               {"2D-8", 7, 7, 1}, {"3D-6", 4, 3, 5}};
  for (const auto& c : cases) {
    const std::unique_ptr<Topology> topo =
        make_mesh(c.family, c.m, c.n, c.l);
    const ImplicitLattice lat =
        ImplicitLattice::make(c.family, c.m, c.n, c.l);
    cross_check(*topo, lat, flooding_plan(topo->num_nodes(), 0));
    cross_check(*topo, lat,
                flooding_plan(topo->num_nodes(),
                              static_cast<NodeId>(topo->num_nodes() / 2)));
  }
}

TEST(BulkSimulator, MatchesReferenceFloodingOnTori) {
  {
    const Torus2D4 topo(7, 5);
    const ImplicitLattice lat = ImplicitLattice::torus2d4(7, 5);
    cross_check(topo, lat, flooding_plan(topo.num_nodes(), 11));
  }
  {
    const Torus2D8 topo(6, 5);
    const ImplicitLattice lat = ImplicitLattice::torus2d8(6, 5);
    cross_check(topo, lat, flooding_plan(topo.num_nodes(), 0));
    cross_check(topo, lat, flooding_plan(topo.num_nodes(), 29));
  }
}

// Seeded random plans: arbitrary relay subsets with arbitrary strictly
// increasing offsets probe slot dynamics no paper protocol produces
// (gaps, far-ahead scheduling, silent relays).
TEST(BulkSimulator, MatchesReferenceOnSeededRandomPlans) {
  std::mt19937 rng(7u);
  const struct {
    const char* family;
    int m, n, l;
  } cases[] = {{"2D-3", 6, 8, 1}, {"2D-4", 9, 5, 1},
               {"2D-8", 5, 9, 1}, {"3D-6", 3, 4, 4}};
  for (const auto& c : cases) {
    const std::unique_ptr<Topology> topo =
        make_mesh(c.family, c.m, c.n, c.l);
    const ImplicitLattice lat =
        ImplicitLattice::make(c.family, c.m, c.n, c.l);
    const auto count = topo->num_nodes();
    std::uniform_int_distribution<NodeId> pick_src(
        0, static_cast<NodeId>(count - 1));
    std::uniform_int_distribution<int> relay_die(0, 3);
    std::uniform_int_distribution<Slot> gap(1, 3);
    for (int trial = 0; trial < 4; ++trial) {
      RelayPlan plan = RelayPlan::empty(count, pick_src(rng));
      for (NodeId v = 0; v < count; ++v) {
        if (v != plan.source && relay_die(rng) == 0) continue;
        Slot offset = 0;
        std::vector<Slot> offsets;
        const int hops = 1 + relay_die(rng) % 2;
        for (int k = 0; k < hops; ++k) {
          offset += gap(rng);
          offsets.push_back(offset);
        }
        plan.tx_offsets[v] = offsets;
      }
      cross_check(*topo, lat, plan);
    }
  }
}

TEST(BulkSimulator, MaxSlotsTruncationMatches) {
  const std::unique_ptr<Topology> topo = make_mesh("2D-4", 12, 9);
  const ImplicitLattice lat = ImplicitLattice::mesh2d4(12, 9);
  const RelayPlan plan = paper_plan(*topo, 30);
  for (const Slot cap : {0u, 1u, 3u, 7u}) {
    SimOptions options;
    options.max_slots = cap;
    cross_check(*topo, lat, plan, options);
  }
}

TEST(BulkSimulator, ChargeCollisionsAndNodeEnergyMatch) {
  const std::unique_ptr<Topology> topo = make_mesh("2D-8", 8, 8);
  const ImplicitLattice lat = ImplicitLattice::mesh2d8(8, 8);
  SimOptions options;
  options.charge_collisions = true;
  options.record_node_energy = true;
  cross_check(*topo, lat, flooding_plan(topo->num_nodes(), 27), options);
  cross_check(*topo, lat, paper_plan(*topo, 27), options);
}

TEST(BulkSimulator, ScratchReuseIsInvisible) {
  // One simulator across different lattices and plan shapes must replay
  // what fresh simulators produce (mask cache + scratch re-priming).
  BulkSimulator reused;
  const ImplicitLattice small = ImplicitLattice::mesh2d4(5, 4);
  const ImplicitLattice big = ImplicitLattice::mesh2d8(9, 6);
  const RelayPlan plan_small = flooding_plan(small.num_nodes(), 3);
  const RelayPlan plan_big = flooding_plan(big.num_nodes(), 40);
  const BroadcastOutcome fresh_small = bulk_simulate(small, plan_small);
  const BroadcastOutcome fresh_big = bulk_simulate(big, plan_big);
  expect_identical(fresh_small, reused.run(small, plan_small));
  expect_identical(fresh_big, reused.run(big, plan_big));
  expect_identical(fresh_small, reused.run(small, plan_small));
}

TEST(BulkSimulator, ProgressCallbackObservesWithoutPerturbing) {
  const ImplicitLattice lat = ImplicitLattice::mesh2d4(16, 12);
  const RelayPlan plan = flooding_plan(lat.num_nodes(), 0);
  const BroadcastOutcome reference = bulk_simulate(lat, plan);

  BulkSimulator instrumented;
  std::vector<BulkProgress> ticks;
  instrumented.set_progress(
      [&ticks](const BulkProgress& p) { ticks.push_back(p); }, 2);
  const BroadcastOutcome observed = instrumented.run(lat, plan);

  // Observation only: the outcome is bit-identical to the silent run.
  expect_identical(reference, observed);

  ASSERT_FALSE(ticks.empty());
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const BulkProgress& p = ticks[i];
    EXPECT_EQ(p.total_nodes, lat.num_nodes());
    EXPECT_GT(p.frontier, 0u);
    EXPECT_LE(p.reached, p.total_nodes);
    EXPECT_GE(p.elapsed_s, 0.0);
    if (i > 0) {
      EXPECT_GT(p.slots_done, ticks[i - 1].slots_done);
      EXPECT_GE(p.reached, ticks[i - 1].reached);  // coverage monotone
    }
  }
  // The final tick always fires and sees the finished broadcast.  (The
  // last transmitting slot can trail the delay: relays scheduled by the
  // final deliveries still transmit, reaching nobody new.)
  EXPECT_EQ(ticks.back().reached, reference.stats.reached);
  EXPECT_GE(ticks.back().slot, reference.stats.delay);

  // Detaching restores silence; the scratch replays identically again.
  instrumented.set_progress(nullptr);
  ticks.clear();
  expect_identical(reference, instrumented.run(lat, plan));
  EXPECT_TRUE(ticks.empty());
}

TEST(BulkSimulator, RejectsUnsupportedOptions) {
  SimOptions options;
  EXPECT_TRUE(BulkSimulator::options_supported(options));

  std::string why;
  options.record_collisions = true;
  EXPECT_FALSE(BulkSimulator::options_supported(options, &why));
  EXPECT_FALSE(why.empty());

  options = {};
  Observer observer;
  options.observer = &observer;
  EXPECT_FALSE(BulkSimulator::options_supported(options));

  options = {};
  BatteryBank battery(4, 1.0);
  options.battery = &battery;
  EXPECT_FALSE(BulkSimulator::options_supported(options));
}

}  // namespace
}  // namespace wsn
