#include "geometry/region.h"

#include <gtest/gtest.h>

#include "geometry/diagonal.h"

namespace wsn {
namespace {

TEST(Brick, ParityConventionMatchesPaperExamples) {
  // §3.3: "node (5,5) is not node (5,4)'s neighbor" -- (5,4) has odd x+y,
  // so its vertical link points down.
  EXPECT_TRUE(brick_has_down({5, 4}));
  EXPECT_FALSE(brick_has_up({5, 4}));
  // Source (10, 7) of Fig. 8 also links down.
  EXPECT_TRUE(brick_has_down({10, 7}));
  // And the parity alternates along a row.
  EXPECT_TRUE(brick_has_up({4, 4}));
  EXPECT_TRUE(brick_has_down({5, 4}));
}

TEST(Brick, VerticalLinksAreMutual) {
  for (int y = 1; y <= 8; ++y) {
    for (int x = 1; x <= 8; ++x) {
      const Vec2 v{x, y};
      const Vec2 u = brick_has_up(v) ? Vec2{x, y + 1} : Vec2{x, y - 1};
      const Vec2 back = brick_has_up(u) ? Vec2{u.x, u.y + 1}
                                        : Vec2{u.x, u.y - 1};
      EXPECT_EQ(back, v) << to_string(v);
    }
  }
}

TEST(BaseNodes, DownNeighborCase) {
  // (i, j-1) is a neighbor: a = (i, j-2), b = (i, j+1).  Fig. 8's source
  // (10, 7) has x+y odd -> links down.
  const BaseNodes base = base_nodes_2d3({10, 7});
  EXPECT_EQ(base.a, (Vec2{10, 5}));
  EXPECT_EQ(base.b, (Vec2{10, 8}));
}

TEST(BaseNodes, UpNeighborCase) {
  // (i, j+1) is the neighbor: a = (i, j-1), b = (i, j+2).
  const BaseNodes base = base_nodes_2d3({16, 8});
  EXPECT_EQ(base.a, (Vec2{16, 7}));
  EXPECT_EQ(base.b, (Vec2{16, 10}));
}

TEST(Region, WedgesPointUpAndDown) {
  const Vec2 src{10, 7};  // base nodes (10,5) / (10,8)
  EXPECT_EQ(region_of({10, 1}, src), Region::kTwo);   // straight below
  EXPECT_EQ(region_of({10, 14}, src), Region::kThree);  // straight above
  EXPECT_EQ(region_of({1, 7}, src), Region::kOne);    // sideways
  EXPECT_EQ(region_of({20, 7}, src), Region::kOne);
  EXPECT_EQ(region_of({10, 7}, src), Region::kOne);   // the source itself
}

TEST(Region, BoundariesFollowBaseDiagonals) {
  const Vec2 src{10, 7};
  // Region 2: x+y <= 15 and x-y >= 5 (base a = (10,5)).
  EXPECT_EQ(region_of({10, 5}, src), Region::kTwo);
  EXPECT_EQ(region_of({11, 4}, src), Region::kTwo);
  EXPECT_EQ(region_of({12, 4}, src), Region::kOne);  // x+y = 16 > 15
  // Region 3: x+y >= 18 and x-y <= 2 (base b = (10,8)).
  EXPECT_EQ(region_of({10, 8}, src), Region::kThree);
  EXPECT_EQ(region_of({9, 9}, src), Region::kThree);
  EXPECT_EQ(region_of({12, 9}, src), Region::kOne);  // x-y = 3 > 2
}

TEST(Region, PartitionIsTotal) {
  const Vec2 src{7, 6};
  for (int y = 1; y <= 16; ++y) {
    for (int x = 1; x <= 16; ++x) {
      const Region r = region_of({x, y}, src);
      EXPECT_TRUE(r == Region::kOne || r == Region::kTwo ||
                  r == Region::kThree);
    }
  }
}

TEST(DiagonalPairs, MatchPaperSource54) {
  // §3.3: source (5,4) has no up neighbor, so B1(5,4) = S1(9) ∪ S1(8) and
  // B2(5,4) = S2(1) ∪ S2(2).
  const DiagonalPair b1 = b1_indices({5, 4});
  EXPECT_TRUE(b1.contains(9));
  EXPECT_TRUE(b1.contains(8));
  EXPECT_FALSE(b1.contains(10));
  const DiagonalPair b2 = b2_indices({5, 4});
  EXPECT_TRUE(b2.contains(1));
  EXPECT_TRUE(b2.contains(2));
  EXPECT_FALSE(b2.contains(0));
}

TEST(DiagonalPairs, MatchPaperFig8Source) {
  // Fig. 8: source (10,7): B1 = S1(17) ∪ S1(16), B2 = S2(3) ∪ S2(4).
  const DiagonalPair b1 = b1_indices({10, 7});
  EXPECT_TRUE(b1.contains(17));
  EXPECT_TRUE(b1.contains(16));
  const DiagonalPair b2 = b2_indices({10, 7});
  EXPECT_TRUE(b2.contains(3));
  EXPECT_TRUE(b2.contains(4));
}

TEST(DiagonalPairs, UpNeighborCaseUsesOtherOrientation) {
  // has-up node: B1 = {c, c+1}, B2 = {c, c-1}.
  const Vec2 v{4, 4};
  ASSERT_TRUE(brick_has_up(v));
  EXPECT_TRUE(b1_indices(v).contains(8));
  EXPECT_TRUE(b1_indices(v).contains(9));
  EXPECT_TRUE(b2_indices(v).contains(0));
  EXPECT_TRUE(b2_indices(v).contains(-1));
}

}  // namespace
}  // namespace wsn
