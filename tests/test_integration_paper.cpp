#include <gtest/gtest.h>

#include <map>

#include "analysis/report.h"
#include "protocol/ideal_model.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

/// End-to-end reproduction bands for the paper's evaluation (Tables 2-5).
/// Exact equality is not the bar -- the paper's own retransmission tables
/// are partly unstated (DESIGN.md §3) -- but every number must land inside
/// a tight band around the published value and every qualitative claim must
/// hold.

class PaperEvaluation : public ::testing::TestWithParam<std::string> {
 protected:
  static const SweepResult& sweep(const std::string& family) {
    static std::map<std::string, SweepResult> cache;
    auto it = cache.find(family);
    if (it == cache.end()) {
      it = cache.emplace(family, run_paper_sweep(family)).first;
    }
    return it->second;
  }
};

TEST_P(PaperEvaluation, HundredPercentReachabilityFromEverySource) {
  EXPECT_TRUE(sweep(GetParam()).all_fully_reached());
}

TEST_P(PaperEvaluation, IdealCaseMatchesTable2Exactly) {
  const std::string family = GetParam();
  const IdealCase ours = family == "3D-6"
                             ? ideal_case(family, 8, 8, 8)
                             : ideal_case(family, 32, 16);
  const PaperRow paper = paper_ideal_row(family);
  EXPECT_EQ(ours.tx, paper.tx);
  EXPECT_EQ(ours.rx, paper.rx);
  EXPECT_NEAR(ours.power, paper.power, 0.005e-2);  // 3-digit rounding
}

TEST_P(PaperEvaluation, BestCaseWithinBandOfTable3) {
  const std::string family = GetParam();
  const SourceResult& best = sweep(family).best();
  const PaperRow paper = paper_best_row(family);
  EXPECT_NEAR(static_cast<double>(best.stats.tx),
              static_cast<double>(paper.tx), 0.08 * static_cast<double>(paper.tx));
  EXPECT_NEAR(static_cast<double>(best.stats.rx),
              static_cast<double>(paper.rx), 0.10 * static_cast<double>(paper.rx));
  EXPECT_NEAR(best.stats.total_energy(), paper.power, 0.10 * paper.power);
}

TEST_P(PaperEvaluation, WorstCaseWithinBandOfTable4) {
  const std::string family = GetParam();
  const SourceResult& worst = sweep(family).worst();
  const PaperRow paper = paper_worst_row(family);
  // The resolver's repairs ride on the worst sources, so the band is wider
  // on the high side; undershooting the paper is fine by at most 10%.
  EXPECT_GE(static_cast<double>(worst.stats.tx), 0.90 * static_cast<double>(paper.tx));
  EXPECT_LE(static_cast<double>(worst.stats.tx), 1.30 * static_cast<double>(paper.tx));
  EXPECT_GE(static_cast<double>(worst.stats.rx), 0.85 * static_cast<double>(paper.rx));
  EXPECT_LE(static_cast<double>(worst.stats.rx), 1.15 * static_cast<double>(paper.rx));
  EXPECT_GE(worst.stats.total_energy(), 0.85 * paper.power);
  EXPECT_LE(worst.stats.total_energy(), 1.20 * paper.power);
}

TEST_P(PaperEvaluation, MaxDelayNearTable5) {
  const std::string family = GetParam();
  const Slot ours = sweep(family).max_delay();
  const Slot paper = paper_max_delay(family);
  const auto diam = diameter(*make_paper_topology(family));
  // Delay can't beat the diameter, and stays within the repair slack of it.
  EXPECT_GE(ours, diam);
  EXPECT_LE(ours, diam + 10);
  // And within a small absolute band of the published number (the paper's
  // column carries a documented ±1 slot convention, DESIGN.md §5).
  EXPECT_GE(ours + 3, paper);
  EXPECT_LE(ours, paper + 12);
}

INSTANTIATE_TEST_SUITE_P(Families, PaperEvaluation,
                         ::testing::Values("2D-3", "2D-4", "2D-8", "3D-6"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PaperEvaluationCross, Mesh2D4WinsOnPower) {
  // The headline result: "2D mesh with 4 neighbors possesses the minimum
  // power consumption" -- in best case, worst case and on average.
  std::map<std::string, SweepResult> sweeps;
  for (const std::string& family : regular_families()) {
    sweeps.emplace(family, run_paper_sweep(family));
  }
  for (const std::string family : {"2D-3", "2D-8", "3D-6"}) {
    EXPECT_LT(sweeps.at("2D-4").best().stats.total_energy(),
              sweeps.at(family).best().stats.total_energy())
        << family;
    EXPECT_LT(sweeps.at("2D-4").worst().stats.total_energy(),
              sweeps.at(family).worst().stats.total_energy())
        << family;
    EXPECT_LT(sweeps.at("2D-4").mean_energy(),
              sweeps.at(family).mean_energy())
        << family;
  }
}

TEST(PaperEvaluationCross, Mesh3D6HasSmallestMaxDelay) {
  // "3D mesh with 6 neighbors has the smallest maximum delay time."
  std::map<std::string, Slot> delays;
  for (const std::string& family : regular_families()) {
    delays[family] = run_paper_sweep(family).max_delay();
  }
  for (const std::string family : {"2D-3", "2D-4", "2D-8"}) {
    EXPECT_LT(delays.at("3D-6"), delays.at(family)) << family;
  }
  // And among the 2D meshes, 2D-8 is fastest.
  EXPECT_LT(delays.at("2D-8"), delays.at("2D-4"));
  EXPECT_LT(delays.at("2D-8"), delays.at("2D-3"));
}

TEST(PaperEvaluationCross, MoreNeighborsFewerTransmissionsMoreReceptions) {
  // §5: "when the number of neighbors increase, the total number of
  // transmissions decrease, but the total number of receptions increase"
  // (across the 2D topologies).
  const auto s3 = run_paper_sweep("2D-3").best().stats;
  const auto s4 = run_paper_sweep("2D-4").best().stats;
  const auto s8 = run_paper_sweep("2D-8").best().stats;
  EXPECT_GT(s3.tx, s4.tx);
  EXPECT_GT(s4.tx, s8.tx);
  EXPECT_LT(s4.rx, s8.rx);
}

}  // namespace
}  // namespace wsn
