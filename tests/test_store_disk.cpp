// PlanDiskStore: content-addressed artifact layout, manifest behavior, and
// the failure policy -- every form of on-disk damage is a reported miss,
// never a trusted plan and never an abort.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#include "protocol/registry.h"
#include "store/disk_store.h"
#include "store/fingerprint.h"
#include "topology/factory.h"

namespace wsn {
namespace {

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_disk_" + tag)) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

StoredPlan sample_plan() {
  const auto topo = make_mesh("2D-4", 6, 4);
  StoredPlan stored;
  stored.plan =
      FlatRelayPlan::from(paper_plan(*topo, 2, {}, &stored.report));
  return stored;
}

PlanFingerprint sample_fingerprint() {
  const auto topo = make_mesh("2D-4", 6, 4);
  return fingerprint_plan_request(*topo, 2, "paper");
}

/// Overwrites one byte; xors with the old byte when `value` is 0 so the
/// result is guaranteed to differ.
void damage_artifact(const std::string& path, std::size_t offset,
                     char value = 0) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open()) << path;
  if (value == 0) {
    file.seekg(static_cast<std::streamoff>(offset));
    char old = 0;
    file.read(&old, 1);
    value = static_cast<char>(old ^ 0x40);
  }
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&value, 1);
}

TEST(StoreDisk, SaveLoadRoundTripAndLayout) {
  const TempDir tmp("roundtrip");
  PlanDiskStore store(tmp.path.string());
  ASSERT_TRUE(store.ok());

  const PlanFingerprint fp = sample_fingerprint();
  const StoredPlan original = sample_plan();
  ASSERT_TRUE(store.save(fp, original));
  EXPECT_EQ(store.artifact_count(), 1u);

  // Content-addressed path: the fingerprint's hex is the file stem.
  const std::string path = store.artifact_path(fp);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_NE(path.find(fp.hex()), std::string::npos);

  StoredPlan loaded;
  ASSERT_EQ(store.load(fp, loaded), PlanSerdeStatus::kOk);
  EXPECT_EQ(loaded.plan.source(), original.plan.source());
  EXPECT_EQ(loaded.plan.total_offsets(), original.plan.total_offsets());
  EXPECT_EQ(loaded.report.repairs, original.report.repairs);

  // The manifest documents the canonical request for the key.
  std::ifstream manifest(tmp.path / "MANIFEST.tsv");
  std::string line;
  ASSERT_TRUE(std::getline(manifest, line));
  EXPECT_NE(line.find(fp.hex()), std::string::npos);
  EXPECT_NE(line.find(fp.canonical), std::string::npos);
}

TEST(StoreDisk, MissingArtifactIsNotFound) {
  const TempDir tmp("missing");
  PlanDiskStore store(tmp.path.string());
  ASSERT_TRUE(store.ok());
  StoredPlan out;
  EXPECT_EQ(store.load(sample_fingerprint(), out),
            PlanSerdeStatus::kNotFound);
}

TEST(StoreDisk, FlippedByteIsChecksumMismatch) {
  const TempDir tmp("corrupt");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));
  damage_artifact(store.artifact_path(fp), 70);
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kChecksumMismatch);
}

TEST(StoreDisk, StaleVersionIsBadVersion) {
  const TempDir tmp("version");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));
  damage_artifact(store.artifact_path(fp), 8,
                  static_cast<char>(kPlanFormatVersion + 9));
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kBadVersion);
}

TEST(StoreDisk, TruncatedArtifactIsRejected) {
  const TempDir tmp("truncate");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));
  std::filesystem::resize_file(store.artifact_path(fp), 40);
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kTruncated);
}

TEST(StoreDisk, ForeignFileIsBadMagic) {
  const TempDir tmp("magic");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  {
    std::ofstream file(store.artifact_path(fp), std::ios::binary);
    file << "definitely not a plan artifact, but longer than a header";
  }
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kBadMagic);
}

TEST(StoreDisk, SaveOverwriteIsIdempotent) {
  const TempDir tmp("overwrite");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));
  ASSERT_TRUE(store.save(fp, sample_plan()));
  EXPECT_EQ(store.artifact_count(), 1u);
  // Second save of the key does not duplicate the manifest line.
  std::ifstream manifest(tmp.path / "MANIFEST.tsv");
  std::size_t lines = 0;
  for (std::string line; std::getline(manifest, line);) ++lines;
  EXPECT_EQ(lines, 1u);
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kOk);
}

TEST(StoreDisk, UncreatableDirectoryDegradesWithoutThrowing) {
  const TempDir tmp("blocked");
  // A regular file where the store wants its directory.
  std::filesystem::create_directories(tmp.path);
  const std::filesystem::path blocker = tmp.path / "file";
  { std::ofstream(blocker) << "x"; }

  PlanDiskStore store((blocker / "store").string());
  EXPECT_FALSE(store.ok());
  EXPECT_FALSE(store.save(sample_fingerprint(), sample_plan()));
  StoredPlan out;
  EXPECT_EQ(store.load(sample_fingerprint(), out),
            PlanSerdeStatus::kNotFound);
  EXPECT_EQ(store.artifact_count(), 0u);
}

// --- transient-read retry policy -------------------------------------------

/// Clears the global load-fault injector even when an assertion bails out.
struct InjectorGuard {
  ~InjectorGuard() { PlanDiskStore::set_load_fault_injector(nullptr); }
};

std::atomic<int> g_injected_reads{0};

TEST(StoreDisk, TransientIoErrorIsRetriedToSuccess) {
  const TempDir tmp("retry_ok");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));

  const InjectorGuard guard;
  // First read fails as if the disk hiccupped; the retry sees the truth.
  PlanDiskStore::set_load_fault_injector(
      +[](PlanSerdeStatus status, int attempt) {
        return attempt == 0 ? PlanSerdeStatus::kIoError : status;
      });
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kOk);
  EXPECT_EQ(out.plan.num_nodes(), sample_plan().plan.num_nodes());
  EXPECT_EQ(store.read_retries(), 1u);
}

TEST(StoreDisk, PersistentIoErrorSurfacesAfterBoundedAttempts) {
  const TempDir tmp("retry_exhausted");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));

  const InjectorGuard guard;
  g_injected_reads.store(0);
  PlanDiskStore::set_load_fault_injector(+[](PlanSerdeStatus, int) {
    g_injected_reads.fetch_add(1);
    return PlanSerdeStatus::kIoError;
  });
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kIoError);
  // Exactly kLoadAttempts reads, kLoadAttempts - 1 of them retries.
  EXPECT_EQ(g_injected_reads.load(), PlanDiskStore::kLoadAttempts);
  EXPECT_EQ(store.read_retries(),
            static_cast<std::uint64_t>(PlanDiskStore::kLoadAttempts - 1));
}

TEST(StoreDisk, VerificationFailuresAreNotRetried) {
  const TempDir tmp("retry_checksum");
  PlanDiskStore store(tmp.path.string());
  const PlanFingerprint fp = sample_fingerprint();
  ASSERT_TRUE(store.save(fp, sample_plan()));
  damage_artifact(store.artifact_path(fp), 70);

  const InjectorGuard guard;
  g_injected_reads.store(0);
  PlanDiskStore::set_load_fault_injector(+[](PlanSerdeStatus status, int) {
    g_injected_reads.fetch_add(1);
    return status;
  });
  StoredPlan out;
  EXPECT_EQ(store.load(fp, out), PlanSerdeStatus::kChecksumMismatch);
  // Damage is not transient: one read, no retries, straight to recompile.
  EXPECT_EQ(g_injected_reads.load(), 1);
  EXPECT_EQ(store.read_retries(), 0u);
}

}  // namespace
}  // namespace wsn
