#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "sim/simulator.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/random_geometric.h"

namespace wsn {
namespace {

/// Independent reference implementation of the medium semantics, written
/// for clarity rather than speed: per slot, recompute everything from
/// scratch over all nodes.  Differential testing against the production
/// simulator on randomized plans catches bookkeeping bugs (epoch reuse,
/// attribution, half-duplex) that unit tests of either implementation
/// alone would share.
struct RefResult {
  std::vector<Slot> first_rx;
  std::size_t tx = 0;
  std::size_t rx = 0;
  std::size_t duplicates = 0;
  std::size_t collisions = 0;
  Slot delay = 0;
};

RefResult reference_simulate(const Topology& topo, const RelayPlan& plan,
                             Slot max_slots = 4096) {
  const std::size_t n = topo.num_nodes();
  RefResult ref;
  ref.first_rx.assign(n, kNeverSlot);
  ref.first_rx[plan.source] = 0;

  // tx_at[v] = absolute slots at which v transmits (filled on reception).
  std::vector<std::vector<Slot>> tx_at(n);
  for (Slot offset : plan.tx_offsets[plan.source]) {
    tx_at[plan.source].push_back(offset);
  }

  for (Slot slot = 1; slot <= max_slots; ++slot) {
    // Who transmits this slot?
    std::vector<char> transmitting(n, 0);
    bool anyone_later = false;
    for (NodeId v = 0; v < n; ++v) {
      for (Slot s : tx_at[v]) {
        if (s == slot) transmitting[v] = 1;
        if (s >= slot) anyone_later = true;
      }
    }
    if (!anyone_later) break;

    for (NodeId v = 0; v < n; ++v) {
      if (transmitting[v]) ref.tx += 1;
    }
    // Who hears what?
    for (NodeId u = 0; u < n; ++u) {
      if (transmitting[u]) continue;
      std::size_t heard = 0;
      for (NodeId v : topo.neighbors(u)) {
        if (transmitting[v]) ++heard;
      }
      if (heard == 1) {
        ref.rx += 1;
        if (ref.first_rx[u] == kNeverSlot) {
          ref.first_rx[u] = slot;
          ref.delay = std::max(ref.delay, slot);
          for (Slot offset : plan.tx_offsets[u]) {
            tx_at[u].push_back(slot + offset);
          }
        } else {
          ref.duplicates += 1;
        }
      } else if (heard > 1) {
        ref.collisions += 1;
      }
    }
  }
  return ref;
}

void expect_equivalent(const Topology& topo, const RelayPlan& plan) {
  const BroadcastOutcome out = simulate_broadcast(topo, plan);
  const RefResult ref = reference_simulate(topo, plan);
  ASSERT_EQ(out.stats.tx, ref.tx);
  ASSERT_EQ(out.stats.rx, ref.rx);
  ASSERT_EQ(out.stats.duplicates, ref.duplicates);
  ASSERT_EQ(out.stats.collisions, ref.collisions);
  ASSERT_EQ(out.stats.delay, ref.delay);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    ASSERT_EQ(out.first_rx[v], ref.first_rx[v]) << v;
  }
}

RelayPlan random_plan(const Topology& topo, Xoshiro256& rng) {
  const auto source =
      static_cast<NodeId>(rng.below(topo.num_nodes()));
  RelayPlan plan = RelayPlan::empty(topo.num_nodes(), source);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (v == source) continue;
    const std::uint64_t roll = rng.below(10);
    if (roll < 5) {
      plan.tx_offsets[v] = {static_cast<Slot>(1 + rng.below(3))};
    } else if (roll < 7) {
      const Slot first = static_cast<Slot>(1 + rng.below(3));
      plan.tx_offsets[v] = {first,
                            first + static_cast<Slot>(1 + rng.below(3))};
    }
  }
  return plan;
}

TEST(SimDifferential, RandomPlansOnMesh2D4) {
  const Mesh2D4 topo(9, 7);
  Xoshiro256 rng(101);
  for (int round = 0; round < 40; ++round) {
    expect_equivalent(topo, random_plan(topo, rng));
  }
}

TEST(SimDifferential, RandomPlansOnMesh2D8) {
  const Mesh2D8 topo(8, 6);
  Xoshiro256 rng(202);
  for (int round = 0; round < 40; ++round) {
    expect_equivalent(topo, random_plan(topo, rng));
  }
}

TEST(SimDifferential, RandomPlansOnBrickMesh) {
  const Mesh2D3 topo(10, 8);
  Xoshiro256 rng(303);
  for (int round = 0; round < 40; ++round) {
    expect_equivalent(topo, random_plan(topo, rng));
  }
}

TEST(SimDifferential, RandomPlansOnRandomTopology) {
  const RandomGeometric topo(60, 8.0, 2.0, 404);
  Xoshiro256 rng(505);
  for (int round = 0; round < 40; ++round) {
    expect_equivalent(topo, random_plan(topo, rng));
  }
}

TEST(SimDifferential, FloodingStressOnDenseGraph) {
  // Dense random graph + everyone-relays: maximum collision churn.
  const RandomGeometric topo(80, 6.0, 2.5, 606);
  Xoshiro256 rng(707);
  for (int round = 0; round < 10; ++round) {
    const auto source = static_cast<NodeId>(rng.below(topo.num_nodes()));
    RelayPlan plan = RelayPlan::empty(topo.num_nodes(), source);
    for (NodeId v = 0; v < topo.num_nodes(); ++v) {
      plan.tx_offsets[v] = {static_cast<Slot>(1 + rng.below(2))};
    }
    plan.tx_offsets[source] = {1};
    expect_equivalent(topo, plan);
  }
}

}  // namespace
}  // namespace wsn
