#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wsn {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowAppliesEscaping) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"x,y", "z"});
  EXPECT_EQ(out.str(), "\"x,y\",z\n");
}

TEST(Csv, TypedRowMixesTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.typed_row("2D-4", std::size_t{170}, 2.18e-2);
  const std::string line = out.str();
  EXPECT_NE(line.find("2D-4,170,"), std::string::npos);
  EXPECT_NE(line.find("0.0218"), std::string::npos);
}

TEST(Csv, DoubleRoundTripsExactly) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.typed_row(0.1 + 0.2);
  double parsed = 0.0;
  EXPECT_EQ(std::sscanf(out.str().c_str(), "%lf", &parsed), 1);
  EXPECT_EQ(parsed, 0.1 + 0.2);
}

TEST(Csv, MultipleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"h1", "h2"});
  csv.typed_row(1, 2);
  EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
}

TEST(Csv, EmptyFieldStaysEmpty) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"", "b"});
  EXPECT_EQ(out.str(), ",b\n");
}

}  // namespace
}  // namespace wsn
