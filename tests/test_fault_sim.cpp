#include <gtest/gtest.h>

#include "fault/models.h"
#include "sim/pipeline.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

Mesh2D4 path(int n) { return Mesh2D4(n, 1); }

RelayPlan all_relay_path(int n) {
  RelayPlan plan = RelayPlan::empty(static_cast<std::size_t>(n), 0);
  for (NodeId v = 1; v < static_cast<NodeId>(n); ++v) {
    plan.tx_offsets[v] = {1};
  }
  return plan;
}

/// Drops every packet on one directed link, everything else perfect.
class DropOneLink final : public FaultModel {
 public:
  DropOneLink(NodeId tx, NodeId rx) : tx_(tx), rx_(rx) {}
  bool link_delivers(NodeId tx, NodeId rx, Slot) override {
    return !(tx == tx_ && rx == rx_);
  }

 private:
  NodeId tx_;
  NodeId rx_;
};

void expect_same_outcome(const BroadcastOutcome& a,
                         const BroadcastOutcome& b) {
  EXPECT_EQ(a.stats.reached, b.stats.reached);
  EXPECT_EQ(a.stats.tx, b.stats.tx);
  EXPECT_EQ(a.stats.rx, b.stats.rx);
  EXPECT_EQ(a.stats.duplicates, b.stats.duplicates);
  EXPECT_EQ(a.stats.collisions, b.stats.collisions);
  EXPECT_EQ(a.stats.lost_to_fading, b.stats.lost_to_fading);
  EXPECT_EQ(a.stats.lost_to_crash, b.stats.lost_to_crash);
  EXPECT_EQ(a.stats.delay, b.stats.delay);
  EXPECT_DOUBLE_EQ(a.stats.tx_energy, b.stats.tx_energy);
  EXPECT_DOUBLE_EQ(a.stats.rx_energy, b.stats.rx_energy);
  EXPECT_EQ(a.first_rx, b.first_rx);
  ASSERT_EQ(a.transmissions.size(), b.transmissions.size());
  for (std::size_t i = 0; i < a.transmissions.size(); ++i) {
    EXPECT_EQ(a.transmissions[i].slot, b.transmissions[i].slot);
    EXPECT_EQ(a.transmissions[i].node, b.transmissions[i].node);
    EXPECT_EQ(a.transmissions[i].delivered, b.transmissions[i].delivered);
    EXPECT_EQ(a.transmissions[i].fresh, b.transmissions[i].fresh);
  }
}

TEST(FaultSim, ZeroLossModelMatchesPerfectMedium) {
  const Mesh2D4 topo(8, 8);
  RelayPlan plan = RelayPlan::empty(64, 10);
  for (NodeId v = 0; v < 64; ++v) plan.tx_offsets[v] = {1};
  const auto perfect = simulate_broadcast(topo, plan);
  IidLossModel none(0.0, 123);
  SimOptions options;
  options.faults = &none;
  const auto faulted = simulate_broadcast(topo, plan, options);
  expect_same_outcome(perfect, faulted);
  EXPECT_EQ(faulted.stats.lost_to_fading, 0u);
  EXPECT_EQ(faulted.stats.lost_to_crash, 0u);
}

TEST(FaultSim, FadedLinkStrandsDownstreamAndIsCounted) {
  const auto topo = path(4);
  const RelayPlan plan = all_relay_path(4);
  DropOneLink drop(1, 2);  // the 1 -> 2 hop always fades
  SimOptions options;
  options.faults = &drop;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.first_rx[1], 1u);
  EXPECT_EQ(out.first_rx[2], kNeverSlot);
  EXPECT_EQ(out.first_rx[3], kNeverSlot);
  EXPECT_EQ(out.stats.reached, 2u);
  EXPECT_EQ(out.stats.lost_to_fading, 1u);  // exactly the 1->2 delivery
  EXPECT_EQ(out.stats.lost_to_crash, 0u);
}

TEST(FaultSim, FadedPacketDoesNotInterfere) {
  // 5-node path, source in the middle: its two relays transmit in the same
  // slot and collide at the source under a perfect medium.  If one of the
  // two signals fades, the other must now decode -- a faded packet is
  // below the interference threshold too.
  const auto topo5 = path(5);
  RelayPlan plan5 = RelayPlan::empty(5, 2);  // source in the middle
  plan5.tx_offsets[1] = {1};
  plan5.tx_offsets[3] = {1};
  // Slot 1: source 2 transmits, 1 and 3 decode.  Slot 2: 1 and 3 both
  // transmit; node 2 (their shared neighbor) sees a collision.
  const auto perfect = simulate_broadcast(topo5, plan5);
  EXPECT_EQ(perfect.stats.collisions, 1u);

  DropOneLink drop(1, 2);  // 1's packet fades at 2; 3's now decodes
  SimOptions options;
  options.faults = &drop;
  const auto faded = simulate_broadcast(topo5, plan5, options);
  EXPECT_EQ(faded.stats.collisions, 0u);
  EXPECT_EQ(faded.stats.lost_to_fading, 1u);
  EXPECT_EQ(faded.stats.duplicates, perfect.stats.duplicates + 1);
}

TEST(FaultSim, CrashedTransmitterLosesTheSlot) {
  const auto topo = path(3);
  const RelayPlan plan = all_relay_path(3);
  // Node 1 receives at slot 1, would relay at slot 2 -- but is down then.
  CrashScheduleModel crash(3, {CrashEvent{1, 2, 3}});
  SimOptions options;
  options.faults = &crash;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.stats.tx, 1u);  // only the source fired
  EXPECT_EQ(out.first_rx[2], kNeverSlot);
  // Node 1 has two neighbors; its suppressed transmission charges both.
  EXPECT_EQ(out.stats.lost_to_crash, 2u);
  EXPECT_EQ(out.first_tx(1), kNeverSlot);
}

TEST(FaultSim, CrashedReceiverMissesThePacket) {
  const auto topo = path(3);
  const RelayPlan plan = all_relay_path(3);
  // Node 1 is down exactly when the source transmits, then recovers; with
  // no second source transmission the wavefront dies at node 1.
  CrashScheduleModel crash(3, {CrashEvent{1, 1, 2}});
  SimOptions options;
  options.faults = &crash;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.first_rx[1], kNeverSlot);
  EXPECT_EQ(out.stats.reached, 1u);
  EXPECT_EQ(out.stats.lost_to_crash, 1u);
}

TEST(FaultSim, RecoveredNodeRejoinsViaRetransmission) {
  const auto topo = path(3);
  RelayPlan plan = all_relay_path(3);
  plan.tx_offsets[0] = {1, 3};  // source retransmits at slot 3
  CrashScheduleModel crash(3, {CrashEvent{1, 1, 2}});
  SimOptions options;
  options.faults = &crash;
  const auto out = simulate_broadcast(topo, plan, options);
  // Missed the slot-1 delivery while down, caught the slot-3 repeat.
  EXPECT_EQ(out.first_rx[1], 3u);
  EXPECT_EQ(out.first_rx[2], 4u);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(FaultSim, SameSeedSameOutcome) {
  // The acceptance-criterion determinism check: identical seeds replay the
  // identical broadcast, transmission for transmission.
  const Mesh2D4 topo(8, 8);
  RelayPlan plan = RelayPlan::empty(64, 27);
  for (NodeId v = 0; v < 64; ++v) plan.tx_offsets[v] = {1, 2};
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadull}) {
    IidLossModel a(0.3, seed);
    IidLossModel b(0.3, seed);
    SimOptions oa;
    oa.faults = &a;
    SimOptions ob;
    ob.faults = &b;
    expect_same_outcome(simulate_broadcast(topo, plan, oa),
                        simulate_broadcast(topo, plan, ob));
  }
}

TEST(FaultSim, DifferentSeedsDiffer) {
  const Mesh2D4 topo(8, 8);
  RelayPlan plan = RelayPlan::empty(64, 27);
  for (NodeId v = 0; v < 64; ++v) plan.tx_offsets[v] = {1};
  IidLossModel a(0.3, 1);
  IidLossModel b(0.3, 2);
  SimOptions oa;
  oa.faults = &a;
  SimOptions ob;
  ob.faults = &b;
  const auto ra = simulate_broadcast(topo, plan, oa);
  const auto rb = simulate_broadcast(topo, plan, ob);
  EXPECT_NE(ra.first_rx, rb.first_rx);
}

TEST(FaultSim, SameModelInstanceReplaysAcrossRuns) {
  // The resolver simulates the same plan repeatedly with one options
  // struct; begin_run() must make that idempotent even for the stateful
  // Gilbert-Elliott chains.
  const Mesh2D4 topo(6, 6);
  RelayPlan plan = RelayPlan::empty(36, 0);
  for (NodeId v = 0; v < 36; ++v) plan.tx_offsets[v] = {1};
  GilbertElliottModel model = GilbertElliottModel::from_mean_loss(0.2, 4, 9);
  SimOptions options;
  options.faults = &model;
  const auto first = simulate_broadcast(topo, plan, options);
  const auto second = simulate_broadcast(topo, plan, options);
  expect_same_outcome(first, second);
}

TEST(FaultPipeline, ZeroLossMatchesPerfectMedium) {
  const Mesh2D4 topo(8, 4);
  RelayPlan plan = RelayPlan::empty(32, 0);
  for (NodeId v = 0; v < 32; ++v) plan.tx_offsets[v] = {1};
  PipelineOptions options;
  options.packets = 3;
  options.interval = 10;
  const auto perfect = simulate_pipeline(topo, plan, options);
  IidLossModel none(0.0, 5);
  options.sim.faults = &none;
  const auto faulted = simulate_pipeline(topo, plan, options);
  ASSERT_EQ(perfect.per_packet.size(), faulted.per_packet.size());
  for (std::size_t p = 0; p < perfect.per_packet.size(); ++p) {
    EXPECT_EQ(perfect.per_packet[p].reached, faulted.per_packet[p].reached);
    EXPECT_EQ(perfect.per_packet[p].tx, faulted.per_packet[p].tx);
    EXPECT_EQ(perfect.per_packet[p].rx, faulted.per_packet[p].rx);
    EXPECT_EQ(perfect.per_packet[p].delay, faulted.per_packet[p].delay);
  }
  EXPECT_EQ(faulted.aggregate.lost_to_fading, 0u);
  EXPECT_EQ(faulted.aggregate.lost_to_crash, 0u);
}

TEST(FaultPipeline, LossIsCountedPerPacketAndAggregated) {
  const auto topo = path(4);
  const RelayPlan plan = all_relay_path(4);
  DropOneLink drop(2, 3);
  PipelineOptions options;
  options.packets = 2;
  options.interval = 8;
  options.sim.faults = &drop;
  const auto out = simulate_pipeline(topo, plan, options);
  // Each packet's 2 -> 3 delivery fades; node 3 never gets either.
  EXPECT_EQ(out.per_packet[0].lost_to_fading, 1u);
  EXPECT_EQ(out.per_packet[1].lost_to_fading, 1u);
  EXPECT_EQ(out.aggregate.lost_to_fading, 2u);
  EXPECT_EQ(out.per_packet[0].reached, 3u);
  EXPECT_EQ(out.per_packet[1].reached, 3u);
}

TEST(FaultPipeline, DeterministicUnderSeededLoss) {
  const Mesh2D4 topo(6, 6);
  RelayPlan plan = RelayPlan::empty(36, 0);
  for (NodeId v = 0; v < 36; ++v) plan.tx_offsets[v] = {1};
  PipelineOptions options;
  options.packets = 3;
  options.interval = 6;
  IidLossModel a(0.2, 77);
  options.sim.faults = &a;
  const auto ra = simulate_pipeline(topo, plan, options);
  IidLossModel b(0.2, 77);
  options.sim.faults = &b;
  const auto rb = simulate_pipeline(topo, plan, options);
  ASSERT_EQ(ra.per_packet.size(), rb.per_packet.size());
  for (std::size_t p = 0; p < ra.per_packet.size(); ++p) {
    EXPECT_EQ(ra.per_packet[p].reached, rb.per_packet[p].reached);
    EXPECT_EQ(ra.per_packet[p].rx, rb.per_packet[p].rx);
    EXPECT_EQ(ra.per_packet[p].lost_to_fading,
              rb.per_packet[p].lost_to_fading);
    EXPECT_EQ(ra.per_packet[p].delay, rb.per_packet[p].delay);
  }
}

}  // namespace
}  // namespace wsn
