#include "analysis/bench_diff.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_bench_diff_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

JsonValue parse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, &error)) << error;
  return doc;
}

const DiffMetric* find_metric(const DiffReport& report,
                              const std::string& entry,
                              const std::string& metric) {
  for (const DiffMetric& m : report.metrics) {
    if (m.entry == entry && m.metric == metric) return &m;
  }
  return nullptr;
}

TEST(BenchDiff, VerdictsFollowMetricDirection) {
  const JsonValue a = parse(
      "{\"schema\":\"meshbcast.bench\",\"bench\":\"perf\",\"results\":["
      "{\"name\":\"resolve\",\"jobs_per_sec\":100.0,\"mean_ms\":10.0,"
      "\"iters\":5}]}");
  const JsonValue b = parse(
      "{\"schema\":\"meshbcast.bench\",\"bench\":\"perf\",\"results\":["
      "{\"name\":\"resolve\",\"jobs_per_sec\":150.0,\"mean_ms\":12.0,"
      "\"iters\":6}]}");
  const DiffReport report = diff_bench_docs(a, b, {});
  EXPECT_EQ(report.bench_a, "perf");

  // Throughput up 50% -> improved; latency up 20% -> regressed; a
  // directionless count change -> "changed", never a regression.
  const DiffMetric* rate = find_metric(report, "resolve", "jobs_per_sec");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->verdict, "improved");
  EXPECT_EQ(rate->direction, 1);
  EXPECT_DOUBLE_EQ(rate->ratio, 1.5);
  const DiffMetric* latency = find_metric(report, "resolve", "mean_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->verdict, "regressed");
  EXPECT_EQ(latency->direction, -1);
  const DiffMetric* iters = find_metric(report, "resolve", "iters");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->verdict, "changed");
  EXPECT_EQ(iters->direction, 0);

  EXPECT_EQ(report.improved(), 1u);
  EXPECT_EQ(report.regressed(), 1u);
  EXPECT_EQ(report.count("changed"), 1u);
}

TEST(BenchDiff, ToleranceAbsorbsSmallDeltas) {
  const JsonValue a = parse(
      "{\"schema\":\"meshbcast.bench\",\"results\":["
      "{\"name\":\"x\",\"jobs_per_sec\":100.0,\"p95_ms\":10.0}]}");
  const JsonValue b = parse(
      "{\"schema\":\"meshbcast.bench\",\"results\":["
      "{\"name\":\"x\",\"jobs_per_sec\":97.0,\"p95_ms\":10.4}]}");
  DiffOptions loose;
  loose.tolerance = 0.05;
  const DiffReport within = diff_bench_docs(a, b, loose);
  EXPECT_EQ(within.regressed(), 0u);
  EXPECT_EQ(within.count("equal"), 2u);

  DiffOptions strict;
  strict.tolerance = 0.01;
  const DiffReport beyond = diff_bench_docs(a, b, strict);
  EXPECT_EQ(beyond.regressed(), 2u);
}

TEST(BenchDiff, OneSidedEntriesAndMetricsAreFlagged) {
  const JsonValue a = parse(
      "{\"schema\":\"meshbcast.bench.scenario\",\"results\":["
      "{\"workers\":1,\"cold_jobs_per_sec\":50.0,\"old_only\":1.0},"
      "{\"workers\":2,\"cold_jobs_per_sec\":90.0}]}");
  const JsonValue b = parse(
      "{\"schema\":\"meshbcast.bench.scenario\",\"results\":["
      "{\"workers\":1,\"cold_jobs_per_sec\":50.0,\"new_only\":2.0},"
      "{\"workers\":4,\"cold_jobs_per_sec\":120.0}]}");
  const DiffReport report = diff_bench_docs(a, b, {});

  const DiffMetric* gone = find_metric(report, "workers=1", "old_only");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->verdict, "only-a");
  const DiffMetric* added = find_metric(report, "workers=1", "new_only");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->verdict, "only-b");
  const DiffMetric* dropped = find_metric(report, "workers=2", "(entry)");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->verdict, "only-a");
  const DiffMetric* fresh = find_metric(report, "workers=4", "(entry)");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->verdict, "only-b");
  // One-sided rows never count as regressions.
  EXPECT_EQ(report.regressed(), 0u);
}

TEST(BenchDiff, MismatchedSchemasAreSkippedWithANote) {
  const JsonValue a = parse(
      "{\"schema\":\"meshbcast.bench\",\"results\":[]}");
  const JsonValue b = parse(
      "{\"schema\":\"meshbcast.bench.scenario\",\"results\":[]}");
  const DiffReport report = diff_bench_docs(a, b, {});
  EXPECT_TRUE(report.metrics.empty());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("schema mismatch"), std::string::npos);

  const JsonValue unknown = parse("{\"schema\":\"whatever\"}");
  const DiffReport bad = diff_bench_docs(unknown, a, {});
  ASSERT_EQ(bad.notes.size(), 1u);
  EXPECT_NE(bad.notes[0].find("unknown schema"), std::string::npos);
}

TEST(BenchDiff, FileVariantDiffsAndJsonRoundTrips) {
  const TempDir tmp("files");
  const std::string path_a = (tmp.path / "a.json").string();
  const std::string path_b = (tmp.path / "b.json").string();
  {
    std::ofstream out(path_a);
    out << "{\"schema\":\"meshbcast.bench\",\"bench\":\"perf\","
           "\"results\":[{\"name\":\"r\",\"jobs_per_sec\":100.0}]}\n";
  }
  {
    std::ofstream out(path_b);
    out << "{\"schema\":\"meshbcast.bench\",\"bench\":\"perf\","
           "\"results\":[{\"name\":\"r\",\"jobs_per_sec\":80.0}]}\n";
  }
  const DiffReport report = diff_bench_files(path_a, path_b, {});
  EXPECT_EQ(report.regressed(), 1u);

  std::ostringstream json;
  write_diff_json(json, report, {});
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(json.str(), doc, &error)) << error;
  EXPECT_EQ(doc.string_or("schema", ""), "meshbcast.bench.diff");
  EXPECT_EQ(doc.number_or("regressed", -1), 1.0);
  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->as_array().size(), 1u);
  EXPECT_EQ(metrics->as_array()[0].string_or("verdict", ""), "regressed");

  // Missing inputs fail soft: a note, no metrics.
  const DiffReport missing =
      diff_bench_files((tmp.path / "nope.json").string(), path_b, {});
  EXPECT_TRUE(missing.metrics.empty());
  ASSERT_FALSE(missing.notes.empty());
  EXPECT_NE(missing.notes[0].find("does not exist"), std::string::npos);

  // The text rendering carries the tallies.
  const std::string text = diff_text(report);
  EXPECT_NE(text.find("1 regressed"), std::string::npos);
}

}  // namespace
}  // namespace wsn
