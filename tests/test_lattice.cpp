#include "geometry/lattice.h"

#include <gtest/gtest.h>

#include "geometry/vec2.h"

namespace wsn {
namespace {

TEST(ZRelayLattice, GeneratorsAreMembers) {
  const Vec2 anchor{6, 8};
  // Paper rule R5: from (x, y), the nodes (x-2,y-1), (x-1,y+2), (x+1,y-2),
  // (x+2,y+1) are z-relays.
  EXPECT_TRUE(in_zrelay_lattice(anchor, anchor));
  EXPECT_TRUE(in_zrelay_lattice({4, 7}, anchor));
  EXPECT_TRUE(in_zrelay_lattice({5, 10}, anchor));
  EXPECT_TRUE(in_zrelay_lattice({7, 6}, anchor));
  EXPECT_TRUE(in_zrelay_lattice({8, 9}, anchor));
}

TEST(ZRelayLattice, UnitNeighborsAreNotMembers) {
  const Vec2 anchor{6, 8};
  for (Vec2 step : {Vec2{1, 0}, Vec2{-1, 0}, Vec2{0, 1}, Vec2{0, -1}}) {
    EXPECT_FALSE(in_zrelay_lattice(anchor + step, anchor));
  }
}

TEST(ZRelayLattice, ClosedUnderGeneratorSums) {
  const Vec2 anchor{0, 0};
  for (int a = -3; a <= 3; ++a) {
    for (int b = -3; b <= 3; ++b) {
      const Vec2 p = a * Vec2{2, 1} + b * Vec2{-1, 2};
      EXPECT_TRUE(in_zrelay_lattice(p, anchor))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(ZRelayLattice, PerfectLeeCoverProperty) {
  // Every point of a window has EXACTLY ONE lattice point within Manhattan
  // distance 1 -- the property that gives the 3D-6 protocol its 5/6 ETR.
  const Vec2 anchor{3, 5};
  for (int y = -10; y <= 10; ++y) {
    for (int x = -10; x <= 10; ++x) {
      int covers = 0;
      for (Vec2 step : {Vec2{0, 0}, Vec2{1, 0}, Vec2{-1, 0}, Vec2{0, 1},
                        Vec2{0, -1}}) {
        if (in_zrelay_lattice(Vec2{x, y} + step, anchor)) ++covers;
      }
      EXPECT_EQ(covers, 1) << "(" << x << "," << y << ")";
    }
  }
}

TEST(ZRelayLattice, CoveringZRelayIsWithinDistanceOne) {
  const Vec2 anchor{6, 8};
  for (int y = 0; y <= 20; ++y) {
    for (int x = 0; x <= 20; ++x) {
      const Vec2 cover = covering_zrelay({x, y}, anchor);
      EXPECT_LE(manhattan(cover, {x, y}), 1);
      EXPECT_TRUE(in_zrelay_lattice(cover, anchor));
    }
  }
}

TEST(ZRelayLattice, LatticeDensityIsOneFifth) {
  // Index-5 sublattice: a large grid holds ~mn/5 members.
  const auto members = zrelay_lattice_in_grid({1, 1}, 50, 50);
  EXPECT_EQ(members.size(), 500u);  // exactly 2500/5
}

TEST(ZRelayLattice, GridMembersSortedRowMajorAndInGrid) {
  const auto members = zrelay_lattice_in_grid({6, 8}, 16, 16);
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_GE(members[i].x, 1);
    EXPECT_LE(members[i].x, 16);
    EXPECT_GE(members[i].y, 1);
    EXPECT_LE(members[i].y, 16);
    if (i > 0) {
      const bool ordered = members[i - 1].y < members[i].y ||
                           (members[i - 1].y == members[i].y &&
                            members[i - 1].x < members[i].x);
      EXPECT_TRUE(ordered);
    }
  }
}

TEST(ZRelayLattice, UncoveredCellsHugTheBorder) {
  const auto uncovered = uncovered_by_zrelays({6, 8}, 8, 8);
  for (Vec2 u : uncovered) {
    const bool on_border = u.x == 1 || u.x == 8 || u.y == 1 || u.y == 8;
    EXPECT_TRUE(on_border) << to_string(u);
  }
}

TEST(ZRelayLattice, UncoveredMatchesDefinition) {
  const Vec2 anchor{2, 3};
  constexpr int kM = 9;
  constexpr int kN = 7;
  const auto uncovered = uncovered_by_zrelays(anchor, kM, kN);
  const auto members = zrelay_lattice_in_grid(anchor, kM, kN);
  for (int y = 1; y <= kN; ++y) {
    for (int x = 1; x <= kM; ++x) {
      bool covered = false;
      for (Vec2 zr : members) {
        if (manhattan(zr, {x, y}) <= 1) covered = true;
      }
      const bool listed =
          std::find(uncovered.begin(), uncovered.end(), Vec2{x, y}) !=
          uncovered.end();
      EXPECT_EQ(listed, !covered) << "(" << x << "," << y << ")";
    }
  }
}

TEST(ZRelayLattice, AnchorTranslationInvariance) {
  // Membership depends only on the offset from the anchor.
  for (int y = -5; y <= 5; ++y) {
    for (int x = -5; x <= 5; ++x) {
      EXPECT_EQ(in_zrelay_lattice({x, y}, {0, 0}),
                in_zrelay_lattice({x + 7, y + 11}, {7, 11}));
    }
  }
}

}  // namespace
}  // namespace wsn
