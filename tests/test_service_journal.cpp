// service/server + service/journal, live over loopback: request-id
// echo, per-request journaling that balances against client-observed
// outcomes, lifetime counters resuming across a restart on the same
// journal file, SLO gauges on the metrics scrape, request-tagged
// timeline spans, and -- in its own suite so sanitizer filters can
// treat it separately -- crash recovery: a SIGKILLed daemon process
// whose journal reopens with the torn tail truncated and the valid
// prefix intact.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "service/client.h"
#include "service/journal.h"
#include "service/server.h"
#include "store/plan_store.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_service_journal_" + tag + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string plan_request(std::uint64_t id, std::uint64_t source) {
  std::string req = "{\"type\":\"plan\",\"id\":";
  req += std::to_string(id);
  req += ",\"family\":\"2D-4\",\"dims\":[6,4],\"source\":";
  req += std::to_string(source);
  req += "}";
  return req;
}

RpcClient connect_to(const MeshbcastService& service) {
  RpcClient client;
  std::string error;
  EXPECT_TRUE(client.connect(service.address(), error)) << error;
  return client;
}

JsonValue call(RpcClient& client, const std::string& request) {
  JsonValue response;
  std::string error;
  EXPECT_TRUE(client.call_json(request, response, error)) << error;
  return response;
}

/// Polls until the journal file holds at least `want` records (the
/// flusher is asynchronous; responses can beat the batch to disk).
bool wait_for_records(const std::string& path, std::size_t want,
                      JournalReadResult& result) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string error;
  while (std::chrono::steady_clock::now() < deadline) {
    if (read_journal_file(path, result, error) &&
        result.records.size() >= want) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ServiceJournalTest, RequestIdEchoedAndEveryAdmittedRequestJournaled) {
  const TempDir tmp("echo");
  const std::string journal_path = (tmp.path / "requests.wsnj").string();

  RequestJournal journal;
  RequestJournal::Config journal_config;
  journal_config.path = journal_path;
  std::string error;
  ASSERT_TRUE(journal.open(journal_config, error)) << error;

  ServiceConfig config;
  config.journal = &journal;
  MeshbcastService service(std::move(config));
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  // Plans, one simulate, and an inline-lane health call.
  std::vector<double> reqs;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const JsonValue response = call(client, plan_request(i, i - 1));
    EXPECT_TRUE(response.bool_or("ok", false));
    reqs.push_back(response.number_or("req", -1));
  }
  const JsonValue sim = call(
      client,
      "{\"type\":\"simulate\",\"id\":7,\"name\":\"one\","
      "\"family\":\"2D-4\",\"dims\":[6,4],\"sources\":[3],"
      "\"protocols\":[\"paper\"]}");
  EXPECT_TRUE(sim.bool_or("ok", false));
  reqs.push_back(sim.number_or("req", -1));
  const JsonValue health = call(client, "{\"type\":\"health\",\"id\":8}");
  reqs.push_back(health.number_or("req", -1));

  // Every response carries a server request id, strictly increasing.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GT(reqs[i], 0.0) << "response " << i << " lacks req";
    if (i > 0) {
      EXPECT_GT(reqs[i], reqs[i - 1]);
    }
  }
  // A structured execution error carries the id too, and lands in the
  // journal as an error outcome.
  const JsonValue bad = call(
      client,
      "{\"type\":\"plan\",\"id\":9,\"family\":\"9D-X\",\"dims\":[6,4],"
      "\"source\":0}");
  EXPECT_EQ(bad.string_or("type", ""), "error");
  EXPECT_GT(bad.number_or("req", -1), reqs.back());
  // A frame that fails to parse never gets a server id: there is no
  // request to attribute it to.
  const JsonValue unparsed = call(client, "{\"type\":\"teleport\"}");
  EXPECT_EQ(unparsed.string_or("type", ""), "error");
  EXPECT_EQ(unparsed.number_or("req", -1), -1.0);

  service.shutdown();
  journal.close();

  // The journal holds exactly the admitted-lane requests: three plans,
  // one simulate, one failed plan.  health and the parse failure never
  // ran on the admission lane, so they are absent by design.
  JournalReadResult result;
  ASSERT_TRUE(read_journal_file(journal_path, result, error)) << error;
  ASSERT_EQ(result.records.size(), 5u);
  EXPECT_EQ(result.torn_bytes, 0u);
  EXPECT_EQ(result.records[4].outcome, JournalOutcome::kError);
  EXPECT_EQ(result.records[4].method, JournalMethod::kPlan);
  for (std::size_t i = 0; i < 4; ++i) {
    const JournalRecord& r = result.records[i];
    EXPECT_EQ(static_cast<double>(r.seq), reqs[i]) << i;
    EXPECT_EQ(r.outcome, JournalOutcome::kOk) << i;
    EXPECT_EQ(r.method,
              i < 3 ? JournalMethod::kPlan : JournalMethod::kSimulate)
        << i;
    EXPECT_NE(r.flags & kJournalHasClientId, 0) << i;
    EXPECT_GT(r.ts_micros, 0u) << i;
    // Stage decomposition: total is the sum of its parts, and the
    // request did measurable work.
    EXPECT_NEAR(r.total_ms,
                r.admission_ms + r.queue_ms + r.exec_ms + r.emit_ms, 1e-9)
        << i;
    EXPECT_GT(r.exec_ms, 0.0) << i;
    EXPECT_NE(r.fp_lo, 0u) << i;  // plan/spec fingerprint recorded
  }
  // Plan fingerprints are full 128-bit keys; simulate carries the
  // matrix fingerprint in fp_lo only.
  EXPECT_NE(result.records[0].fp_hi, 0u);
  EXPECT_EQ(result.records[3].fp_hi, 0u);
}

TEST(ServiceJournalTest, LifetimeCountersResumeAcrossRestart) {
  const TempDir tmp("restart");
  const std::string journal_path = (tmp.path / "requests.wsnj").string();
  std::string error;
  double last_req = 0.0;

  {
    RequestJournal journal;
    RequestJournal::Config journal_config;
    journal_config.path = journal_path;
    ASSERT_TRUE(journal.open(journal_config, error)) << error;
    ServiceConfig config;
    config.journal = &journal;
    MeshbcastService service(std::move(config));
    ASSERT_TRUE(service.start(error)) << error;
    RpcClient client = connect_to(service);
    for (std::uint64_t i = 1; i <= 2; ++i) {
      const JsonValue response = call(client, plan_request(i, i));
      EXPECT_TRUE(response.bool_or("ok", false));
      last_req = response.number_or("req", -1);
    }
    service.shutdown();
    journal.close();
  }

  // Second daemon generation on the same journal file.
  RequestJournal journal;
  RequestJournal::Config journal_config;
  journal_config.path = journal_path;
  ASSERT_TRUE(journal.open(journal_config, error)) << error;
  EXPECT_EQ(journal.replay().records, 2u);
  EXPECT_EQ(static_cast<double>(journal.replay().max_seq), last_req);

  MetricsRegistry metrics;
  ServiceConfig config;
  config.journal = &journal;
  config.metrics = &metrics;
  MeshbcastService service(std::move(config));
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  // Request ids continue after the replayed prefix -- no reuse.
  const JsonValue response = call(client, plan_request(9, 3));
  EXPECT_TRUE(response.bool_or("ok", false));
  EXPECT_GT(response.number_or("req", -1), last_req);

  // The health report exposes lifetime (pre-crash + current) totals.
  const JsonValue health = call(client, "{\"type\":\"health\"}");
  EXPECT_EQ(health.number_or("lifetime_requests", -1), 3.0);
  EXPECT_EQ(health.number_or("lifetime_served", -1), 3.0);
  EXPECT_EQ(health.number_or("lifetime_errors", -1), 0.0);

  // And the metrics scrape carries the same as gauges.
  std::string raw;
  ASSERT_TRUE(client.call("{\"type\":\"metrics\"}", raw, error)) << error;
  EXPECT_NE(raw.find("service.lifetime_served"), std::string::npos);

  service.shutdown();
  journal.close();
  EXPECT_EQ(journal.lifetime().records, 3u);
  EXPECT_EQ(journal.lifetime().served, 3u);
}

TEST(ServiceJournalTest, SloGaugesExposedOnMetricsScrape) {
  MetricsRegistry metrics;
  ServiceConfig config;
  config.metrics = &metrics;
  config.slo_window = 64;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(call(client, plan_request(i, i)).bool_or("ok", false));
  }

  std::string raw;
  ASSERT_TRUE(client.call("{\"type\":\"metrics\"}", raw, error)) << error;
  for (const char* name :
       {"service.slo.p50_ms", "service.slo.p95_ms", "service.slo.p99_ms",
        "service.slo.error_rate", "service.slo.shed_rate",
        "service.slo.window_requests"}) {
    EXPECT_NE(raw.find(name), std::string::npos) << name;
  }

  // Four served requests, no errors: the window says so.
  JsonValue doc;
  ASSERT_TRUE(parse_json(raw, doc));
  const JsonValue* gauges = doc.find("metrics")->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->number_or("service.slo.window_requests", -1), 4.0);
  EXPECT_EQ(gauges->number_or("service.slo.error_rate", -1), 0.0);
  EXPECT_GT(gauges->number_or("service.slo.p50_ms", -1), 0.0);
  service.shutdown();
}

TEST(ServiceJournalTest, TimelineSpansCarryTheRequestTag) {
  Timeline::instance().reset();
  Timeline::instance().set_enabled(true);

  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);
  const JsonValue response = call(client, plan_request(1, 5));
  EXPECT_TRUE(response.bool_or("ok", false));
  const auto req = static_cast<std::uint64_t>(response.number_or("req", 0));
  ASSERT_GT(req, 0u);
  service.shutdown();
  Timeline::instance().set_enabled(false);

  // The request decomposes into its stages, all tagged with its id.
  std::vector<std::string> tagged;
  for (const TimelineThreadDump& thread : Timeline::instance().snapshot()) {
    for (const TimelineRecord& record : thread.records) {
      if (record.tag == req) tagged.emplace_back(record.name);
    }
  }
  for (const char* stage : {"service.admission", "service.queue_wait",
                            "service.plan", "service.emit"}) {
    EXPECT_NE(std::find(tagged.begin(), tagged.end(), stage), tagged.end())
        << stage << " missing from tagged spans";
  }
  Timeline::instance().reset();
}

// Crash recovery proper: a child daemon process is SIGKILLed mid-load
// and its journal must reopen clean.  Kept out of ServiceJournalTest so
// the TSan suite filter (which runs Journal*/ServiceJournal*) never
// forks under the sanitizer.
TEST(CrashRecoveryTest, SigkilledDaemonJournalReopensTruncated) {
  const TempDir tmp("sigkill");
  const std::string journal_path = (tmp.path / "requests.wsnj").string();
  const std::string socket_path = (tmp.path / "daemon.sock").string();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: a daemon with an eager flusher, parked until SIGKILL.
    RequestJournal journal;
    RequestJournal::Config journal_config;
    journal_config.path = journal_path;
    journal_config.flush_batch = 1;
    journal_config.flush_interval_ms = 1;
    std::string error;
    if (!journal.open(journal_config, error)) ::_exit(3);
    ServiceConfig config;
    config.journal = &journal;
    config.unix_path = socket_path;
    MeshbcastService service(std::move(config));
    if (!service.start(error)) ::_exit(4);
    for (;;) ::pause();
  }

  // Parent: wait for the socket, drive a handful of plans through.
  RpcClient client;
  std::string error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool connected = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (client.connect("unix:" + socket_path, error)) {
      connected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!connected) {
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    FAIL() << "daemon never came up: " << error;
  }
  constexpr std::uint64_t kRequests = 6;
  for (std::uint64_t i = 1; i <= kRequests; ++i) {
    const JsonValue response = call(client, plan_request(i, i % 24));
    EXPECT_TRUE(response.bool_or("ok", false));
  }
  // All six responses are in hand; wait for the eager flusher to land
  // them, then kill without warning.
  JournalReadResult before;
  ASSERT_TRUE(wait_for_records(journal_path, kRequests, before));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  ASSERT_EQ(::waitpid(child, nullptr, 0), child);

  // Simulate the torn append a crash can leave: a half-written record
  // (SIGKILL itself lands between writes, so the tear is synthesized to
  // make the truncation path deterministic).
  {
    JournalRecord torn;
    torn.seq = kRequests + 1;
    std::ofstream out(journal_path,
                      std::ios::binary | std::ios::app);
    out << encode_journal_record(torn).substr(0, kJournalRecordSize / 2);
  }
  JournalReadResult after;
  ASSERT_TRUE(read_journal_file(journal_path, after, error)) << error;
  EXPECT_EQ(after.torn_bytes, kJournalRecordSize / 2);

  // Restart generation: open truncates the tear, replays the prefix,
  // and the next daemon continues the id sequence past it.
  RequestJournal journal;
  RequestJournal::Config journal_config;
  journal_config.path = journal_path;
  ASSERT_TRUE(journal.open(journal_config, error)) << error;
  EXPECT_EQ(journal.replay().records, kRequests);
  EXPECT_EQ(journal.replay().max_seq, kRequests);
  EXPECT_EQ(journal.replay().served, kRequests);
  EXPECT_EQ(journal.replay().truncated_bytes, kJournalRecordSize / 2);

  ServiceConfig config;
  config.journal = &journal;
  MeshbcastService service(std::move(config));
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient survivor = connect_to(service);
  const JsonValue response = call(survivor, plan_request(99, 0));
  EXPECT_TRUE(response.bool_or("ok", false));
  EXPECT_EQ(response.number_or("req", -1),
            static_cast<double>(kRequests + 1));
  service.shutdown();
  journal.close();

  // And the file itself is clean again: prefix + one new record.
  JournalReadResult final_state;
  ASSERT_TRUE(read_journal_file(journal_path, final_state, error)) << error;
  EXPECT_EQ(final_state.records.size(), kRequests + 1);
  EXPECT_EQ(final_state.torn_bytes, 0u);
}

}  // namespace
}  // namespace wsn
