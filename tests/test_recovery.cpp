#include "fault/recovery.h"

#include <gtest/gtest.h>

#include "fault/models.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Recovery, PolicyNamesRoundTrip) {
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kNone, RecoveryPolicy::kRepeatK,
        RecoveryPolicy::kEchoRepair}) {
    EXPECT_EQ(parse_recovery_policy(to_string(policy)), policy);
  }
}

TEST(RepeatK, MultipliesPlannedTxExactly) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan base = paper_plan(topo, 0);
  for (const unsigned k : {1u, 2u, 3u}) {
    const RelayPlan plan = repeat_k(base, k);
    plan.validate();
    EXPECT_EQ(plan.planned_tx(), base.planned_tx() * k);
  }
}

TEST(RepeatK, RepetitionsShiftByThePatternSpan) {
  RelayPlan plan = RelayPlan::empty(3, 0);
  plan.tx_offsets[0] = {1, 3};
  plan.tx_offsets[1] = {2};
  const RelayPlan doubled = repeat_k(plan, 2);
  EXPECT_EQ(doubled.tx_offsets[0], (std::vector<Slot>{1, 3, 4, 6}));
  EXPECT_EQ(doubled.tx_offsets[1], (std::vector<Slot>{2, 4}));
  EXPECT_TRUE(doubled.tx_offsets[2].empty());
}

TEST(RepeatK, StillFullyReachesOnPerfectMedium) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = repeat_k(paper_plan(topo, 12), 2);
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(EchoRepair, AddsEchoesForFragileNodes) {
  // On the paper's minimal plans most nodes decode exactly once, so the
  // policy must add something; and every echo lands after the original
  // timeline, so fault-free reachability is untouched.
  const Mesh2D4 topo(8, 8);
  const RelayPlan base = paper_plan(topo, 0);
  const RelayPlan repaired = echo_repair(topo, base);
  repaired.validate();
  EXPECT_GT(repaired.planned_tx(), base.planned_tx());
  // Targeted: far cheaper than doubling the plan.
  EXPECT_LT(repaired.planned_tx(), 2 * base.planned_tx());
  const auto out = simulate_broadcast(topo, repaired);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(EchoRepair, SingleFragileNodeGetsExactlyOneEcho) {
  // 2-node path: node 1 decodes exactly once (from the source) and is the
  // only fragile node, so the policy adds exactly one echo.
  const Mesh2D4 topo(2, 1);
  RelayPlan plan = RelayPlan::empty(2, 0);
  plan.tx_offsets[1] = {1};
  const RelayPlan repaired = echo_repair(topo, plan);
  EXPECT_EQ(repaired.planned_tx(), plan.planned_tx() + 1);
}

TEST(EchoRepair, RecoversFromSingleLinkFade) {
  // Deterministic recovery demonstration: fade the one link a fragile
  // node depends on; the bare plan strands it, the echoed plan does not
  // (the echo arrives from the same or another neighbor in a later slot).
  const Mesh2D4 topo(4, 1);
  RelayPlan plan = RelayPlan::empty(4, 0);
  for (NodeId v = 1; v < 4; ++v) plan.tx_offsets[v] = {1};

  class DropFirstDelivery final : public FaultModel {
   public:
    bool link_delivers(NodeId tx, NodeId rx, Slot slot) override {
      return !(tx == 2 && rx == 3 && slot == 3);
    }
  } drop;

  SimOptions options;
  options.faults = &drop;
  const auto bare = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(bare.first_rx[3], kNeverSlot);

  const RelayPlan repaired = echo_repair(topo, plan);
  const auto echoed = simulate_broadcast(topo, repaired, options);
  EXPECT_NE(echoed.first_rx[3], kNeverSlot);
  EXPECT_TRUE(echoed.stats.fully_reached());
}

TEST(ApplyRecovery, NoneIsIdentity) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan base = paper_plan(topo, 7);
  const RelayPlan same =
      apply_recovery(topo, base, RecoveryPolicy::kNone, 3);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(same.tx_offsets[v], base.tx_offsets[v]);
  }
}

TEST(ApplyRecovery, PoliciesAreDeterministic) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan base = paper_plan(topo, 21);
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kRepeatK, RecoveryPolicy::kEchoRepair}) {
    const RelayPlan a = apply_recovery(topo, base, policy, 2);
    const RelayPlan b = apply_recovery(topo, base, policy, 2);
    for (NodeId v = 0; v < topo.num_nodes(); ++v) {
      EXPECT_EQ(a.tx_offsets[v], b.tx_offsets[v]);
    }
  }
}

}  // namespace
}  // namespace wsn
