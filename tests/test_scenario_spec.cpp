#include "scenario/spec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace wsn {
namespace {

ScenarioSpec spec_of(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, &error)) << error;
  ScenarioSpec spec;
  EXPECT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  return spec;
}

std::string error_of(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, &error)) << error;
  ScenarioSpec spec;
  EXPECT_FALSE(parse_scenario_spec(doc, spec, error));
  return error;
}

TEST(ScenarioSpec, MinimalEntryGetsPaperDefaults) {
  const ScenarioSpec spec =
      spec_of("{\"scenarios\": [{\"family\": \"2D-4\"}]}");
  ASSERT_EQ(spec.entries.size(), 1u);
  const ScenarioEntry& e = spec.entries[0];
  EXPECT_EQ(e.name, "2D-4");  // defaults to the family
  EXPECT_EQ(e.source_policy, ScenarioEntry::SourcePolicy::kCenter);
  EXPECT_EQ(e.protocols, std::vector<std::string>{"paper"});
  EXPECT_EQ(e.seeds, std::vector<std::uint64_t>{1});
  EXPECT_EQ(e.repeats, 1u);
  EXPECT_EQ(e.packet_bits, 512u);
  EXPECT_EQ(e.m, 0);  // dims resolve to paper size at expansion
}

TEST(ScenarioSpec, FullEntryParses) {
  const ScenarioSpec spec = spec_of(
      "{\"name\": \"study\", \"scenarios\": [{"
      "\"name\": \"grid\", \"family\": \"2D-8\", \"dims\": [10, 6],"
      "\"spacing\": 0.25, \"sources\": [0, 5],"
      "\"protocols\": [\"paper\", \"flood\", \"gossip\"],"
      "\"faults\": [{\"kind\": \"gilbert\", \"loss\": 0.1, \"burst\": 6,"
      "             \"crash_prob\": 0.05, \"crash_horizon\": 16}],"
      "\"recovery\": [\"repeat-k\", \"echo-repair\"], \"repeat_k\": 3,"
      "\"seeds\": [4, 9], \"repeats\": 2, \"deadline_slots\": 256,"
      "\"packet_bits\": 1024, \"gossip_p\": 0.8, \"jitter\": 3,"
      "\"outputs\": {\"etr\": true, \"trace_dir\": \"traces\","
      "             \"stats\": true}}]}");
  EXPECT_EQ(spec.name, "study");
  const ScenarioEntry& e = spec.entries[0];
  EXPECT_EQ(e.m, 10);
  EXPECT_EQ(e.n, 6);
  EXPECT_DOUBLE_EQ(e.spacing, 0.25);
  // "flood" is accepted as the meshbcast_cli spelling of "flooding".
  EXPECT_EQ(e.protocols,
            (std::vector<std::string>{"paper", "flooding", "gossip"}));
  ASSERT_EQ(e.faults.size(), 1u);
  EXPECT_EQ(e.faults[0].kind, ScenarioFault::Kind::kGilbert);
  EXPECT_DOUBLE_EQ(e.faults[0].crash_prob, 0.05);
  EXPECT_EQ(e.recovery,
            (std::vector<RecoveryPolicy>{RecoveryPolicy::kRepeatK,
                                         RecoveryPolicy::kEchoRepair}));
  EXPECT_EQ(e.repeat_k, 3u);
  EXPECT_EQ(e.deadline_slots, 256u);
  EXPECT_TRUE(e.outputs.etr);
  EXPECT_EQ(e.outputs.trace_dir, "traces");
}

TEST(ScenarioSpec, RejectsUnknownKeysAndValues) {
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"2D-4\","
                     " \"typo_key\": 1}]}")
                .find("unknown key"),
            std::string::npos);
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"5D-2\"}]}")
                .find("unknown family"),
            std::string::npos);
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"2D-4\","
                     " \"protocols\": [\"warp\"]}]}")
                .find("unknown protocol"),
            std::string::npos);
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"2D-4\","
                     " \"faults\": [{\"kind\": \"iid\"}]}]}")
                .find("loss = 0"),
            std::string::npos);
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"2D-4\","
                     " \"dims\": [0, 4]}]}")
                .find("dims"),
            std::string::npos);
  EXPECT_NE(error_of("{\"scenarios\": []}").find("at least one"),
            std::string::npos);
}

TEST(ScenarioSpec, ExpansionOrderIsEntrySourceProtocolMajor) {
  ScenarioSpec spec = spec_of(
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"sources\": [1, 0], \"protocols\": [\"paper\", \"ideal\"],"
      " \"seeds\": [5, 6]}]}");
  JobMatrix matrix;
  std::string error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  // 2 sources x 2 protocols x 2 seeds, in that loop order.
  ASSERT_EQ(matrix.jobs.size(), 8u);
  EXPECT_EQ(matrix.jobs[0].source, 1u);
  EXPECT_EQ(matrix.jobs[0].protocol, "paper");
  EXPECT_EQ(matrix.jobs[0].seed, 5u);
  EXPECT_EQ(matrix.jobs[1].seed, 6u);
  EXPECT_EQ(matrix.jobs[2].protocol, "ideal");
  EXPECT_EQ(matrix.jobs[4].source, 0u);
  for (std::size_t i = 0; i < matrix.jobs.size(); ++i) {
    EXPECT_EQ(matrix.jobs[i].index, i);
    EXPECT_TRUE(matrix.jobs[i].error.empty());
  }
}

TEST(ScenarioSpec, DefaultDimsResolveToPaperSizes) {
  ScenarioSpec spec = spec_of(
      "{\"scenarios\": [{\"family\": \"2D-4\"}, {\"family\": \"3D-6\"}]}");
  JobMatrix matrix;
  std::string error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  EXPECT_EQ(matrix.spec.entries[0].m, 32);
  EXPECT_EQ(matrix.spec.entries[0].n, 16);
  EXPECT_EQ(matrix.spec.entries[1].m, 8);
  EXPECT_EQ(matrix.spec.entries[1].l, 8);
  EXPECT_EQ(matrix.topologies.size(), 2u);
}

TEST(ScenarioSpec, TopologiesAreDeduplicated) {
  ScenarioSpec spec = spec_of(
      "{\"scenarios\": ["
      "{\"name\": \"a\", \"family\": \"2D-4\", \"dims\": [6, 4]},"
      "{\"name\": \"b\", \"family\": \"2D-4\", \"dims\": [6, 4]},"
      "{\"name\": \"c\", \"family\": \"2D-4\", \"dims\": [6, 5]}]}");
  JobMatrix matrix;
  std::string error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  EXPECT_EQ(matrix.topologies.size(), 2u);  // [6,4] shared, [6,5] its own
  EXPECT_EQ(matrix.jobs[0].topology, matrix.jobs[1].topology);
  EXPECT_NE(matrix.jobs[0].topology, matrix.jobs[2].topology);
}

TEST(ScenarioSpec, EmptyCrossProductBecomesErrorJob) {
  ScenarioSpec spec = spec_of(
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [4, 4],"
      " \"sources\": [], \"repeats\": 0}]}");
  JobMatrix matrix;
  std::string error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  ASSERT_EQ(matrix.jobs.size(), 1u);
  EXPECT_FALSE(matrix.jobs[0].error.empty());
}

TEST(ScenarioSpec, OutOfRangeSourceIsASpecError) {
  ScenarioSpec spec = spec_of(
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [4, 4],"
      " \"sources\": [99]}]}");
  JobMatrix matrix;
  std::string error;
  EXPECT_FALSE(expand_jobs(std::move(spec), matrix, error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(ScenarioSpec, FingerprintTracksSpecContent) {
  const char* base =
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [6, 4],"
      " \"seeds\": [1, 2]}]}";
  const char* reseeded =
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [6, 4],"
      " \"seeds\": [1, 3]}]}";
  JobMatrix a, b, c;
  std::string error;
  ASSERT_TRUE(expand_jobs(spec_of(base), a, error));
  ASSERT_TRUE(expand_jobs(spec_of(base), b, error));
  ASSERT_TRUE(expand_jobs(spec_of(reseeded), c, error));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(ScenarioSpec, FaultLabelsAreStable) {
  ScenarioFault none;
  EXPECT_EQ(none.label(), "none");
  EXPECT_FALSE(none.any());

  ScenarioFault iid;
  iid.kind = ScenarioFault::Kind::kIid;
  iid.loss = 0.1;
  EXPECT_EQ(iid.label(), "iid:0.1");
  EXPECT_TRUE(iid.any());

  ScenarioFault combo;
  combo.kind = ScenarioFault::Kind::kGilbert;
  combo.loss = 0.2;
  combo.burst = 4.0;
  combo.crash_prob = 0.05;
  combo.crash_horizon = 32;
  EXPECT_EQ(combo.label(), "gilbert:0.2:4+crash:0.05:32:0");
}

TEST(ScenarioSpec, EtxProtocolAndAdaptiveRecoveryParse) {
  const ScenarioSpec spec = spec_of(
      "{\"scenarios\": [{\"family\": \"2D-4\","
      " \"protocols\": [\"etx\", \"paper\"],"
      " \"recovery\": [\"adaptive\"],"
      " \"arq_budget\": 64, \"arq_rounds\": 5}]}");
  const ScenarioEntry& e = spec.entries[0];
  EXPECT_EQ(e.protocols, (std::vector<std::string>{"etx", "paper"}));
  EXPECT_EQ(e.recovery, std::vector<RecoveryPolicy>{RecoveryPolicy::kAdaptive});
  EXPECT_EQ(e.arq_budget, 64u);
  EXPECT_EQ(e.arq_rounds, 5u);
}

TEST(ScenarioSpec, ArqKnobsDefaultAndReject) {
  const ScenarioSpec spec =
      spec_of("{\"scenarios\": [{\"family\": \"2D-4\"}]}");
  EXPECT_EQ(spec.entries[0].arq_budget, 256u);
  EXPECT_EQ(spec.entries[0].arq_rounds, 8u);
  EXPECT_NE(error_of("{\"scenarios\": [{\"family\": \"2D-4\","
                     " \"arq_rounds\": 0}]}")
                .find("arq_rounds"),
            std::string::npos);
}

TEST(ScenarioSpec, ArqKnobsReachTheJobIdentity) {
  // The knobs change the executed recovery, so they must change the
  // fingerprint -- a resumed run with different knobs is a different run.
  const char* base =
      "{\"scenarios\": [{\"family\": \"2D-4\", \"dims\": [3, 2],"
      " \"recovery\": [\"adaptive\"]%s}]}";
  char with_knobs[256];
  std::snprintf(with_knobs, sizeof with_knobs, base, ", \"arq_budget\": 9");
  char defaults[256];
  std::snprintf(defaults, sizeof defaults, base, "");
  JobMatrix a, b;
  std::string error;
  ASSERT_TRUE(expand_jobs(spec_of(defaults), a, error)) << error;
  ASSERT_TRUE(expand_jobs(spec_of(with_knobs), b, error)) << error;
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_NE(job_identity(a.jobs[0]).find("arq=256:8"), std::string::npos);
  EXPECT_NE(job_identity(b.jobs[0]).find("arq=9:8"), std::string::npos);
}

}  // namespace
}  // namespace wsn
