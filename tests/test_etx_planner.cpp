#include "protocol/etx_planner.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/link_estimator.h"
#include "fault/models.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/mesh3d6.h"

namespace wsn {
namespace {

std::vector<std::unique_ptr<Topology>> paper_topologies() {
  std::vector<std::unique_ptr<Topology>> topos;
  topos.push_back(std::make_unique<Mesh2D4>(8, 8));
  topos.push_back(std::make_unique<Mesh2D8>(8, 8));
  topos.push_back(std::make_unique<Mesh2D3>(8, 8));
  topos.push_back(std::make_unique<Mesh3D6>(4, 4, 4));
  return topos;
}

TEST(EtxPlanner, PerfectLinksReduceToThePaperOptimum) {
  // The tentpole's regression anchor: with no quality annotation (all
  // links perfect) the ETX planner must reproduce the paper protocol's
  // plan cost exactly on every regular family -- same transmissions, full
  // coverage.  Tables 1-2 optimality then carries over verbatim.
  for (const auto& topo : paper_topologies()) {
    SCOPED_TRACE(topo->name());
    const NodeId source = 0;
    const RelayPlan geometric = paper_plan(*topo, source);
    const RelayPlan etx = etx_plan(*topo, source);
    Simulator sim;
    const BroadcastOutcome geo_out = sim.run(*topo, geometric, {});
    const BroadcastOutcome etx_out = sim.run(*topo, etx, {});
    EXPECT_TRUE(etx_out.stats.fully_reached());
    EXPECT_EQ(etx_out.stats.tx, geo_out.stats.tx);
    EXPECT_EQ(etx_out.stats.delay, geo_out.stats.delay);
  }
}

TEST(EtxPlanner, ExplicitPerfectQualityMatchesNoAnnotation) {
  const Mesh2D4 topo(8, 8);
  const std::vector<double> perfect(topo.num_directed_links(), 1.0);
  const RelayPlan bare = etx_plan(topo, 5);
  const RelayPlan annotated = etx_plan(topo, 5, perfect);
  EXPECT_EQ(bare.tx_offsets, annotated.tx_offsets);
}

TEST(EtxPlanner, LossyQualityStillCoversEveryone) {
  // Under a learned lossy annotation the greedy selection changes, but
  // the resolver backstop keeps the plan fully reachable on the ideal
  // medium -- coverage is never traded away at plan time.
  const Mesh2D4 topo(8, 8);
  IidLossModel probe(0.3, 0xabcdef);
  const std::vector<double> quality = estimate_link_quality(topo, probe);
  Simulator sim;
  for (const NodeId source : {NodeId{0}, NodeId{27}, NodeId{63}}) {
    const RelayPlan plan = etx_plan(topo, source, quality);
    const BroadcastOutcome out = sim.run(topo, plan, {});
    EXPECT_TRUE(out.stats.fully_reached()) << "source " << source;
  }
}

TEST(EtxPlanner, LossyPlanSpendsMoreTransmissionsThanPerfect) {
  // Redundancy against a 30% channel costs something: the quality-aware
  // plan schedules at least as many transmissions as the perfect-link
  // plan, never fewer.
  const Mesh2D4 topo(8, 8);
  IidLossModel probe(0.3, 0xabcdef);
  const std::vector<double> quality = estimate_link_quality(topo, probe);
  const RelayPlan perfect = etx_plan(topo, 0);
  const RelayPlan lossy = etx_plan(topo, 0, quality);
  EXPECT_GE(lossy.planned_tx(), perfect.planned_tx());
}

TEST(EtxPlanner, PlanningIsDeterministic) {
  const Mesh2D8 topo(7, 7);
  IidLossModel probe(0.2, 99);
  const std::vector<double> quality = estimate_link_quality(topo, probe);
  const RelayPlan a = etx_plan(topo, 3, quality);
  const RelayPlan b = etx_plan(topo, 3, quality);
  EXPECT_EQ(a.tx_offsets, b.tx_offsets);
}

TEST(EtxPlanner, RegistryNameAndInterface) {
  const EtxRelayPlanner planner;
  EXPECT_TRUE(planner.name().find("etx-planner") != std::string::npos);
  const Mesh2D3 topo(6, 6);
  const RelayPlan plan = planner.plan(topo, 0);
  EXPECT_EQ(plan.tx_offsets.size(), topo.num_nodes());
}

}  // namespace
}  // namespace wsn
