#include "analysis/energy_balance.h"

#include <gtest/gtest.h>

#include <numeric>

#include "protocol/registry.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(EnergyBalance, UniformDistributionIsPerfectlyBalanced) {
  const std::vector<Joules> energy(100, 2.5);
  const EnergyBalance balance = energy_balance(energy);
  EXPECT_DOUBLE_EQ(balance.min, 2.5);
  EXPECT_DOUBLE_EQ(balance.max, 2.5);
  EXPECT_DOUBLE_EQ(balance.mean, 2.5);
  EXPECT_DOUBLE_EQ(balance.stddev, 0.0);
  EXPECT_NEAR(balance.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(balance.peak_to_mean, 1.0);
}

TEST(EnergyBalance, SingleHotNodeMaximizesGini) {
  std::vector<Joules> energy(100, 0.0);
  energy[42] = 7.0;
  const EnergyBalance balance = energy_balance(energy);
  EXPECT_EQ(balance.hottest, 42u);
  EXPECT_DOUBLE_EQ(balance.max, 7.0);
  EXPECT_NEAR(balance.gini, 0.99, 1e-12);  // (n-1)/n
  EXPECT_DOUBLE_EQ(balance.peak_to_mean, 100.0);
}

TEST(EnergyBalance, KnownSmallCase) {
  // {1, 2, 3}: mean 2, Gini = 2/9.
  const EnergyBalance balance = energy_balance({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(balance.mean, 2.0);
  EXPECT_DOUBLE_EQ(balance.min, 1.0);
  EXPECT_DOUBLE_EQ(balance.max, 3.0);
  EXPECT_NEAR(balance.gini, 2.0 / 9.0, 1e-12);
}

TEST(EnergyBalance, OrderInvariantGini) {
  const EnergyBalance a = energy_balance({5.0, 1.0, 3.0, 1.0});
  const EnergyBalance b = energy_balance({1.0, 1.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(a.gini, b.gini);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(EnergyBalance, BroadcastNodeEnergySumsToTotal) {
  const Mesh2D4 topo(8, 8);
  SimOptions options;
  options.record_node_energy = true;
  const auto out = simulate_broadcast(topo, paper_plan(topo, 12), options);
  ASSERT_EQ(out.node_energy.size(), topo.num_nodes());
  const Joules sum =
      std::accumulate(out.node_energy.begin(), out.node_energy.end(), 0.0);
  EXPECT_NEAR(sum, out.stats.total_energy(), 1e-12);
}

TEST(EnergyBalance, FixedSourceBroadcastIsUnbalanced) {
  // Relays pay Tx+Rx, passive nodes only Rx: a single broadcast is visibly
  // unbalanced -- the §1 critique quantified.
  const Mesh2D4 topo(16, 16);
  SimOptions options;
  options.record_node_energy = true;
  const auto out = simulate_broadcast(
      topo, paper_plan(topo, topo.grid().to_id({8, 8})), options);
  const EnergyBalance balance = energy_balance(out.node_energy);
  EXPECT_GT(balance.gini, 0.15);
  EXPECT_GT(balance.peak_to_mean, 1.5);
}

TEST(EnergyBalance, SourceRotationEvensTheLoad) {
  const Mesh2D4 topo(8, 8);
  // One broadcast, fixed center source.
  SimOptions options;
  options.record_node_energy = true;
  const auto fixed = simulate_broadcast(
      topo, paper_plan(topo, topo.grid().to_id({4, 4})), options);
  // One broadcast from every source, summed.
  const std::vector<Joules> rotated = rotating_source_energy(topo);
  EXPECT_LT(energy_balance(rotated).gini,
            energy_balance(fixed.node_energy).gini);
}

using EnergyBalanceDeathTest = ::testing::Test;

TEST(EnergyBalanceDeathTest, EmptyVectorRejected) {
  EXPECT_DEATH((void)energy_balance({}), "precondition");
}

}  // namespace
}  // namespace wsn
