// Lossy-mode audit checks (9-11): expected-vs-observed delivery, retry
// accounting, and the coverage-vs-budget frontier.  Each check gets a
// clean pass on an honest run and a forced violation on a doctored
// config -- the auditor must catch underdelivery, transmission overruns,
// and silent coverage shortfalls.
#include <gtest/gtest.h>

#include <string>

#include "fault/adaptive.h"
#include "fault/models.h"
#include "fault/recovery.h"
#include "obs/audit/auditor.h"
#include "obs/event_sink.h"
#include "obs/observer.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

struct LossyRun {
  EventSink sink;
  BroadcastOutcome outcome;
  RelayPlan plan;
};

/// One observed broadcast on 2D-4 8x8 under i.i.d. loss; the shared
/// fixture of the lossy-audit cases.  `k > 1` hardens the plan with
/// repeat-k so the broadcast survives deep into the mesh and the delivery
/// sample clears the auditor's min-samples guard (a bare paper plan at
/// 30% loss collapses after a few hops).
LossyRun run_lossy(double loss, std::uint64_t seed, unsigned k = 1) {
  LossyRun run;
  const Mesh2D4 topo(8, 8);
  run.plan = paper_plan(topo, 0);
  if (k > 1) run.plan = repeat_k(std::move(run.plan), k);
  IidLossModel model(loss, seed);
  Observer observer(&run.sink);
  SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  options.faults = &model;
  run.outcome = simulate_broadcast(topo, run.plan, options);
  return run;
}

TEST(AuditLossy, HonestDeliveryRatePasses) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.2, 3, 3);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.expect_full_coverage = false;
  config.mean_link_delivery = 0.8;  // the truth
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_FALSE(report.violated(AuditCheck::kExpectedDelivery))
      << audit_summary_text(report);
}

TEST(AuditLossy, UnderdeliveryAgainstAClaimedPerfectChannelFails) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.3, 3, 3);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.expect_full_coverage = false;
  config.mean_link_delivery = 1.0;  // a lie: the channel dropped 30%
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_TRUE(report.violated(AuditCheck::kExpectedDelivery));
}

TEST(AuditLossy, RetryAccountingPassesWhenTxMatchesThePlan) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.2, 5);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.expect_full_coverage = false;
  config.planned_tx = run.plan.planned_tx();
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_FALSE(report.violated(AuditCheck::kRetryAccounting))
      << audit_summary_text(report);
}

TEST(AuditLossy, TransmissionOverrunFailsRetryAccounting) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.0, 5);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.planned_tx = 1;  // the run transmitted far more than "planned"
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_TRUE(report.violated(AuditCheck::kRetryAccounting));
}

TEST(AuditLossy, DeclaredRetriesOverBudgetFail) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.0, 5);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.planned_tx = run.plan.planned_tx();
  config.retries = 10;
  config.retry_budget = 4;  // recovery claims more retries than allowed
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_TRUE(report.violated(AuditCheck::kRetryAccounting));
}

TEST(AuditLossy, SilentShortfallFailsTheCoverageFrontier) {
  // A lossy run leaves nodes uncovered; claiming ARQ ran with budget to
  // spare and no round cap means the shortfall is a recovery bug.
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.35, 11);
  ASSERT_FALSE(run.outcome.stats.fully_reached());
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.expect_full_coverage = false;
  config.arq = true;
  config.budget_exhausted = false;
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_TRUE(report.violated(AuditCheck::kCoverageFrontier));
}

TEST(AuditLossy, ExhaustedBudgetExcusesTheShortfall) {
  const Mesh2D4 topo(8, 8);
  LossyRun run = run_lossy(0.35, 11);
  AuditConfig config;
  config.source = 0;
  config.stats = &run.outcome.stats;
  config.expect_full_coverage = false;
  config.arq = true;
  config.budget_exhausted = true;  // degradation was declared, not silent
  const AuditReport report = audit_sink(topo, run.sink, config);
  EXPECT_FALSE(report.violated(AuditCheck::kCoverageFrontier))
      << audit_summary_text(report);
}

TEST(AuditLossy, RealAdaptiveRunAuditsClean) {
  // End-to-end: an actual ARQ run, observed and audited with the full
  // lossy config -- no check may fire.
  const Mesh2D4 topo(8, 8);
  const RelayPlan plan = paper_plan(topo, 0);
  IidLossModel model(0.2, 21);
  EventSink sink;
  Observer observer(&sink);
  SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  options.faults = &model;
  AdaptiveArqConfig arq_config;
  AdaptiveArqReport arq_report;
  const BroadcastOutcome out =
      run_adaptive_arq(topo, plan, options, arq_config, &arq_report);

  AuditConfig config;
  config.source = 0;
  config.stats = &out.stats;
  config.expect_full_coverage = false;
  config.mean_link_delivery = 0.8;
  config.planned_tx = plan.planned_tx();
  config.retries = arq_report.retries;
  config.retry_budget = arq_config.retry_budget;
  config.arq = true;
  config.budget_exhausted = arq_report.budget_exhausted;
  config.arq_rounds = arq_report.rounds;
  config.arq_max_rounds = arq_config.max_rounds;
  const AuditReport report = audit_sink(topo, sink, config);
  EXPECT_FALSE(report.violated(AuditCheck::kExpectedDelivery))
      << audit_summary_text(report);
  EXPECT_FALSE(report.violated(AuditCheck::kRetryAccounting))
      << audit_summary_text(report);
  EXPECT_FALSE(report.violated(AuditCheck::kCoverageFrontier))
      << audit_summary_text(report);
}

}  // namespace
}  // namespace wsn
