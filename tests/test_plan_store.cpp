// PlanStore facade: fingerprint separation, tier resolution order, the
// self-healing corrupted-artifact path, cache bypass for stateful options,
// and the load-bearing equivalence claims -- cache-hit plans simulate to
// byte-identical stats, and a store-backed sweep equals a storeless one.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/sweep.h"
#include "fault/fault_model.h"
#include "obs/metrics.h"
#include "protocol/registry.h"
#include "store/plan_store.h"
#include "topology/factory.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_plan_store_" + tag)) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

PlanStore::CompileFn paper_compile(const Topology& topo, NodeId source) {
  return [&topo, source](ResolveReport& report) {
    return paper_plan(topo, source, {}, &report);
  };
}

void expect_stats_identical(const BroadcastStats& a, const BroadcastStats& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.reached, b.reached);
  EXPECT_EQ(a.tx, b.tx);
  EXPECT_EQ(a.rx, b.rx);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.lost_to_fading, b.lost_to_fading);
  EXPECT_EQ(a.lost_to_crash, b.lost_to_crash);
  EXPECT_EQ(a.delay, b.delay);
  // Bit-exact, not approximately equal: a cached plan is the same plan.
  EXPECT_EQ(a.tx_energy, b.tx_energy);
  EXPECT_EQ(a.rx_energy, b.rx_energy);
}

TEST(PlanStore, KeysSeparateProtocolsTopologiesSourcesAndHorizons) {
  // 2D-4 vs 2D-8 at identical dims wire the same node set differently;
  // the adjacency digest must keep their keys apart.
  const auto mesh4 = make_mesh("2D-4", 8, 6);
  const auto mesh8 = make_mesh("2D-8", 8, 6);
  const PlanKey base = fingerprint_plan_request(*mesh4, 0, "paper").key;
  EXPECT_NE(fingerprint_plan_request(*mesh8, 0, "paper").key, base);

  // Same topology, different protocol id.
  EXPECT_NE(fingerprint_plan_request(*mesh4, 0, "cds").key, base);
  // Different source.
  EXPECT_NE(fingerprint_plan_request(*mesh4, 1, "paper").key, base);
  // Different probe horizon (the one SimOptions field probes observe).
  SimOptions short_horizon;
  short_horizon.max_slots = 64;
  EXPECT_NE(fingerprint_plan_request(*mesh4, 0, "paper", short_horizon).key,
            base);
  // Energy parameters must NOT shatter the key.
  SimOptions heavy_packets;
  heavy_packets.packet_bits = 4096;
  EXPECT_EQ(fingerprint_plan_request(*mesh4, 0, "paper", heavy_packets).key,
            base);
  // Deterministic across processes: the same request re-hashes identically.
  EXPECT_EQ(fingerprint_plan_request(*mesh4, 0, "paper").key, base);
}

TEST(PlanStore, TierProgressionCompiledThenMemoryThenDisk) {
  const TempDir tmp("tiers");
  const auto topo = make_mesh("2D-4", 8, 6);

  PlanStore::Config config;
  config.disk_dir = tmp.path.string();
  PlanStore store(config);
  ASSERT_NE(store.disk(), nullptr);
  ASSERT_TRUE(store.disk()->ok());

  PlanStore::Origin origin{};
  const auto first = store.fetch_or_compile(*topo, 3, "paper", {},
                                            paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kCompiled);
  const auto second = store.fetch_or_compile(*topo, 3, "paper", {},
                                             paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kMemory);
  EXPECT_EQ(second.get(), first.get());  // one shared immutable plan

  // A fresh store over the same directory: cold memory, warm disk.
  PlanStore reopened(config);
  const auto third = reopened.fetch_or_compile(
      *topo, 3, "paper", {}, paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kDisk);
  EXPECT_EQ(third->plan.total_offsets(), first->plan.total_offsets());
  EXPECT_EQ(reopened.stats().disk_hits, 1u);
  EXPECT_EQ(reopened.stats().compiles, 0u);

  // ...and the disk hit populated the memory tier.
  (void)reopened.fetch_or_compile(*topo, 3, "paper", {},
                                  paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kMemory);
}

TEST(PlanStore, CorruptedArtifactIsRecompiledAndRewritten) {
  const TempDir tmp("selfheal");
  const auto topo = make_mesh("2D-4", 8, 6);
  PlanStore::Config config;
  config.disk_dir = tmp.path.string();

  std::string artifact;
  {
    PlanStore store(config);
    (void)store.fetch_or_compile(*topo, 3, "paper", {},
                                 paper_compile(*topo, 3));
    artifact = store.disk()->artifact_path(
        fingerprint_plan_request(*topo, 3, "paper"));
  }
  ASSERT_TRUE(std::filesystem::exists(artifact));
  {
    std::fstream file(artifact,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(70);
    const char garbage = '\x5a';
    file.write(&garbage, 1);
    file.seekp(71);
    file.write(&garbage, 1);
  }

  PlanStore store(config);
  PlanStore::Origin origin{};
  const auto healed = store.fetch_or_compile(*topo, 3, "paper", {},
                                             paper_compile(*topo, 3), &origin);
  // Never trusted, never fatal: the damage is a miss that recompiles.
  EXPECT_EQ(origin, PlanStore::Origin::kCompiled);
  EXPECT_EQ(store.stats().disk_rejects, 1u);
  healed->plan.validate();

  // The recompile rewrote the artifact; a third store loads it cleanly.
  PlanStore verify(config);
  (void)verify.fetch_or_compile(*topo, 3, "paper", {},
                                paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kDisk);
}

TEST(PlanStore, StatefulOptionsBypassEveryTier) {
  const auto topo = make_mesh("2D-4", 8, 6);
  PlanStore store;
  FaultModel perfect;  // any installed model makes probes stateful
  SimOptions options;
  options.faults = &perfect;

  PlanStore::Origin origin{};
  const auto a = store.fetch_or_compile(*topo, 3, "paper", options,
                                        paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kBypass);
  const auto b = store.fetch_or_compile(*topo, 3, "paper", options,
                                        paper_compile(*topo, 3), &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kBypass);
  EXPECT_NE(a.get(), b.get());  // nothing was cached
  EXPECT_EQ(store.stats().bypasses, 2u);
  EXPECT_EQ(store.memory().size(), 0u);
}

TEST(PlanStore, CacheHitPlansSimulateByteIdentically) {
  const TempDir tmp("identical");
  const auto topo = make_mesh("2D-4", 8, 6);
  PlanStore::Config config;
  config.disk_dir = tmp.path.string();

  ResolveReport fresh_report;
  const RelayPlan fresh = paper_plan(*topo, 5, {}, &fresh_report);
  Simulator sim;
  const BroadcastStats want = sim.run(*topo, fresh, {}).stats;

  { // warm the artifact directory
    PlanStore warmer(config);
    (void)warmer.fetch_or_compile(*topo, 5, "paper", {},
                                  paper_compile(*topo, 5));
  }
  PlanStore store(config);
  PlanStore::Origin origin{};
  const auto stored = store.fetch_or_compile(*topo, 5, "paper", {},
                                             paper_compile(*topo, 5), &origin);
  ASSERT_EQ(origin, PlanStore::Origin::kDisk);
  const BroadcastStats disk_stats = sim.run(*topo, stored->plan, {}).stats;
  expect_stats_identical(disk_stats, want);
  EXPECT_EQ(stored->report.repairs, fresh_report.repairs);

  // And again through the memory tier + the RelayPlan convenience wrapper.
  ResolveReport cached_report;
  const RelayPlan cached =
      paper_plan_cached(*topo, 5, {}, store, &cached_report, &origin);
  EXPECT_EQ(origin, PlanStore::Origin::kMemory);
  EXPECT_EQ(cached.tx_offsets, fresh.tx_offsets);
  EXPECT_EQ(cached_report.unrepaired, fresh_report.unrepaired);
  expect_stats_identical(sim.run(*topo, cached, {}).stats, want);
}

TEST(PlanStore, SweepWithSharedStoreMatchesStorelessSweep) {
  const auto topo = make_mesh("2D-8", 8, 6);
  const SweepResult plain = sweep_all_sources(*topo, {}, /*workers=*/2);

  PlanStore store;
  const SweepResult cached =
      sweep_all_sources(*topo, {}, /*workers=*/2, &store);
  // Second store-backed sweep: every plan is a memory hit.
  const SweepResult hot = sweep_all_sources(*topo, {}, /*workers=*/2, &store);
  EXPECT_EQ(store.stats().compiles, topo->num_nodes());

  ASSERT_EQ(cached.per_source.size(), plain.per_source.size());
  for (std::size_t i = 0; i < plain.per_source.size(); ++i) {
    expect_stats_identical(cached.per_source[i].stats,
                           plain.per_source[i].stats);
    expect_stats_identical(hot.per_source[i].stats,
                           plain.per_source[i].stats);
    EXPECT_EQ(cached.per_source[i].repairs, plain.per_source[i].repairs);
  }
}

TEST(PlanStore, ConcurrentFetchesShareOneStore) {
  // Run under TSan in CI: many threads racing the same keys through the
  // full tier stack (digest memoization, memory tier, disk tier).
  const TempDir tmp("concurrent");
  const auto topo = make_mesh("2D-4", 8, 6);
  PlanStore::Config config;
  config.disk_dir = tmp.path.string();
  PlanStore store(config);
  MetricsRegistry registry;
  store.bind_metrics(registry);

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &topo, t] {
      for (std::size_t i = 0; i < 32; ++i) {
        const auto source = static_cast<NodeId>((t + i) % 8);
        const auto stored = store.fetch_or_compile(
            *topo, source, "paper", {}, paper_compile(*topo, source));
        stored->plan.validate();
        ASSERT_EQ(stored->plan.source(), source);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every fetch resolved; racing compiles of one key are allowed, but the
  // store converges to one artifact per distinct request.
  EXPECT_EQ(store.disk()->artifact_count(), 8u);
  EXPECT_EQ(store.memory().size(), 8u);
  EXPECT_EQ(registry.counter("store.compiles").value(),
            store.stats().compiles);
}

TEST(PlanStore, MetricsBindingMirrorsFacadeCounters) {
  const auto topo = make_mesh("2D-4", 6, 4);
  PlanStore store;
  MetricsRegistry registry;
  store.bind_metrics(registry);

  (void)store.fetch_or_compile(*topo, 0, "paper", {},
                               paper_compile(*topo, 0));
  (void)store.fetch_or_compile(*topo, 0, "paper", {},
                               paper_compile(*topo, 0));
  EXPECT_EQ(registry.counter("store.compiles").value(), 1u);
  EXPECT_EQ(registry.counter("store.mem.hits").value(), 1u);
  EXPECT_EQ(registry.counter("store.mem.misses").value(), 1u);
}

TEST(PlanStore, ExhaustedDiskRetriesFallBackToRecompile) {
  // A disk tier whose every read fails transiently: the facade retries
  // the bounded number of times, then recompiles -- slow, never wrong,
  // never crashed -- and the retry spend is mirrored into the metrics.
  const TempDir tmp("io_error_fallback");
  const auto topo = make_mesh("2D-4", 6, 4);
  PlanStore::Config config;
  config.disk_dir = tmp.path.string();
  PlanStore store(config);
  MetricsRegistry registry;
  store.bind_metrics(registry);

  (void)store.fetch_or_compile(*topo, 0, "paper", {},
                               paper_compile(*topo, 0));

  struct InjectorGuard {
    ~InjectorGuard() { PlanDiskStore::set_load_fault_injector(nullptr); }
  } guard;
  PlanDiskStore::set_load_fault_injector(
      +[](PlanSerdeStatus, int) { return PlanSerdeStatus::kIoError; });

  // Fresh store over the same directory (cold memory tier) so the fetch
  // must go through the failing disk reads.
  PlanStore cold(config);
  MetricsRegistry cold_registry;
  cold.bind_metrics(cold_registry);
  PlanStore::Origin origin = PlanStore::Origin::kMemory;
  const auto value = cold.fetch_or_compile(*topo, 0, "paper", {},
                                           paper_compile(*topo, 0), &origin);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(origin, PlanStore::Origin::kCompiled);
  EXPECT_EQ(value->plan.num_nodes(), topo->num_nodes());
  const PlanStore::Stats stats = cold.stats();
  EXPECT_EQ(stats.read_retries,
            static_cast<std::uint64_t>(PlanDiskStore::kLoadAttempts - 1));
  EXPECT_EQ(cold_registry.counter("store.read_retries").value(),
            stats.read_retries);
}

}  // namespace
}  // namespace wsn
