#include "radio/battery.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Battery, StartsFullAndAlive) {
  const BatteryBank bank(10, 2.0);
  EXPECT_EQ(bank.size(), 10u);
  EXPECT_EQ(bank.alive_count(), 10u);
  EXPECT_DOUBLE_EQ(bank.initial_charge(), 2.0);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(bank.charge(v), 2.0);
    EXPECT_TRUE(bank.alive(v));
  }
}

TEST(Battery, DrainReducesCharge) {
  BatteryBank bank(3, 1.0);
  bank.drain(1, 0.25);
  EXPECT_DOUBLE_EQ(bank.charge(1), 0.75);
  EXPECT_DOUBLE_EQ(bank.charge(0), 1.0);
}

TEST(Battery, DrainClampsAtZeroAndKills) {
  BatteryBank bank(2, 1.0);
  bank.drain(0, 5.0);
  EXPECT_DOUBLE_EQ(bank.charge(0), 0.0);
  EXPECT_FALSE(bank.alive(0));
  EXPECT_EQ(bank.alive_count(), 1u);
}

TEST(Battery, TotalConsumedSumsDrains) {
  BatteryBank bank(4, 1.0);
  bank.drain(0, 0.5);
  bank.drain(1, 0.25);
  bank.drain(1, 0.25);
  EXPECT_DOUBLE_EQ(bank.total_consumed(), 1.0);
}

TEST(Battery, TotalConsumedClampsOverdrain) {
  BatteryBank bank(2, 1.0);
  bank.drain(0, 100.0);  // only 1 J existed
  EXPECT_DOUBLE_EQ(bank.total_consumed(), 1.0);
}

TEST(Battery, MinCharge) {
  BatteryBank bank(3, 1.0);
  EXPECT_DOUBLE_EQ(bank.min_charge(), 1.0);
  bank.drain(2, 0.7);
  EXPECT_DOUBLE_EQ(bank.min_charge(), 0.3);
  bank.drain(0, 1.0);
  EXPECT_DOUBLE_EQ(bank.min_charge(), 0.0);
}

TEST(Battery, ZeroDrainIsNoop) {
  BatteryBank bank(1, 1.0);
  bank.drain(0, 0.0);
  EXPECT_DOUBLE_EQ(bank.charge(0), 1.0);
}

}  // namespace
}  // namespace wsn
