#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/string_util.h"
#include "obs/event_sink.h"
#include "obs/observer.h"
#include "protocol/registry.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Runs `plan` with an event-recording observer -- the only way to feed
/// the legacy CSV writer now that it projects the structured stream.
BroadcastOutcome observed_run(const Topology& topo, const RelayPlan& plan,
                              EventSink& sink) {
  Observer observer(&sink);
  SimOptions options;
  options.observer = &observer;
  return simulate_broadcast(topo, plan, options);
}

TEST(TraceIo, HeaderAndTxEventsPresent) {
  const Mesh2D4 topo(5, 1);
  RelayPlan plan = RelayPlan::empty(5, 0);
  for (NodeId v = 1; v < 5; ++v) plan.tx_offsets[v] = {1};
  EventSink sink;
  const auto out = observed_run(topo, plan, sink);

  std::ostringstream stream;
  write_legacy_trace_csv(stream, topo, sink);
  const auto lines = lines_of(stream.str());
  EXPECT_EQ(lines[0], "event,slot,node,x,y,z,detail1,detail2");
  std::size_t tx_lines = 0;
  std::size_t rx_lines = 0;
  for (const auto& line : lines) {
    if (starts_with(line, "tx,")) ++tx_lines;
    if (starts_with(line, "rx,")) ++rx_lines;
  }
  EXPECT_EQ(tx_lines, out.stats.tx);
  EXPECT_EQ(rx_lines, 4u);  // first receptions only
}

TEST(TraceIo, EventsAreSlotOrdered) {
  const Mesh2D4 topo(6, 6);
  const auto plan = paper_plan(topo, 14);
  EventSink sink;
  (void)observed_run(topo, plan, sink);

  std::ostringstream stream;
  write_legacy_trace_csv(stream, topo, sink);
  Slot last = 0;
  for (const auto& line : lines_of(stream.str())) {
    if (line.empty() || starts_with(line, "event")) continue;
    const auto fields = split(line, ',');
    std::uint64_t slot = 0;
    ASSERT_TRUE(parse_u64(fields[1], slot));
    EXPECT_GE(slot, last);
    last = static_cast<Slot>(slot);
  }
}

TEST(TraceIo, RxEventsAttributeATransmitter) {
  const Mesh2D4 topo(4, 4);
  const auto plan = paper_plan(topo, 5);
  EventSink sink;
  (void)observed_run(topo, plan, sink);

  std::ostringstream stream;
  write_legacy_trace_csv(stream, topo, sink);
  for (const auto& line : lines_of(stream.str())) {
    if (!starts_with(line, "rx,")) continue;
    const auto fields = split(line, ',');
    std::uint64_t from = 0;
    ASSERT_TRUE(parse_u64(fields[6], from));
    std::uint64_t node = 0;
    ASSERT_TRUE(parse_u64(fields[2], node));
    EXPECT_TRUE(topo.adjacent(static_cast<NodeId>(from),
                              static_cast<NodeId>(node)));
  }
}

TEST(TraceIo, PlanCsvListsEveryNodeWithRole) {
  const Mesh2D4 topo(16, 16);
  const auto plan = paper_plan(topo, topo.grid().to_id({6, 8}));

  std::ostringstream stream;
  write_plan_csv(stream, topo, plan);
  const auto lines = lines_of(stream.str());
  ASSERT_EQ(lines.size(), topo.num_nodes() + 1);
  EXPECT_EQ(lines[0], "node,x,y,z,role,offsets");
  std::size_t sources = 0;
  std::size_t relays = 0;
  std::size_t retransmitters = 0;
  for (const auto& line : lines) {
    if (line.find(",source,") != std::string::npos) ++sources;
    if (line.find(",relay,") != std::string::npos) ++relays;
    if (line.find(",retransmitter,") != std::string::npos) ++retransmitters;
  }
  EXPECT_EQ(sources, 1u);
  EXPECT_EQ(retransmitters, plan.retransmitters().size());
  EXPECT_EQ(relays + retransmitters + sources, plan.relay_count());
}

TEST(TraceIo, LegacyCsvRoundTripsThroughReader) {
  const Mesh2D4 topo(6, 6);
  const auto plan = paper_plan(topo, 14);
  EventSink sink;
  const auto out = observed_run(topo, plan, sink);

  std::ostringstream stream;
  write_legacy_trace_csv(stream, topo, sink);
  const std::string csv = stream.str();
  std::istringstream in(csv);
  const std::vector<LegacyTraceRecord> records = read_trace_csv(in);

  // Every data row comes back: reader rows + header == writer lines.
  ASSERT_EQ(records.size(), lines_of(csv).size() - 1);
  std::size_t tx = 0;
  for (const LegacyTraceRecord& rec : records) {
    if (rec.event == "tx") ++tx;
    const auto pos = topo.position(rec.node);
    EXPECT_DOUBLE_EQ(rec.x, pos[0]);
    EXPECT_DOUBLE_EQ(rec.y, pos[1]);
    EXPECT_DOUBLE_EQ(rec.z, pos[2]);
  }
  EXPECT_EQ(tx, out.stats.tx);
  // Writer emits slot-ordered streams; the reader must preserve that.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].slot, records[i - 1].slot);
  }
}

TEST(TraceIo, TxColumnsReconstructDeliveriesFromEvents) {
  // The writer no longer sees TxRecords: delivered/fresh are rebuilt from
  // the rx/dup events attributed to each transmission.  The totals must
  // still match the outcome's accounting exactly.
  const Mesh2D4 topo(6, 6);
  const auto plan = paper_plan(topo, 14);
  EventSink sink;
  const auto out = observed_run(topo, plan, sink);

  std::ostringstream stream;
  write_legacy_trace_csv(stream, topo, sink);
  std::istringstream in(stream.str());
  std::uint64_t delivered = 0;
  std::uint64_t fresh = 0;
  std::size_t rx_rows = 0;
  std::size_t coll_rows = 0;
  for (const LegacyTraceRecord& rec : read_trace_csv(in)) {
    if (rec.event == "tx") {
      delivered += rec.detail1;
      fresh += rec.detail2;
    } else if (rec.event == "rx") {
      ++rx_rows;
    } else if (rec.event == "coll") {
      ++coll_rows;
    }
  }
  EXPECT_EQ(delivered, out.stats.rx);
  EXPECT_EQ(fresh, out.stats.rx - out.stats.duplicates);
  EXPECT_EQ(rx_rows, out.stats.rx - out.stats.duplicates);
  EXPECT_EQ(coll_rows, out.stats.collisions);
}

TEST(TraceIo, ReaderSkipsMalformedRows) {
  std::istringstream in(
      "event,slot,node,x,y,z,detail1,detail2\n"
      "tx,1,5,0.5,1.0,0.0,3,3\n"
      "truncated,2,9\n"
      "rx,not-a-slot,9,0,0,0,5,1\n"
      "\n"
      "coll,4,7,1.0,2.0,0.0,2,0\n");
  const std::vector<LegacyTraceRecord> records = read_trace_csv(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "tx");
  EXPECT_EQ(records[0].slot, 1u);
  EXPECT_EQ(records[0].node, 5u);
  EXPECT_EQ(records[1].event, "coll");
  EXPECT_EQ(records[1].detail1, 2u);
}

TEST(TraceIo, RetransmitterOffsetsPipeSeparated) {
  const Mesh2D4 topo(16, 16);
  const auto plan = paper_plan(topo, topo.grid().to_id({6, 8}));
  std::ostringstream stream;
  write_plan_csv(stream, topo, plan);
  EXPECT_NE(stream.str().find(",retransmitter,1|2"), std::string::npos);
}

}  // namespace
}  // namespace wsn
