#include "geometry/diagonal.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Diagonal, PaperExamplesForS1AndS2) {
  // Paper §3: nodes (5,7), (6,6), (7,5) are in S1(12); (5,3), (6,4), (7,5)
  // are in S2(2).
  for (Vec2 v : {Vec2{5, 7}, Vec2{6, 6}, Vec2{7, 5}}) {
    EXPECT_TRUE(on_s1(v, 12)) << to_string(v);
  }
  for (Vec2 v : {Vec2{5, 3}, Vec2{6, 4}, Vec2{7, 5}}) {
    EXPECT_TRUE(on_s2(v, 2)) << to_string(v);
  }
  EXPECT_FALSE(on_s1({5, 6}, 12));
  EXPECT_FALSE(on_s2({5, 4}, 2));
}

TEST(Diagonal, FloorModHandlesNegatives) {
  EXPECT_EQ(floor_mod(7, 5), 2);
  EXPECT_EQ(floor_mod(-1, 5), 4);
  EXPECT_EQ(floor_mod(-5, 5), 0);
  EXPECT_EQ(floor_mod(-12, 4), 0);
  EXPECT_EQ(floor_mod(0, 3), 0);
}

TEST(Diagonal, S2FamilyMembership) {
  // Family S2(base + 5k), the 2D-8 relay family.
  const int base = -4;  // source (5,9): i-j = -4
  for (int k : {-2, -1, 0, 1, 2, 3}) {
    const int c = base + 5 * k;
    EXPECT_TRUE(in_s2_family({c + 1, 1}, base, 5)) << c;
  }
  EXPECT_FALSE(in_s2_family({base + 2, 0}, base, 5));
  EXPECT_FALSE(in_s2_family({base + 4 + 1, 1}, base, 5));
}

TEST(Diagonal, S1FamilyMembership) {
  EXPECT_TRUE(in_s1_family({3, 4}, 7, 5));    // s1 = 7
  EXPECT_TRUE(in_s1_family({6, 6}, 7, 5));    // s1 = 12
  EXPECT_TRUE(in_s1_family({1, 1}, 7, 5));    // s1 = 2 = 7 - 5
  EXPECT_FALSE(in_s1_family({2, 2}, 7, 5));   // s1 = 4
}

TEST(Diagonal, S1NodesInGridEnumerates) {
  // S1(5) in a 4×4 grid: (1,4), (2,3), (3,2), (4,1).
  const auto nodes = s1_nodes_in_grid(5, 4, 4);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes.front(), (Vec2{1, 4}));
  EXPECT_EQ(nodes.back(), (Vec2{4, 1}));
  for (Vec2 v : nodes) EXPECT_EQ(s1_index(v), 5);
}

TEST(Diagonal, S1NodesClippedByGrid) {
  EXPECT_EQ(s1_nodes_in_grid(2, 4, 4).size(), 1u);   // only (1,1)
  EXPECT_EQ(s1_nodes_in_grid(8, 4, 4).size(), 1u);   // only (4,4)
  EXPECT_TRUE(s1_nodes_in_grid(1, 4, 4).empty());    // below range
  EXPECT_TRUE(s1_nodes_in_grid(9, 4, 4).empty());    // above range
}

TEST(Diagonal, S2NodesInGridEnumerates) {
  // S2(0) in a 3×5 grid: the main diagonal (1,1), (2,2), (3,3).
  const auto nodes = s2_nodes_in_grid(0, 3, 5);
  ASSERT_EQ(nodes.size(), 3u);
  for (Vec2 v : nodes) EXPECT_EQ(s2_index(v), 0);
}

TEST(Diagonal, S2NodesNegativeIndex) {
  // S2(-2) in a 4×4 grid: (1,3), (2,4).
  const auto nodes = s2_nodes_in_grid(-2, 4, 4);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], (Vec2{1, 3}));
  EXPECT_EQ(nodes[1], (Vec2{2, 4}));
}

TEST(Diagonal, GridEnumerationMatchesPredicate) {
  // Property: enumeration and per-cell predicates agree on a whole grid.
  constexpr int kM = 9;
  constexpr int kN = 7;
  for (int c = -10; c <= 20; ++c) {
    std::size_t count = 0;
    for (int y = 1; y <= kN; ++y) {
      for (int x = 1; x <= kM; ++x) {
        if (on_s1({x, y}, c)) ++count;
      }
    }
    EXPECT_EQ(s1_nodes_in_grid(c, kM, kN).size(), count) << "c=" << c;
  }
}

}  // namespace
}  // namespace wsn
