#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace wsn {
namespace {

TEST(Xoshiro256, DeterministicForEqualSeeds) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);  // 64-bit collisions should be essentially absent
}

TEST(Xoshiro256, ZeroSeedStillProducesEntropy) {
  // splitmix64 seeding must never leave the all-zero state (which would be
  // a fixed point of the xoshiro transition).
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 512ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(1234);
  constexpr std::uint64_t kBound = 8;
  constexpr int kDraws = 80000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kDraws; ++i) {
    histogram[rng.below(kBound)] += 1;
  }
  const double expected = static_cast<double>(kDraws) / kBound;
  for (int count : histogram) {
    EXPECT_NEAR(count, expected, expected * 0.10);
  }
}

TEST(Xoshiro256, CanonicalInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.canonical();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceEdgeCases) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  // Regression anchor: fixed outputs for a fixed seed.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_EQ(splitmix64(state2), second);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace wsn
