#include "geometry/vec2.h"
#include "geometry/vec3.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Vec2, Arithmetic) {
  constexpr Vec2 a{3, 4};
  constexpr Vec2 b{-1, 2};
  static_assert(a + b == Vec2{2, 6});
  static_assert(a - b == Vec2{4, 2});
  static_assert(2 * a == Vec2{6, 8});
  EXPECT_EQ(a + b, (Vec2{2, 6}));
}

TEST(Vec2, Comparisons) {
  EXPECT_EQ((Vec2{1, 2}), (Vec2{1, 2}));
  EXPECT_NE((Vec2{1, 2}), (Vec2{2, 1}));
  EXPECT_LT((Vec2{1, 5}), (Vec2{2, 0}));  // lexicographic on (x, y)
}

TEST(Vec2, ManhattanDistance) {
  EXPECT_EQ(manhattan(Vec2{0, 0}, Vec2{0, 0}), 0);
  EXPECT_EQ(manhattan(Vec2{1, 1}, Vec2{4, 5}), 7);
  EXPECT_EQ(manhattan(Vec2{4, 5}, Vec2{1, 1}), 7);  // symmetric
  EXPECT_EQ(manhattan(Vec2{-2, -3}, Vec2{2, 3}), 10);
}

TEST(Vec2, ChebyshevDistance) {
  EXPECT_EQ(chebyshev(Vec2{0, 0}, Vec2{0, 0}), 0);
  EXPECT_EQ(chebyshev(Vec2{1, 1}, Vec2{4, 5}), 4);
  EXPECT_EQ(chebyshev(Vec2{1, 1}, Vec2{5, 4}), 4);
  EXPECT_EQ(chebyshev(Vec2{1, 1}, Vec2{2, 2}), 1);  // one 2D-8 hop
}

TEST(Vec2, ToString) {
  EXPECT_EQ(to_string(Vec2{5, 9}), "(5,9)");
  EXPECT_EQ(to_string(Vec2{-1, 0}), "(-1,0)");
}

TEST(Vec3, ArithmeticAndProjection) {
  constexpr Vec3 a{1, 2, 3};
  constexpr Vec3 b{4, 5, 6};
  static_assert(a + b == Vec3{5, 7, 9});
  static_assert(b - a == Vec3{3, 3, 3});
  static_assert(a.xy() == Vec2{1, 2});
  EXPECT_EQ(a.xy(), (Vec2{1, 2}));
}

TEST(Vec3, Manhattan) {
  EXPECT_EQ(manhattan(Vec3{1, 1, 1}, Vec3{2, 3, 5}), 7);
  EXPECT_EQ(manhattan(Vec3{0, 0, 0}, Vec3{0, 0, 0}), 0);
}

TEST(Vec3, ToString) {
  EXPECT_EQ(to_string(Vec3{6, 8, 4}), "(6,8,4)");
}

}  // namespace
}  // namespace wsn
