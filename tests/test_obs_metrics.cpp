#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/parallel.h"

namespace wsn {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ShardsMergeExactlyUnderParallelFor) {
  Counter c;
  constexpr std::size_t kIters = 200000;
  parallel_for(0, kIters, [&](std::size_t) { c.increment(); });
  EXPECT_EQ(c.value(), kIters);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsAllLand) {
  Gauge g;
  parallel_for(0, 10000, [&](std::size_t) { g.add(1.0); });
  EXPECT_DOUBLE_EQ(g.value(), 10000.0);
}

TEST(Histogram, BucketsOnInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive edge)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // overflow
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.2);
}

TEST(Histogram, EmptyReportsZeroExtrema) {
  const Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactTotalsUnderParallelFor) {
  Histogram h({10.0, 100.0, 1000.0});
  constexpr std::size_t kIters = 50000;
  parallel_for(0, kIters, [&](std::size_t i) {
    h.observe(static_cast<double>(i % 2000));
  });
  EXPECT_EQ(h.count(), kIters);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kIters);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1999.0);
}

TEST(HistogramSnapshot, PercentilesInterpolateAndClampToExtrema) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t.lat", {1.0, 2.0, 4.0, 8.0});
  // 100 observations spread 25/25/25/25 over the four bucket ranges.
  for (int i = 0; i < 25; ++i) {
    h.observe(0.5);
    h.observe(1.5);
    h.observe(3.0);
    h.observe(6.0);
  }
  const MetricsSnapshot scraped = registry.scrape();
  const HistogramSnapshot* snap = scraped.histogram("t.lat");
  ASSERT_NE(snap, nullptr);
  // p0/p100 are the exact extrema; interior quantiles land inside the
  // covering bucket (p50 inside (1,2], p95 inside (4,8]).
  EXPECT_DOUBLE_EQ(snap->percentile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(snap->percentile(1.0), 6.0);
  const double p50 = snap->percentile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  const double p95 = snap->percentile(0.95);
  EXPECT_GT(p95, 4.0);
  EXPECT_LE(p95, 6.0);  // clamped to max
  // Monotone in q.
  EXPECT_LE(snap->percentile(0.5), snap->percentile(0.9));
  EXPECT_LE(snap->percentile(0.9), snap->percentile(0.99));
}

TEST(HistogramSnapshot, PercentileOfEmptyIsZero) {
  MetricsRegistry registry;
  registry.histogram("t.empty", {1.0});
  const MetricsSnapshot scraped = registry.scrape();
  const HistogramSnapshot* snap = scraped.histogram("t.empty");
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->percentile(0.5), 0.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("sim.tx");
  Counter& b = registry.counter("sim.tx");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(registry.counter("sim.tx").value(), 7u);

  Histogram& h1 = registry.histogram("sim.delay", {1.0, 2.0});
  Histogram& h2 = registry.histogram("sim.delay", {99.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, ScrapeIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("mid.gauge").set(3.5);
  registry.histogram("h.delay", {4.0}).observe(2.0);

  const MetricsSnapshot snap = registry.scrape();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
  EXPECT_EQ(snap.counter_or("z.last"), 1u);
  EXPECT_EQ(snap.counter_or("missing", 17), 17u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.5);
  const HistogramSnapshot* h = snap.histogram("h.delay");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsRegistry, ConcurrentFindOrCreateAndIncrement) {
  MetricsRegistry registry;
  const std::vector<std::string> names = {"m.a", "m.b", "m.c", "m.d"};
  parallel_for(0, 8000, [&](std::size_t i) {
    registry.counter(names[i % names.size()]).increment();
  });
  const MetricsSnapshot snap = registry.scrape();
  ASSERT_EQ(snap.counters.size(), names.size());
  for (const std::string& name : names) {
    EXPECT_EQ(snap.counter_or(name), 2000u) << name;
  }
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("sim.tx");
  Histogram& h = registry.histogram("sim.delay", {8.0});
  c.add(5);
  h.observe(3.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);  // the handle still feeds the same registry entry
  EXPECT_EQ(registry.scrape().counter_or("sim.tx"), 1u);
}

TEST(MetricsJson, EmitsSchemaAndValues) {
  MetricsRegistry registry;
  registry.counter("sim.tx").add(12);
  registry.gauge("sim.reached").set(128.0);
  registry.histogram("sim.delay", {2.0, 4.0}).observe(3.0);
  std::ostringstream out;
  write_metrics_json(out, registry.scrape());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"meshbcast.metrics\""),
            std::string::npos);
  EXPECT_NE(text.find("\"sim.tx\":12"), std::string::npos);
  EXPECT_NE(text.find("\"sim.reached\":128"), std::string::npos);
  EXPECT_NE(text.find("\"sim.delay\""), std::string::npos);
}

// The scrape is now emitted through common/json's JsonWriter: the
// document must parse back with the repo's own parser, value-exact.
TEST(MetricsJson, ScrapeRoundTripsThroughParseJson) {
  MetricsRegistry registry;
  registry.counter("sim.tx").add(12);
  registry.counter("sim.rx").add(340);
  registry.gauge("scenario.queue_depth").set(7.0);
  registry.gauge("pi").set(3.141592653589793);
  Histogram& h = registry.histogram("sim.delay", {2.0, 4.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);
  std::ostringstream out;
  write_metrics_json(out, registry.scrape());

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(out.str(), doc, &error)) << error;
  EXPECT_EQ(doc.string_or("schema", ""), "meshbcast.metrics");
  EXPECT_EQ(doc.number_or("version", 0), 1.0);

  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("sim.tx", -1), 12.0);
  EXPECT_EQ(counters->number_or("sim.rx", -1), 340.0);

  const JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->number_or("scenario.queue_depth", -1), 7.0);
  // %.17g preserves doubles exactly through the round trip.
  EXPECT_EQ(gauges->number_or("pi", 0), 3.141592653589793);

  const JsonValue* hist = doc.find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* delay = hist->find("sim.delay");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->number_or("count", 0), 3.0);
  EXPECT_EQ(delay->number_or("sum", 0), 13.0);
  EXPECT_EQ(delay->number_or("min", -1), 1.0);
  EXPECT_EQ(delay->number_or("max", -1), 9.0);
  const JsonValue* buckets = delay->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->as_array().size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(buckets->as_array()[1].as_number(), 1.0);
  EXPECT_EQ(buckets->as_array()[2].as_number(), 1.0);

  // The JSON embeds the percentile estimates the snapshot computes --
  // what perf_report and bench_diff consume downstream.
  const MetricsSnapshot scraped = registry.scrape();
  const HistogramSnapshot* snapshot = scraped.histogram("sim.delay");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(delay->number_or("p50", -1), snapshot->percentile(0.50));
  ASSERT_NE(delay->find("p95"), nullptr);
  ASSERT_NE(delay->find("p99"), nullptr);
  EXPECT_EQ(delay->number_or("p99", -1), snapshot->percentile(0.99));
}

}  // namespace
}  // namespace wsn
