// service/journal: the WSNJRNL1 format and RequestJournal durability
// machinery, exercised without a live service.  Covers the acceptance
// properties the journal was built around: record round-trips with
// checksum rejection on corruption, torn-tail truncation on open,
// lifetime counters that resume from the replayed prefix, and batch
// flushing by count and by close.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_journal_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

JournalRecord sample_record(std::uint64_t seq) {
  JournalRecord r;
  r.seq = seq;
  r.client_id = seq * 3 + 1;
  r.ts_micros = 1700000000000000ull + seq;
  r.fp_hi = 0xdeadbeefcafef00dull;
  r.fp_lo = 0x0123456789abcdefull ^ seq;
  r.admission_ms = 0.125;
  r.queue_ms = 1.5;
  r.exec_ms = 7.25;
  r.emit_ms = 0.75;
  r.total_ms = 9.625;
  r.method = JournalMethod::kSimulate;
  r.outcome = JournalOutcome::kOk;
  r.flags = kJournalHasClientId;
  return r;
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(JournalTest, RecordRoundTrip) {
  const JournalRecord original = sample_record(42);
  const std::string bytes = encode_journal_record(original);
  ASSERT_EQ(bytes.size(), kJournalRecordSize);

  JournalRecord decoded;
  ASSERT_TRUE(decode_journal_record(bytes, decoded));
  EXPECT_EQ(decoded.seq, original.seq);
  EXPECT_EQ(decoded.client_id, original.client_id);
  EXPECT_EQ(decoded.ts_micros, original.ts_micros);
  EXPECT_EQ(decoded.fp_hi, original.fp_hi);
  EXPECT_EQ(decoded.fp_lo, original.fp_lo);
  EXPECT_EQ(decoded.admission_ms, original.admission_ms);
  EXPECT_EQ(decoded.queue_ms, original.queue_ms);
  EXPECT_EQ(decoded.exec_ms, original.exec_ms);
  EXPECT_EQ(decoded.emit_ms, original.emit_ms);
  EXPECT_EQ(decoded.total_ms, original.total_ms);
  EXPECT_EQ(decoded.method, original.method);
  EXPECT_EQ(decoded.outcome, original.outcome);
  EXPECT_EQ(decoded.flags, original.flags);
}

TEST(JournalTest, DecodeRejectsCorruption) {
  std::string bytes = encode_journal_record(sample_record(7));
  JournalRecord decoded;
  ASSERT_TRUE(decode_journal_record(bytes, decoded));

  // Any single flipped bit must fail the checksum.
  std::string corrupt = bytes;
  corrupt[17] = static_cast<char>(corrupt[17] ^ 0x01);
  EXPECT_FALSE(decode_journal_record(corrupt, decoded));

  // Wrong length is rejected outright.
  EXPECT_FALSE(decode_journal_record(bytes.substr(0, 40), decoded));
  EXPECT_FALSE(decode_journal_record(bytes + "x", decoded));

  // A checksum-valid record with an out-of-range enum byte is rejected.
  std::string bad_method = bytes;
  bad_method[80] = 9;
  EXPECT_FALSE(decode_journal_record(bad_method, decoded));
}

TEST(JournalTest, MethodAndOutcomeNames) {
  EXPECT_EQ(to_string(JournalMethod::kPlan), "plan");
  EXPECT_EQ(to_string(JournalMethod::kSimulate), "simulate");
  EXPECT_EQ(to_string(JournalMethod::kScenario), "scenario");
  EXPECT_EQ(to_string(JournalOutcome::kOk), "ok");
  EXPECT_EQ(to_string(JournalOutcome::kError), "error");
  EXPECT_EQ(to_string(JournalOutcome::kShed), "shed");

  JournalMethod method = JournalMethod::kPlan;
  EXPECT_TRUE(parse_journal_method("scenario", method));
  EXPECT_EQ(method, JournalMethod::kScenario);
  EXPECT_FALSE(parse_journal_method("teleport", method));

  JournalOutcome outcome = JournalOutcome::kOk;
  EXPECT_TRUE(parse_journal_outcome("shed", outcome));
  EXPECT_EQ(outcome, JournalOutcome::kShed);
  EXPECT_FALSE(parse_journal_outcome("maybe", outcome));
}

TEST(JournalTest, OpenCreatesHeaderAndAppendsSurviveReopen) {
  const TempDir tmp("roundtrip");
  const std::string path = (tmp.path / "requests.wsnj").string();

  {
    RequestJournal journal;
    RequestJournal::Config config;
    config.path = path;
    std::string error;
    ASSERT_TRUE(journal.open(config, error)) << error;
    EXPECT_EQ(journal.replay().records, 0u);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      JournalRecord r = sample_record(seq);
      r.outcome = seq == 5 ? JournalOutcome::kShed : JournalOutcome::kOk;
      journal.append(r);
    }
    journal.close();
    const JournalLifetime life = journal.lifetime();
    EXPECT_EQ(life.records, 5u);
    EXPECT_EQ(life.served, 4u);
    EXPECT_EQ(life.sheds, 1u);
  }

  EXPECT_EQ(std::filesystem::file_size(path),
            kJournalHeaderSize + 5 * kJournalRecordSize);
  const std::string bytes = file_bytes(path);
  EXPECT_EQ(bytes.substr(0, kJournalMagic.size()), kJournalMagic);

  // Reopen: the replay sees everything, lifetime resumes from it.
  RequestJournal journal;
  RequestJournal::Config config;
  config.path = path;
  std::string error;
  ASSERT_TRUE(journal.open(config, error)) << error;
  EXPECT_EQ(journal.replay().records, 5u);
  EXPECT_EQ(journal.replay().max_seq, 5u);
  EXPECT_EQ(journal.replay().served, 4u);
  EXPECT_EQ(journal.replay().sheds, 1u);
  EXPECT_EQ(journal.replay().truncated_bytes, 0u);
  journal.append(sample_record(6));
  journal.close();
  EXPECT_EQ(journal.lifetime().records, 6u);
  EXPECT_EQ(journal.lifetime().served, 5u);
}

TEST(JournalTest, TornTailTruncatedOnOpen) {
  const TempDir tmp("torn");
  const std::string path = (tmp.path / "requests.wsnj").string();

  {
    RequestJournal journal;
    RequestJournal::Config config;
    config.path = path;
    std::string error;
    ASSERT_TRUE(journal.open(config, error)) << error;
    for (std::uint64_t seq = 1; seq <= 3; ++seq)
      journal.append(sample_record(seq));
    journal.close();
  }

  // Simulate a crash mid-append: a partial fourth record at the tail.
  std::string bytes = file_bytes(path);
  bytes += encode_journal_record(sample_record(4)).substr(0, 17);
  write_bytes(path, bytes);

  RequestJournal journal;
  RequestJournal::Config config;
  config.path = path;
  std::string error;
  ASSERT_TRUE(journal.open(config, error)) << error;
  EXPECT_EQ(journal.replay().records, 3u);
  EXPECT_EQ(journal.replay().max_seq, 3u);
  EXPECT_EQ(journal.replay().truncated_bytes, 17u);
  journal.close();

  // open() physically truncated the file back to the valid prefix.
  EXPECT_EQ(std::filesystem::file_size(path),
            kJournalHeaderSize + 3 * kJournalRecordSize);
}

TEST(JournalTest, CorruptMidFileDropsTail) {
  const TempDir tmp("corrupt");
  const std::string path = (tmp.path / "requests.wsnj").string();

  {
    RequestJournal journal;
    RequestJournal::Config config;
    config.path = path;
    std::string error;
    ASSERT_TRUE(journal.open(config, error)) << error;
    for (std::uint64_t seq = 1; seq <= 4; ++seq)
      journal.append(sample_record(seq));
    journal.close();
  }

  // Flip one byte inside record 3: records 3 and 4 both drop (append-only
  // recovery never resynchronizes past a bad record).
  std::string bytes = file_bytes(path);
  const std::size_t offset = kJournalHeaderSize + 2 * kJournalRecordSize + 9;
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  write_bytes(path, bytes);

  RequestJournal journal;
  RequestJournal::Config config;
  config.path = path;
  std::string error;
  ASSERT_TRUE(journal.open(config, error)) << error;
  EXPECT_EQ(journal.replay().records, 2u);
  EXPECT_EQ(journal.replay().truncated_bytes, 2 * kJournalRecordSize);
  journal.close();
}

TEST(JournalTest, RejectsForeignFile) {
  const TempDir tmp("foreign");
  const std::string path = (tmp.path / "notes.txt").string();
  write_bytes(path, "definitely not a journal, but at least 16 bytes\n");

  RequestJournal journal;
  RequestJournal::Config config;
  config.path = path;
  std::string error;
  EXPECT_FALSE(journal.open(config, error));
  EXPECT_NE(error.find("WSNJRNL1"), std::string::npos) << error;
}

TEST(JournalTest, BatchFlushByCount) {
  const TempDir tmp("batch");
  const std::string path = (tmp.path / "requests.wsnj").string();

  RequestJournal journal;
  RequestJournal::Config config;
  config.path = path;
  config.flush_interval_ms = 60000;  // timer effectively off
  config.flush_batch = 4;
  std::string error;
  ASSERT_TRUE(journal.open(config, error)) << error;

  for (std::uint64_t seq = 1; seq <= 4; ++seq)
    journal.append(sample_record(seq));
  // The count threshold wakes the flusher; poll for the write.
  JournalReadResult result;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(read_journal_file(path, result, error)) << error;
    if (result.records.size() >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(result.records.size(), 4u);

  // Below the threshold nothing is guaranteed on disk until flush().
  journal.append(sample_record(5));
  journal.flush();
  ASSERT_TRUE(read_journal_file(path, result, error)) << error;
  EXPECT_EQ(result.records.size(), 5u);
  EXPECT_EQ(result.torn_bytes, 0u);
  journal.close();
}

TEST(JournalTest, ReadJournalFileReportsTornBytesWithoutModifying) {
  const TempDir tmp("readonly");
  const std::string path = (tmp.path / "requests.wsnj").string();

  {
    RequestJournal journal;
    RequestJournal::Config config;
    config.path = path;
    std::string error;
    ASSERT_TRUE(journal.open(config, error)) << error;
    journal.append(sample_record(1));
    journal.close();
  }
  std::string bytes = file_bytes(path);
  bytes += "torn";
  write_bytes(path, bytes);
  const auto size_before = std::filesystem::file_size(path);

  JournalReadResult result;
  std::string error;
  ASSERT_TRUE(read_journal_file(path, result, error)) << error;
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.torn_bytes, 4u);
  EXPECT_EQ(std::filesystem::file_size(path), size_before);
}

}  // namespace
}  // namespace wsn
