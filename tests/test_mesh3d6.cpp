#include "topology/mesh3d6.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Mesh3D6, InteriorNodeHasSixAxisNeighbors) {
  const Mesh3D6 mesh(4, 4, 4);
  const Grid3D& g = mesh.grid();
  const NodeId center = g.to_id({2, 2, 2});
  ASSERT_EQ(mesh.degree(center), 6u);
  for (Vec3 u : {Vec3{1, 2, 2}, Vec3{3, 2, 2}, Vec3{2, 1, 2}, Vec3{2, 3, 2},
                 Vec3{2, 2, 1}, Vec3{2, 2, 3}}) {
    EXPECT_TRUE(mesh.adjacent(center, g.to_id(u))) << to_string(u);
  }
  EXPECT_FALSE(mesh.adjacent(center, g.to_id({3, 3, 2})));  // no diagonals
}

TEST(Mesh3D6, CornerEdgeFaceDegrees) {
  const Mesh3D6 mesh(8, 8, 8);
  const Grid3D& g = mesh.grid();
  EXPECT_EQ(mesh.degree(g.to_id({1, 1, 1})), 3u);  // corner
  EXPECT_EQ(mesh.degree(g.to_id({4, 1, 1})), 4u);  // edge
  EXPECT_EQ(mesh.degree(g.to_id({4, 4, 1})), 5u);  // face
  EXPECT_EQ(mesh.degree(g.to_id({4, 4, 4})), 6u);  // interior
}

TEST(Mesh3D6, DegreeHistogramAtPaperSize) {
  const Mesh3D6 mesh(8, 8, 8);
  std::size_t by_degree[7] = {};
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    by_degree[mesh.degree(v)] += 1;
  }
  EXPECT_EQ(by_degree[3], 8u);              // corners
  EXPECT_EQ(by_degree[4], 12u * 6);         // edges
  EXPECT_EQ(by_degree[5], 6u * 36);         // faces
  EXPECT_EQ(by_degree[6], 6u * 6 * 6);      // interior
}

TEST(Mesh3D6, IdCoordRoundTrip) {
  const Mesh3D6 mesh(3, 5, 7);
  const Grid3D& g = mesh.grid();
  for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
    EXPECT_EQ(g.to_id(g.to_coord(id)), id);
  }
}

TEST(Mesh3D6, PlaneStructureMatches2D4) {
  // Within one XY plane the adjacency is exactly the 4-neighbor mesh.
  const Mesh3D6 mesh(5, 5, 3);
  const Grid3D& g = mesh.grid();
  const NodeId center = g.to_id({3, 3, 2});
  int in_plane = 0;
  for (NodeId u : mesh.neighbors(center)) {
    if (g.to_coord(u).z == 2) ++in_plane;
  }
  EXPECT_EQ(in_plane, 4);
}

TEST(Mesh3D6, PositionsSpanThreeAxes) {
  const Mesh3D6 mesh(2, 2, 2, 0.5);
  const Grid3D& g = mesh.grid();
  const auto p = mesh.position(g.to_id({2, 2, 2}));
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

}  // namespace
}  // namespace wsn
