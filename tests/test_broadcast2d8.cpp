#include "protocol/mesh2d8_broadcast.h"

#include <gtest/gtest.h>

#include "geometry/diagonal.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d8.h"

namespace wsn {
namespace {

TEST(Broadcast2D8, FamilyAxisPrefersLongerFeeder) {
  // Central source on a wide mesh: both diagonals long, paper default (S2
  // family) kept.
  EXPECT_TRUE(Mesh2d8Broadcast::family_on_s2({16, 8}, 32, 16));
  // Corner (1,1): the S1 feeder through it is a single cell while the S2
  // feeder is the main diagonal -- family must flip to S1.
  EXPECT_FALSE(Mesh2d8Broadcast::family_on_s2({1, 1}, 32, 16));
  EXPECT_FALSE(Mesh2d8Broadcast::family_on_s2({32, 16}, 32, 16));
  // Corner (1,16): S1 feeder is the long anti-diagonal; family stays on S2.
  EXPECT_TRUE(Mesh2d8Broadcast::family_on_s2({1, 16}, 32, 16));
}

TEST(Broadcast2D8, PlanContainsFeederAndFamilyDiagonals) {
  // Fig. 7: source (5,9) on 14×14: relays on S1(14) and the S2 family
  // S2(-4 + 5k) = ..., S2(-9), S2(-4), S2(1), S2(6), S2(11), ...
  const Mesh2D8 topo(14, 14);
  const Grid2D& g = topo.grid();
  const Mesh2d8Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({5, 9}));
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const Vec2 c = g.to_coord(v);
    if (on_s1(c, 14) || in_s2_family(c, -4, 5)) {
      EXPECT_TRUE(plan.is_relay(v)) << to_string(c);
    }
  }
  // Off-feeder, off-family, off-border cells stay passive.
  EXPECT_FALSE(plan.is_relay(g.to_id({5, 8})));   // s1=13, s2=-3
  EXPECT_FALSE(plan.is_relay(g.to_id({7, 9})));   // s1=16, s2=-2
}

TEST(Broadcast2D8, NearSourceFeederNodesRetransmit) {
  // Fig. 7's repair: "(6,8) retransmits"; symmetric partner (4,10) too.
  const Mesh2D8 topo(14, 14);
  const Grid2D& g = topo.grid();
  const Mesh2d8Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({5, 9}));
  EXPECT_EQ(plan.tx_offsets[g.to_id({6, 8})].size(), 2u);
  EXPECT_EQ(plan.tx_offsets[g.to_id({4, 10})].size(), 2u);
  // Family diagonal neighbors transmit once.
  EXPECT_EQ(plan.tx_offsets[g.to_id({6, 10})].size(), 1u);
  EXPECT_EQ(plan.tx_offsets[g.to_id({4, 8})].size(), 1u);
}

class Broadcast2D8AllSources
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Broadcast2D8AllSources, ResolvedPlanReachesEveryone) {
  const auto [m, n] = GetParam();
  const Mesh2D8 topo(m, n);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    ResolveReport report;
    const RelayPlan plan = paper_plan(topo, src, {}, &report);
    const auto out = simulate_broadcast(topo, plan);
    ASSERT_TRUE(out.stats.fully_reached())
        << "source " << to_string(topo.grid().to_coord(src));
    // Repairs stay incidental, never a rebuild of the plan.
    ASSERT_LE(report.repairs, topo.num_nodes() / 10 + 8);
  }
}

TEST_P(Broadcast2D8AllSources, RawPlanAlreadyCoversAlmostEverything) {
  const auto [m, n] = GetParam();
  const Mesh2D8 topo(m, n);
  const Mesh2d8Broadcast proto;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, proto.plan(topo, src));
    ASSERT_GT(out.stats.reachability(), 0.85)
        << "source " << to_string(topo.grid().to_coord(src));
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, Broadcast2D8AllSources,
                         ::testing::Values(std::pair{32, 16},
                                           std::pair{16, 16},
                                           std::pair{7, 5}, std::pair{8, 6},
                                           std::pair{12, 3}));

TEST(Broadcast2D8, DelayStaysNearEccentricity) {
  const Mesh2D8 topo(32, 16);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const RelayPlan plan = paper_plan(topo, src);
    const auto out = simulate_broadcast(topo, plan);
    const auto ecc = eccentricity(topo, src);
    ASSERT_GE(out.stats.delay, ecc);
    ASSERT_LE(out.stats.delay, ecc + 10);  // border sweeps + repairs
  }
}

TEST(Broadcast2D8, PaperSizeTxEnvelope) {
  const Mesh2D8 topo(32, 16);
  std::size_t min_tx = ~std::size_t{0};
  std::size_t max_tx = 0;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, paper_plan(topo, src));
    min_tx = std::min(min_tx, out.stats.tx);
    max_tx = std::max(max_tx, out.stats.tx);
  }
  // Paper Table 3/4 envelope is [143, 147]; ours lands within a few
  // transmissions of it (the resolver's repairs are counted).
  EXPECT_GE(min_tx, 135u);
  EXPECT_LE(min_tx, 150u);
  EXPECT_LE(max_tx, 165u);
}

TEST(Broadcast2D8, DiagonalTransmissionsDominate) {
  // The design premise (Fig. 6): relays forward along diagonals, so most
  // relay transmissions deliver 5 fresh neighbors in the interior.
  const Mesh2D8 topo(32, 16);
  const Grid2D& g = topo.grid();
  const auto out =
      simulate_broadcast(topo, paper_plan(topo, g.to_id({16, 8})));
  std::size_t at_five = 0;
  for (const TxRecord& rec : out.transmissions) {
    if (rec.fresh >= 5) ++at_five;
  }
  EXPECT_GT(at_five, out.transmissions.size() / 3);
}

}  // namespace
}  // namespace wsn
