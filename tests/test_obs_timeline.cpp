#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/profile.h"

namespace wsn {
namespace {

// The Timeline is process-wide (rings register per thread and survive for
// the process); every test starts from disabled + empty and leaves both
// profiling sinks that way for the rest of the suite.
class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override { quiesce(); }
  void TearDown() override { quiesce(); }
  static void quiesce() {
    Timeline::instance().set_enabled(false);
    Timeline::instance().set_thread_capacity(1u << 16);
    Timeline::instance().reset();
    Profiler::instance().set_enabled(false);
    Profiler::instance().reset();
  }
  static std::size_t total_records() {
    std::size_t total = 0;
    for (const TimelineThreadDump& t : Timeline::instance().snapshot()) {
      total += t.records.size();
    }
    return total;
  }
};

TEST_F(TimelineTest, DisabledRecordsNothing) {
  Timeline& timeline = Timeline::instance();
  ASSERT_FALSE(timeline.enabled());
  timeline.record("test.span", 10, 20);
  timeline.record_wait("test.wait", 5);
  { WSN_SPAN("test.macro"); }
  EXPECT_EQ(total_records(), 0u);
}

TEST_F(TimelineTest, RecordsPerThreadWithLabels) {
  Timeline& timeline = Timeline::instance();
  timeline.set_enabled(true);
  timeline.set_thread_label("main");
  timeline.record("test.a", 10, 20);
  timeline.record("test.b", 30, 45);

  std::thread worker([&] {
    timeline.set_thread_label("worker/7");
    timeline.record("test.w", 100, 250);
  });
  worker.join();

  const TimelineThreadDump* main_dump = nullptr;
  const TimelineThreadDump* worker_dump = nullptr;
  const auto snapshot = timeline.snapshot();
  for (const TimelineThreadDump& t : snapshot) {
    if (t.label == "main") main_dump = &t;
    if (t.label == "worker/7") worker_dump = &t;
  }
  ASSERT_NE(main_dump, nullptr);
  ASSERT_NE(worker_dump, nullptr);
  ASSERT_EQ(main_dump->records.size(), 2u);
  EXPECT_STREQ(main_dump->records[0].name, "test.a");  // oldest first
  EXPECT_EQ(main_dump->records[0].begin_ns, 10u);
  EXPECT_EQ(main_dump->records[0].end_ns, 20u);
  EXPECT_STREQ(main_dump->records[1].name, "test.b");
  ASSERT_EQ(worker_dump->records.size(), 1u);
  EXPECT_STREQ(worker_dump->records[0].name, "test.w");
  EXPECT_NE(main_dump->tid, worker_dump->tid);
  EXPECT_EQ(main_dump->dropped, 0u);
}

TEST_F(TimelineTest, RingWrapKeepsNewestAndCountsDropped) {
  Timeline& timeline = Timeline::instance();
  timeline.set_enabled(true);
  timeline.set_thread_capacity(64);  // applies to threads registering later

  std::thread writer([&] {
    timeline.set_thread_label("wrap");
    for (std::uint64_t i = 0; i < 100; ++i) {
      timeline.record("test.wrap", i, i + 1);
    }
  });
  writer.join();

  const TimelineThreadDump* wrap = nullptr;
  const auto snapshot = Timeline::instance().snapshot();
  for (const TimelineThreadDump& t : snapshot) {
    if (t.label == "wrap") wrap = &t;
  }
  ASSERT_NE(wrap, nullptr);
  EXPECT_EQ(wrap->records.size(), 64u);
  EXPECT_EQ(wrap->dropped, 36u);
  // Oldest-first, and the oldest surviving record is #36.
  EXPECT_EQ(wrap->records.front().begin_ns, 36u);
  EXPECT_EQ(wrap->records.back().begin_ns, 99u);
}

TEST_F(TimelineTest, RecordWaitSpansEndNow) {
  Timeline& timeline = Timeline::instance();
  timeline.set_enabled(true);
  const std::uint64_t before = timeline.now_ns();
  timeline.record_wait("test.wait", 1000);
  const auto snapshot = timeline.snapshot();
  const TimelineRecord* found = nullptr;
  for (const TimelineThreadDump& t : snapshot) {
    for (const TimelineRecord& r : t.records) {
      if (std::string(r.name) == "test.wait") found = &r;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->end_ns - found->begin_ns, 1000u);
  EXPECT_GE(found->end_ns, before);
}

TEST_F(TimelineTest, TimelineAndAggregateModesAreIndependent) {
  // Timeline only: the aggregate Profiler must stay empty.
  Timeline::instance().set_enabled(true);
  { WSN_SPAN("test.tl_only"); }
  EXPECT_GE(total_records(), 1u);
  EXPECT_TRUE(Profiler::instance().snapshot().empty());

  // Aggregate only: the timeline must stay empty.
  quiesce();
  Profiler::instance().set_enabled(true);
  { WSN_SPAN("test.agg_only"); }
  EXPECT_EQ(total_records(), 0u);
  ASSERT_EQ(Profiler::instance().snapshot().size(), 1u);
}

TEST_F(TimelineTest, ResetDropsRecordsAndLabels) {
  Timeline& timeline = Timeline::instance();
  timeline.set_enabled(true);
  timeline.set_thread_label("doomed");
  timeline.record("test.gone", 1, 2);
  timeline.reset();
  for (const TimelineThreadDump& t : timeline.snapshot()) {
    EXPECT_TRUE(t.records.empty());
    EXPECT_TRUE(t.label.empty());
    EXPECT_EQ(t.dropped, 0u);
  }
}

TEST_F(TimelineTest, RequestTagScopeTagsSpansAndRestoresOuter) {
  Timeline& timeline = Timeline::instance();
  timeline.set_enabled(true);

  timeline.record("test.untagged", 1, 2);
  {
    RequestTagScope outer(7);
    timeline.record("test.outer", 3, 4);
    { WSN_SPAN("test.macro_inherits"); }
    {
      RequestTagScope inner(8);
      timeline.record("test.inner", 5, 6);
    }
    timeline.record("test.outer_again", 7, 8);
    // Explicit tag beats the ambient scope (cross-thread attribution).
    timeline.record("test.explicit", 9, 10, 42);
    timeline.record_wait("test.wait", 100, 43);
  }
  // A scope constructed with 0 is inert until set().
  {
    RequestTagScope lazy;
    timeline.record("test.lazy_before", 11, 12);
    lazy.set(9);
    timeline.record("test.lazy_after", 13, 14);
  }
  timeline.record("test.after", 15, 16);

  std::map<std::string, std::uint64_t> tag_of;
  for (const TimelineThreadDump& t : timeline.snapshot()) {
    for (const TimelineRecord& r : t.records) tag_of[r.name] = r.tag;
  }
  EXPECT_EQ(tag_of["test.untagged"], 0u);
  EXPECT_EQ(tag_of["test.outer"], 7u);
  EXPECT_EQ(tag_of["test.macro_inherits"], 7u);
  EXPECT_EQ(tag_of["test.inner"], 8u);
  EXPECT_EQ(tag_of["test.outer_again"], 7u);
  EXPECT_EQ(tag_of["test.explicit"], 42u);
  EXPECT_EQ(tag_of["test.wait"], 43u);
  EXPECT_EQ(tag_of["test.lazy_before"], 0u);
  EXPECT_EQ(tag_of["test.lazy_after"], 9u);
  EXPECT_EQ(tag_of["test.after"], 0u);
}

TEST_F(TimelineTest, JsonlExportCarriesRequestTagWhenSet) {
  std::vector<TimelineThreadDump> threads(1);
  threads[0].tid = 0;
  threads[0].label = "worker/0";
  threads[0].records = {{10, 20, "service.plan"}, {25, 30, "idle.scan"}};
  threads[0].records[0].tag = 17;

  std::ostringstream out;
  write_timeline_jsonl(out, threads);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);  // thread description
  ASSERT_TRUE(std::getline(in, line));
  JsonValue tagged;
  ASSERT_TRUE(parse_json(line, tagged)) << line;
  EXPECT_EQ(tagged.string_or("name", ""), "service.plan");
  EXPECT_EQ(tagged.number_or("req", -1), 17.0);
  ASSERT_TRUE(std::getline(in, line));
  JsonValue untagged;
  ASSERT_TRUE(parse_json(line, untagged)) << line;
  EXPECT_EQ(untagged.find("req"), nullptr);
}

TEST_F(TimelineTest, JsonlExportCarriesSchemaThreadsAndSpans) {
  std::vector<TimelineThreadDump> threads(2);
  threads[0].tid = 0;
  threads[0].label = "producer";
  threads[0].records = {{10, 20, "queue.push_wait"}};
  threads[1].tid = 1;
  threads[1].label = "worker/0";
  threads[1].dropped = 3;
  threads[1].records = {{5, 9, "scenario.job"}, {12, 30, "scenario.job"}};

  std::ostringstream out;
  write_timeline_jsonl(out, threads);
  std::istringstream in(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  JsonValue header;
  ASSERT_TRUE(parse_json(line, header)) << line;
  EXPECT_EQ(header.string_or("schema", ""), "meshbcast.timeline");
  EXPECT_EQ(header.number_or("version", 0), 1.0);
  EXPECT_EQ(header.number_or("threads", 0), 2.0);
  EXPECT_EQ(header.number_or("records", 0), 3.0);

  // Two thread-description lines, then the three span lines.
  ASSERT_TRUE(std::getline(in, line));
  JsonValue t0;
  ASSERT_TRUE(parse_json(line, t0));
  EXPECT_EQ(t0.string_or("label", ""), "producer");
  EXPECT_EQ(t0.number_or("records", -1), 1.0);
  ASSERT_TRUE(std::getline(in, line));
  JsonValue t1;
  ASSERT_TRUE(parse_json(line, t1));
  EXPECT_EQ(t1.string_or("label", ""), "worker/0");
  EXPECT_EQ(t1.number_or("dropped", -1), 3.0);

  std::size_t spans = 0;
  while (std::getline(in, line)) {
    JsonValue span;
    ASSERT_TRUE(parse_json(line, span)) << line;
    ASSERT_NE(span.find("name"), nullptr);
    EXPECT_GE(span.number_or("end_ns", -1), span.number_or("begin_ns", 0));
    ++spans;
  }
  EXPECT_EQ(spans, 3u);
}

TEST_F(TimelineTest, PerfettoExportEmitsCompleteEventsAndThreadNames) {
  std::vector<TimelineThreadDump> threads(1);
  threads[0].tid = 4;
  threads[0].label = "worker/4";
  threads[0].records = {{2000, 7000, "scenario.job"}};

  std::ostringstream out;
  write_timeline_perfetto(out, threads);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"worker/4\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":2"), std::string::npos);   // ns -> us
  EXPECT_NE(text.find("\"dur\":5"), std::string::npos);
}

}  // namespace
}  // namespace wsn
