#include "analysis/attribution.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "store/plan_store.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_attribution_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ParsedSpan span(const char* name, std::uint64_t begin, std::uint64_t end) {
  ParsedSpan s;
  s.name = name;
  s.begin_ns = begin;
  s.end_ns = end;
  return s;
}

TEST(Attribution, IterationBaseDecomposesExactly) {
  // A worker with two loop iterations: the first has a pop wait, a lock
  // wait, an emission stall, and a (covered, ignored) job span nested
  // inside; the second is pure compute.  Plus a producer blocked twice.
  ParsedTimelineThread producer;
  producer.tid = 0;
  producer.label = "producer";
  producer.spans = {span("queue.push_wait", 0, 100),
                    span("queue.push_wait", 150, 250)};

  ParsedTimelineThread worker;
  worker.tid = 1;
  worker.label = "worker/0";
  worker.spans = {span("queue.pop_wait", 10, 40),
                  span("store.lock_wait", 100, 200),
                  span("scenario.job", 50, 780),
                  span("scenario.emit_stall", 800, 900),
                  span("scenario.iteration", 0, 1000),
                  span("scenario.iteration", 1100, 1500)};

  const AttributionReport report =
      attribute_timeline({producer, worker});
  ASSERT_EQ(report.threads.size(), 2u);
  ASSERT_EQ(report.workers, 1u);

  const ThreadAttribution& p = report.threads[0];
  EXPECT_FALSE(p.worker);
  EXPECT_EQ(p.wall_ns, 250u);
  EXPECT_EQ(p.queue_wait_ns, 200u);
  EXPECT_EQ(p.compute_ns, 0u);
  EXPECT_EQ(p.unattributed_ns, 50u);

  const ThreadAttribution& w = report.threads[1];
  EXPECT_TRUE(w.worker);
  EXPECT_EQ(w.wall_ns, 1500u);
  // 1400 of iteration base minus the 30+100+100 of nested waits; the
  // scenario.job span is covered by its iteration and never re-counted.
  EXPECT_EQ(w.compute_ns, 1170u);
  EXPECT_EQ(w.idle_ns, 30u);
  EXPECT_EQ(w.lock_wait_ns, 100u);
  EXPECT_EQ(w.emit_stall_ns, 100u);
  EXPECT_EQ(w.queue_wait_ns, 0u);
  EXPECT_EQ(w.attributed_ns(), 1400u);
  EXPECT_EQ(w.unattributed_ns, 100u);
  EXPECT_DOUBLE_EQ(w.attributed_share(), 1400.0 / 1500.0);
  // Lock-wait and emission-stall tie at 100; emission-stall wins the tie.
  EXPECT_EQ(w.dominant_stall(), "emission-stall");
  EXPECT_EQ(report.dominant_stall, "emission-stall");
  EXPECT_DOUBLE_EQ(report.min_worker_attributed_share, 1400.0 / 1500.0);
}

TEST(Attribution, FallsBackToJobSpansWithoutIterations) {
  ParsedTimelineThread worker;
  worker.tid = 0;
  worker.label = "worker/0";
  worker.spans = {span("store.lock_wait", 20, 30),
                  span("scenario.job", 0, 100)};
  const AttributionReport report = attribute_timeline({worker});
  ASSERT_EQ(report.threads.size(), 1u);
  const ThreadAttribution& w = report.threads[0];
  EXPECT_EQ(w.compute_ns, 90u);
  EXPECT_EQ(w.lock_wait_ns, 10u);
  EXPECT_EQ(w.unattributed_ns, 0u);
  EXPECT_EQ(w.dominant_stall(), "lock-wait");
}

TEST(Attribution, ReportDominantStallSumsAcrossWorkers) {
  ParsedTimelineThread idler;
  idler.tid = 0;
  idler.label = "worker/0";
  idler.spans = {span("queue.pop_wait", 0, 300)};
  ParsedTimelineThread staller;
  staller.tid = 1;
  staller.label = "worker/1";
  staller.spans = {span("scenario.emit_stall", 0, 100)};
  const AttributionReport report = attribute_timeline({idler, staller});
  EXPECT_EQ(report.workers, 2u);
  EXPECT_EQ(report.dominant_stall, "idle");

  // Threads without spans or without the worker/ label never count.
  ParsedTimelineThread empty;
  empty.tid = 2;
  empty.label = "worker/2";
  const AttributionReport with_empty =
      attribute_timeline({idler, staller, empty});
  EXPECT_EQ(with_empty.workers, 3u);
  EXPECT_DOUBLE_EQ(with_empty.min_worker_attributed_share, 0.0);
}

TEST(Attribution, TimelineFileRoundTripsAndRejectsBadInput) {
  const TempDir tmp("roundtrip");
  std::vector<TimelineThreadDump> dumps(2);
  dumps[0].tid = 0;
  dumps[0].label = "producer";
  dumps[0].records = {{10, 25, "queue.push_wait"}};
  dumps[1].tid = 1;
  dumps[1].label = "worker/0";
  dumps[1].dropped = 2;
  dumps[1].records = {{0, 40, "scenario.iteration"},
                      {50, 90, "scenario.iteration"}};

  const std::string path = (tmp.path / "timeline.jsonl").string();
  {
    std::ofstream out(path);
    write_timeline_jsonl(out, dumps);
  }
  std::vector<ParsedTimelineThread> parsed;
  std::string error;
  ASSERT_TRUE(read_timeline_file(path, parsed, &error)) << error;
  const std::vector<ParsedTimelineThread> direct = from_snapshot(dumps);
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].tid, direct[i].tid);
    EXPECT_EQ(parsed[i].label, direct[i].label);
    EXPECT_EQ(parsed[i].dropped, direct[i].dropped);
    ASSERT_EQ(parsed[i].spans.size(), direct[i].spans.size());
    for (std::size_t j = 0; j < parsed[i].spans.size(); ++j) {
      EXPECT_EQ(parsed[i].spans[j].name, direct[i].spans[j].name);
      EXPECT_EQ(parsed[i].spans[j].begin_ns, direct[i].spans[j].begin_ns);
      EXPECT_EQ(parsed[i].spans[j].end_ns, direct[i].spans[j].end_ns);
    }
  }

  std::vector<ParsedTimelineThread> ignored;
  EXPECT_FALSE(read_timeline_file((tmp.path / "missing.jsonl").string(),
                                  ignored, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string wrong = (tmp.path / "wrong.jsonl").string();
  {
    std::ofstream out(wrong);
    out << "{\"schema\":\"meshbcast.metrics\",\"version\":1}\n";
  }
  EXPECT_FALSE(read_timeline_file(wrong, ignored, &error));
  EXPECT_NE(error.find("not a meshbcast.timeline"), std::string::npos);
}

TEST(Attribution, RequestTagRoundTripsThroughTimelineFile) {
  const TempDir tmp("reqtag");
  std::vector<TimelineThreadDump> dumps(1);
  dumps[0].tid = 0;
  dumps[0].label = "worker/0";
  dumps[0].records = {{10, 25, "service.plan"}, {30, 40, "service.emit"}};
  dumps[0].records[0].tag = 5;
  dumps[0].records[1].tag = 5;

  const std::string path = (tmp.path / "timeline.jsonl").string();
  {
    std::ofstream out(path);
    write_timeline_jsonl(out, dumps);
  }
  std::vector<ParsedTimelineThread> parsed;
  std::string error;
  ASSERT_TRUE(read_timeline_file(path, parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].spans.size(), 2u);
  EXPECT_EQ(parsed[0].spans[0].tag, 5u);
  EXPECT_EQ(parsed[0].spans[1].tag, 5u);

  // from_snapshot carries the tag as well.
  const std::vector<ParsedTimelineThread> direct = from_snapshot(dumps);
  EXPECT_EQ(direct[0].spans[0].tag, 5u);
}

TEST(Attribution, RequestCentricQueriesDecomposeOneRequest) {
  // Two requests interleaved over a handler and a worker thread, plus an
  // untagged background span that must never leak into a request view.
  ParsedTimelineThread handler;
  handler.tid = 0;
  handler.label = "handler";
  ParsedSpan a1 = span("service.admission", 0, 10);
  a1.tag = 1;
  ParsedSpan a2 = span("service.admission", 5, 12);
  a2.tag = 2;
  handler.spans = {a1, a2};

  ParsedTimelineThread worker;
  worker.tid = 1;
  worker.label = "worker/0";
  ParsedSpan q1 = span("service.queue_wait", 10, 30);
  q1.tag = 1;
  ParsedSpan p1 = span("service.plan", 30, 400);
  p1.tag = 1;
  ParsedSpan e1 = span("service.emit", 400, 420);
  e1.tag = 1;
  ParsedSpan p2 = span("service.plan", 420, 500);
  p2.tag = 2;
  ParsedSpan idle = span("queue.pop_wait", 500, 900);
  worker.spans = {q1, p1, e1, p2, idle};

  const std::vector<ParsedTimelineThread> threads = {handler, worker};

  // Request 1: four stages across both threads, begin-ordered.
  const std::vector<RequestSpanRow> rows = spans_for_request(threads, 1);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "service.admission");
  EXPECT_EQ(rows[0].label, "handler");
  EXPECT_EQ(rows[1].name, "service.queue_wait");
  EXPECT_EQ(rows[2].name, "service.plan");
  EXPECT_EQ(rows[3].name, "service.emit");
  EXPECT_EQ(rows[3].label, "worker/0");

  // Slowest-first extents: request 1 spans 0..420, request 2 5..500.
  const std::vector<RequestExtent> slowest = slowest_requests(threads, 0);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].tag, 2u);
  EXPECT_EQ(slowest[0].wall_ns(), 495u);
  EXPECT_EQ(slowest[1].tag, 1u);
  EXPECT_EQ(slowest[1].wall_ns(), 420u);
  EXPECT_EQ(slowest[1].spans, 4u);
  // The limit caps the list.
  EXPECT_EQ(slowest_requests(threads, 1).size(), 1u);

  // The text breakdown names every stage; an unknown id says so.
  const std::string text = request_breakdown_text(rows, 1);
  EXPECT_NE(text.find("request 1"), std::string::npos);
  EXPECT_NE(text.find("service.plan"), std::string::npos);
  EXPECT_NE(text.find("worker/0"), std::string::npos);
  const std::string missing =
      request_breakdown_text(spans_for_request(threads, 99), 99);
  EXPECT_NE(missing.find("no tagged spans"), std::string::npos);
}

// ---------------------------------------------------------------------
// Acceptance (ISSUE 7): on an instrumented 2-worker engine run, the
// perf-report JSON attributes >= 90% of every worker's wall time and
// names the dominant stall.
// ---------------------------------------------------------------------

TEST(AttributionAcceptance, TwoWorkerEngineRunAttributesNinetyPercent) {
  const TempDir tmp("engine");
  Timeline::instance().reset();
  Timeline::instance().set_enabled(true);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(
      "{\"name\": \"attr\", \"scenarios\": ["
      "{\"name\": \"sweep\", \"family\": \"2D-4\", \"dims\": [8, 6],"
      " \"sources\": \"all\", \"protocols\": [\"paper\"]}]}",
      doc, &error))
      << error;
  ScenarioSpec spec;
  ASSERT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  JobMatrix matrix;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;

  PlanStore store;
  MetricsRegistry metrics;
  store.bind_metrics(metrics);
  EngineConfig config;
  config.workers = 2;
  config.store = &store;
  config.metrics = &metrics;
  ScenarioEngine engine(matrix, config);
  const RunSummary summary =
      engine.run((tmp.path / "out.jsonl").string());
  Timeline::instance().set_enabled(false);
  ASSERT_TRUE(summary.ok) << summary.error;

  const AttributionReport report =
      attribute_timeline(from_snapshot(Timeline::instance().snapshot()));
  Timeline::instance().reset();

  // The acceptance assertions run against the report *JSON*, the artifact
  // tools/perf_report ships.
  std::ostringstream json;
  const MetricsSnapshot snap = metrics.scrape();
  write_attribution_json(json, report, &snap);
  JsonValue parsed;
  ASSERT_TRUE(parse_json(json.str(), parsed, &error)) << error;
  EXPECT_EQ(parsed.string_or("schema", ""), "meshbcast.perf_report");
  EXPECT_EQ(parsed.number_or("version", 0), 1.0);
  EXPECT_EQ(parsed.number_or("workers", 0), 2.0);

  // >= 90% of every worker's wall time is attributed...
  EXPECT_GE(parsed.number_or("min_worker_attributed_share", 0.0), 0.9);
  // ...and the headline names a concrete stall category.
  const std::string dominant = parsed.string_or("dominant_stall", "");
  EXPECT_TRUE(dominant == "emission-stall" || dominant == "idle" ||
              dominant == "lock-wait" || dominant == "queue-wait" ||
              dominant == "none")
      << dominant;

  const JsonValue* threads = parsed.find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  std::size_t workers_seen = 0;
  for (const JsonValue& thread : threads->as_array()) {
    if (thread.find("worker") == nullptr ||
        thread.string_or("label", "").rfind("worker/", 0) != 0) {
      continue;
    }
    workers_seen += 1;
    EXPECT_GE(thread.number_or("attributed_share", 0.0), 0.9)
        << thread.string_or("label", "");
    const JsonValue* categories = thread.find("categories");
    ASSERT_NE(categories, nullptr);
    EXPECT_GT(categories->number_or("compute", -1), 0.0);
  }
  EXPECT_EQ(workers_seen, 2u);

  // The embedded contention histograms carry count/sum/percentiles.
  const JsonValue* hist = parsed.find("contention_histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* emit = hist->find("scenario.emit_stall_ms");
  ASSERT_NE(emit, nullptr);
  EXPECT_GE(emit->number_or("count", -1), 0.0);
  ASSERT_NE(emit->find("p95"), nullptr);

  // The human-readable view names every thread and the diagnosis.
  const std::string text = attribution_text(report);
  EXPECT_NE(text.find("worker/0"), std::string::npos);
  EXPECT_NE(text.find("worker/1"), std::string::npos);
  EXPECT_NE(text.find("dominant stall: " + dominant), std::string::npos);
}

}  // namespace
}  // namespace wsn
