#include "common/string_util.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-flag", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(Join, InsertsSeparators) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Sci, MatchesPaperStyle) {
  EXPECT_EQ(sci(2.61e-2), "2.61e-02");
  EXPECT_EQ(sci(2.18e-2), "2.18e-02");
  EXPECT_EQ(sci(0.0), "0.00e+00");
}

TEST(Fixed, RoundsToDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(100.0, 1), "100.0");
  EXPECT_EQ(fixed(0.666, 3), "0.666");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // no truncation
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(ParseU64, AcceptsWellFormedInput) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("512", v));
  EXPECT_EQ(v, 512u);
  EXPECT_TRUE(parse_u64("  42 ", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseU64, RejectsMalformedInput) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("12x", v));
  EXPECT_FALSE(parse_u64("x12", v));
  EXPECT_FALSE(parse_u64("99999999999999999999999", v));  // overflow
}

TEST(ParseF64, AcceptsAndRejects) {
  double v = 0.0;
  EXPECT_TRUE(parse_f64("0.5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(parse_f64("-2.5e-2", v));
  EXPECT_DOUBLE_EQ(v, -2.5e-2);
  EXPECT_FALSE(parse_f64("", v));
  EXPECT_FALSE(parse_f64("abc", v));
  EXPECT_FALSE(parse_f64("1.5zz", v));
}

}  // namespace
}  // namespace wsn
