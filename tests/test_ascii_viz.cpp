#include "analysis/ascii_viz.h"

#include <gtest/gtest.h>

#include <sstream>

#include "protocol/mesh2d4_broadcast.h"
#include "protocol/registry.h"
#include "topology/mesh2d4.h"
#include "topology/mesh3d6.h"

namespace wsn {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AsciiViz, RolesGridHasTopRowFirst) {
  const Mesh2D4 topo(4, 3);
  const Grid2D& g = topo.grid();
  const Mesh2d4Broadcast proto;
  const NodeId src = g.to_id({2, 2});
  const RelayPlan plan = proto.plan(topo, src);
  const auto lines = lines_of(render_roles(g, plan));
  ASSERT_EQ(lines.size(), 3u);           // n rows
  ASSERT_EQ(lines[0].size(), 4u * 2 - 1);  // m cells, space separated
  // The source sits in the middle row (y=2 renders second from top).
  EXPECT_NE(lines[1].find('S'), std::string::npos);
  EXPECT_EQ(lines[0].find('S'), std::string::npos);
}

TEST(AsciiViz, GlyphsDistinguishRoles) {
  const Mesh2D4 topo(16, 16);
  const Grid2D& g = topo.grid();
  const Mesh2d4Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({6, 8}));
  const std::string out = render_roles(g, plan);
  EXPECT_NE(out.find('S'), std::string::npos);  // source
  EXPECT_NE(out.find('#'), std::string::npos);  // relays
  EXPECT_NE(out.find('R'), std::string::npos);  // retransmitters
  EXPECT_NE(out.find('.'), std::string::npos);  // passive nodes
  EXPECT_EQ(out.find('!'), std::string::npos);  // nothing unreached shown
}

TEST(AsciiViz, UnreachedGlyphWithOutcome) {
  const Mesh2D4 topo(4, 1);
  RelayPlan plan = RelayPlan::empty(4, 0);  // nobody forwards
  const auto out = simulate_broadcast(topo, plan);
  const std::string viz = render_roles(topo.grid(), plan, &out);
  // Nodes 2 and 3 never receive.
  EXPECT_EQ(std::count(viz.begin(), viz.end(), '!'), 2);
}

TEST(AsciiViz, ResolverAdditionsMarked) {
  const Mesh2D4 line(6, 1);
  RelayPlan base = RelayPlan::empty(6, 0);
  base.tx_offsets[1] = {1};
  base.tx_offsets[2] = {1};
  base.tx_offsets[4] = {1};  // gap at node 3
  const RelayPlan resolved = resolve_full_reachability(line, base);
  const std::string viz = render_roles(line.grid(), resolved, nullptr, &base);
  // The resolver had to touch the gap region: either invent a relay ('+')
  // or add a retransmission ('r').
  const bool marked = viz.find('+') != std::string::npos ||
                      viz.find('r') != std::string::npos;
  EXPECT_TRUE(marked) << viz;
}

TEST(AsciiViz, SlotsRenderFirstTransmissions) {
  const Mesh2D4 topo(5, 1);
  RelayPlan plan = RelayPlan::empty(5, 0);
  for (NodeId v = 1; v < 5; ++v) plan.tx_offsets[v] = {1};
  const auto out = simulate_broadcast(topo, plan);
  const std::string viz = render_slots(topo.grid(), out);
  // Path: slots 1 2 3 4 5 left to right.
  EXPECT_EQ(viz, " 1  2  3  4  5\n");
}

TEST(AsciiViz, SlotsShowDotForSilentNodes) {
  const Mesh2D4 topo(3, 1);
  const RelayPlan plan = RelayPlan::empty(3, 0);
  const auto out = simulate_broadcast(topo, plan);
  const std::string viz = render_slots(topo.grid(), out);
  EXPECT_EQ(viz, " 1  .  .\n");
}

TEST(AsciiViz, Roles3DRendersOnePlane) {
  const Mesh3D6 topo(4, 4, 3);
  const RelayPlan plan = paper_plan(topo, topo.grid().to_id({2, 2, 2}));
  const std::string plane1 = render_roles_3d(topo.grid(), plan, 1);
  const std::string plane2 = render_roles_3d(topo.grid(), plan, 2);
  EXPECT_EQ(lines_of(plane1).size(), 4u);
  // The source glyph only appears in its own plane.
  EXPECT_EQ(plane1.find('S'), std::string::npos);
  EXPECT_NE(plane2.find('S'), std::string::npos);
}

TEST(AsciiViz, RegionsPartitionRendered) {
  const Grid2D grid(20, 14, 0.5);
  const std::string viz = render_regions_2d3(grid, {10, 7});
  EXPECT_NE(viz.find('1'), std::string::npos);
  EXPECT_NE(viz.find('2'), std::string::npos);
  EXPECT_NE(viz.find('3'), std::string::npos);
  EXPECT_NE(viz.find('S'), std::string::npos);
  // Straight below the source: region 2 -- bottom line contains '2' at
  // column 10.
  const auto lines = lines_of(viz);
  ASSERT_EQ(lines.size(), 14u);
  EXPECT_EQ(lines.back()[2 * (10 - 1)], '2');
  EXPECT_EQ(lines.front()[2 * (10 - 1)], '3');
}

}  // namespace
}  // namespace wsn
