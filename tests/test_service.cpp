// service/server: the meshbcastd core, tested live over loopback.
// Covers the acceptance properties the service was built around:
// per-connection error recovery, admission-control shedding, the
// single-flight compile guarantee, and -- the headline -- scenario
// streams that are byte-identical to an offline scenario_runner run at
// any worker count, even with concurrent clients.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/socket.h"
#include "obs/metrics.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "service/client.h"
#include "service/rpc.h"
#include "service/server.h"
#include "sim/simulator.h"
#include "store/plan_store.h"

namespace wsn {
namespace {

std::string plan_request(std::uint64_t id, std::uint64_t source) {
  std::string req = "{\"type\":\"plan\",\"id\":";
  req += std::to_string(id);
  req += ",\"family\":\"2D-4\",\"dims\":[6,4],\"source\":";
  req += std::to_string(source);
  req += "}";
  return req;
}

RpcClient connect_to(const MeshbcastService& service) {
  RpcClient client;
  std::string error;
  EXPECT_TRUE(client.connect(service.address(), error)) << error;
  return client;
}

JsonValue call(RpcClient& client, const std::string& request) {
  JsonValue response;
  std::string error;
  EXPECT_TRUE(client.call_json(request, response, error)) << error;
  return response;
}

/// A small two-scenario spec document: 12 jobs across two protocols,
/// enough to exercise ordering without slowing the suite down.
const char kSpecJson[] =
    "{\"name\":\"svc_determinism\",\"scenarios\":["
    "{\"name\":\"sweep\",\"family\":\"2D-4\",\"dims\":[6,4],"
    "\"sources\":[0,5,11,17,23],\"protocols\":[\"paper\",\"cds\"]},"
    "{\"name\":\"tri\",\"family\":\"2D-8\",\"dims\":[4,4],"
    "\"sources\":[0,7],\"protocols\":[\"paper\"]}]}";

/// Runs `kSpecJson` offline through the scenario engine and returns the
/// results-file record lines (header excluded).  `tag` keeps the temp
/// file unique per test: ctest runs these tests as concurrent processes
/// (hence the pid suffix too), and a shared path would let one test
/// delete the reference file out from under another.
std::vector<std::string> offline_records(const std::string& tag) {
  JsonValue doc;
  EXPECT_TRUE(parse_json(kSpecJson, doc));
  ScenarioSpec spec;
  std::string error;
  EXPECT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  JobMatrix matrix;
  EXPECT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  EngineConfig config;
  config.workers = 1;
  ScenarioEngine engine(matrix, config);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("wsn_test_service_ref_" + tag + "_" + std::to_string(::getpid()) +
       ".jsonl");
  std::filesystem::remove(path);
  const RunSummary summary = engine.run(path.string());
  EXPECT_TRUE(summary.ok) << summary.error;
  std::vector<std::string> lines;
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  std::filesystem::remove(path);
  if (lines.size() < 2) {
    ADD_FAILURE() << "offline reference run produced " << lines.size()
                  << " lines";
    return {};
  }
  lines.erase(lines.begin());  // drop the header line
  return lines;
}

/// Streams `kSpecJson` through a live service and returns the record
/// frames in arrival order.
std::vector<std::string> service_records(const MeshbcastService& service,
                                         std::uint64_t workers) {
  RpcClient client = connect_to(service);
  std::string request =
      "{\"type\":\"scenario\",\"id\":1,\"workers\":" +
      std::to_string(workers) + ",\"spec\":";
  request += kSpecJson;
  request += "}";
  std::vector<std::string> records;
  JsonValue finish;
  std::string error;
  EXPECT_TRUE(client.scenario(
      request, [&](const std::string& line) { records.push_back(line); },
      finish, error))
      << error;
  EXPECT_EQ(finish.string_or("type", ""), "scenario.done");
  EXPECT_TRUE(finish.bool_or("ok", false));
  EXPECT_FALSE(finish.bool_or("cancelled", true));
  EXPECT_EQ(finish.number_or("emitted", 0),
            static_cast<double>(records.size()));
  return records;
}

TEST(ServiceTest, HealthReportsServing) {
  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  EXPECT_GT(service.port(), 0);

  RpcClient client = connect_to(service);
  const JsonValue health = call(client, "{\"type\":\"health\",\"id\":2}");
  EXPECT_EQ(health.string_or("type", ""), "response");
  EXPECT_EQ(health.number_or("id", -1), 2.0);
  EXPECT_TRUE(health.bool_or("ok", false));
  EXPECT_EQ(health.string_or("status", ""), "serving");
  EXPECT_GE(health.number_or("workers", 0), 1.0);
  EXPECT_GE(health.number_or("queue_capacity", 0), 1.0);
  EXPECT_EQ(health.number_or("connections", 0), 1.0);
  service.shutdown();
}

TEST(ServiceTest, ParseErrorsLeaveTheConnectionUsable) {
  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  // Unparseable JSON: structured bad_json, connection stays up.
  JsonValue response = call(client, "{\"type\":");
  EXPECT_EQ(response.string_or("type", ""), "error");
  EXPECT_EQ(response.find("error")->string_or("code", ""), "bad_json");

  // Invalid UTF-8: bad_encoding.
  std::string mojibake = "{\"type\":\"health\",\"x\":\"";
  mojibake.push_back(static_cast<char>(0xff));
  mojibake += "\"}";
  response = call(client, mojibake);
  EXPECT_EQ(response.find("error")->string_or("code", ""), "bad_encoding");

  // Schema violation with an id: bad_request, id echoed.
  response = call(client, "{\"type\":\"teleport\",\"id\":77}");
  EXPECT_EQ(response.find("error")->string_or("code", ""), "bad_request");
  EXPECT_EQ(response.number_or("id", -1), 77.0);

  // After three straight rejects the SAME connection still serves.
  response = call(client, "{\"type\":\"health\"}");
  EXPECT_TRUE(response.bool_or("ok", false));

  const MeshbcastService::Counters counters = service.counters();
  EXPECT_EQ(counters.errors, 3u);
  EXPECT_EQ(counters.bad_frames, 0u);
  service.shutdown();
}

TEST(ServiceTest, OversizedFrameIsAnsweredThenDropped) {
  ServiceConfig config;
  config.max_request_bytes = 64;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  // 65 bytes against a 64-byte cap: the stream cannot be resynchronized
  // (the payload was never read), so the server answers and hangs up.
  ASSERT_TRUE(write_frame(client.socket(), std::string(65, ' ')));
  std::string payload;
  ASSERT_EQ(read_frame(client.socket(), payload, 1 << 20),
            FrameStatus::kOk);
  JsonValue response;
  ASSERT_TRUE(parse_json(payload, response));
  EXPECT_EQ(response.find("error")->string_or("code", ""), "oversized");
  // The connection is dropped.  Whether that lands as a clean EOF or a
  // reset depends on the kernel: the unread oversized payload still sits
  // in the server's receive buffer, and closing over unread data sends
  // RST rather than FIN.  Either way, no further frame arrives.
  const FrameStatus after = read_frame(client.socket(), payload, 1 << 20);
  EXPECT_TRUE(after == FrameStatus::kClosed || after == FrameStatus::kError)
      << to_string(after);
  EXPECT_EQ(service.counters().bad_frames, 1u);
  service.shutdown();
}

TEST(ServiceTest, PlanResponseCarriesTheFullContract) {
  PlanStore store;
  ServiceConfig config;
  config.store = &store;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  const JsonValue response = call(client, plan_request(4, 9));
  EXPECT_EQ(response.string_or("type", ""), "response");
  EXPECT_EQ(response.number_or("id", -1), 4.0);
  EXPECT_TRUE(response.bool_or("ok", false));
  EXPECT_EQ(response.string_or("family", ""), "2D-4");
  EXPECT_EQ(response.string_or("protocol", ""), "paper");
  EXPECT_EQ(response.number_or("nodes", 0), 24.0);
  EXPECT_EQ(response.number_or("source", -1), 9.0);
  EXPECT_EQ(response.string_or("origin", ""), "compiled");
  EXPECT_FALSE(response.string_or("fingerprint", "").empty());
  EXPECT_GT(response.number_or("planned_tx", 0), 0.0);

  // An out-of-range source is a structured bad_request, not a crash.
  const JsonValue bad = call(client, plan_request(5, 24));
  EXPECT_EQ(bad.find("error")->string_or("code", ""), "bad_request");
  service.shutdown();
}

TEST(ServiceTest, RepeatPlanHitsTheMemoryTier) {
  PlanStore store;
  ServiceConfig config;
  config.store = &store;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  EXPECT_EQ(call(client, plan_request(1, 3)).string_or("origin", ""),
            "compiled");
  EXPECT_EQ(call(client, plan_request(2, 3)).string_or("origin", ""),
            "memory hit");
  EXPECT_EQ(store.stats().compiles, 1u);
  service.shutdown();
}

TEST(ServiceTest, ConcurrentIdenticalPlansCompileExactlyOnce) {
  constexpr std::size_t kClients = 3;
  PlanStore store;
  // A barrier in before_execute holds every request on its worker until
  // all three have been popped -- the compile race is then guaranteed,
  // not merely likely, and the single-flight lock must resolve it.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  std::size_t arrived = 0;
  ServiceConfig config;
  config.store = &store;
  config.workers = kClients;
  config.before_execute = [&] {
    std::unique_lock<std::mutex> lock(barrier_mutex);
    ++arrived;
    barrier_cv.notify_all();
    barrier_cv.wait_for(lock, std::chrono::seconds(5),
                        [&] { return arrived >= kClients; });
  };
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;

  std::vector<std::string> origins(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RpcClient client = connect_to(service);
      origins[i] =
          call(client, plan_request(i, 7)).string_or("origin", "x");
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one compile; the two losers of the single-flight race were
  // served from the memory tier.
  EXPECT_EQ(store.stats().compiles, 1u);
  std::size_t compiled = 0, memory = 0;
  for (const std::string& origin : origins) {
    if (origin == "compiled") ++compiled;
    if (origin == "memory hit") ++memory;
  }
  EXPECT_EQ(compiled, 1u);
  EXPECT_EQ(memory, kClients - 1);
  service.shutdown();
}

TEST(ServiceTest, FullQueueShedsWithOverloaded) {
  // One worker, a one-slot queue, and a gate that parks the worker:
  // request A executes (blocked at the gate), B fills the queue, C must
  // be shed with a structured `overloaded` -- never queued unboundedly.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<std::size_t> executing{0};
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.before_execute = [&] {
    executing.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return gate_open; });
  };
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;

  JsonValue response_a, response_b;
  std::thread a([&] {
    RpcClient client = connect_to(service);
    response_a = call(client, plan_request(1, 0));
  });
  // Wait until A is parked on the worker, then enqueue B.
  while (executing.load() == 0) std::this_thread::yield();
  std::thread b([&] {
    RpcClient client = connect_to(service);
    response_b = call(client, plan_request(2, 1));
  });
  // B is admitted on its handler thread; the queue is full once the
  // service has counted both admission-lane requests.
  while (service.counters().requests < 2) std::this_thread::yield();

  RpcClient shed_client = connect_to(service);
  const JsonValue shed = call(shed_client, plan_request(3, 2));
  EXPECT_EQ(shed.string_or("type", ""), "error");
  EXPECT_EQ(shed.find("error")->string_or("code", ""), "overloaded");
  EXPECT_EQ(shed.number_or("id", -1), 3.0);

  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  a.join();
  b.join();
  EXPECT_TRUE(response_a.bool_or("ok", false));
  EXPECT_TRUE(response_b.bool_or("ok", false));
  // The worker bumps `served` after writing the response frame, so the
  // client can observe its reply a beat before the counter; poll.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.counters().served < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  const MeshbcastService::Counters counters = service.counters();
  EXPECT_EQ(counters.sheds, 1u);
  EXPECT_EQ(counters.served, 2u);
  service.shutdown();
}

TEST(ServiceTest, ScenarioStreamIsByteIdenticalToOfflineRun) {
  const std::vector<std::string> reference = offline_records("identity");
  ASSERT_FALSE(reference.empty());

  PlanStore store;
  ServiceConfig config;
  config.store = &store;
  config.workers = 2;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;

  // workers=1 and workers=8 must both reproduce the offline file's
  // record bytes in order -- the engine's determinism contract holds
  // through the streaming path.
  EXPECT_EQ(service_records(service, 1), reference);
  EXPECT_EQ(service_records(service, 8), reference);
  service.shutdown();
}

TEST(ServiceTest, ConcurrentScenarioClientsEachGetTheExactStream) {
  const std::vector<std::string> reference = offline_records("concurrent");
  ASSERT_FALSE(reference.empty());
  PlanStore store;
  ServiceConfig config;
  config.store = &store;
  config.workers = 2;  // both streams run at once
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;

  std::vector<std::string> first, second;
  std::thread one([&] { first = service_records(service, 8); });
  std::thread two([&] { second = service_records(service, 8); });
  one.join();
  two.join();
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
  service.shutdown();
}

TEST(ServiceTest, SimulateMatchesTheOfflineRecord) {
  // Build the offline reference record for one job.
  JsonValue doc;
  ASSERT_TRUE(parse_json(
      "{\"name\":\"one\",\"scenarios\":[{\"name\":\"one\","
      "\"family\":\"2D-4\",\"dims\":[6,4],\"sources\":[3],"
      "\"protocols\":[\"paper\"]}]}",
      doc));
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  JobMatrix matrix;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
  ASSERT_EQ(matrix.jobs.size(), 1u);
  Simulator sim;
  const std::string reference =
      run_scenario_job(matrix, matrix.jobs[0], sim, nullptr, false);

  MeshbcastService service(ServiceConfig{});
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);
  const JsonValue response = call(
      client,
      "{\"type\":\"simulate\",\"id\":6,\"name\":\"one\","
      "\"family\":\"2D-4\",\"dims\":[6,4],\"sources\":[3],"
      "\"protocols\":[\"paper\"]}");
  EXPECT_TRUE(response.bool_or("ok", false));
  const JsonValue* record = response.find("record");
  ASSERT_NE(record, nullptr);
  JsonValue reference_doc;
  ASSERT_TRUE(parse_json(reference, reference_doc));
  // Field-level identity of the embedded record against the offline
  // single-job runner (the record is spliced as raw JSON, so compare
  // through the parser rather than as substrings).
  for (const auto& [key, value] : reference_doc.as_object()) {
    const JsonValue* got = record->find(key);
    ASSERT_NE(got, nullptr) << key;
    if (value.is_number()) {
      EXPECT_EQ(got->as_number(), value.as_number()) << key;
    } else if (value.is_string()) {
      EXPECT_EQ(got->as_string(), value.as_string()) << key;
    }
  }

  // A multi-job expansion is rejected: simulate means ONE job.
  const JsonValue multi = call(
      client,
      "{\"type\":\"simulate\",\"family\":\"2D-4\",\"dims\":[6,4],"
      "\"sources\":[0,1],\"protocols\":[\"paper\"]}");
  EXPECT_EQ(multi.find("error")->string_or("code", ""), "bad_request");
  service.shutdown();
}

TEST(ServiceTest, InvalidScenarioSpecIsAStructuredError) {
  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);
  const JsonValue response = call(
      client,
      "{\"type\":\"scenario\",\"id\":8,\"spec\":{\"name\":\"bad\","
      "\"scenarios\":[{\"name\":\"x\",\"family\":\"9D-99\","
      "\"sources\":[0],\"protocols\":[\"paper\"]}]}}");
  EXPECT_EQ(response.string_or("type", ""), "error");
  EXPECT_EQ(response.find("error")->string_or("code", ""),
            "invalid_spec");
  EXPECT_EQ(response.number_or("id", -1), 8.0);
  service.shutdown();
}

TEST(ServiceTest, ServesOverAUnixSocket) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsn_test_service.sock")
          .string();
  ServiceConfig config;
  config.unix_path = path;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  EXPECT_EQ(service.port(), -1);
  EXPECT_EQ(service.address(), "unix:" + path);

  RpcClient client = connect_to(service);
  EXPECT_TRUE(
      call(client, "{\"type\":\"health\"}").bool_or("ok", false));
  const JsonValue plan = call(client, plan_request(1, 0));
  EXPECT_TRUE(plan.bool_or("ok", false));
  service.shutdown();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ServiceTest, MetricsRpcScrapesTheRegistry) {
  MetricsRegistry metrics;
  ServiceConfig config;
  config.metrics = &metrics;
  MeshbcastService service(std::move(config));
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);
  (void)call(client, plan_request(1, 0));

  std::string response;
  ASSERT_TRUE(client.call("{\"type\":\"metrics\"}", response, error))
      << error;
  JsonValue doc;
  ASSERT_TRUE(parse_json(response, doc));
  EXPECT_TRUE(doc.bool_or("ok", false));
  ASSERT_NE(doc.find("metrics"), nullptr);
  // The embedded snapshot carries the service.* instruments.
  EXPECT_NE(response.find("service.requests"), std::string::npos);
  EXPECT_NE(response.find("service.request_ms"), std::string::npos);
  service.shutdown();
}

TEST(ServiceTest, ShutdownRpcFlagsAndWaitDrains) {
  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  RpcClient client = connect_to(service);

  EXPECT_FALSE(service.shutdown_requested());
  const JsonValue response = call(client, "{\"type\":\"shutdown\"}");
  EXPECT_TRUE(response.bool_or("ok", false));
  EXPECT_EQ(response.string_or("status", ""), "draining");
  // The handler flags the request just after writing the ack, so the
  // client can hold the response a beat before the flag is visible.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!service.shutdown_requested() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(service.shutdown_requested());

  // wait() observes the flag and performs the drain; it must return.
  service.wait();
  // After the drain the socket is gone: the next call fails cleanly.
  std::string dead_response;
  EXPECT_FALSE(
      client.call("{\"type\":\"health\"}", dead_response, error));
}

TEST(ServiceTest, WaitHonorsAnExternalStopFlag) {
  MeshbcastService service(ServiceConfig{});
  std::string error;
  ASSERT_TRUE(service.start(error)) << error;
  std::atomic<bool> stop{false};
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true);
  });
  service.wait(&stop);  // must return once the flag flips
  trigger.join();
}

}  // namespace
}  // namespace wsn
