#include "protocol/mesh3d6_broadcast.h"

#include <gtest/gtest.h>

#include "geometry/lattice.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh3d6.h"

namespace wsn {
namespace {

TEST(Broadcast3D6, BorderRelaysCoverEveryUncoveredCell) {
  for (Vec2 src : {Vec2{6, 8}, Vec2{1, 1}, Vec2{4, 4}, Vec2{8, 1}}) {
    const auto uncovered = uncovered_by_zrelays(src, 8, 8);
    const auto relays = Mesh3d6Broadcast::border_relays(src, 8, 8);
    for (Vec2 u : uncovered) {
      bool served = false;
      for (Vec2 b : relays) {
        if (manhattan(u, b) == 1) served = true;
      }
      EXPECT_TRUE(served) << "uncovered " << to_string(u) << " src "
                          << to_string(src);
    }
  }
}

TEST(Broadcast3D6, NoBorderRelaysWhenCoverIsComplete) {
  // A lattice-friendly window can still leave gaps; just check the empty
  // uncovered set maps to an empty relay set.
  for (Vec2 src : {Vec2{3, 3}, Vec2{5, 2}}) {
    if (uncovered_by_zrelays(src, 10, 10).empty()) {
      EXPECT_TRUE(Mesh3d6Broadcast::border_relays(src, 10, 10).empty());
    }
  }
}

TEST(Broadcast3D6, SourcePlaneRunsThe2D4Protocol) {
  const Mesh3D6 topo(8, 8, 8);
  const Grid3D& g = topo.grid();
  const Mesh3d6Broadcast proto;
  const Vec3 src{6, 8, 4};  // the paper's §3.4 example source
  const RelayPlan plan = proto.plan(topo, g.to_id(src));
  // The whole source row of plane 4 relays.
  for (int x = 1; x <= 8; ++x) {
    EXPECT_TRUE(plan.is_relay(g.to_id({x, 8, 4}))) << x;
  }
  // The X pair next to the source retransmits (row retransmitter rule).
  EXPECT_EQ(plan.tx_offsets[g.to_id({5, 8, 4})].size(), 2u);
  EXPECT_EQ(plan.tx_offsets[g.to_id({7, 8, 4})].size(), 2u);
}

TEST(Broadcast3D6, SourceZNeighborsRetransmitTwoSlotsLater) {
  const Mesh3D6 topo(8, 8, 8);
  const Grid3D& g = topo.grid();
  const Mesh3d6Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({6, 8, 4}));
  // §3.4: (i, j, k±1) retransmit two slots after the collided slot-2
  // transmission, i.e. offsets {1, 3}.
  for (int z : {3, 5}) {
    const auto& offsets = plan.tx_offsets[g.to_id({6, 8, z})];
    ASSERT_EQ(offsets.size(), 2u) << z;
    EXPECT_EQ(offsets[0], 1u);
    EXPECT_EQ(offsets[1], 3u);
  }
}

TEST(Broadcast3D6, ZRelayPatternMatchesR5) {
  // Fig. 9: from source (6,8,k), nodes (4,7), (5,10), (7,6), (8,9) head the
  // z-relay columns.
  const Mesh3D6 topo(8, 16, 4);
  const Grid3D& g = topo.grid();
  const Mesh3d6Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({6, 8, 2}));
  for (Vec2 xy : {Vec2{4, 7}, Vec2{5, 10}, Vec2{7, 6}, Vec2{8, 9}}) {
    for (int z = 1; z <= 4; ++z) {
      EXPECT_TRUE(plan.is_relay(g.to_id({xy.x, xy.y, z})))
          << to_string(xy) << " z=" << z;
    }
  }
}

TEST(Broadcast3D6, PureZRelaysInSourcePlaneAreDelayed) {
  const Mesh3D6 topo(8, 16, 4);
  const Grid3D& g = topo.grid();
  const Mesh3d6Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({6, 8, 2}));
  // (4,7) is a z-relay off the 2D-4 relay structure (row 8; columns
  // x ∈ {3, 6} lattice): x=4 is no relay column, y=7 is off-row -> pure
  // z-relay, delayed one slot (offset 2) in the source plane only.
  ASSERT_FALSE(Mesh2d4Broadcast::is_relay_column(4, 6, 8));
  EXPECT_EQ(plan.tx_offsets[g.to_id({4, 7, 2})],
            (std::vector<Slot>{2}));
  EXPECT_EQ(plan.tx_offsets[g.to_id({4, 7, 3})],
            (std::vector<Slot>{1}));
}

TEST(Broadcast3D6, DegeneratesToPlaneProtocolForSingleLayer) {
  const Mesh3D6 topo(8, 8, 1);
  const Mesh3d6Broadcast proto;
  const auto out = simulate_broadcast(topo, proto.plan(topo, 0));
  EXPECT_TRUE(out.stats.fully_reached());
}

struct Mesh3dCase {
  int m, n, l;
};

class Broadcast3D6AllSources : public ::testing::TestWithParam<Mesh3dCase> {};

TEST_P(Broadcast3D6AllSources, ResolvedPlanReachesEveryone) {
  const auto [m, n, l] = GetParam();
  const Mesh3D6 topo(m, n, l);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const RelayPlan plan = paper_plan(topo, src);
    const auto out = simulate_broadcast(topo, plan);
    ASSERT_TRUE(out.stats.fully_reached())
        << "source " << to_string(topo.grid().to_coord(src));
  }
}

TEST_P(Broadcast3D6AllSources, DelayWithinResolverSlack) {
  const auto [m, n, l] = GetParam();
  const Mesh3D6 topo(m, n, l);
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, paper_plan(topo, src));
    const auto ecc = eccentricity(topo, src);
    ASSERT_GE(out.stats.delay, ecc);
    ASSERT_LE(out.stats.delay, ecc + 12);
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, Broadcast3D6AllSources,
                         ::testing::Values(Mesh3dCase{8, 8, 8},
                                           Mesh3dCase{4, 5, 6},
                                           Mesh3dCase{6, 6, 2},
                                           Mesh3dCase{3, 3, 3}));

TEST(Broadcast3D6, PaperSizeTxEnvelope) {
  const Mesh3D6 topo(8, 8, 8);
  std::size_t min_tx = ~std::size_t{0};
  std::size_t max_tx = 0;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, paper_plan(topo, src));
    min_tx = std::min(min_tx, out.stats.tx);
    max_tx = std::max(max_tx, out.stats.tx);
  }
  // Paper envelope [167, 187].
  EXPECT_GE(min_tx, 160u);
  EXPECT_LE(min_tx, 190u);
  EXPECT_LE(max_tx, 225u);
}

}  // namespace
}  // namespace wsn
