#include "topology/graph_algos.h"

#include <gtest/gtest.h>

#include "geometry/vec2.h"
#include "topology/factory.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/random_geometric.h"

namespace wsn {
namespace {

TEST(Bfs, Mesh2D4DistancesAreManhattan) {
  const Mesh2D4 mesh(8, 6);
  const Grid2D& g = mesh.grid();
  const Vec2 src{3, 2};
  const auto dist = bfs_distances(mesh, g.to_id(src));
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    EXPECT_EQ(dist[v],
              static_cast<std::uint32_t>(manhattan(g.to_coord(v), src)));
  }
}

TEST(Bfs, Mesh2D8DistancesAreChebyshev) {
  const Mesh2D8 mesh(8, 6);
  const Grid2D& g = mesh.grid();
  const Vec2 src{5, 3};
  const auto dist = bfs_distances(mesh, g.to_id(src));
  for (NodeId v = 0; v < mesh.num_nodes(); ++v) {
    EXPECT_EQ(dist[v],
              static_cast<std::uint32_t>(chebyshev(g.to_coord(v), src)));
  }
}

TEST(Bfs, SourceDistanceIsZero) {
  const Mesh2D4 mesh(5, 5);
  const auto dist = bfs_distances(mesh, 12);
  EXPECT_EQ(dist[12], 0u);
}

TEST(Diameter, PaperTopologies) {
  // Corner-to-corner hop counts of the paper's meshes; the baseline for
  // Table 5 (see DESIGN.md on the paper's ±1 conventions).
  EXPECT_EQ(diameter(*make_paper_topology("2D-4")), 46u);   // 31 + 15
  EXPECT_EQ(diameter(*make_paper_topology("2D-8")), 31u);   // max(31, 15)
  EXPECT_EQ(diameter(*make_paper_topology("2D-3")), 46u);
  EXPECT_EQ(diameter(*make_paper_topology("3D-6")), 21u);   // 7 + 7 + 7
}

TEST(Eccentricity, CornerVersusCenter) {
  const Mesh2D4 mesh(9, 9);
  const Grid2D& g = mesh.grid();
  EXPECT_EQ(eccentricity(mesh, g.to_id({1, 1})), 16u);
  EXPECT_EQ(eccentricity(mesh, g.to_id({5, 5})), 8u);
}

TEST(GraphCenter, FindsMiddleOfOddMesh) {
  const Mesh2D4 mesh(9, 9);
  const Grid2D& g = mesh.grid();
  EXPECT_EQ(graph_center(mesh), g.to_id({5, 5}));
}

TEST(Connectivity, MeshesAreConnected) {
  for (const std::string& family : regular_families()) {
    EXPECT_TRUE(is_connected(*make_paper_topology(family))) << family;
  }
}

TEST(Connectivity, SparseRandomGraphDisconnects) {
  // 30 nodes in a 100 m box with 1 m radius: essentially isolated points.
  const RandomGeometric topo(30, 100.0, 1.0, 9);
  EXPECT_FALSE(is_connected(topo));
}

TEST(Bfs, UnreachableMarkedOnDisconnectedGraph) {
  const RandomGeometric topo(30, 100.0, 1.0, 9);
  const auto dist = bfs_distances(topo, 0);
  bool any_unreachable = false;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) any_unreachable = true;
  }
  EXPECT_TRUE(any_unreachable);
}

}  // namespace
}  // namespace wsn
