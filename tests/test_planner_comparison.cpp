#include "analysis/resilience.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/string_util.h"
#include "protocol/registry.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

PlannerComparisonConfig small_config() {
  PlannerComparisonConfig config;
  config.loss_rates = {0.1, 0.2, 0.3};
  config.trials = 24;
  config.seed = 2026;
  config.workers = 2;
  // Budget-matched arms: repeat-3 plans ~3x the baseline schedule, which
  // brackets the ETX arm's plan + retries at every swept rate (repeat-2
  // underspends the ETX arm at 0.2+ loss, making the tx comparison a
  // different-budget claim rather than a dominance claim).
  config.repeat_k = 3;
  return config;
}

TEST(PlannerComparison, EtxBeatsGeometricRepeatKUnderBurstyLoss) {
  // The tentpole's acceptance criterion: under the Gilbert-Elliott sweep
  // the ETX + adaptive arm must deliver strictly higher coverage at
  // equal or lower total transmissions than the geometric + repeat-k arm,
  // at every swept loss rate.
  const Mesh2D4 topo(8, 8);
  const RelayPlan geometric = paper_plan(topo, 0);
  const PlannerComparison cmp =
      run_planner_comparison(topo, geometric, small_config());
  ASSERT_EQ(cmp.cells.size(), 3u);
  for (const PlannerComparisonCell& cell : cmp.cells) {
    SCOPED_TRACE(cell.loss_rate);
    EXPECT_GT(cell.etx_coverage, cell.geo_coverage);
    EXPECT_LE(cell.etx_tx, cell.geo_tx);
  }
}

TEST(PlannerComparison, RetriesScaleWithTheChannelDamage) {
  const Mesh2D4 topo(8, 8);
  const RelayPlan geometric = paper_plan(topo, 0);
  const PlannerComparison cmp =
      run_planner_comparison(topo, geometric, small_config());
  ASSERT_GE(cmp.cells.size(), 2u);
  // More loss, more observed damage, more retries spent (weak
  // monotonicity: first vs last swept rate).
  EXPECT_GT(cmp.cells.back().etx_retries, 0.0);
  EXPECT_GE(cmp.cells.back().etx_retries, cmp.cells.front().etx_retries);
}

TEST(PlannerComparison, IsReproducible) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan geometric = paper_plan(topo, 5);
  PlannerComparisonConfig config = small_config();
  config.loss_rates = {0.2};
  config.trials = 8;
  const PlannerComparison a = run_planner_comparison(topo, geometric, config);
  const PlannerComparison b = run_planner_comparison(topo, geometric, config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].geo_coverage, b.cells[i].geo_coverage);
    EXPECT_DOUBLE_EQ(a.cells[i].etx_coverage, b.cells[i].etx_coverage);
    EXPECT_DOUBLE_EQ(a.cells[i].etx_tx, b.cells[i].etx_tx);
    EXPECT_DOUBLE_EQ(a.cells[i].etx_retries, b.cells[i].etx_retries);
  }
}

TEST(PlannerComparison, CsvHasHeaderAndOneRowPerCell) {
  const Mesh2D4 topo(6, 6);
  const RelayPlan geometric = paper_plan(topo, 0);
  PlannerComparisonConfig config = small_config();
  config.loss_rates = {0.1, 0.3};
  config.trials = 4;
  const PlannerComparison cmp =
      run_planner_comparison(topo, geometric, config);
  std::ostringstream out;
  cmp.write_csv(out);
  const std::vector<std::string> lines = split(trim(out.str()), '\n');
  ASSERT_EQ(lines.size(), 1 + cmp.cells.size());
  EXPECT_TRUE(lines[0].find("etx_coverage") != std::string::npos);
  EXPECT_TRUE(lines[0].find("geo_tx") != std::string::npos);
  EXPECT_TRUE(lines[0].find("etx_retries") != std::string::npos);
}

}  // namespace
}  // namespace wsn
