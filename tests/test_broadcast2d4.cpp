#include "protocol/mesh2d4_broadcast.h"

#include <gtest/gtest.h>

#include "protocol/etr.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d4.h"

namespace wsn {
namespace {

TEST(Broadcast2D4, RelayColumnsSpacedThree) {
  // Paper §3.1 / Fig. 5: source column 6 on a 16-wide mesh gives relay
  // columns {3, 6, 9, 12, 15} plus border column 1 (column 2 is no relay).
  for (int x : {3, 6, 9, 12, 15, 1}) {
    EXPECT_TRUE(Mesh2d4Broadcast::is_relay_column(x, 6, 16)) << x;
  }
  for (int x : {2, 4, 5, 7, 8, 10, 11, 13, 14, 16}) {
    EXPECT_FALSE(Mesh2d4Broadcast::is_relay_column(x, 6, 16)) << x;
  }
}

TEST(Broadcast2D4, BorderColumnRuleOnBothSides) {
  // Source column 3 on width 8: lattice {3, 6}; columns 1 and 8 must step
  // in because 2 and 7 are not relay columns.
  EXPECT_TRUE(Mesh2d4Broadcast::is_relay_column(1, 3, 8));
  EXPECT_TRUE(Mesh2d4Broadcast::is_relay_column(8, 3, 8));
  // Source column 2: lattice {2, 5, 8}; column 1 is covered by column 2.
  EXPECT_FALSE(Mesh2d4Broadcast::is_relay_column(1, 2, 8));
}

TEST(Broadcast2D4, RetransmittersMatchFig5) {
  // Fig. 5: source (6,8), retransmitting row nodes (2,8), (5,8), (7,8),
  // (10,8), (13,8), (16,8).
  for (int x : {2, 5, 7, 10, 13, 16}) {
    EXPECT_TRUE(Mesh2d4Broadcast::is_row_retransmitter(x, 6, 16)) << x;
  }
  for (int x : {1, 3, 4, 6, 8, 9, 11, 12, 14, 15}) {
    EXPECT_FALSE(Mesh2d4Broadcast::is_row_retransmitter(x, 6, 16)) << x;
  }
}

TEST(Broadcast2D4, PlanMarksRowAndColumns) {
  const Mesh2D4 topo(16, 16);
  const Grid2D& g = topo.grid();
  const Mesh2d4Broadcast proto;
  const RelayPlan plan = proto.plan(topo, g.to_id({6, 8}));
  // Entire source row relays.
  for (int x = 1; x <= 16; ++x) {
    EXPECT_TRUE(plan.is_relay(g.to_id({x, 8}))) << x;
  }
  // Retransmitters carry two scheduled transmissions.
  EXPECT_EQ(plan.tx_offsets[g.to_id({7, 8})].size(), 2u);
  EXPECT_EQ(plan.tx_offsets[g.to_id({6, 8})].size(), 1u);
  // Column cells of relay columns relay; others off the row do not.
  EXPECT_TRUE(plan.is_relay(g.to_id({9, 3})));
  EXPECT_FALSE(plan.is_relay(g.to_id({8, 3})));
}

// The central property suite: the paper's explicit rules alone (no
// resolver!) reach every node from every source.
class Broadcast2D4AllSources
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Broadcast2D4AllSources, FullReachabilityWithoutRepairs) {
  const auto [m, n] = GetParam();
  const Mesh2D4 topo(m, n);
  const Mesh2d4Broadcast proto;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, proto.plan(topo, src));
    ASSERT_TRUE(out.stats.fully_reached())
        << "source " << to_string(topo.grid().to_coord(src)) << " reached "
        << out.stats.reached << "/" << topo.num_nodes();
  }
}

TEST_P(Broadcast2D4AllSources, DelayBoundedByEccentricityPlusRetx) {
  const auto [m, n] = GetParam();
  const Mesh2D4 topo(m, n);
  const Mesh2d4Broadcast proto;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, proto.plan(topo, src));
    const auto ecc = eccentricity(topo, src);
    ASSERT_GE(out.stats.delay, ecc);      // cannot beat BFS
    ASSERT_LE(out.stats.delay, ecc + 2);  // at most the retransmit slack
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, Broadcast2D4AllSources,
                         ::testing::Values(std::pair{32, 16},
                                           std::pair{16, 16},
                                           std::pair{7, 5}, std::pair{8, 6},
                                           std::pair{5, 9},
                                           std::pair{12, 3},
                                           std::pair{4, 4}));

TEST(Broadcast2D4, MostRelaysHitOptimalEtr) {
  const Mesh2D4 topo(32, 16);
  const Mesh2d4Broadcast proto;
  const NodeId src = topo.grid().to_id({16, 8});
  const auto out = simulate_broadcast(topo, proto.plan(topo, src));
  const EtrSummary etr = summarize_etr(topo, out, 3, src);
  // "most of the relay nodes can achieve optimal ETR (= 3/4)".
  EXPECT_GT(etr.optimal_share(), 0.5);
}

TEST(Broadcast2D4, PaperSizeTxEnvelope) {
  const Mesh2D4 topo(32, 16);
  const Mesh2d4Broadcast proto;
  std::size_t min_tx = ~std::size_t{0};
  std::size_t max_tx = 0;
  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    const auto out = simulate_broadcast(topo, proto.plan(topo, src));
    min_tx = std::min(min_tx, out.stats.tx);
    max_tx = std::max(max_tx, out.stats.tx);
  }
  // Paper Table 3/4: best 208, worst 223.
  EXPECT_EQ(min_tx, 208u);
  EXPECT_EQ(max_tx, 223u);
}

TEST(Broadcast2D4, DelayAvoidancePolicyReducesCollisions) {
  // §3.1's rejected alternative: avoid the junction collisions by delaying
  // the vertical sweeps' first hop instead of retransmitting.
  const Mesh2D4 topo(32, 16);
  const NodeId src = topo.grid().to_id({16, 8});
  const Mesh2d4Broadcast retransmit(
      Mesh2d4Broadcast::CollisionPolicy::kRetransmit);
  const Mesh2d4Broadcast delaying(
      Mesh2d4Broadcast::CollisionPolicy::kDelayAvoidance);
  const auto with_retx = simulate_broadcast(topo, retransmit.plan(topo, src));
  const auto with_delay = simulate_broadcast(topo, delaying.plan(topo, src));
  EXPECT_LT(with_delay.stats.collisions, with_retx.stats.collisions);
}

TEST(Broadcast2D4, SingleNodeMesh) {
  const Mesh2D4 topo(1, 1);
  const Mesh2d4Broadcast proto;
  const auto out = simulate_broadcast(topo, proto.plan(topo, 0));
  EXPECT_TRUE(out.stats.fully_reached());
  EXPECT_EQ(out.stats.tx, 1u);
}


TEST(Broadcast2D4, AnalyticTxCountMatchesSimulationEverywhere) {
  // The closed form and the collision-accurate simulation must agree for
  // every source column on several mesh shapes -- the strongest cross-check
  // that the protocol's structure is exactly the paper's.
  for (const auto& [m, n] : {std::pair{32, 16}, std::pair{16, 16},
                             std::pair{7, 5}, std::pair{12, 3}}) {
    const Mesh2D4 topo(m, n);
    const Mesh2d4Broadcast proto;
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      const Vec2 c = topo.grid().to_coord(src);
      const auto out = simulate_broadcast(topo, proto.plan(topo, src));
      ASSERT_EQ(out.stats.tx, Mesh2d4Broadcast::analytic_tx_count(c.x, m, n))
          << to_string(c) << " on " << m << "x" << n;
    }
  }
}

TEST(Broadcast2D4, AnalyticEnvelopeReproducesTables3And4) {
  // min/max of the closed form over the source column IS the paper's
  // best/worst Tx envelope.
  std::size_t best = ~std::size_t{0};
  std::size_t worst = 0;
  for (int i = 1; i <= 32; ++i) {
    const std::size_t tx = Mesh2d4Broadcast::analytic_tx_count(i, 32, 16);
    best = std::min(best, tx);
    worst = std::max(worst, tx);
  }
  EXPECT_EQ(best, 208u);
  EXPECT_EQ(worst, 223u);
}

TEST(Broadcast2D4, NameReflectsPolicy) {
  EXPECT_EQ(Mesh2d4Broadcast().name(), "mesh2d4-broadcast");
  EXPECT_EQ(Mesh2d4Broadcast(Mesh2d4Broadcast::CollisionPolicy::kDelayAvoidance)
                .name(),
            "mesh2d4-broadcast(delay-avoidance)");
}

}  // namespace
}  // namespace wsn
