#include "analysis/report.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(Report, PaperRowsAreThePublishedNumbers) {
  EXPECT_EQ(paper_ideal_row("2D-4").tx, 170u);
  EXPECT_EQ(paper_ideal_row("2D-4").rx, 680u);
  EXPECT_DOUBLE_EQ(paper_ideal_row("2D-4").power, 2.18e-2);
  EXPECT_EQ(paper_best_row("2D-8").tx, 143u);
  EXPECT_EQ(paper_worst_row("2D-8").tx, 147u);
  EXPECT_EQ(paper_best_row("3D-6").tx, 167u);
  EXPECT_EQ(paper_worst_row("2D-3").rx, 816u);
  EXPECT_EQ(paper_max_delay("2D-3"), 46u);
  EXPECT_EQ(paper_max_delay("3D-6"), 20u);
}

TEST(Report, Table1ListsAllFamilies) {
  const std::string table = build_table1().render();
  for (const char* family : {"2D-3", "2D-4", "2D-8", "3D-6"}) {
    EXPECT_NE(table.find(family), std::string::npos) << family;
  }
  EXPECT_NE(table.find("2/3"), std::string::npos);
  EXPECT_NE(table.find("5/6"), std::string::npos);
}

TEST(Report, Table2ShowsExactIdealValues) {
  const std::string table = build_table2().render();
  // Our ideal-case model reproduces the paper's Table 2 exactly, so each
  // published Tx count appears (twice: ours and the paper column).
  for (const char* value : {"255", "170", "102", "124"}) {
    EXPECT_NE(table.find(value), std::string::npos) << value;
  }
  EXPECT_NE(table.find("2.61e-02"), std::string::npos);
}

TEST(Report, SweepRunsAndReachesEveryone) {
  const SweepResult sweep = run_paper_sweep("2D-4");
  EXPECT_EQ(sweep.per_source.size(), 512u);
  EXPECT_TRUE(sweep.all_fully_reached());
  EXPECT_EQ(sweep.best().stats.tx, 208u);
  EXPECT_EQ(sweep.worst().stats.tx, 223u);
}

}  // namespace
}  // namespace wsn
