#include "fault/models.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(IidLossModel, EmpiricalRateMatchesParameter) {
  IidLossModel model(0.25, 42);
  std::size_t losses = 0;
  const std::size_t draws = 40000;
  for (Slot s = 1; s <= draws; ++s) {
    if (!model.link_delivers(3, 7, s)) losses += 1;
  }
  const double rate = static_cast<double>(losses) / draws;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(IidLossModel, PureFunctionOfSeedLinkSlot) {
  IidLossModel a(0.3, 99);
  IidLossModel b(0.3, 99);
  for (Slot s = 1; s <= 200; ++s) {
    EXPECT_EQ(a.link_delivers(1, 2, s), b.link_delivers(1, 2, s));
  }
  // Query order must not matter (counter-mode, not a stream).
  IidLossModel c(0.3, 99);
  for (Slot s = 200; s >= 1; --s) {
    EXPECT_EQ(c.link_delivers(1, 2, s), b.link_delivers(1, 2, s));
  }
}

TEST(IidLossModel, DirectedLinksAreIndependentStreams) {
  IidLossModel model(0.5, 7);
  std::size_t differs = 0;
  for (Slot s = 1; s <= 500; ++s) {
    if (model.link_delivers(1, 2, s) != model.link_delivers(2, 1, s)) {
      differs += 1;
    }
  }
  EXPECT_GT(differs, 100u);  // ~250 expected at p=0.5
}

TEST(IidLossModel, ZeroAndOneAreDegenerate) {
  IidLossModel never(0.0, 1);
  IidLossModel always(1.0, 1);
  for (Slot s = 1; s <= 50; ++s) {
    EXPECT_TRUE(never.link_delivers(0, 1, s));
    EXPECT_FALSE(always.link_delivers(0, 1, s));
  }
  EXPECT_TRUE(never.node_up(0, 1));  // loss models never crash nodes
}

TEST(GilbertElliott, StationaryLossMatchesMean) {
  GilbertElliottModel model =
      GilbertElliottModel::from_mean_loss(0.2, 4.0, 11);
  std::size_t losses = 0;
  const std::size_t draws = 60000;
  for (Slot s = 1; s <= draws; ++s) {
    if (!model.link_delivers(0, 1, s)) losses += 1;
  }
  const double rate = static_cast<double>(losses) / draws;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(GilbertElliott, LossesAreBursty) {
  // Conditional loss probability after a loss must exceed the marginal
  // rate -- the whole point of the bad state.
  GilbertElliottModel model =
      GilbertElliottModel::from_mean_loss(0.15, 8.0, 5);
  std::size_t losses = 0;
  std::size_t pairs = 0;
  std::size_t consecutive = 0;
  bool prev_lost = false;
  const std::size_t draws = 60000;
  for (Slot s = 1; s <= draws; ++s) {
    const bool lost = !model.link_delivers(2, 3, s);
    if (lost) losses += 1;
    if (prev_lost) {
      pairs += 1;
      if (lost) consecutive += 1;
    }
    prev_lost = lost;
  }
  const double marginal = static_cast<double>(losses) / draws;
  const double conditional =
      static_cast<double>(consecutive) / static_cast<double>(pairs);
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(GilbertElliott, BeginRunReplaysIdentically) {
  GilbertElliottModel model =
      GilbertElliottModel::from_mean_loss(0.3, 4.0, 17);
  std::vector<bool> first;
  for (Slot s = 1; s <= 300; ++s) {
    first.push_back(model.link_delivers(4, 5, s));
  }
  model.begin_run();
  for (Slot s = 1; s <= 300; ++s) {
    EXPECT_EQ(model.link_delivers(4, 5, s), first[static_cast<std::size_t>(s - 1)]);
  }
}

TEST(GilbertElliott, StationaryBadShare) {
  const GilbertElliottModel model(0.1, 0.3, 0.0, 1.0, 1);
  EXPECT_NEAR(model.stationary_bad(), 0.25, 1e-12);
}

TEST(CrashSchedule, DownExactlyDuringWindow) {
  CrashScheduleModel model(5, {CrashEvent{2, 3, 7}});
  for (Slot s = 0; s <= 10; ++s) {
    EXPECT_EQ(model.node_up(2, s), s < 3 || s >= 7) << "slot " << s;
    EXPECT_TRUE(model.node_up(1, s));
  }
}

TEST(CrashSchedule, PermanentCrashNeverRecovers) {
  CrashScheduleModel model(3, {CrashEvent{0, 5, kNeverSlot}});
  EXPECT_TRUE(model.node_up(0, 4));
  EXPECT_FALSE(model.node_up(0, 5));
  EXPECT_FALSE(model.node_up(0, 100000));
  for (Slot s = 0; s <= 10; ++s) {
    EXPECT_TRUE(model.link_delivers(0, 1, s));  // crash models never fade
  }
}

TEST(CrashSchedule, SampleIsDeterministicAndBounded) {
  const auto a = CrashScheduleModel::sample(100, 0.2, 16, 4, 31);
  const auto b = CrashScheduleModel::sample(100, 0.2, 16, 4, 31);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_GT(a.events().size(), 5u);   // ~20 expected
  EXPECT_LT(a.events().size(), 50u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].down_from, b.events()[i].down_from);
    EXPECT_EQ(a.events()[i].up_at, b.events()[i].up_at);
    EXPECT_GE(a.events()[i].down_from, 1u);
    EXPECT_LE(a.events()[i].down_from, 16u);
    EXPECT_EQ(a.events()[i].up_at, a.events()[i].down_from + 4);
  }
}

TEST(CrashSchedule, SampleZeroProbabilityIsEmpty) {
  const auto model = CrashScheduleModel::sample(50, 0.0, 16, 0, 1);
  EXPECT_TRUE(model.events().empty());
}

TEST(Composite, ConjunctionOfParts) {
  IidLossModel lossy(1.0, 3);                           // drops everything
  CrashScheduleModel crash(4, {CrashEvent{1, 2, 5}});   // node 1 down [2,5)
  CompositeFaultModel both({&lossy, &crash});
  EXPECT_FALSE(both.link_delivers(0, 1, 1));  // lossy part drops
  EXPECT_FALSE(both.node_up(1, 3));           // crash part is down
  EXPECT_TRUE(both.node_up(1, 6));
  EXPECT_TRUE(both.node_up(0, 3));

  IidLossModel clean(0.0, 3);
  CompositeFaultModel clean_crash({&clean, &crash});
  EXPECT_TRUE(clean_crash.link_delivers(0, 1, 1));
}

}  // namespace
}  // namespace wsn
