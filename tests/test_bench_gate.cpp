// The bench regression gate (analysis/bench_gate.h): tolerance math on
// the gated throughput metrics, advisory-only latency metrics, the
// missing-baseline seeding posture, strict mode, and the
// meshbcast.bench.gate JSON document.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/bench_gate.h"
#include "common/json.h"

namespace wsn {
namespace {

JsonValue parse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, &error)) << error;
  return doc;
}

constexpr const char* kBaseline =
    "{\"schema\": \"meshbcast.bench\", \"version\": 1, \"bench\": \"perf\","
    " \"results\": ["
    "  {\"name\": \"broadcast/2D-4\", \"iterations\": 100,"
    "   \"runs_per_sec\": 1000.0, \"mean_ms\": 1.0, \"p95_ms\": 1.5},"
    "  {\"name\": \"broadcast/2D-8\", \"iterations\": 100,"
    "   \"runs_per_sec\": 2000.0, \"mean_ms\": 0.5, \"p95_ms\": 0.8}]}";

std::string current_with(double rps_2d4, double mean_ms_2d4) {
  std::ostringstream out;
  out << "{\"schema\": \"meshbcast.bench\", \"version\": 1,"
         " \"bench\": \"perf\", \"results\": ["
         "  {\"name\": \"broadcast/2D-4\", \"iterations\": 100,"
         "   \"runs_per_sec\": "
      << rps_2d4 << ", \"mean_ms\": " << mean_ms_2d4
      << ", \"p95_ms\": 1.5},"
         "  {\"name\": \"broadcast/2D-8\", \"iterations\": 100,"
         "   \"runs_per_sec\": 1900.0, \"mean_ms\": 0.5, \"p95_ms\": 0.8}]}";
  return out.str();
}

TEST(BenchGate, PassesWithinTolerance) {
  // 40% slower with a 50% tolerance: degraded but allowed.
  const GateReport report = compare_bench_docs(
      parse(kBaseline), parse(current_with(600.0, 1.7)), GateOptions{});
  EXPECT_TRUE(report.passed()) << gate_text(report);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.bench, "perf");

  bool saw_ratio = false;
  for (const GateMetric& m : report.metrics) {
    if (m.entry == "broadcast/2D-4" && m.metric == "runs_per_sec") {
      EXPECT_DOUBLE_EQ(m.ratio, 0.6);
      EXPECT_TRUE(m.gated);
      saw_ratio = true;
    }
  }
  EXPECT_TRUE(saw_ratio);
}

TEST(BenchGate, FlagsThroughputRegressionBeyondTolerance) {
  const GateReport report = compare_bench_docs(
      parse(kBaseline), parse(current_with(400.0, 2.5)), GateOptions{});
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.regressions(), 1u);
  for (const GateMetric& m : report.metrics) {
    if (m.regression) {
      EXPECT_EQ(m.entry, "broadcast/2D-4");
      EXPECT_EQ(m.metric, "runs_per_sec");
    }
  }

  // A tighter tolerance catches the healthy entry too.
  GateOptions tight;
  tight.tolerance = 0.01;
  const GateReport strict_tol = compare_bench_docs(
      parse(kBaseline), parse(current_with(400.0, 2.5)), tight);
  EXPECT_EQ(strict_tol.regressions(), 2u);
}

TEST(BenchGate, LatencyMetricsAreAdvisoryOnly) {
  // mean_ms 10x worse never gates: wall-clock latency on shared CI boxes
  // is noise; only throughput collapse fails the build.
  const GateReport report = compare_bench_docs(
      parse(kBaseline), parse(current_with(1000.0, 10.0)), GateOptions{});
  EXPECT_TRUE(report.passed()) << gate_text(report);
  bool saw_advisory = false;
  for (const GateMetric& m : report.metrics) {
    if (m.metric == "mean_ms") {
      EXPECT_FALSE(m.gated);
      EXPECT_FALSE(m.regression);
      saw_advisory = true;
    }
  }
  EXPECT_TRUE(saw_advisory);
}

TEST(BenchGate, ScenarioSchemaKeysRowsByWorkerCount) {
  const char* base =
      "{\"schema\": \"meshbcast.bench.scenario\", \"version\": 1,"
      " \"bench\": \"scenario\", \"jobs\": 64, \"results\": ["
      "  {\"workers\": 4, \"cold_jobs_per_sec\": 100.0,"
      "   \"warm_jobs_per_sec\": 400.0, \"queue_wait_ms_mean\": 0.2,"
      "   \"cache_hit_rate\": 0.75}]}";
  const char* cur =
      "{\"schema\": \"meshbcast.bench.scenario\", \"version\": 1,"
      " \"bench\": \"scenario\", \"jobs\": 64, \"results\": ["
      "  {\"workers\": 4, \"cold_jobs_per_sec\": 90.0,"
      "   \"warm_jobs_per_sec\": 150.0, \"queue_wait_ms_mean\": 0.3,"
      "   \"cache_hit_rate\": 0.75}]}";
  const GateReport report =
      compare_bench_docs(parse(base), parse(cur), GateOptions{});
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.regressions(), 1u);
  for (const GateMetric& m : report.metrics) {
    EXPECT_EQ(m.entry, "workers=4");
    if (m.regression) {
      EXPECT_EQ(m.metric, "warm_jobs_per_sec");
    }
  }
}

TEST(BenchGate, MissingEntriesNoteByDefaultRegressInStrict) {
  const char* shrunk =
      "{\"schema\": \"meshbcast.bench\", \"version\": 1, \"bench\": \"perf\","
      " \"results\": [{\"name\": \"broadcast/2D-8\","
      "  \"runs_per_sec\": 2000.0}]}";
  const GateReport lenient =
      compare_bench_docs(parse(kBaseline), parse(shrunk), GateOptions{});
  EXPECT_TRUE(lenient.passed());
  ASSERT_FALSE(lenient.notes.empty());
  EXPECT_NE(lenient.notes[0].find("broadcast/2D-4"), std::string::npos);

  GateOptions strict;
  strict.strict = true;
  const GateReport hard =
      compare_bench_docs(parse(kBaseline), parse(shrunk), strict);
  EXPECT_FALSE(hard.passed());
}

TEST(BenchGate, SchemaMismatchIsANoteNotACrash) {
  const GateReport report = compare_bench_docs(
      parse("{\"schema\": \"meshbcast.metrics\", \"version\": 1}"),
      parse(kBaseline), GateOptions{});
  EXPECT_TRUE(report.passed());
  EXPECT_TRUE(report.metrics.empty());
  ASSERT_FALSE(report.notes.empty());
}

TEST(BenchGate, MissingBaselineFileSeedsTheTrajectory) {
  const auto tmp =
      std::filesystem::temp_directory_path() / "wsn_test_bench_gate";
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);
  const auto current = tmp / "BENCH_perf.json";
  {
    std::ofstream out(current);
    out << kBaseline;
  }

  const GateReport seeded = gate_bench_files(
      (tmp / "no_such_baseline.json").string(), current.string(),
      GateOptions{});
  EXPECT_TRUE(seeded.passed());
  EXPECT_TRUE(seeded.metrics.empty());
  ASSERT_FALSE(seeded.notes.empty());

  // With a real baseline on disk the comparison happens.
  const auto baseline = tmp / "baseline.json";
  {
    std::ofstream out(baseline);
    out << kBaseline;
  }
  const GateReport same = gate_bench_files(baseline.string(),
                                           current.string(), GateOptions{});
  EXPECT_TRUE(same.passed());
  EXPECT_FALSE(same.metrics.empty());
  for (const GateMetric& m : same.metrics) {
    EXPECT_DOUBLE_EQ(m.ratio, 1.0) << m.entry << " " << m.metric;
  }
  std::filesystem::remove_all(tmp);
}

TEST(BenchGate, GateJsonRoundTrips) {
  GateOptions options;
  const GateReport report = compare_bench_docs(
      parse(kBaseline), parse(current_with(400.0, 2.5)), options);
  std::ostringstream text;
  write_gate_json(text, report, options);

  const JsonValue doc = parse(text.str());
  EXPECT_EQ(doc.string_or("schema", ""), "meshbcast.bench.gate");
  EXPECT_EQ(doc.number_or("version", 0), 1.0);
  EXPECT_FALSE(doc.bool_or("passed", true));
  EXPECT_EQ(doc.number_or("regressions", 0), 1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("tolerance", 0), options.tolerance);
  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  EXPECT_EQ(metrics->as_array().size(), report.metrics.size());
  bool saw_regression = false;
  for (const JsonValue& m : metrics->as_array()) {
    if (m.bool_or("regression", false)) {
      EXPECT_EQ(m.string_or("metric", ""), "runs_per_sec");
      saw_regression = true;
    }
  }
  EXPECT_TRUE(saw_regression);
}

TEST(BenchGate, MergeConcatenatesEverything) {
  const GateReport a = compare_bench_docs(
      parse(kBaseline), parse(current_with(400.0, 2.5)), GateOptions{});
  const GateReport b = compare_bench_docs(
      parse(kBaseline), parse(current_with(1000.0, 1.0)), GateOptions{});
  const std::size_t total = a.metrics.size() + b.metrics.size();
  const GateReport merged = merge_reports({a, b});
  EXPECT_EQ(merged.metrics.size(), total);
  EXPECT_EQ(merged.regressions(), a.regressions() + b.regressions());
  EXPECT_FALSE(merged.passed());
}

}  // namespace
}  // namespace wsn
