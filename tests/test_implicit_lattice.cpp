#include "topology/implicit.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "topology/factory.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/mesh3d6.h"
#include "topology/torus.h"

namespace wsn {
namespace {

/// The implicit lattice's whole contract is byte parity with the
/// materialized topology: same neighbor lists (same order), same degrees,
/// same positions and bit-identical tx ranges.
void expect_parity(const Topology& topo, const ImplicitLattice& lat) {
  ASSERT_EQ(topo.num_nodes(), lat.num_nodes());
  EXPECT_EQ(topo.family(), lat.family());
  EXPECT_EQ(topo.name(), lat.name());
  EXPECT_EQ(topo.full_degree(), lat.full_degree());
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const auto expected = topo.neighbors(v);
    const ImplicitLattice::NeighborSet got = lat.neighbors(v);
    ASSERT_EQ(expected.size(), got.size()) << "node " << v;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], got[i]) << "node " << v << " slot " << i;
    }
    EXPECT_EQ(topo.degree(v), lat.degree(v));
    const auto pos = topo.position(v);
    const auto ipos = lat.position(v);
    EXPECT_EQ(pos[0], ipos[0]);
    EXPECT_EQ(pos[1], ipos[1]);
    EXPECT_EQ(pos[2], ipos[2]);
    // Bitwise: the energy model squares this, so even one ulp would
    // desynchronize the bulk engine's tx_energy accumulation.
    EXPECT_EQ(topo.tx_range(v), lat.tx_range(v)) << "node " << v;
  }
}

// Dim sets chosen to cover interior, edge, corner and degenerate shapes:
// single row/column, width 2 (both border columns adjacent), odd/even
// parity mixes for the 2D-3 brick wall.
struct Dims {
  int m;
  int n;
};
const std::vector<Dims>& planar_dims() {
  static const std::vector<Dims> dims = {
      {1, 1}, {1, 5}, {5, 1}, {2, 2}, {2, 7}, {7, 2},
      {3, 3}, {4, 6}, {5, 5}, {8, 3}, {9, 7}, {32, 16}};
  return dims;
}

TEST(ImplicitLattice, Matches2D4Mesh) {
  for (const Dims d : planar_dims()) {
    expect_parity(Mesh2D4(d.m, d.n), ImplicitLattice::mesh2d4(d.m, d.n));
  }
}

TEST(ImplicitLattice, Matches2D8Mesh) {
  for (const Dims d : planar_dims()) {
    expect_parity(Mesh2D8(d.m, d.n), ImplicitLattice::mesh2d8(d.m, d.n));
  }
}

TEST(ImplicitLattice, Matches2D3Mesh) {
  for (const Dims d : planar_dims()) {
    expect_parity(Mesh2D3(d.m, d.n), ImplicitLattice::mesh2d3(d.m, d.n));
  }
}

TEST(ImplicitLattice, Matches3D6Mesh) {
  const int dims[][3] = {{1, 1, 1}, {1, 1, 4}, {3, 1, 2}, {2, 3, 4},
                         {3, 3, 3}, {4, 5, 3}, {8, 8, 8}};
  for (const auto& d : dims) {
    expect_parity(Mesh3D6(d[0], d[1], d[2]),
                  ImplicitLattice::mesh3d6(d[0], d[1], d[2]));
  }
}

TEST(ImplicitLattice, Matches2D4Torus) {
  const Dims dims[] = {{3, 3}, {3, 5}, {5, 3}, {4, 4}, {6, 9}, {16, 8}};
  for (const Dims d : dims) {
    expect_parity(Torus2D4(d.m, d.n), ImplicitLattice::torus2d4(d.m, d.n));
  }
}

TEST(ImplicitLattice, Matches2D8Torus) {
  const Dims dims[] = {{3, 3}, {3, 4}, {5, 3}, {4, 7}, {9, 6}, {12, 10}};
  for (const Dims d : dims) {
    expect_parity(Torus2D8(d.m, d.n), ImplicitLattice::torus2d8(d.m, d.n));
  }
}

TEST(ImplicitLattice, NonUniformSpacingKeepsRangeParity) {
  // 0.3 m is inexact in binary: (x-1)·s differences vary in the last ulp
  // across the grid, so tx_range genuinely differs node to node.  Parity
  // here proves the implicit path replays the reference arithmetic rather
  // than shortcutting to an analytic range.
  expect_parity(Mesh2D8(9, 7, 0.3), ImplicitLattice::mesh2d8(9, 7, 0.3));
  expect_parity(Mesh3D6(4, 3, 5, 0.3), ImplicitLattice::mesh3d6(4, 3, 5, 0.3));
}

TEST(ImplicitLattice, MatchesPaperConfigs) {
  for (const std::string& family : regular_families()) {
    const std::unique_ptr<Topology> topo = make_paper_topology(family);
    const ImplicitLattice lat =
        family == "3D-6"
            ? ImplicitLattice::mesh3d6(PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kMesh3d,
                                       PaperConfig::kSpacing)
            : ImplicitLattice::make(family, PaperConfig::kMesh2dM,
                                    PaperConfig::kMesh2dN, 1,
                                    PaperConfig::kSpacing);
    expect_parity(*topo, lat);
  }
}

TEST(ImplicitLattice, CoordRoundTripAndAdjacency) {
  const ImplicitLattice lat = ImplicitLattice::mesh3d6(4, 5, 3);
  for (NodeId v = 0; v < lat.num_nodes(); ++v) {
    EXPECT_EQ(lat.to_id(lat.to_coord(v)), v);
    for (const NodeId u : lat.neighbors(v)) {
      EXPECT_TRUE(lat.adjacent(u, v));  // symmetric
    }
    EXPECT_FALSE(lat.adjacent(v, v));
  }
}

TEST(ImplicitLattice, RulesCoverExactlyTheNeighborSet) {
  // The kernel consumes the rules directly; every neighbor must come from
  // exactly one valid rule (no duplicates to double-count a transmission).
  for (const std::string family : {"2D-3", "2D-4", "2D-8"}) {
    const ImplicitLattice lat = ImplicitLattice::make(family, 7, 6);
    for (NodeId v = 0; v < lat.num_nodes(); ++v) {
      const auto c = lat.to_coord(v);
      std::vector<NodeId> from_rules;
      for (const ShiftRule& rule : lat.rules()) {
        if (ImplicitLattice::rule_valid(rule, c)) {
          from_rules.push_back(static_cast<NodeId>(
              static_cast<std::int64_t>(v) + rule.delta));
        }
      }
      std::sort(from_rules.begin(), from_rules.end());
      EXPECT_TRUE(std::adjacent_find(from_rules.begin(), from_rules.end()) ==
                  from_rules.end());
      const ImplicitLattice::NeighborSet set = lat.neighbors(v);
      ASSERT_EQ(from_rules.size(), set.size());
      EXPECT_TRUE(std::equal(set.begin(), set.end(), from_rules.begin()));
    }
  }
}

TEST(ImplicitLattice, CentralNodeIsInGrid) {
  const ImplicitLattice lat = ImplicitLattice::mesh2d4(32, 16);
  EXPECT_LT(lat.central_node(), lat.num_nodes());
  const auto c = lat.to_coord(lat.central_node());
  EXPECT_EQ(c.x, 16);
  EXPECT_EQ(c.y, 8);
}

}  // namespace
}  // namespace wsn
