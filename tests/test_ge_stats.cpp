// Statistical validation of the Gilbert-Elliott model: the empirical
// stationary loss rate and mean burst length of the simulated chain must
// match the closed-form values the resilience sweeps and the adaptive-ARQ
// backoff are calibrated against.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/models.h"

namespace wsn {
namespace {

constexpr Slot kHorizon = 20000;

/// Walks one link's chain for `kHorizon` slots with loss_good = 0 and
/// loss_bad = 1, so "probe lost" reveals the Bad state exactly.
struct ChainTrace {
  double bad_share = 0.0;
  double mean_burst = 0.0;
  std::size_t bursts = 0;
};

ChainTrace trace_chain(GilbertElliottModel& model, NodeId tx, NodeId rx) {
  model.begin_run();
  std::size_t bad_slots = 0;
  std::size_t bursts = 0;
  std::size_t burst_slots = 0;
  bool in_burst = false;
  for (Slot slot = 1; slot <= kHorizon; ++slot) {
    const bool bad = !model.link_delivers(tx, rx, slot);
    if (bad) {
      bad_slots += 1;
      burst_slots += 1;
      if (!in_burst) {
        bursts += 1;
        in_burst = true;
      }
    } else {
      in_burst = false;
    }
  }
  ChainTrace trace;
  trace.bad_share = static_cast<double>(bad_slots) / kHorizon;
  trace.bursts = bursts;
  trace.mean_burst =
      bursts == 0 ? 0.0
                  : static_cast<double>(burst_slots) /
                        static_cast<double>(bursts);
  return trace;
}

TEST(GilbertElliottStats, StationaryBadShareMatchesClosedForm) {
  const double p_gb = 0.05;
  const double p_bg = 0.25;
  const double expected = p_gb / (p_gb + p_bg);
  for (const std::uint64_t seed : {1ull, 17ull, 4242ull, 987654321ull}) {
    GilbertElliottModel model(p_gb, p_bg, 0.0, 1.0, seed);
    EXPECT_NEAR(model.stationary_bad(), expected, 1e-12);
    const ChainTrace trace = trace_chain(model, 0, 1);
    // Std error of the bad-share estimate over 20k correlated slots is
    // about sqrt(p(1-p) * burst / n) ~ 0.005; allow 5 sigma.
    EXPECT_NEAR(trace.bad_share, expected, 0.03) << "seed " << seed;
  }
}

TEST(GilbertElliottStats, MeanBurstLengthMatchesOneOverPbg) {
  const double p_bg = 0.2;  // geometric bursts, mean 5 slots
  for (const std::uint64_t seed : {3ull, 71ull, 2026ull}) {
    GilbertElliottModel model(0.04, p_bg, 0.0, 1.0, seed);
    const ChainTrace trace = trace_chain(model, 2, 3);
    ASSERT_GT(trace.bursts, 50u) << "seed " << seed;
    EXPECT_NEAR(trace.mean_burst, 1.0 / p_bg, 0.8) << "seed " << seed;
  }
}

TEST(GilbertElliottStats, FromMeanLossHitsTheRequestedRate) {
  // from_mean_loss parameterizes (p_gb, p_bg, loss_bad = 0.9): the
  // empirical loss over a long horizon must land on the request across
  // seeds and rates.
  for (const double mean_loss : {0.05, 0.1, 0.2, 0.3}) {
    for (const std::uint64_t seed : {5ull, 555ull}) {
      GilbertElliottModel model =
          GilbertElliottModel::from_mean_loss(mean_loss, 4.0, seed);
      model.begin_run();
      std::size_t lost = 0;
      for (Slot slot = 1; slot <= kHorizon; ++slot) {
        if (!model.link_delivers(1, 2, slot)) lost += 1;
      }
      const double observed = static_cast<double>(lost) / kHorizon;
      EXPECT_NEAR(observed, mean_loss, 0.035)
          << "rate " << mean_loss << " seed " << seed;
    }
  }
}

TEST(GilbertElliottStats, ChainsAreIndependentPerLink) {
  // Two directed links of one model draw from distinct chain streams: a
  // long horizon must not produce identical loss patterns.
  GilbertElliottModel model(0.1, 0.3, 0.0, 1.0, 9);
  model.begin_run();
  std::size_t differing = 0;
  for (Slot slot = 1; slot <= 2000; ++slot) {
    if (model.link_delivers(0, 1, slot) != model.link_delivers(1, 0, slot)) {
      differing += 1;
    }
  }
  EXPECT_GT(differing, 0u);
}

}  // namespace
}  // namespace wsn
