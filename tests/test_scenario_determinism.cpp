// The scenario engine's byte-identity guarantees (ISSUE 4 acceptance):
// the results file is the same bytes at any worker count, cold or warm
// plan cache, and after a mid-run kill plus --resume -- and
// scenarios/paper.json reproduces the paper's Tables 1-5 against the
// library's own direct computations.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "protocol/etr.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "scenario/engine.h"
#include "sim/simulator.h"
#include "store/plan_store.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("wsn_test_scenario_det_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

void expand(const std::string& text, JobMatrix& matrix) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(text, doc, &error)) << error;
  ScenarioSpec spec;
  ASSERT_TRUE(parse_scenario_spec(doc, spec, error)) << error;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string run_to_string(const JobMatrix& matrix, EngineConfig config,
                          const std::filesystem::path& out) {
  ScenarioEngine engine(matrix, std::move(config));
  const RunSummary summary = engine.run(out.string());
  EXPECT_TRUE(summary.ok) << summary.error;
  EXPECT_FALSE(summary.cancelled);
  return read_file(out);
}

// A matrix exercising every determinism hazard at once: a full source
// sweep (out-of-order completion pressure), seed-dependent protocols,
// stateful fault models, recovery rewrites, repeats, and ETR output.
constexpr const char* kHazardSpec =
    "{\"name\": \"det\", \"scenarios\": ["
    "{\"name\": \"sweep\", \"family\": \"2D-4\", \"dims\": [8, 6],"
    " \"sources\": \"all\", \"protocols\": [\"paper\"]},"
    "{\"name\": \"mixed\", \"family\": \"2D-3\", \"dims\": [7, 5],"
    " \"sources\": [0, 17],"
    " \"protocols\": [\"paper\", \"cds\", \"flooding\", \"gossip\"],"
    " \"seeds\": [3, 4], \"repeats\": 2},"
    "{\"name\": \"faulty\", \"family\": \"2D-4\", \"dims\": [6, 5],"
    " \"sources\": [0], \"protocols\": [\"paper\"],"
    " \"faults\": [{\"kind\": \"iid\", \"loss\": 0.15},"
    "              {\"kind\": \"gilbert\", \"loss\": 0.1, \"burst\": 3,"
    "               \"crash_prob\": 0.1}],"
    " \"recovery\": [\"none\", \"repeat-k\", \"echo-repair\"],"
    " \"seeds\": [11, 12], \"outputs\": {\"etr\": true}}]}";

TEST(ScenarioDeterminism, ByteIdenticalAcrossWorkerCounts) {
  const TempDir tmp("workers");
  JobMatrix matrix;
  expand(kHazardSpec, matrix);

  EngineConfig one;
  one.workers = 1;
  const std::string serial = run_to_string(matrix, one, tmp.path / "w1.jsonl");

  EngineConfig eight;
  eight.workers = 8;
  const std::string wide = run_to_string(matrix, eight, tmp.path / "w8.jsonl");

  EXPECT_EQ(serial, wide);
}

TEST(ScenarioDeterminism, AuditedRunsStayByteIdenticalAcrossWorkerCounts) {
  // ISSUE 5 satellite: the audit columns are pure functions of the job,
  // and the heartbeat (which carries non-deterministic pool telemetry)
  // goes to a callback, never the results stream -- so --audit runs are
  // byte-identical at any worker count, heartbeats or not.
  const TempDir tmp("audit");
  JobMatrix matrix;
  expand(kHazardSpec, matrix);

  EngineConfig one;
  one.workers = 1;
  one.audit = true;
  const std::string serial = run_to_string(matrix, one, tmp.path / "w1.jsonl");

  std::atomic<std::size_t> beats{0};
  std::atomic<bool> beat_sane{true};
  EngineConfig eight;
  eight.workers = 8;
  eight.audit = true;
  eight.heartbeat_every = 5;
  eight.on_heartbeat = [&](const HeartbeatRecord& beat) {
    beats.fetch_add(1, std::memory_order_relaxed);
    if (beat.emitted == 0 || beat.emitted > beat.jobs_total) {
      beat_sane.store(false, std::memory_order_relaxed);
    }
  };
  const std::string wide = run_to_string(matrix, eight, tmp.path / "w8.jsonl");

  EXPECT_EQ(serial, wide);
  // Emission is batched (a drain can jump past several multiples of the
  // cadence), so the exact beat count varies with scheduling -- but a
  // 92-job run always crosses some multiples of 5.
  EXPECT_GT(beats.load(), 0u);
  EXPECT_TRUE(beat_sane.load());

  // Every ok-record carries its verdict, and the perfect-medium paper
  // sweep audits clean job by job.
  std::istringstream in(wide);
  std::string line;
  std::getline(in, line);  // header
  std::size_t sweep_records = 0;
  while (std::getline(in, line)) {
    JsonValue record;
    ASSERT_TRUE(parse_json(line, record)) << line;
    if (record.string_or("scenario", "") != "sweep") continue;
    ++sweep_records;
    EXPECT_GT(record.number_or("audit_checks", 0), 0.0) << line;
    EXPECT_EQ(record.number_or("audit_violations", -1), 0.0) << line;
    EXPECT_EQ(record.find("audit_failed"), nullptr) << line;
  }
  EXPECT_GT(sweep_records, 0u);
}

TEST(ScenarioTelemetry, HeartbeatJsonCarriesTheSchema) {
  HeartbeatRecord beat;
  beat.emitted = 10;
  beat.jobs_total = 92;
  beat.errors = 1;
  beat.queue_depth = 3;
  beat.workers_busy = 7;
  EXPECT_EQ(heartbeat_json(beat),
            "{\"schema\":\"meshbcast.heartbeat\",\"version\":1,"
            "\"emitted\":10,\"jobs\":92,\"errors\":1,\"queue_depth\":3,"
            "\"workers_busy\":7}");
}

TEST(ScenarioDeterminism, ByteIdenticalWithTimelineAndSamplerOnOrOff) {
  // ISSUE 7 acceptance: full observability -- span timelines recording
  // on every thread plus the wall-clock telemetry sampler attached --
  // never reaches the results bytes, at 1 worker or 8.
  const TempDir tmp("observed");
  JobMatrix matrix;
  expand(kHazardSpec, matrix);

  EngineConfig plain;
  plain.workers = 4;
  const std::string golden =
      run_to_string(matrix, plain, tmp.path / "plain.jsonl");

  Timeline::instance().reset();
  Timeline::instance().set_enabled(true);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(workers);
    MetricsRegistry metrics;
    TelemetrySampler::Config sampler_config;
    sampler_config.period_ms = 1;  // hammer the run with samples
    sampler_config.metrics = &metrics;
    TelemetrySampler sampler(sampler_config);
    const std::string tag = std::to_string(workers);
    const auto ts_path = tmp.path / ("ts" + tag + ".jsonl");
    ASSERT_TRUE(sampler.start(ts_path.string()));

    EngineConfig observed;
    observed.workers = workers;
    observed.metrics = &metrics;
    observed.sampler = &sampler;
    const auto out_path = tmp.path / ("w" + tag + ".jsonl");
    const std::string bytes = run_to_string(matrix, observed, out_path);
    sampler.stop();

    EXPECT_EQ(bytes, golden);
    EXPECT_GE(sampler.ticks(), 1u);
  }
  Timeline::instance().set_enabled(false);

  // The observed runs actually recorded spans -- the identity above is
  // not vacuous.
  std::size_t recorded = 0;
  for (const TimelineThreadDump& t : Timeline::instance().snapshot()) {
    recorded += t.records.size();
  }
  EXPECT_GT(recorded, 0u);
  Timeline::instance().reset();
}

TEST(ScenarioDeterminism, ByteIdenticalColdAndWarmPlanCache) {
  const TempDir tmp("cache");
  JobMatrix matrix;
  expand(kHazardSpec, matrix);

  EngineConfig storeless;
  storeless.workers = 4;
  const std::string direct =
      run_to_string(matrix, storeless, tmp.path / "direct.jsonl");

  PlanStore store;
  EngineConfig cached = storeless;
  cached.store = &store;
  const std::string cold =
      run_to_string(matrix, cached, tmp.path / "cold.jsonl");
  const std::string warm =
      run_to_string(matrix, cached, tmp.path / "warm.jsonl");

  // The warm run really was served from cache...
  EXPECT_GT(store.memory().stats().hits, 0u);
  // ...and cache temperature (or having a cache at all) never reaches
  // the bytes.
  EXPECT_EQ(direct, cold);
  EXPECT_EQ(cold, warm);
}

TEST(ScenarioDeterminism, KilledRunResumesToIdenticalBytes) {
  const TempDir tmp("kill");
  JobMatrix matrix;
  expand(kHazardSpec, matrix);

  EngineConfig plain;
  plain.workers = 4;
  const std::string golden =
      run_to_string(matrix, plain, tmp.path / "golden.jsonl");

  // Kill mid-run at a different worker count than the resume uses.
  const std::filesystem::path out = tmp.path / "killed.jsonl";
  {
    EngineConfig config;
    config.workers = 8;
    ScenarioEngine* handle = nullptr;
    config.on_emit = [&handle](std::size_t emitted) {
      if (emitted >= 10) handle->request_cancel();
    };
    ScenarioEngine engine(matrix, config);
    handle = &engine;
    const RunSummary summary = engine.run(out.string());
    ASSERT_TRUE(summary.ok) << summary.error;
    ASSERT_TRUE(summary.cancelled);
    ASSERT_GE(summary.emitted, 10u);
  }

  EngineConfig resume;
  resume.workers = 3;
  resume.resume = true;
  ScenarioEngine engine(matrix, resume);
  const RunSummary summary = engine.run(out.string());
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.emitted, matrix.jobs.size());
  EXPECT_EQ(read_file(out), golden);
}

TEST(ScenarioDeterminism, EnvelopeMatchesDirectSweep) {
  // The engine's per-scenario fold is the same envelope the analysis
  // layer computes: an all-sources scenario equals sweep_all_sources.
  const TempDir tmp("sweep");
  JobMatrix matrix;
  expand(
      "{\"scenarios\": [{\"name\": \"sweep\", \"family\": \"2D-4\","
      " \"dims\": [8, 6], \"sources\": \"all\"}]}",
      matrix);

  ScenarioEngine engine(matrix, {});
  const RunSummary summary = engine.run((tmp.path / "out.jsonl").string());
  ASSERT_TRUE(summary.ok) << summary.error;
  ASSERT_EQ(summary.envelopes.size(), 1u);
  const ScenarioEnvelope& env = summary.envelopes[0];

  const SweepResult sweep = sweep_all_sources(matrix.topology_of(matrix.jobs[0]));
  EXPECT_EQ(env.best_source, sweep.best().source);
  EXPECT_EQ(env.worst_source, sweep.worst().source);
  EXPECT_DOUBLE_EQ(env.best_energy, sweep.best().stats.total_energy());
  EXPECT_DOUBLE_EQ(env.worst_energy, sweep.worst().stats.total_energy());
  EXPECT_DOUBLE_EQ(env.mean_energy(), sweep.mean_energy());
  EXPECT_EQ(env.best_tx, sweep.best().stats.tx);
  EXPECT_EQ(env.worst_tx, sweep.worst().stats.tx);
  EXPECT_EQ(env.max_delay, sweep.max_delay());
  EXPECT_EQ(env.all_reached, sweep.all_fully_reached());
}

// ---------------------------------------------------------------------
// Acceptance: scenarios/paper.json reproduces Tables 1-5.
//
// One test on purpose: the paper run is ~5 s of simulation (four full
// 512-source sweeps) and ctest runs each gtest case in its own process,
// so splitting per family/table would re-pay that cost per case.
// ---------------------------------------------------------------------

TEST(ScenarioAcceptance, PaperJsonReproducesTables1Through5) {
  const std::filesystem::path spec_path =
      std::filesystem::path(WSN_REPO_DIR) / "scenarios" / "paper.json";
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(load_scenario_file(spec_path.string(), spec, error)) << error;
  JobMatrix matrix;
  ASSERT_TRUE(expand_jobs(std::move(spec), matrix, error)) << error;

  const TempDir tmp("paper");
  PlanStore store;
  EngineConfig config;
  config.store = &store;
  ScenarioEngine engine(matrix, config);
  const std::filesystem::path out = tmp.path / "paper.jsonl";
  const RunSummary summary = engine.run(out.string());
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.errors, 0u);

  // Parsed ok-records per scenario name, in job order.
  std::map<std::string, std::vector<JsonValue>> records;
  {
    std::ifstream in(out);
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      JsonValue record;
      ASSERT_TRUE(parse_json(line, record)) << line;
      records[record.string_or("scenario", "")].push_back(std::move(record));
    }
  }
  const auto envelope = [&](const std::string& name) -> const ScenarioEnvelope* {
    for (const ScenarioEnvelope& env : summary.envelopes) {
      if (env.scenario == name) return &env;
    }
    return nullptr;
  };

  for (const std::string family : {"2D-3", "2D-4", "2D-8", "3D-6"}) {
    SCOPED_TRACE(family);

    // --- Table 1: center-source ETR record vs direct computation ------
    const auto t1 = records.find("table1-" + family);
    ASSERT_NE(t1, records.end());
    ASSERT_EQ(t1->second.size(), 1u);
    const JsonValue& etr_record = t1->second[0];
    const auto topo = make_paper_topology(family);
    const NodeId center = graph_center(*topo);
    Simulator sim;
    const BroadcastOutcome outcome =
        sim.run(*topo, paper_plan(*topo, center, {}), {});
    const EtrSummary etr = summarize_etr(
        *topo, outcome,
        static_cast<std::size_t>(optimal_etr(family).fresh), center);
    EXPECT_DOUBLE_EQ(etr_record.number_or("etr_mean", -1.0), etr.mean);
    EXPECT_DOUBLE_EQ(etr_record.number_or("etr_share", -1.0),
                     etr.optimal_share());
    // The paper's qualitative Table 1 claim -- most relay transmissions
    // hit the family's optimal ETR -- holds on the 2D meshes; 3D-6
    // relays rarely see the full 5-fresh optimum (the repo's ETR suite
    // makes the same distinction).
    EXPECT_GT(etr_record.number_or("etr_share", 0.0),
              family == "3D-6" ? 0.0 : 0.5);

    // --- Table 2: ideal records vs the analytic model (exact) ---------
    const auto t2 = records.find("table2-" + family);
    ASSERT_NE(t2, records.end());
    ASSERT_EQ(t2->second.size(), 1u);
    const JsonValue& ideal_record = t2->second[0];
    const IdealCase ideal = family == "3D-6" ? ideal_case(family, 8, 8, 8)
                                             : ideal_case(family, 32, 16);
    EXPECT_DOUBLE_EQ(ideal_record.number_or("tx", -1.0),
                     static_cast<double>(ideal.tx));
    EXPECT_DOUBLE_EQ(ideal_record.number_or("rx", -1.0),
                     static_cast<double>(ideal.rx));
    EXPECT_DOUBLE_EQ(ideal_record.number_or("energy", -1.0), ideal.power);
    const PaperRow ideal_row = paper_ideal_row(family);
    EXPECT_EQ(ideal.tx, ideal_row.tx);
    EXPECT_EQ(ideal.rx, ideal_row.rx);
    EXPECT_NEAR(ideal.power, ideal_row.power, 0.005e-2);

    // --- Tables 3-5: all-source envelope vs the direct sweep ----------
    const ScenarioEnvelope* env = envelope("table345-" + family);
    ASSERT_NE(env, nullptr);
    const SweepResult sweep = run_paper_sweep(family);
    EXPECT_EQ(env->jobs, sweep.per_source.size());
    EXPECT_EQ(env->errors, 0u);
    EXPECT_TRUE(env->all_reached);
    EXPECT_EQ(env->best_source, sweep.best().source);    // Table 3 row
    EXPECT_EQ(env->worst_source, sweep.worst().source);  // Table 4 row
    EXPECT_DOUBLE_EQ(env->best_energy, sweep.best().stats.total_energy());
    EXPECT_DOUBLE_EQ(env->worst_energy, sweep.worst().stats.total_energy());
    EXPECT_EQ(env->best_tx, sweep.best().stats.tx);
    EXPECT_EQ(env->worst_tx, sweep.worst().stats.tx);
    EXPECT_EQ(env->max_delay, sweep.max_delay());        // Table 5 row

    // The sweep itself sits inside the published bands (the integration
    // suite pins those); anchor the scenario numbers to the same
    // best/worst rows the paper tables are built from.
    const PaperRow best = paper_best_row(family);
    EXPECT_NEAR(env->best_energy, best.power, 0.10 * best.power);
    const PaperRow worst = paper_worst_row(family);
    EXPECT_GE(env->worst_energy, 0.85 * worst.power);
    EXPECT_LE(env->worst_energy, 1.20 * worst.power);
  }
}

}  // namespace
}  // namespace wsn
