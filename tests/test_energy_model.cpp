#include "radio/energy_model.h"

#include <gtest/gtest.h>

namespace wsn {
namespace {

TEST(FirstOrderRadio, PaperEquationOne) {
  // E_Tx(k, d) = 50 nJ/bit · k + 100 pJ/bit/m² · k · d².
  constexpr FirstOrderRadioModel radio;
  EXPECT_DOUBLE_EQ(radio.tx_energy(512, 0.5),
                   50e-9 * 512 + 100e-12 * 512 * 0.25);
  EXPECT_DOUBLE_EQ(radio.tx_energy(1, 1.0), 50e-9 + 100e-12);
  EXPECT_DOUBLE_EQ(radio.tx_energy(0, 3.0), 0.0);
}

TEST(FirstOrderRadio, PaperEquationTwo) {
  constexpr FirstOrderRadioModel radio;
  EXPECT_DOUBLE_EQ(radio.rx_energy(512), 50e-9 * 512);
  EXPECT_DOUBLE_EQ(radio.rx_energy(0), 0.0);
}

TEST(FirstOrderRadio, PaperEvaluationConstants) {
  // The constant behind Tables 2-4: at k = 512, d = 0.5 both sides are
  // ≈ 2.56e-5 J, so power ≈ (Tx + Rx) · 2.56e-5.
  constexpr FirstOrderRadioModel radio;
  EXPECT_NEAR(radio.rx_energy(512), 2.56e-5, 1e-12);
  EXPECT_NEAR(radio.tx_energy(512, 0.5), 2.56e-5, 2e-8);
}

TEST(FirstOrderRadio, AmplifierGrowsQuadratically) {
  constexpr FirstOrderRadioModel radio;
  const double base = radio.tx_energy(100, 0.0);
  const double at1 = radio.tx_energy(100, 1.0) - base;
  const double at2 = radio.tx_energy(100, 2.0) - base;
  EXPECT_NEAR(at2, 4.0 * at1, 1e-18);
}

TEST(FirstOrderRadio, CustomConstants) {
  constexpr FirstOrderRadioModel radio(1.0, 2.0);
  EXPECT_DOUBLE_EQ(radio.elec(), 1.0);
  EXPECT_DOUBLE_EQ(radio.amp(), 2.0);
  EXPECT_DOUBLE_EQ(radio.tx_energy(3, 2.0), 3.0 + 2.0 * 3 * 4.0);
  EXPECT_DOUBLE_EQ(radio.rx_energy(3), 3.0);
}

TEST(FirstOrderRadio, TxAlwaysAtLeastRx) {
  constexpr FirstOrderRadioModel radio;
  for (double d : {0.0, 0.1, 0.5, 1.0, 10.0}) {
    EXPECT_GE(radio.tx_energy(512, d), radio.rx_energy(512));
  }
}

}  // namespace
}  // namespace wsn
