#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "topology/mesh2d4.h"

namespace wsn {
namespace {

/// 1×n path topology: ids 0..n-1 left to right.
Mesh2D4 path(int n) { return Mesh2D4(n, 1); }

TEST(Simulator, SourceTransmitsAtSlotOne) {
  const auto topo = path(2);
  const RelayPlan plan = RelayPlan::empty(2, 0);
  const auto out = simulate_broadcast(topo, plan);
  ASSERT_EQ(out.transmissions.size(), 1u);
  EXPECT_EQ(out.transmissions[0].slot, 1u);
  EXPECT_EQ(out.transmissions[0].node, 0u);
  EXPECT_EQ(out.transmissions[0].fresh, 1u);
  EXPECT_EQ(out.first_rx[0], 0u);
  EXPECT_EQ(out.first_rx[1], 1u);
}

TEST(Simulator, WavefrontAdvancesOneHopPerSlot) {
  const auto topo = path(6);
  RelayPlan plan = RelayPlan::empty(6, 0);
  for (NodeId v = 1; v < 6; ++v) plan.tx_offsets[v] = {1};
  const auto out = simulate_broadcast(topo, plan);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(out.first_rx[v], static_cast<Slot>(v));
  }
  EXPECT_EQ(out.stats.delay, 5u);
  EXPECT_TRUE(out.stats.fully_reached());
  // Every hop back is a duplicate reception at the previous node.
  EXPECT_EQ(out.stats.duplicates, 5u);  // nodes 0..4 hear their successor
}

TEST(Simulator, CollisionsAtCrossfire) {
  // 3×3 mesh, source center, all four axis neighbors relay: in slot 2 all
  // four transmit; the corners each hear two transmitters and decode
  // nothing, and the center hears four.
  const Mesh2D4 topo(3, 3);
  const Grid2D& g = topo.grid();
  RelayPlan plan = RelayPlan::empty(9, g.to_id({2, 2}));
  for (Vec2 v : {Vec2{1, 2}, Vec2{3, 2}, Vec2{2, 1}, Vec2{2, 3}}) {
    plan.tx_offsets[g.to_id(v)] = {1};
  }
  SimOptions options;
  options.record_collisions = true;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.stats.tx, 5u);
  EXPECT_EQ(out.stats.collisions, 5u);  // 4 corners + the deaf center
  EXPECT_EQ(out.stats.rx, 4u);          // only the source's own delivery
  EXPECT_EQ(out.stats.reached, 5u);
  ASSERT_EQ(out.collision_events.size(), 5u);
  // The center's collision has 4 contenders.
  bool center_seen = false;
  for (const auto& ev : out.collision_events) {
    if (ev.node == g.to_id({2, 2})) {
      center_seen = true;
      EXPECT_EQ(ev.contenders, 4u);
    } else {
      EXPECT_EQ(ev.contenders, 2u);
    }
  }
  EXPECT_TRUE(center_seen);
}

TEST(Simulator, HalfDuplexTransmitterIsDeaf) {
  // Nodes 0 and 1 adjacent; both transmit in slot 2 (0 retransmits).
  const auto topo = path(2);
  RelayPlan plan = RelayPlan::empty(2, 0);
  plan.tx_offsets[0] = {1, 2};
  plan.tx_offsets[1] = {1};
  const auto out = simulate_broadcast(topo, plan);
  // Slot 1: 1 hears 0.  Slot 2: both transmit, neither hears anything.
  EXPECT_EQ(out.stats.rx, 1u);
  EXPECT_EQ(out.stats.duplicates, 0u);
  EXPECT_EQ(out.stats.collisions, 0u);
  EXPECT_EQ(out.stats.tx, 3u);
}

TEST(Simulator, DuplicateReceptionsAreCounted) {
  const auto topo = path(3);
  RelayPlan plan = RelayPlan::empty(3, 0);
  plan.tx_offsets[1] = {1};
  plan.tx_offsets[2] = {1};
  const auto out = simulate_broadcast(topo, plan);
  // 1 hears 0 (fresh); 0 and 2 hear 1 (dup for 0, fresh for 2); 1 hears 2
  // (dup).
  EXPECT_EQ(out.stats.rx, 4u);
  EXPECT_EQ(out.stats.duplicates, 2u);
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(Simulator, EnergyAccountingMatchesClosedForm) {
  const auto topo = path(4);
  RelayPlan plan = RelayPlan::empty(4, 0);
  for (NodeId v = 1; v < 4; ++v) plan.tx_offsets[v] = {1};
  SimOptions options;
  options.packet_bits = 512;
  const auto out = simulate_broadcast(topo, plan, options);
  const FirstOrderRadioModel radio;
  Joules expect_tx = 0.0;
  for (const TxRecord& rec : out.transmissions) {
    expect_tx += radio.tx_energy(512, topo.tx_range(rec.node));
  }
  EXPECT_DOUBLE_EQ(out.stats.tx_energy, expect_tx);
  EXPECT_DOUBLE_EQ(out.stats.rx_energy,
                   static_cast<double>(out.stats.rx) * radio.rx_energy(512));
  EXPECT_DOUBLE_EQ(out.stats.total_energy(),
                   out.stats.tx_energy + out.stats.rx_energy);
}

TEST(Simulator, CollisionEnergyOffByDefault) {
  const Mesh2D4 topo(3, 3);
  const Grid2D& g = topo.grid();
  RelayPlan plan = RelayPlan::empty(9, g.to_id({2, 2}));
  for (Vec2 v : {Vec2{1, 2}, Vec2{3, 2}, Vec2{2, 1}, Vec2{2, 3}}) {
    plan.tx_offsets[g.to_id(v)] = {1};
  }
  const auto base = simulate_broadcast(topo, plan);
  SimOptions charged;
  charged.charge_collisions = true;
  const auto with = simulate_broadcast(topo, plan, charged);
  EXPECT_GT(with.stats.rx_energy, base.stats.rx_energy);
  EXPECT_EQ(with.stats.rx, base.stats.rx);  // counting unchanged
}

TEST(Simulator, DeadNodesDropOutOfTheMedium) {
  const auto topo = path(3);
  RelayPlan plan = RelayPlan::empty(3, 0);
  plan.tx_offsets[1] = {1};
  BatteryBank bank(3, 1.0);
  bank.drain(1, 1.0);  // kill the middle relay
  SimOptions options;
  options.battery = &bank;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.stats.tx, 1u);  // only the source
  EXPECT_EQ(out.first_rx[1], kNeverSlot);
  EXPECT_EQ(out.first_rx[2], kNeverSlot);
  EXPECT_EQ(out.stats.reached, 1u);
}

TEST(Simulator, BatteryDrainsByActivity) {
  const auto topo = path(2);
  RelayPlan plan = RelayPlan::empty(2, 0);
  BatteryBank bank(2, 1.0);
  SimOptions options;
  options.battery = &bank;
  const auto out = simulate_broadcast(topo, plan, options);
  const FirstOrderRadioModel radio;
  EXPECT_DOUBLE_EQ(bank.charge(0), 1.0 - radio.tx_energy(512, 0.5));
  EXPECT_DOUBLE_EQ(bank.charge(1), 1.0 - radio.rx_energy(512));
  EXPECT_TRUE(out.stats.fully_reached());
}

TEST(Simulator, MaxSlotsStopsRunawaySchedules) {
  const auto topo = path(2);
  RelayPlan plan = RelayPlan::empty(2, 0);
  plan.tx_offsets[1] = {500};
  SimOptions options;
  options.max_slots = 100;
  const auto out = simulate_broadcast(topo, plan, options);
  EXPECT_EQ(out.stats.tx, 1u);  // the deferred transmission never fires
}

TEST(Simulator, FirstTxLookup) {
  const auto topo = path(3);
  RelayPlan plan = RelayPlan::empty(3, 0);
  plan.tx_offsets[1] = {2};
  const auto out = simulate_broadcast(topo, plan);
  EXPECT_EQ(out.first_tx(0), 1u);
  EXPECT_EQ(out.first_tx(1), 3u);  // received slot 1, offset 2
  EXPECT_EQ(out.first_tx(2), kNeverSlot);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Mesh2D4 topo(8, 8);
  RelayPlan plan = RelayPlan::empty(64, 10);
  for (NodeId v = 0; v < 64; ++v) plan.tx_offsets[v] = {1};
  const auto a = simulate_broadcast(topo, plan);
  const auto b = simulate_broadcast(topo, plan);
  ASSERT_EQ(a.transmissions.size(), b.transmissions.size());
  for (std::size_t i = 0; i < a.transmissions.size(); ++i) {
    EXPECT_EQ(a.transmissions[i].slot, b.transmissions[i].slot);
    EXPECT_EQ(a.transmissions[i].node, b.transmissions[i].node);
    EXPECT_EQ(a.transmissions[i].fresh, b.transmissions[i].fresh);
  }
  EXPECT_EQ(a.stats.rx, b.stats.rx);
  EXPECT_EQ(a.stats.collisions, b.stats.collisions);
}

TEST(Simulator, UnreachedListsExactlyTheUnreached) {
  const auto topo = path(4);
  const RelayPlan plan = RelayPlan::empty(4, 0);  // nobody forwards
  const auto out = simulate_broadcast(topo, plan);
  const auto unreached = out.unreached();
  ASSERT_EQ(unreached.size(), 2u);
  EXPECT_EQ(unreached[0], 2u);
  EXPECT_EQ(unreached[1], 3u);
}

}  // namespace
}  // namespace wsn
