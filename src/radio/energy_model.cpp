#include "radio/energy_model.h"

// FirstOrderRadioModel is fully constexpr in the header; this translation
// unit anchors the library target and pins the paper's defaults with a
// compile-time sanity check.

namespace wsn {
namespace {

constexpr FirstOrderRadioModel kPaperModel{};

// k = 512 bits, d = 0.5 m (the paper's evaluation): E_Tx ≈ 2.5613e-5 J and
// E_Rx = 2.56e-5 J, the constants behind Tables 2-4.
static_assert(kPaperModel.rx_energy(512) == 50e-9 * 512.0);
static_assert(kPaperModel.tx_energy(512, 0.5) ==
              50e-9 * 512.0 + 100e-12 * 512.0 * 0.25);

}  // namespace
}  // namespace wsn
