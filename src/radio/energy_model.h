#pragma once

#include <cstddef>

#include "common/types.h"

/// The First Order Radio Model (Heinzelman et al., adopted by the paper §2).
///
/// Transmitting k bits over distance d costs
///     E_Tx(k, d) = E_elec · k + E_amp · k · d²          (paper eq. 1)
/// and receiving k bits costs
///     E_Rx(k)    = E_elec · k                           (paper eq. 2)
/// with E_elec = 50 nJ/bit and E_amp = 100 pJ/bit/m².
///
/// Accounting conventions (validated against the paper's published power
/// numbers -- DESIGN.md §4): every *successful* reception is charged,
/// duplicates included; collided receptions are not charged; a broadcast
/// transmission's d is the transmitter's range (distance to its farthest
/// neighbor), since the amplifier must reach all of them.
namespace wsn {

class FirstOrderRadioModel {
 public:
  /// Defaults are the paper's constants.
  explicit constexpr FirstOrderRadioModel(
      double elec_joules_per_bit = 50e-9,
      double amp_joules_per_bit_m2 = 100e-12) noexcept
      : elec_(elec_joules_per_bit), amp_(amp_joules_per_bit_m2) {}

  /// E_Tx(k, d) in joules.
  [[nodiscard]] constexpr Joules tx_energy(std::size_t bits,
                                           Meters distance) const noexcept {
    const auto k = static_cast<double>(bits);
    return elec_ * k + amp_ * k * distance * distance;
  }

  /// E_Rx(k) in joules.
  [[nodiscard]] constexpr Joules rx_energy(std::size_t bits) const noexcept {
    return elec_ * static_cast<double>(bits);
  }

  [[nodiscard]] constexpr double elec() const noexcept { return elec_; }
  [[nodiscard]] constexpr double amp() const noexcept { return amp_; }

 private:
  double elec_;
  double amp_;
};

}  // namespace wsn
