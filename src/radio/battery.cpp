#include "radio/battery.h"

#include <algorithm>

#include "common/assert.h"

namespace wsn {

BatteryBank::BatteryBank(std::size_t count, Joules initial_charge)
    : initial_(initial_charge), charge_(count, initial_charge) {
  WSN_EXPECTS(count >= 1);
  WSN_EXPECTS(initial_charge > 0.0);
}

std::size_t BatteryBank::alive_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(charge_.begin(), charge_.end(),
                    [](Joules c) { return c > 0.0; }));
}

void BatteryBank::drain(NodeId id, Joules amount) noexcept {
  WSN_EXPECTS(amount >= 0.0);
  charge_[id] = std::max(0.0, charge_[id] - amount);
}

Joules BatteryBank::total_consumed() const noexcept {
  Joules spent = 0.0;
  for (Joules c : charge_) spent += initial_ - c;
  return spent;
}

Joules BatteryBank::min_charge() const noexcept {
  return *std::min_element(charge_.begin(), charge_.end());
}

}  // namespace wsn
