#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

/// Per-node energy ledger.
///
/// Sensor nodes have no plug-in power (paper §1); the broadcasting
/// protocols exist to stretch a fixed budget.  `BatteryBank` tracks every
/// node's remaining charge across repeated broadcasts so the
/// network-lifetime example can measure rounds-until-first-death and
/// rounds-until-partition, LEACH-style.
namespace wsn {

class BatteryBank {
 public:
  /// All `count` nodes start with `initial_charge` joules.
  BatteryBank(std::size_t count, Joules initial_charge);

  [[nodiscard]] std::size_t size() const noexcept { return charge_.size(); }
  [[nodiscard]] Joules charge(NodeId id) const noexcept {
    return charge_[id];
  }
  [[nodiscard]] Joules initial_charge() const noexcept { return initial_; }

  /// A node is alive while its charge is positive.  Dead nodes neither
  /// transmit nor receive ("can still work even [with] little remaining
  /// power" -- we model the cutoff at zero).
  [[nodiscard]] bool alive(NodeId id) const noexcept {
    return charge_[id] > 0.0;
  }
  [[nodiscard]] std::size_t alive_count() const noexcept;

  /// Deducts `amount` joules; clamps at zero (the node dies mid-operation).
  void drain(NodeId id, Joules amount) noexcept;

  /// Total energy spent so far across all nodes.
  [[nodiscard]] Joules total_consumed() const noexcept;

  /// Lowest remaining charge among live nodes; 0 when any node has died.
  [[nodiscard]] Joules min_charge() const noexcept;

 private:
  Joules initial_;
  std::vector<Joules> charge_;
};

}  // namespace wsn
