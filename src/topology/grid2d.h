#pragma once

#include <array>
#include <cstdint>

#include "common/assert.h"
#include "common/types.h"
#include "geometry/vec2.h"

/// Mapping between the paper's 1-based grid coordinates and dense NodeIds
/// for an m×n 2D mesh with uniform physical spacing.
///
/// Pure value type shared by every 2D mesh; ids are row-major:
/// id = (y-1)·m + (x-1).
namespace wsn {

class Grid2D {
 public:
  /// `m` columns (x ∈ [1, m]), `n` rows (y ∈ [1, n]), `spacing` meters
  /// between axis neighbors (the paper evaluates with 0.5 m).
  Grid2D(int m, int n, Meters spacing) noexcept
      : m_(m), n_(n), spacing_(spacing) {
    WSN_EXPECTS(m >= 1 && n >= 1);
    WSN_EXPECTS(spacing > 0.0);
  }

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] Meters spacing() const noexcept { return spacing_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return static_cast<std::size_t>(m_) * static_cast<std::size_t>(n_);
  }

  [[nodiscard]] bool contains(Vec2 v) const noexcept {
    return v.x >= 1 && v.x <= m_ && v.y >= 1 && v.y <= n_;
  }

  [[nodiscard]] NodeId to_id(Vec2 v) const noexcept {
    WSN_EXPECTS(contains(v));
    // 64-bit on purpose: NodeId covers grids past 2^31 nodes and the int
    // product (y-1)·m overflows there (caught by the BigGrid tests).
    return static_cast<NodeId>(static_cast<std::int64_t>(v.y - 1) * m_ +
                               (v.x - 1));
  }

  [[nodiscard]] Vec2 to_coord(NodeId id) const noexcept {
    WSN_EXPECTS(id < num_nodes());
    const auto idx = static_cast<std::int64_t>(id);
    return {static_cast<int>(idx % m_) + 1, static_cast<int>(idx / m_) + 1};
  }

  /// Physical position in meters (z = 0); node (1,1) sits at the origin.
  [[nodiscard]] std::array<Meters, 3> position(Vec2 v) const noexcept {
    return {static_cast<Meters>(v.x - 1) * spacing_,
            static_cast<Meters>(v.y - 1) * spacing_, 0.0};
  }

 private:
  int m_;
  int n_;
  Meters spacing_;
};

}  // namespace wsn
