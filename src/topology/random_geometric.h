#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.h"

/// Random-geometric (unit-disk) topology: `count` nodes placed uniformly in
/// a `side`×`side` square, connected when within `radius` meters.
///
/// This is the "WSN with random topology" the paper's introduction contrasts
/// against (citing [12, 14]: regular topologies communicate more
/// efficiently).  The flooding/gossip baselines run on it in
/// bench/baseline_comparison to quantify that contrast; the paper's own
/// protocols are undefined here (they need grid ids).
namespace wsn {

class RandomGeometric final : public Topology {
 public:
  RandomGeometric(std::size_t count, Meters side, Meters radius,
                  std::uint64_t seed);

  [[nodiscard]] int full_degree() const noexcept override {
    return max_degree_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "random"; }

  [[nodiscard]] Meters side() const noexcept { return side_; }
  [[nodiscard]] Meters radius() const noexcept { return radius_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  Meters side_;
  Meters radius_;
  std::uint64_t seed_;
  int max_degree_ = 0;
};

}  // namespace wsn
