#include "topology/mesh3d6.h"

namespace wsn {

Mesh3D6::Mesh3D6(int m, int n, int l, Meters spacing)
    : grid_(m, n, l, spacing) {
  const std::size_t count = grid_.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(count);
  std::vector<std::array<Meters, 3>> positions(count);

  constexpr Vec3 kSteps[] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                             {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  for (NodeId id = 0; id < count; ++id) {
    const Vec3 v = grid_.to_coord(id);
    positions[id] = grid_.position(v);
    for (Vec3 step : kSteps) {
      const Vec3 u = v + step;
      if (grid_.contains(u)) adjacency[id].push_back(grid_.to_id(u));
    }
  }
  build(adjacency, std::move(positions));
}

std::string Mesh3D6::name() const {
  return "3D-6 mesh " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n()) + "x" + std::to_string(grid_.l());
}

}  // namespace wsn
