#include "topology/mesh2d4.h"

namespace wsn {

Mesh2D4::Mesh2D4(int m, int n, Meters spacing) : grid_(m, n, spacing) {
  const std::size_t count = grid_.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(count);
  std::vector<std::array<Meters, 3>> positions(count);

  constexpr Vec2 kSteps[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (NodeId id = 0; id < count; ++id) {
    const Vec2 v = grid_.to_coord(id);
    positions[id] = grid_.position(v);
    for (Vec2 step : kSteps) {
      const Vec2 u = v + step;
      if (grid_.contains(u)) adjacency[id].push_back(grid_.to_id(u));
    }
  }
  build(adjacency, std::move(positions));
}

std::string Mesh2D4::name() const {
  return "2D-4 mesh " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n());
}

}  // namespace wsn
