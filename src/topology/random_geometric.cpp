#include "topology/random_geometric.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/random.h"

namespace wsn {

RandomGeometric::RandomGeometric(std::size_t count, Meters side,
                                 Meters radius, std::uint64_t seed)
    : side_(side), radius_(radius), seed_(seed) {
  WSN_EXPECTS(count >= 1);
  WSN_EXPECTS(side > 0.0 && radius > 0.0);

  Xoshiro256 rng(seed);
  std::vector<std::array<Meters, 3>> positions(count);
  for (auto& p : positions) {
    p = {rng.canonical() * side, rng.canonical() * side, 0.0};
  }

  // O(count²) link test; baseline networks are a few thousand nodes at most,
  // so a spatial index would be complexity without payoff here.
  std::vector<std::vector<NodeId>> adjacency(count);
  const double r2 = radius * radius;
  for (std::size_t a = 0; a < count; ++a) {
    for (std::size_t b = a + 1; b < count; ++b) {
      const double dx = positions[a][0] - positions[b][0];
      const double dy = positions[a][1] - positions[b][1];
      if (dx * dx + dy * dy <= r2) {
        adjacency[a].push_back(static_cast<NodeId>(b));
        adjacency[b].push_back(static_cast<NodeId>(a));
      }
    }
  }
  for (const auto& list : adjacency) {
    max_degree_ = std::max(max_degree_, static_cast<int>(list.size()));
  }
  build(adjacency, std::move(positions));
}

std::string RandomGeometric::name() const {
  return "random unit-disk n=" + std::to_string(num_nodes()) +
         " r=" + std::to_string(radius_);
}

}  // namespace wsn
