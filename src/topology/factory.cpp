#include "topology/factory.h"

#include "common/assert.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/mesh3d6.h"

namespace wsn {

const std::vector<std::string>& regular_families() {
  static const std::vector<std::string> kFamilies = {"2D-3", "2D-4", "2D-8",
                                                     "3D-6"};
  return kFamilies;
}

std::unique_ptr<Topology> make_paper_topology(std::string_view family) {
  if (family == "3D-6") {
    return make_mesh(family, PaperConfig::kMesh3d, PaperConfig::kMesh3d,
                     PaperConfig::kMesh3d, PaperConfig::kSpacing);
  }
  return make_mesh(family, PaperConfig::kMesh2dM, PaperConfig::kMesh2dN, 1,
                   PaperConfig::kSpacing);
}

std::unique_ptr<Topology> make_mesh(std::string_view family, int m, int n,
                                    int l, Meters spacing) {
  if (family == "2D-3") return std::make_unique<Mesh2D3>(m, n, spacing);
  if (family == "2D-4") return std::make_unique<Mesh2D4>(m, n, spacing);
  if (family == "2D-8") return std::make_unique<Mesh2D8>(m, n, spacing);
  if (family == "3D-6") return std::make_unique<Mesh3D6>(m, n, l, spacing);
  WSN_EXPECTS(false && "unknown topology family");
  return nullptr;
}

}  // namespace wsn
