#include "topology/torus.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "geometry/diagonal.h"

namespace wsn {

Vec2 torus_wrap(Vec2 v, int m, int n) noexcept {
  return {1 + floor_mod(v.x - 1, m), 1 + floor_mod(v.y - 1, n)};
}

namespace {

/// Builds wrap-around adjacency from a step set.  Positions stay planar
/// (for rendering); the constructors fix the energy metric afterwards with
/// override_tx_range, since in the wrapped metric every link spans exactly
/// one step.
template <typename Steps>
void build_torus(const Grid2D& grid, const Steps& steps,
                 std::vector<std::vector<NodeId>>& adjacency,
                 std::vector<std::array<Meters, 3>>& positions) {
  const std::size_t count = grid.num_nodes();
  adjacency.assign(count, {});
  positions.assign(count, {});
  for (NodeId id = 0; id < count; ++id) {
    const Vec2 v = grid.to_coord(id);
    positions[id] = grid.position(v);
    for (Vec2 step : steps) {
      const Vec2 u = torus_wrap(v + step, grid.m(), grid.n());
      if (u == v) continue;  // degenerate axis (size 1) folds onto itself
      const NodeId uid = grid.to_id(u);
      // Duplicate links can appear on size-2 axes (left == right); keep one.
      if (std::find(adjacency[id].begin(), adjacency[id].end(), uid) ==
          adjacency[id].end()) {
        adjacency[id].push_back(uid);
      }
    }
  }
}

}  // namespace

Torus2D4::Torus2D4(int m, int n, Meters spacing) : grid_(m, n, spacing) {
  WSN_EXPECTS(m >= 3 && n >= 3);  // keep wrap links distinct per direction
  constexpr Vec2 kSteps[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  std::vector<std::vector<NodeId>> adjacency;
  std::vector<std::array<Meters, 3>> positions;
  build_torus(grid_, kSteps, adjacency, positions);
  build(adjacency, std::move(positions));
  // In the wrapped metric every link spans exactly one spacing; the planar
  // embedding (kept for rendering) would otherwise bill wrap links for the
  // whole plane.
  override_tx_range(spacing);
}

std::string Torus2D4::name() const {
  return "2D-4 torus " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n());
}

Torus2D8::Torus2D8(int m, int n, Meters spacing) : grid_(m, n, spacing) {
  WSN_EXPECTS(m >= 3 && n >= 3);
  std::vector<Vec2> steps;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx != 0 || dy != 0) steps.push_back({dx, dy});
    }
  }
  std::vector<std::vector<NodeId>> adjacency;
  std::vector<std::array<Meters, 3>> positions;
  build_torus(grid_, steps, adjacency, positions);
  build(adjacency, std::move(positions));
  override_tx_range(spacing * std::sqrt(2.0));  // diagonal wrapped links
}

std::string Torus2D8::name() const {
  return "2D-8 torus " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n());
}

}  // namespace wsn
