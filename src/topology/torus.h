#pragma once

#include <string>

#include "topology/grid2d.h"
#include "topology/topology.h"

/// Toroidal (wrap-around) variants of the 2D meshes.
///
/// The paper closes by noting its protocols "also can be applied to the
/// infrastructure wireless networks" of fixed stations; such deployments
/// (and many NoC-style fabrics) often wrap their edges.  A torus removes
/// every border effect: all nodes have the full degree, so it isolates how
/// much of a protocol's cost is border handling versus structure.  The
/// paper protocols assume borders (their relay-column and wedge rules key
/// off them), so tori are served by the generic CdsBroadcast and the
/// baselines.
///
/// For physical positions the torus keeps the planar grid layout; link
/// *distances* for the energy model use the wrapped metric, so every link
/// costs the same `spacing` (or spacing·√2 diagonally), as in an actual
/// ring deployment.
namespace wsn {

class Torus2D4 final : public Topology {
 public:
  Torus2D4(int m, int n, Meters spacing = 0.5);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 4; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "2D-4T"; }

 private:
  Grid2D grid_;
};

class Torus2D8 final : public Topology {
 public:
  Torus2D8(int m, int n, Meters spacing = 0.5);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 8; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "2D-8T"; }

 private:
  Grid2D grid_;
};

/// Wraps a (possibly out-of-range) 1-based coordinate onto an m×n torus.
[[nodiscard]] Vec2 torus_wrap(Vec2 v, int m, int n) noexcept;

}  // namespace wsn
