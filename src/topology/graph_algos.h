#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topology/topology.h"

/// Graph algorithms over topologies.
///
/// The paper's "ideal" delay (Table 5) is a pure hop-count quantity: the
/// broadcast wavefront cannot outrun BFS distance, so the ideal maximum
/// delay from a source is its eccentricity and the worst source gives the
/// diameter.  These run once per analysis, so plain BFS is the right tool.
namespace wsn {

/// Hop distance from `source` to every node; kUnreachable for nodes in
/// other components.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Topology& topo,
                                                       NodeId source);

/// max over reachable nodes of bfs distance; precondition: connected from
/// `source`.
[[nodiscard]] std::uint32_t eccentricity(const Topology& topo, NodeId source);

/// max over sources of eccentricity (O(V·E); fine at WSN scales).
[[nodiscard]] std::uint32_t diameter(const Topology& topo);

/// True if every node is reachable from node 0.
[[nodiscard]] bool is_connected(const Topology& topo);

/// The node whose eccentricity is smallest (a graph center); ties broken by
/// lowest id.  The paper's "best case" sources sit near here.
[[nodiscard]] NodeId graph_center(const Topology& topo);

}  // namespace wsn
