#include "topology/graph_algos.h"

#include <algorithm>

#include "common/assert.h"
#include "common/parallel.h"

namespace wsn {

std::vector<std::uint32_t> bfs_distances(const Topology& topo,
                                         NodeId source) {
  WSN_EXPECTS(source < topo.num_nodes());
  std::vector<std::uint32_t> dist(topo.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  dist[source] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (NodeId v : frontier) {
      for (NodeId u : topo.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Topology& topo, NodeId source) {
  const auto dist = bfs_distances(topo, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    WSN_EXPECTS(d != kUnreachable);
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Topology& topo) {
  const std::size_t n = topo.num_nodes();
  const auto eccs = parallel_map<std::uint32_t>(
      n, [&](std::size_t v) {
        return eccentricity(topo, static_cast<NodeId>(v));
      });
  return *std::max_element(eccs.begin(), eccs.end());
}

bool is_connected(const Topology& topo) {
  const auto dist = bfs_distances(topo, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

NodeId graph_center(const Topology& topo) {
  const std::size_t n = topo.num_nodes();
  const auto eccs = parallel_map<std::uint32_t>(
      n, [&](std::size_t v) {
        return eccentricity(topo, static_cast<NodeId>(v));
      });
  const auto it = std::min_element(eccs.begin(), eccs.end());
  return static_cast<NodeId>(it - eccs.begin());
}

}  // namespace wsn
