#pragma once

#include <string>

#include "geometry/region.h"
#include "topology/grid2d.h"
#include "topology/topology.h"

/// 2D mesh with 3 neighbors (paper Fig. 1): the brick-wall / hexagonal
/// mesh.  Node (x, y) connects to (x±1, y) and to exactly one vertical
/// neighbor: (x, y+1) when x+y is even, (x, y-1) when odd (the convention
/// validated against the paper's §3.3 examples -- see geometry/region.h).
namespace wsn {

class Mesh2D3 final : public Topology {
 public:
  Mesh2D3(int m, int n, Meters spacing = 0.5);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 3; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "2D-3"; }

  /// The vertical neighbor of `v`, whether or not it is inside the grid.
  [[nodiscard]] static Vec2 vertical_neighbor(Vec2 v) noexcept {
    return brick_has_up(v) ? Vec2{v.x, v.y + 1} : Vec2{v.x, v.y - 1};
  }

 private:
  Grid2D grid_;
};

}  // namespace wsn
