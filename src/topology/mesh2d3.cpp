#include "topology/mesh2d3.h"

namespace wsn {

Mesh2D3::Mesh2D3(int m, int n, Meters spacing) : grid_(m, n, spacing) {
  const std::size_t count = grid_.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(count);
  std::vector<std::array<Meters, 3>> positions(count);

  for (NodeId id = 0; id < count; ++id) {
    const Vec2 v = grid_.to_coord(id);
    positions[id] = grid_.position(v);
    const Vec2 candidates[] = {{v.x - 1, v.y}, {v.x + 1, v.y},
                               vertical_neighbor(v)};
    for (Vec2 u : candidates) {
      if (grid_.contains(u)) adjacency[id].push_back(grid_.to_id(u));
    }
  }
  build(adjacency, std::move(positions));
}

std::string Mesh2D3::name() const {
  return "2D-3 mesh " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n());
}

}  // namespace wsn
