#pragma once

#include <string>

#include "topology/grid2d.h"
#include "topology/topology.h"

/// 2D mesh with 8 neighbors (paper Fig. 3): the Moore neighborhood --
/// (x±1, y), (x, y±1) and the four diagonals (x±1, y±1).  Diagonal links
/// span distance spacing·√2, so interior nodes must provision their
/// amplifier for that range (tx_range reflects it).
namespace wsn {

class Mesh2D8 final : public Topology {
 public:
  Mesh2D8(int m, int n, Meters spacing = 0.5);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 8; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "2D-8"; }

 private:
  Grid2D grid_;
};

}  // namespace wsn
