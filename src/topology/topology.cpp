#include "topology/topology.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace wsn {

bool Topology::adjacent(NodeId a, NodeId b) const noexcept {
  const auto span = neighbors(a);
  return std::binary_search(span.begin(), span.end(), b);
}

std::size_t Topology::link_index(NodeId a, NodeId b) const noexcept {
  const auto span = neighbors(a);
  const auto it = std::lower_bound(span.begin(), span.end(), b);
  if (it == span.end() || *it != b) return kNoLink;
  return offsets_[a] + static_cast<std::size_t>(it - span.begin());
}

void Topology::set_link_quality(std::vector<double> quality) {
  WSN_EXPECTS(quality.size() == flat_.size());
  for (const double p : quality) {
    WSN_EXPECTS(p > 0.0 && p <= 1.0);
  }
  link_quality_ = std::move(quality);
}

double Topology::link_delivery(NodeId a, NodeId b) const noexcept {
  if (link_quality_.empty()) return 1.0;
  const std::size_t index = link_index(a, b);
  return index == kNoLink ? 1.0 : link_quality_[index];
}

Meters Topology::distance(NodeId a, NodeId b) const noexcept {
  const auto& pa = positions_[a];
  const auto& pb = positions_[b];
  const double dx = pa[0] - pb[0];
  const double dy = pa[1] - pb[1];
  const double dz = pa[2] - pb[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

void Topology::override_tx_range(Meters range) {
  WSN_EXPECTS(range > 0.0);
  tx_range_.assign(tx_range_.size(), range);
}

void Topology::build(const std::vector<std::vector<NodeId>>& adjacency,
                     std::vector<std::array<Meters, 3>> positions) {
  const std::size_t n = adjacency.size();
  WSN_EXPECTS(n >= 1);
  WSN_EXPECTS(positions.size() == n);

  positions_ = std::move(positions);
  offsets_.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total += adjacency[v].size();
    offsets_[v + 1] = total;
  }
  flat_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(adjacency[v].begin(), adjacency[v].end(),
              flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]));
    auto lo = flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto hi = flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(lo, hi);
    WSN_ASSERT(std::adjacent_find(lo, hi) == hi);  // no duplicate edges
  }

  // Validate irreflexivity + symmetry, and precompute transmission ranges.
  tx_range_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<NodeId>(v);
    for (NodeId u : neighbors(id)) {
      WSN_ASSERT(u < n);
      WSN_ASSERT(u != id);
      WSN_ASSERT(adjacent(u, id));
      tx_range_[v] = std::max(tx_range_[v], distance(id, u));
    }
  }
}

}  // namespace wsn
