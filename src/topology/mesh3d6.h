#pragma once

#include <string>

#include "topology/grid3d.h"
#include "topology/topology.h"

/// 3D mesh with 6 neighbors (paper Fig. 4): node (x, y, z) connects to
/// (x±1, y, z), (x, y±1, z) and (x, y, z±1).  Equivalently, a stack of
/// 2D-4 XY planes with vertical links -- exactly how the 3D-6 broadcast
/// protocol treats it (§3.4).
namespace wsn {

class Mesh3D6 final : public Topology {
 public:
  Mesh3D6(int m, int n, int l, Meters spacing = 0.5);

  [[nodiscard]] const Grid3D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 6; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "3D-6"; }

 private:
  Grid3D grid_;
};

}  // namespace wsn
