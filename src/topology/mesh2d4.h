#pragma once

#include <string>

#include "topology/grid2d.h"
#include "topology/topology.h"

/// 2D mesh with 4 neighbors (paper Fig. 2): node (x, y) connects to
/// (x±1, y) and (x, y±1) -- the von Neumann neighborhood.  Border nodes
/// simply have fewer neighbors.
namespace wsn {

class Mesh2D4 final : public Topology {
 public:
  Mesh2D4(int m, int n, Meters spacing = 0.5);

  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }
  [[nodiscard]] int full_degree() const noexcept override { return 4; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string family() const override { return "2D-4"; }

 private:
  Grid2D grid_;
};

}  // namespace wsn
