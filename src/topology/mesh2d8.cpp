#include "topology/mesh2d8.h"

namespace wsn {

Mesh2D8::Mesh2D8(int m, int n, Meters spacing) : grid_(m, n, spacing) {
  const std::size_t count = grid_.num_nodes();
  std::vector<std::vector<NodeId>> adjacency(count);
  std::vector<std::array<Meters, 3>> positions(count);

  for (NodeId id = 0; id < count; ++id) {
    const Vec2 v = grid_.to_coord(id);
    positions[id] = grid_.position(v);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const Vec2 u = v + Vec2{dx, dy};
        if (grid_.contains(u)) adjacency[id].push_back(grid_.to_id(u));
      }
    }
  }
  build(adjacency, std::move(positions));
}

std::string Mesh2D8::name() const {
  return "2D-8 mesh " + std::to_string(grid_.m()) + "x" +
         std::to_string(grid_.n());
}

}  // namespace wsn
