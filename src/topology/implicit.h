#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

/// Implicit regular-lattice topology: neighbors computed on the fly from
/// lattice coordinates, no adjacency materialization.
///
/// A materialized `Topology` stores the CSR adjacency (8–16 bytes per
/// directed link) plus positions and ranges -- fine at the paper's 512
/// nodes, prohibitive at the 10⁶–10⁷ nodes the bulk engine targets.  All
/// four paper families (and the torus variants) are translation-invariant
/// up to boundary rules, so adjacency compresses to a handful of *shift
/// rules*: "the node `delta` ids away is a neighbor whenever my coordinates
/// satisfy this range/parity predicate".  An `ImplicitLattice` carries only
/// the dims and those rules: O(1) memory per node overall.
///
/// Contract: for equal family/dims/spacing, `neighbors()` returns exactly
/// the byte sequence `Topology::neighbors()` returns on the materialized
/// mesh (ascending ids), `position()`/`tx_range()` are bit-identical
/// doubles, and `degree`/`adjacent`/`full_degree`/`family`/`name` agree.
/// The neighbor-parity tests (tests/test_implicit_lattice.cpp) hold this
/// contract across boundary, corner, interior and wrap nodes.
///
/// The shift rules double as the bulk simulator's kernel descriptors: a
/// slot's hearer set is Σ_rules shift(transmitters & rule_mask, delta),
/// evaluated word-at-a-time over uint64 bitsets (sim/bulk/).
namespace wsn {

/// One adjacency direction: node v has neighbor v + `delta` whenever v's
/// 1-based coordinates lie in the inclusive ranges and match the optional
/// (x + y) parity (the 2D-3 brick wall's alternating vertical link).
struct ShiftRule {
  std::int64_t delta = 0;
  int xlo = 1, xhi = 0;
  int ylo = 1, yhi = 0;
  int zlo = 1, zhi = 0;
  int parity = -1;  // -1 = no constraint; else requires ((x + y) & 1) == parity
};

class ImplicitLattice {
 public:
  /// Grid coordinate, 1-based like Grid2D/Grid3D (z == 1 for 2D families).
  struct Coord {
    int x = 1;
    int y = 1;
    int z = 1;
  };

  /// Fixed-capacity neighbor set (max degree over all families is 8).
  /// Ids ascending -- the same order a materialized Topology span has.
  class NeighborSet {
   public:
    [[nodiscard]] const NodeId* begin() const noexcept { return ids_.data(); }
    [[nodiscard]] const NodeId* end() const noexcept {
      return ids_.data() + count_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] NodeId operator[](std::size_t i) const noexcept {
      return ids_[i];
    }

   private:
    friend class ImplicitLattice;
    std::array<NodeId, 8> ids_{};
    std::uint32_t count_ = 0;
  };

  static ImplicitLattice mesh2d3(int m, int n, Meters spacing = 0.5);
  static ImplicitLattice mesh2d4(int m, int n, Meters spacing = 0.5);
  static ImplicitLattice mesh2d8(int m, int n, Meters spacing = 0.5);
  static ImplicitLattice mesh3d6(int m, int n, int l, Meters spacing = 0.5);
  /// Wrapped variants; m, n >= 3 so wrap links stay distinct per direction
  /// (same precondition as the materialized Torus2D4/Torus2D8).
  static ImplicitLattice torus2d4(int m, int n, Meters spacing = 0.5);
  static ImplicitLattice torus2d8(int m, int n, Meters spacing = 0.5);

  /// Family-keyed construction ("2D-3", "2D-4", "2D-8", "3D-6"); `l` is
  /// ignored for the 2D families.  Aborts on an unknown family.
  static ImplicitLattice make(std::string_view family, int m, int n,
                              int l = 1, Meters spacing = 0.5);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int l() const noexcept { return l_; }
  [[nodiscard]] Meters spacing() const noexcept { return spacing_; }
  [[nodiscard]] bool wrapped() const noexcept { return wrapped_; }
  [[nodiscard]] bool is_3d() const noexcept { return l_ > 1 || family_ == "3D-6"; }

  /// "2D-3", "2D-4", "2D-8" or "3D-6" (wrap variants report the planar
  /// family, matching Torus2D4/Torus2D8).
  [[nodiscard]] const std::string& family() const noexcept { return family_; }
  /// Matches the materialized topology's name(), e.g. "2D-4 mesh 32x16".
  [[nodiscard]] std::string name() const;
  [[nodiscard]] int full_degree() const noexcept { return full_degree_; }

  [[nodiscard]] Coord to_coord(NodeId id) const noexcept;
  [[nodiscard]] NodeId to_id(Coord c) const noexcept;
  /// The grid's central coordinate -- the bulk CLI's default source.
  [[nodiscard]] NodeId central_node() const noexcept {
    return to_id({(m_ + 1) / 2, (n_ + 1) / 2, (l_ + 1) / 2});
  }

  /// Position in meters, bit-identical to the materialized grid's
  /// ((x-1)·s, (y-1)·s, (z-1)·s).
  [[nodiscard]] std::array<Meters, 3> position(NodeId id) const noexcept;

  [[nodiscard]] NeighborSet neighbors(NodeId id) const noexcept;
  [[nodiscard]] std::size_t degree(NodeId id) const noexcept {
    return neighbors(id).size();
  }
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const noexcept;

  /// Euclidean distance via the planar embedding, the exact arithmetic
  /// Topology::distance performs (same subtraction order, same sqrt).
  [[nodiscard]] Meters distance(NodeId a, NodeId b) const noexcept;

  /// Distance to the farthest neighbor, bit-identical to the materialized
  /// topology: max over the ascending neighbor list of `distance`, or the
  /// wrapped metric's uniform override on tori.
  [[nodiscard]] Meters tx_range(NodeId id) const noexcept;

  /// The kernel descriptors: every adjacency direction as a shift rule.
  [[nodiscard]] const std::vector<ShiftRule>& rules() const noexcept {
    return rules_;
  }

  /// True when `rule` applies at coordinate `c`.
  [[nodiscard]] static bool rule_valid(const ShiftRule& rule,
                                       Coord c) noexcept {
    return c.x >= rule.xlo && c.x <= rule.xhi && c.y >= rule.ylo &&
           c.y <= rule.yhi && c.z >= rule.zlo && c.z <= rule.zhi &&
           (rule.parity < 0 || ((c.x + c.y) & 1) == rule.parity);
  }

 private:
  ImplicitLattice(std::string family, int m, int n, int l, Meters spacing,
                  int full_degree, bool wrapped, Meters range_override,
                  std::vector<ShiftRule> rules);

  std::string family_;
  int m_ = 1;
  int n_ = 1;
  int l_ = 1;
  Meters spacing_ = 0.5;
  int full_degree_ = 0;
  bool wrapped_ = false;
  /// > 0 on tori: the uniform tx range the materialized constructor
  /// installs with override_tx_range (planar wrap links would otherwise
  /// bill for the whole plane).
  Meters range_override_ = 0.0;
  std::size_t num_nodes_ = 1;
  std::vector<ShiftRule> rules_;
};

}  // namespace wsn
