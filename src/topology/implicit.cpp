#include "topology/implicit.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace wsn {

namespace {

/// Interior step ranges for a ±1 move along an axis of size `extent`:
/// lo/hi such that the move stays on the grid.
struct AxisRange {
  int lo;
  int hi;
};
AxisRange axis_range(int step, int extent) noexcept {
  if (step > 0) return {1, extent - 1};
  if (step < 0) return {2, extent};
  return {1, extent};
}

}  // namespace

ImplicitLattice::ImplicitLattice(std::string family, int m, int n, int l,
                                 Meters spacing, int full_degree,
                                 bool wrapped, Meters range_override,
                                 std::vector<ShiftRule> rules)
    : family_(std::move(family)),
      m_(m),
      n_(n),
      l_(l),
      spacing_(spacing),
      full_degree_(full_degree),
      wrapped_(wrapped),
      range_override_(range_override),
      num_nodes_(static_cast<std::size_t>(m) * static_cast<std::size_t>(n) *
                 static_cast<std::size_t>(l)),
      rules_(std::move(rules)) {
  WSN_EXPECTS(m >= 1 && n >= 1 && l >= 1);
  WSN_EXPECTS(spacing > 0.0);
  // NodeId is 32-bit; the id space caps the lattice (ROADMAP targets
  // 10⁶–10⁷, far below).
  WSN_EXPECTS(num_nodes_ <= static_cast<std::size_t>(kInvalidNode));
}

ImplicitLattice ImplicitLattice::mesh2d4(int m, int n, Meters spacing) {
  std::vector<ShiftRule> rules;
  for (const int dx : {-1, 1}) {
    const AxisRange r = axis_range(dx, m);
    rules.push_back({dx, r.lo, r.hi, 1, n, 1, 1, -1});
  }
  for (const int dy : {-1, 1}) {
    const AxisRange r = axis_range(dy, n);
    rules.push_back({static_cast<std::int64_t>(dy) * m, 1, m, r.lo, r.hi, 1,
                     1, -1});
  }
  return {"2D-4", m, n, 1, spacing, 4, false, 0.0, std::move(rules)};
}

ImplicitLattice ImplicitLattice::mesh2d8(int m, int n, Meters spacing) {
  std::vector<ShiftRule> rules;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const AxisRange rx = axis_range(dx, m);
      const AxisRange ry = axis_range(dy, n);
      rules.push_back({static_cast<std::int64_t>(dy) * m + dx, rx.lo, rx.hi,
                       ry.lo, ry.hi, 1, 1, -1});
    }
  }
  return {"2D-8", m, n, 1, spacing, 8, false, 0.0, std::move(rules)};
}

ImplicitLattice ImplicitLattice::mesh2d3(int m, int n, Meters spacing) {
  std::vector<ShiftRule> rules;
  for (const int dx : {-1, 1}) {
    const AxisRange r = axis_range(dx, m);
    rules.push_back({dx, r.lo, r.hi, 1, n, 1, 1, -1});
  }
  // The brick wall's single vertical link: up when x + y is even
  // (geometry/region.h brick_has_up), down when odd.
  rules.push_back({static_cast<std::int64_t>(m), 1, m, 1, n - 1, 1, 1, 0});
  rules.push_back({-static_cast<std::int64_t>(m), 1, m, 2, n, 1, 1, 1});
  return {"2D-3", m, n, 1, spacing, 3, false, 0.0, std::move(rules)};
}

ImplicitLattice ImplicitLattice::mesh3d6(int m, int n, int l,
                                         Meters spacing) {
  const std::int64_t plane = static_cast<std::int64_t>(m) * n;
  std::vector<ShiftRule> rules;
  for (const int dx : {-1, 1}) {
    const AxisRange r = axis_range(dx, m);
    rules.push_back({dx, r.lo, r.hi, 1, n, 1, l, -1});
  }
  for (const int dy : {-1, 1}) {
    const AxisRange r = axis_range(dy, n);
    rules.push_back({static_cast<std::int64_t>(dy) * m, 1, m, r.lo, r.hi, 1,
                     l, -1});
  }
  for (const int dz : {-1, 1}) {
    const AxisRange r = axis_range(dz, l);
    rules.push_back({dz * plane, 1, m, 1, n, r.lo, r.hi, -1});
  }
  return {"3D-6", m, n, l, spacing, 6, false, 0.0, std::move(rules)};
}

ImplicitLattice ImplicitLattice::torus2d4(int m, int n, Meters spacing) {
  WSN_EXPECTS(m >= 3 && n >= 3);  // keep wrap links distinct per direction
  std::vector<ShiftRule> rules;
  for (const int dx : {-1, 1}) {
    const AxisRange r = axis_range(dx, m);
    rules.push_back({dx, r.lo, r.hi, 1, n, 1, 1, -1});
    // Wrap: x == m steps to x == 1 (delta 1 - m) and vice versa.
    const int edge = dx > 0 ? m : 1;
    rules.push_back({static_cast<std::int64_t>(dx) * (1 - m), edge, edge, 1,
                     n, 1, 1, -1});
  }
  for (const int dy : {-1, 1}) {
    const AxisRange r = axis_range(dy, n);
    rules.push_back({static_cast<std::int64_t>(dy) * m, 1, m, r.lo, r.hi, 1,
                     1, -1});
    const int edge = dy > 0 ? n : 1;
    rules.push_back({static_cast<std::int64_t>(dy) * (1 - n) * m, 1, m, edge,
                     edge, 1, 1, -1});
  }
  return {"2D-4T", m, n, 1, spacing, 4, true, spacing, std::move(rules)};
}

ImplicitLattice ImplicitLattice::torus2d8(int m, int n, Meters spacing) {
  WSN_EXPECTS(m >= 3 && n >= 3);
  std::vector<ShiftRule> rules;
  // Every (dx, dy) direction splits into up to four rules: x interior or
  // wrapped × y interior or wrapped, each a pure coordinate-range test.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      struct Part {
        std::int64_t delta;
        int lo;
        int hi;
      };
      std::vector<Part> xs;
      std::vector<Part> ys;
      const AxisRange rx = axis_range(dx, m);
      xs.push_back({dx, rx.lo, rx.hi});
      if (dx != 0) {
        const int edge = dx > 0 ? m : 1;
        xs.push_back({static_cast<std::int64_t>(dx) * (1 - m), edge, edge});
      }
      const AxisRange ry = axis_range(dy, n);
      ys.push_back({static_cast<std::int64_t>(dy) * m, ry.lo, ry.hi});
      if (dy != 0) {
        const int edge = dy > 0 ? n : 1;
        ys.push_back(
            {static_cast<std::int64_t>(dy) * (1 - n) * m, edge, edge});
      }
      for (const Part& px : xs) {
        for (const Part& py : ys) {
          rules.push_back({px.delta + py.delta, px.lo, px.hi, py.lo, py.hi,
                           1, 1, -1});
        }
      }
    }
  }
  return {"2D-8T", m, n, 1, spacing, 8, true, spacing * std::sqrt(2.0),
          std::move(rules)};
}

ImplicitLattice ImplicitLattice::make(std::string_view family, int m, int n,
                                      int l, Meters spacing) {
  if (family == "2D-3") return mesh2d3(m, n, spacing);
  if (family == "2D-4") return mesh2d4(m, n, spacing);
  if (family == "2D-8") return mesh2d8(m, n, spacing);
  if (family == "3D-6") return mesh3d6(m, n, l, spacing);
  WSN_EXPECTS(false && "no implicit lattice for this family");
  return mesh2d4(m, n, spacing);
}

std::string ImplicitLattice::name() const {
  // Tori tag their family "2D-4T"/"2D-8T" but name themselves with the
  // planar family, matching Torus2D4/Torus2D8.
  std::string out = wrapped_ ? family_.substr(0, family_.size() - 1)
                             : family_;
  out += wrapped_ ? " torus " : " mesh ";
  out += std::to_string(m_);
  out += "x";
  out += std::to_string(n_);
  if (family_ == "3D-6") {
    out += "x";
    out += std::to_string(l_);
  }
  return out;
}

ImplicitLattice::Coord ImplicitLattice::to_coord(NodeId id) const noexcept {
  WSN_ASSERT(id < num_nodes_);
  const auto idx = static_cast<std::int64_t>(id);
  const std::int64_t plane = static_cast<std::int64_t>(m_) * n_;
  return {static_cast<int>(idx % m_) + 1,
          static_cast<int>((idx / m_) % n_) + 1,
          static_cast<int>(idx / plane) + 1};
}

NodeId ImplicitLattice::to_id(Coord c) const noexcept {
  WSN_ASSERT(c.x >= 1 && c.x <= m_ && c.y >= 1 && c.y <= n_ && c.z >= 1 &&
             c.z <= l_);
  const std::int64_t plane = static_cast<std::int64_t>(m_) * n_;
  return static_cast<NodeId>((c.z - 1) * plane +
                             static_cast<std::int64_t>(c.y - 1) * m_ +
                             (c.x - 1));
}

std::array<Meters, 3> ImplicitLattice::position(NodeId id) const noexcept {
  const Coord c = to_coord(id);
  return {static_cast<Meters>(c.x - 1) * spacing_,
          static_cast<Meters>(c.y - 1) * spacing_,
          static_cast<Meters>(c.z - 1) * spacing_};
}

ImplicitLattice::NeighborSet ImplicitLattice::neighbors(
    NodeId id) const noexcept {
  const Coord c = to_coord(id);
  NeighborSet out;
  for (const ShiftRule& rule : rules_) {
    if (!rule_valid(rule, c)) continue;
    WSN_ASSERT(out.count_ < out.ids_.size());
    out.ids_[out.count_++] = static_cast<NodeId>(
        static_cast<std::int64_t>(id) + rule.delta);
  }
  std::sort(out.ids_.begin(), out.ids_.begin() + out.count_);
  return out;
}

bool ImplicitLattice::adjacent(NodeId a, NodeId b) const noexcept {
  const NeighborSet set = neighbors(a);
  return std::find(set.begin(), set.end(), b) != set.end();
}

Meters ImplicitLattice::distance(NodeId a, NodeId b) const noexcept {
  const std::array<Meters, 3> pa = position(a);
  const std::array<Meters, 3> pb = position(b);
  const double dx = pa[0] - pb[0];
  const double dy = pa[1] - pb[1];
  const double dz = pa[2] - pb[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

Meters ImplicitLattice::tx_range(NodeId id) const noexcept {
  if (range_override_ > 0.0) return range_override_;
  Meters range = 0.0;
  for (const NodeId u : neighbors(id)) {
    range = std::max(range, distance(id, u));
  }
  return range;
}

}  // namespace wsn
