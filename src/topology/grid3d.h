#pragma once

#include <array>
#include <cstdint>

#include "common/assert.h"
#include "common/types.h"
#include "geometry/vec3.h"

/// Mapping between 1-based 3D grid coordinates and dense NodeIds for an
/// m×n×l mesh with uniform spacing; ids are plane-major then row-major:
/// id = (z-1)·m·n + (y-1)·m + (x-1).
namespace wsn {

class Grid3D {
 public:
  Grid3D(int m, int n, int l, Meters spacing) noexcept
      : m_(m), n_(n), l_(l), spacing_(spacing) {
    WSN_EXPECTS(m >= 1 && n >= 1 && l >= 1);
    WSN_EXPECTS(spacing > 0.0);
  }

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int l() const noexcept { return l_; }
  [[nodiscard]] Meters spacing() const noexcept { return spacing_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return static_cast<std::size_t>(m_) * static_cast<std::size_t>(n_) *
           static_cast<std::size_t>(l_);
  }
  [[nodiscard]] std::size_t plane_size() const noexcept {
    return static_cast<std::size_t>(m_) * static_cast<std::size_t>(n_);
  }

  [[nodiscard]] bool contains(Vec3 v) const noexcept {
    return v.x >= 1 && v.x <= m_ && v.y >= 1 && v.y <= n_ && v.z >= 1 &&
           v.z <= l_;
  }

  [[nodiscard]] NodeId to_id(Vec3 v) const noexcept {
    WSN_EXPECTS(contains(v));
    // 64-bit on purpose: NodeId covers grids past 2^31 nodes and the int
    // plane product overflows there (caught by the BigGrid tests).
    return static_cast<NodeId>(
        (static_cast<std::int64_t>(v.z - 1) * n_ + (v.y - 1)) * m_ +
        (v.x - 1));
  }

  [[nodiscard]] Vec3 to_coord(NodeId id) const noexcept {
    WSN_EXPECTS(id < num_nodes());
    const auto idx = static_cast<std::int64_t>(id);
    const std::int64_t plane = static_cast<std::int64_t>(m_) * n_;
    return {static_cast<int>(idx % m_) + 1,
            static_cast<int>((idx / m_) % n_) + 1,
            static_cast<int>(idx / plane) + 1};
  }

  [[nodiscard]] std::array<Meters, 3> position(Vec3 v) const noexcept {
    return {static_cast<Meters>(v.x - 1) * spacing_,
            static_cast<Meters>(v.y - 1) * spacing_,
            static_cast<Meters>(v.z - 1) * spacing_};
  }

 private:
  int m_;
  int n_;
  int l_;
  Meters spacing_;
};

}  // namespace wsn
