#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "topology/topology.h"

/// Construction helpers shared by the examples, tests and bench harness.
namespace wsn {

/// The paper's evaluation configuration (§4): 512 nodes as a 32×16 2D mesh
/// or an 8×8×8 3D mesh, 0.5 m spacing, 512-bit packets.
struct PaperConfig {
  static constexpr int kMesh2dM = 32;
  static constexpr int kMesh2dN = 16;
  static constexpr int kMesh3d = 8;
  static constexpr Meters kSpacing = 0.5;
  static constexpr std::size_t kPacketBits = 512;
  static constexpr std::size_t kNumNodes = 512;
};

/// The four regular families, in the paper's table order.
[[nodiscard]] const std::vector<std::string>& regular_families();

/// Builds the paper-sized instance of `family` ("2D-3", "2D-4", "2D-8",
/// "3D-6").  Aborts on an unknown family (programming error).
[[nodiscard]] std::unique_ptr<Topology> make_paper_topology(
    std::string_view family);

/// Builds a custom-size instance: 2D families use m×n; "3D-6" uses m×n×l.
[[nodiscard]] std::unique_ptr<Topology> make_mesh(std::string_view family,
                                                  int m, int n, int l = 1,
                                                  Meters spacing = 0.5);

}  // namespace wsn
