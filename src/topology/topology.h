#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

/// Abstract network topology.
///
/// A topology owns three things the rest of the system needs:
///   * the adjacency structure (who hears whose transmissions) in CSR form,
///     built once at construction so the simulator's per-slot loop only
///     walks contiguous spans;
///   * physical node positions in meters, which the First Order Radio Model
///     turns into amplifier energy (E_amp · k · d²);
///   * each node's transmission range -- the distance to its farthest
///     neighbor, i.e. the distance the amplifier must be provisioned for.
///     In the 2D-8 mesh this is the diagonal spacing d·√2, not d (see
///     DESIGN.md §4).
///
/// Adjacency is symmetric (the paper assumes a symmetric radio channel,
/// §2) and irreflexive; derived constructors must provide it that way and
/// the base class verifies in debug-style contract checks.
namespace wsn {

class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.size() - 1;
  }

  /// Neighbors of `id`, sorted ascending (deterministic iteration order).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const noexcept {
    const std::size_t lo = offsets_[id];
    const std::size_t hi = offsets_[id + 1];
    return {flat_.data() + lo, hi - lo};
  }

  [[nodiscard]] std::size_t degree(NodeId id) const noexcept {
    return offsets_[id + 1] - offsets_[id];
  }

  /// True if `a` and `b` are adjacent (binary search over `a`'s span).
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const noexcept;

  /// Position in meters; z is 0 for 2D topologies.
  [[nodiscard]] std::array<Meters, 3> position(NodeId id) const noexcept {
    return positions_[id];
  }

  /// Euclidean distance between two nodes, in meters.
  [[nodiscard]] Meters distance(NodeId a, NodeId b) const noexcept;

  /// Distance to the farthest neighbor; what a broadcast transmission's
  /// amplifier must cover.  Zero for isolated nodes.
  [[nodiscard]] Meters tx_range(NodeId id) const noexcept {
    return tx_range_[id];
  }

  /// Total number of directed (transmitter, hearer) pairs = Σ degree.
  [[nodiscard]] std::size_t num_directed_links() const noexcept {
    return flat_.size();
  }

  /// Position of the directed link `a -> b` in the CSR arrays (the index
  /// usable against a per-link annotation vector), or `kNoLink` when the
  /// nodes are not adjacent.
  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t link_index(NodeId a, NodeId b) const noexcept;

  // --- per-link quality -------------------------------------------------
  //
  // The paper's medium is perfect; real deployments are not.  A topology
  // may carry one delivery probability per *directed* CSR link (ETX-style
  // link quality, learned from probe rounds or derived from a fault
  // model's stationary loss).  The annotation is optional and inert: the
  // simulator never consults it -- losses come from FaultModel -- but the
  // ETX relay planner (protocol/etx_planner.h) plans by it.

  /// True when `set_link_quality` installed per-link delivery
  /// probabilities.
  [[nodiscard]] bool has_link_quality() const noexcept {
    return !link_quality_.empty();
  }

  /// Installs per-directed-link delivery probabilities, aligned with the
  /// CSR order (`quality[link_index(a, b)]` is a -> b's probability).
  /// Values must lie in (0, 1].  Not thread-safe: annotate before sharing
  /// the topology across workers (JobMatrix topologies stay unannotated;
  /// concurrent jobs pass per-job quality spans to the planner instead).
  void set_link_quality(std::vector<double> quality);

  /// Removes the annotation; the topology reads as perfect again.
  void clear_link_quality() noexcept { link_quality_.clear(); }

  /// Delivery probability of the directed link `a -> b`; 1.0 when no
  /// quality is installed.  `a` and `b` must be adjacent.
  [[nodiscard]] double link_delivery(NodeId a, NodeId b) const noexcept;

  /// ETX of the directed link `a -> b`: expected transmissions until one
  /// delivery, 1 / delivery probability.  1.0 on a perfect link.
  [[nodiscard]] double link_etx(NodeId a, NodeId b) const noexcept {
    return 1.0 / link_delivery(a, b);
  }

  /// The whole annotation in CSR order; empty when perfect.
  [[nodiscard]] std::span<const double> link_quality() const noexcept {
    return link_quality_;
  }

  /// The degree of an interior node ("the maximum number of directly
  /// connective nodes", paper §2): 3, 4, 8 or 6 for the regular meshes.
  [[nodiscard]] virtual int full_degree() const noexcept = 0;

  /// Human-readable name, e.g. "2D-4 mesh 32x16".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Short topology-family tag used in reports: "2D-3", "2D-4", "2D-8",
  /// "3D-6" or "random".
  [[nodiscard]] virtual std::string family() const = 0;

 protected:
  Topology() = default;

  /// Builds the CSR structure.  `adjacency[v]` lists v's neighbors in any
  /// order (they get sorted); `positions[v]` is v's location in meters.
  /// Validates symmetry and irreflexivity.
  void build(const std::vector<std::vector<NodeId>>& adjacency,
             std::vector<std::array<Meters, 3>> positions);

  /// Overrides every node's transmission range with `range`.  For wrapped
  /// topologies (tori) the planar embedding makes wrap-around links look
  /// like full-plane jumps; their true link metric is uniform, and the
  /// derived constructor states it explicitly with this call (after
  /// build()).
  void override_tx_range(Meters range);

 private:
  std::vector<std::size_t> offsets_{0};
  std::vector<NodeId> flat_;
  std::vector<std::array<Meters, 3>> positions_;
  std::vector<Meters> tx_range_;
  std::vector<double> link_quality_;  // empty = perfect medium
};

}  // namespace wsn
