#include "sim/stats.h"

#include "common/string_util.h"

namespace wsn {

std::string BroadcastStats::summary() const {
  std::string out;
  out += "tx=" + std::to_string(tx);
  out += " rx=" + std::to_string(rx);
  out += " dup=" + std::to_string(duplicates);
  out += " coll=" + std::to_string(collisions);
  // Fault-injection counters only when present, so fault-free output is
  // byte-identical to the pre-fault-subsystem format.
  if (lost_to_fading + lost_to_crash > 0) {
    out += " fade=" + std::to_string(lost_to_fading);
    out += " crash=" + std::to_string(lost_to_crash);
  }
  out += " delay=" + std::to_string(delay);
  out += " energy=" + sci(total_energy()) + "J";
  out += " reach=" + fixed(100.0 * reachability(), 1) + "%";
  return out;
}

}  // namespace wsn
