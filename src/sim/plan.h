#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

/// The simulator's input language: a relay plan.
///
/// Every broadcasting protocol in this library -- the paper's four mesh
/// protocols as well as the flooding/gossip baselines -- compiles to the
/// same representation: for each node, the list of *offsets* (in slots,
/// ≥ 1) after its first successful reception at which it transmits.
///
///   * not a relay                -> {}
///   * plain relay                -> {1}        (forward in the next slot)
///   * relay that retransmits     -> {1, 2}     (paper: "retransmit the
///                                               collided message in next
///                                               time slot")
///   * delayed z-relay (3D-6)     -> {2} or {3} (paper §3.4 staggering)
///
/// The source's offsets are interpreted relative to slot 0, so its default
/// {1} means "transmit in slot 1", matching the sequence numbers of the
/// paper's figures.
///
/// Keeping the plan purely data -- no callbacks -- is what makes the
/// deterministic collision-repair resolver possible: it can append repair
/// offsets and re-simulate without touching protocol code.
namespace wsn {

struct RelayPlan {
  NodeId source = kInvalidNode;
  /// tx_offsets[v] = slots after v's first reception at which v transmits.
  /// Offsets must be ≥ 1 and strictly increasing.
  std::vector<std::vector<Slot>> tx_offsets;

  /// An empty plan for `count` nodes with the source transmitting at slot 1.
  static RelayPlan empty(std::size_t count, NodeId source) {
    WSN_EXPECTS(source < count);
    RelayPlan plan;
    plan.source = source;
    plan.tx_offsets.assign(count, {});
    plan.tx_offsets[source] = {1};
    return plan;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return tx_offsets.size();
  }

  [[nodiscard]] bool is_relay(NodeId v) const noexcept {
    return !tx_offsets[v].empty();
  }

  /// Number of relays (nodes with at least one scheduled transmission).
  [[nodiscard]] std::size_t relay_count() const noexcept {
    std::size_t count = 0;
    for (const auto& offsets : tx_offsets) {
      if (!offsets.empty()) ++count;
    }
    return count;
  }

  /// Nodes scheduled to transmit more than once (the paper's gray nodes).
  [[nodiscard]] std::vector<NodeId> retransmitters() const {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < tx_offsets.size(); ++v) {
      if (tx_offsets[v].size() > 1) out.push_back(v);
    }
    return out;
  }

  /// Planned transmission count assuming every relay gets the message
  /// (= Σ offsets sizes).  The simulator's actual Tx equals this whenever
  /// reachability is 100%.
  [[nodiscard]] std::size_t planned_tx() const noexcept {
    std::size_t count = 0;
    for (const auto& offsets : tx_offsets) count += offsets.size();
    return count;
  }

  /// Contract check used by tests and the simulator: offsets ≥ 1, strictly
  /// increasing, source is a relay.
  void validate() const {
    WSN_EXPECTS(source < num_nodes());
    WSN_EXPECTS(is_relay(source));
    for (const auto& offsets : tx_offsets) {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        WSN_EXPECTS(offsets[i] >= 1);
        WSN_EXPECTS(i == 0 || offsets[i] > offsets[i - 1]);
      }
    }
  }
};

/// The same plan in CSR form: one starts array, one offsets array, three
/// allocations total regardless of relay count.
///
/// RelayPlan's vector-of-vectors is the right shape for *construction* --
/// protocols push offsets node by node, the resolver appends repairs --
/// but a terrible shape for a cache: rebuilding it from a disk artifact
/// costs one heap allocation per relay, which dominates a warm plan-store
/// load.  FlatRelayPlan is the at-rest/simulation form: the plan store
/// deserializes straight into it, the simulator runs straight off it
/// (`Simulator::run` takes either form), and the two convert losslessly.
class FlatRelayPlan {
 public:
  FlatRelayPlan() = default;

  /// Flattens a (valid) RelayPlan.
  static FlatRelayPlan from(const RelayPlan& plan) {
    FlatRelayPlan flat;
    flat.source_ = plan.source;
    flat.starts_.reserve(plan.num_nodes() + 1);
    flat.starts_.push_back(0);
    std::size_t total = 0;
    for (const auto& offsets : plan.tx_offsets) total += offsets.size();
    flat.offsets_.reserve(total);
    for (const auto& offsets : plan.tx_offsets) {
      flat.offsets_.insert(flat.offsets_.end(), offsets.begin(),
                           offsets.end());
      flat.starts_.push_back(static_cast<std::uint32_t>(
          flat.offsets_.size()));
    }
    return flat;
  }

  /// Wraps already-flattened parts.  `starts` has num_nodes + 1 entries
  /// with starts[0] == 0; the parts must satisfy the RelayPlan contract
  /// (validate() aborts otherwise -- pre-validate untrusted input).
  static FlatRelayPlan adopt(NodeId source,
                             std::vector<std::uint32_t> starts,
                             std::vector<Slot> offsets) {
    FlatRelayPlan flat;
    flat.source_ = source;
    flat.starts_ = std::move(starts);
    flat.offsets_ = std::move(offsets);
    return flat;
  }

  /// Expands back into the construction-friendly form.
  [[nodiscard]] RelayPlan to_relay_plan() const {
    RelayPlan plan;
    plan.source = source_;
    plan.tx_offsets.resize(num_nodes());
    for (NodeId v = 0; v < num_nodes(); ++v) {
      const std::span<const Slot> span = offsets(v);
      plan.tx_offsets[v].assign(span.begin(), span.end());
    }
    return plan;
  }

  [[nodiscard]] NodeId source() const noexcept { return source_; }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }

  [[nodiscard]] std::span<const Slot> offsets(NodeId v) const noexcept {
    return {offsets_.data() + starts_[v], starts_[v + 1] - starts_[v]};
  }

  [[nodiscard]] bool is_relay(NodeId v) const noexcept {
    return starts_[v + 1] > starts_[v];
  }

  [[nodiscard]] std::size_t total_offsets() const noexcept {
    return offsets_.size();
  }

  /// Same contract as RelayPlan::validate(), plus CSR well-formedness.
  void validate() const {
    WSN_EXPECTS(!starts_.empty() && starts_.front() == 0);
    WSN_EXPECTS(starts_.back() == offsets_.size());
    WSN_EXPECTS(source_ < num_nodes());
    WSN_EXPECTS(is_relay(source_));
    for (NodeId v = 0; v < num_nodes(); ++v) {
      WSN_EXPECTS(starts_[v] <= starts_[v + 1]);
      const std::span<const Slot> span = offsets(v);
      for (std::size_t i = 0; i < span.size(); ++i) {
        WSN_EXPECTS(span[i] >= 1);
        WSN_EXPECTS(i == 0 || span[i] > span[i - 1]);
      }
    }
  }

 private:
  NodeId source_ = kInvalidNode;
  std::vector<std::uint32_t> starts_;
  std::vector<Slot> offsets_;
};

/// Uniform plan access for code generic over both representations
/// (sim/simulator.cpp's slot loop is instantiated for each).
[[nodiscard]] inline NodeId plan_source(const RelayPlan& plan) noexcept {
  return plan.source;
}
[[nodiscard]] inline NodeId plan_source(const FlatRelayPlan& plan) noexcept {
  return plan.source();
}
[[nodiscard]] inline std::span<const Slot> plan_offsets(
    const RelayPlan& plan, NodeId v) noexcept {
  return plan.tx_offsets[v];
}
[[nodiscard]] inline std::span<const Slot> plan_offsets(
    const FlatRelayPlan& plan, NodeId v) noexcept {
  return plan.offsets(v);
}

}  // namespace wsn
