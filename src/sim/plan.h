#pragma once

#include <vector>

#include "common/assert.h"
#include "common/types.h"

/// The simulator's input language: a relay plan.
///
/// Every broadcasting protocol in this library -- the paper's four mesh
/// protocols as well as the flooding/gossip baselines -- compiles to the
/// same representation: for each node, the list of *offsets* (in slots,
/// ≥ 1) after its first successful reception at which it transmits.
///
///   * not a relay                -> {}
///   * plain relay                -> {1}        (forward in the next slot)
///   * relay that retransmits     -> {1, 2}     (paper: "retransmit the
///                                               collided message in next
///                                               time slot")
///   * delayed z-relay (3D-6)     -> {2} or {3} (paper §3.4 staggering)
///
/// The source's offsets are interpreted relative to slot 0, so its default
/// {1} means "transmit in slot 1", matching the sequence numbers of the
/// paper's figures.
///
/// Keeping the plan purely data -- no callbacks -- is what makes the
/// deterministic collision-repair resolver possible: it can append repair
/// offsets and re-simulate without touching protocol code.
namespace wsn {

struct RelayPlan {
  NodeId source = kInvalidNode;
  /// tx_offsets[v] = slots after v's first reception at which v transmits.
  /// Offsets must be ≥ 1 and strictly increasing.
  std::vector<std::vector<Slot>> tx_offsets;

  /// An empty plan for `count` nodes with the source transmitting at slot 1.
  static RelayPlan empty(std::size_t count, NodeId source) {
    WSN_EXPECTS(source < count);
    RelayPlan plan;
    plan.source = source;
    plan.tx_offsets.assign(count, {});
    plan.tx_offsets[source] = {1};
    return plan;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return tx_offsets.size();
  }

  [[nodiscard]] bool is_relay(NodeId v) const noexcept {
    return !tx_offsets[v].empty();
  }

  /// Number of relays (nodes with at least one scheduled transmission).
  [[nodiscard]] std::size_t relay_count() const noexcept {
    std::size_t count = 0;
    for (const auto& offsets : tx_offsets) {
      if (!offsets.empty()) ++count;
    }
    return count;
  }

  /// Nodes scheduled to transmit more than once (the paper's gray nodes).
  [[nodiscard]] std::vector<NodeId> retransmitters() const {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < tx_offsets.size(); ++v) {
      if (tx_offsets[v].size() > 1) out.push_back(v);
    }
    return out;
  }

  /// Planned transmission count assuming every relay gets the message
  /// (= Σ offsets sizes).  The simulator's actual Tx equals this whenever
  /// reachability is 100%.
  [[nodiscard]] std::size_t planned_tx() const noexcept {
    std::size_t count = 0;
    for (const auto& offsets : tx_offsets) count += offsets.size();
    return count;
  }

  /// Contract check used by tests and the simulator: offsets ≥ 1, strictly
  /// increasing, source is a relay.
  void validate() const {
    WSN_EXPECTS(source < num_nodes());
    WSN_EXPECTS(is_relay(source));
    for (const auto& offsets : tx_offsets) {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        WSN_EXPECTS(offsets[i] >= 1);
        WSN_EXPECTS(i == 0 || offsets[i] > offsets[i - 1]);
      }
    }
  }
};

}  // namespace wsn
