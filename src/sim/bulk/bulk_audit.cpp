#include "sim/bulk/bulk_audit.h"

#include <algorithm>

#include "common/assert.h"

namespace wsn {

BulkAuditReport audit_bulk_outcome(const ImplicitLattice& lat,
                                   const BroadcastOutcome& outcome,
                                   NodeId source,
                                   std::size_t sample_stride) {
  WSN_EXPECTS(outcome.first_rx.size() == lat.num_nodes());
  WSN_EXPECTS(source < lat.num_nodes());

  BulkAuditReport report;
  report.nodes = lat.num_nodes();
  report.reached = outcome.stats.reached;
  report.transmissions = outcome.transmissions.size();

  // Relay-mean ETR in exact integer arithmetic: fresh/degree accumulated
  // in units of 1/840 (lcm of every lattice degree <= 8), one division at
  // the very end.  This makes the mean comparable bit-for-bit against
  // closed-form models using the same accumulation.
  std::uint64_t acc = 0;
  std::size_t relays = 0;
  for (const TxRecord& rec : outcome.transmissions) {
    report.fresh_total += rec.fresh;
    if (rec.node == source) continue;
    const std::size_t deg = lat.degree(rec.node);
    WSN_ASSERT(deg >= 1 && deg <= 8);
    acc += rec.fresh * (840u / static_cast<std::uint64_t>(deg));
    relays += 1;
  }
  if (relays > 0) {
    report.relay_mean_etr = (static_cast<double>(acc) / 840.0) /
                            static_cast<double>(relays);
  }

  const std::size_t stride = std::max<std::size_t>(1, sample_stride);
  for (std::size_t v = 0; v < lat.num_nodes(); v += stride) {
    report.sampled += 1;
    if (outcome.first_rx[v] == kNeverSlot) report.sampled_unreached += 1;
  }
  return report;
}

}  // namespace wsn
