#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/implicit.h"

/// Bulk broadcast engine: the slot loop restructured as structure-of-arrays
/// passes over uint64 bitset words, driven by an ImplicitLattice's shift
/// rules instead of a materialized adjacency.
///
/// The reference simulator walks per-node adjacency spans -- O(Σ degree)
/// pointer-chasing per slot with per-node branching.  At 10⁶–10⁷ nodes that
/// is both too slow and too much memory (the CSR alone).  Here node state
/// lives in bit vectors:
///
///   * T      -- transmitting this slot
///   * R      -- has received (the reached set)
///   * ones/twos -- a 2-bit saturating per-node hearer counter, built by
///     SWAR adds of shift(T & rule_mask, delta) one shift rule at a time
///
/// and a slot becomes a handful of word-at-a-time passes touching only the
/// words near the frontier: exactly-one-hearer nodes are ones & ~twos & ~T
/// (half-duplex excluded), collisions popcount(twos & ~T), fresh coverage
/// rx & ~R -- no per-node branching anywhere in the counting.
///
/// Semantics contract: `run` returns a BroadcastOutcome *bit-identical* to
/// `Simulator::run` on the materialized topology of the same family/dims --
/// every stats counter, every TxRecord, every first_rx slot, and the energy
/// doubles (transmitter accounting walks slot-ascending then id-ascending,
/// replaying the reference accumulation order exactly).  The cross-check
/// tests (tests/test_bulk_simulator.cpp) hold this on all four paper
/// topologies at paper dims and on the tori.
///
/// Scope: the perfect-medium fast path.  Options that need per-node
/// mutable state in the medium (faults, battery, observer hooks,
/// record_collisions ordering) are rejected with a precondition -- the
/// reference engine remains the tool for those studies; the CLI validates
/// and reports the incompatibility before building anything big.
namespace wsn {

/// Progress snapshot delivered to a BulkSimulator progress callback.
/// Everything is observed *after* the reported slot finished.
struct BulkProgress {
  Slot slot = 0;               // the slot that just completed
  std::uint64_t slots_done = 0;  // non-empty slots processed so far
  std::size_t frontier = 0;    // transmitters in that slot
  std::size_t reached = 0;     // nodes covered so far (popcount of R)
  std::size_t total_nodes = 0;
  double elapsed_s = 0.0;      // wall time since run() started
};

using BulkProgressFn = std::function<void(const BulkProgress&)>;

class BulkSimulator {
 public:
  BulkSimulator() = default;
  /// Pre-sizes the scratch for `num_nodes`-node lattices.
  explicit BulkSimulator(std::size_t num_nodes);

  /// True when `options` stays on the bulk engine's supported surface;
  /// `why`, when non-null, receives a human-readable reason otherwise.
  [[nodiscard]] static bool options_supported(const SimOptions& options,
                                              std::string* why = nullptr);

  [[nodiscard]] BroadcastOutcome run(const ImplicitLattice& lat,
                                     const RelayPlan& plan,
                                     const SimOptions& options = {});
  [[nodiscard]] BroadcastOutcome run(const ImplicitLattice& lat,
                                     const FlatRelayPlan& plan,
                                     const SimOptions& options = {});

  /// Observes long runs without touching the kernel: `fn` is invoked
  /// every `every_slots` completed slots and once more when the run
  /// ends.  Observation only -- the outcome stays bit-identical to an
  /// uninstrumented run (the reached popcount reads R, it never writes).
  /// Pass a null fn to detach.  The callback runs on the simulating
  /// thread; keep it cheap.
  void set_progress(BulkProgressFn fn, std::uint64_t every_slots = 64);

 private:
  template <typename PlanT>
  BroadcastOutcome run_impl(const ImplicitLattice& lat, const PlanT& plan,
                            const SimOptions& options);

  /// (Re)builds the per-rule validity bitmasks; cached across runs keyed
  /// on the lattice identity, so resolver-style repeated runs pay once.
  void build_masks(const ImplicitLattice& lat);

  std::size_t words_ = 0;
  std::string mask_key_;               // lattice name; "" = masks invalid
  std::vector<std::uint64_t> masks_;   // rules × words_, rule-major
  std::vector<std::uint64_t> transmitting_;
  std::vector<std::uint64_t> ones_;
  std::vector<std::uint64_t> twos_;
  std::vector<std::uint64_t> received_;
  std::vector<std::uint32_t> record_of_;  // transmitter -> tx index (per slot)
  std::vector<std::uint32_t> touched_words_;
  std::map<Slot, std::vector<NodeId>> schedule_;
  BulkProgressFn progress_;
  std::uint64_t progress_every_ = 64;
};

/// Stateless convenience over a fresh BulkSimulator (mirrors
/// simulate_broadcast); hot loops keep a BulkSimulator for its scratch.
[[nodiscard]] BroadcastOutcome bulk_simulate(const ImplicitLattice& lat,
                                             const RelayPlan& plan,
                                             const SimOptions& options = {});

}  // namespace wsn
