#include "sim/bulk/bulk_simulator.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/assert.h"
#include "obs/profile.h"

namespace wsn {

namespace {

constexpr std::size_t kWordBits = 64;

inline std::size_t word_count(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

inline void set_bit(std::vector<std::uint64_t>& words,
                    std::size_t bit) noexcept {
  words[bit / kWordBits] |= std::uint64_t{1} << (bit % kWordBits);
}

inline void clear_bit(std::vector<std::uint64_t>& words,
                      std::size_t bit) noexcept {
  words[bit / kWordBits] &= ~(std::uint64_t{1} << (bit % kWordBits));
}

inline bool test_bit(const std::vector<std::uint64_t>& words,
                     std::size_t bit) noexcept {
  return (words[bit / kWordBits] >> (bit % kWordBits)) & 1u;
}

/// Sets bits [lo, hi] (inclusive), optionally only every second bit
/// starting at lo (the 2D-3 parity mask).
void set_bit_range(std::vector<std::uint64_t>& words, std::size_t lo,
                   std::size_t hi, bool strided) {
  if (strided) {
    // Alternating bits: 0x5555… anchored so bit `lo` is set.
    constexpr std::uint64_t kEven = 0x5555555555555555ull;
    for (std::size_t w = lo / kWordBits; w <= hi / kWordBits; ++w) {
      const std::size_t base = w * kWordBits;
      std::uint64_t pattern = ((lo - base) % 2 == 0)
                                  ? kEven
                                  : ~kEven;  // phase within this word
      // `lo - base` underflows only for w > lo's word, where the phase is
      // (base - lo) % 2 -- same expression modulo 2 in unsigned arithmetic.
      std::uint64_t range = ~std::uint64_t{0};
      if (base < lo) range &= ~std::uint64_t{0} << (lo - base);
      if (base + kWordBits - 1 > hi) {
        range &= ~std::uint64_t{0} >> (base + kWordBits - 1 - hi);
      }
      words[w] |= pattern & range;
    }
    return;
  }
  for (std::size_t w = lo / kWordBits; w <= hi / kWordBits; ++w) {
    const std::size_t base = w * kWordBits;
    std::uint64_t range = ~std::uint64_t{0};
    if (base < lo) range &= ~std::uint64_t{0} << (lo - base);
    if (base + kWordBits - 1 > hi) {
      range &= ~std::uint64_t{0} >> (base + kWordBits - 1 - hi);
    }
    words[w] |= range;
  }
}

}  // namespace

BulkSimulator::BulkSimulator(std::size_t num_nodes) {
  const std::size_t words = word_count(num_nodes);
  transmitting_.reserve(words);
  ones_.reserve(words);
  twos_.reserve(words);
  received_.reserve(words);
  record_of_.reserve(num_nodes);
}

bool BulkSimulator::options_supported(const SimOptions& options,
                                      std::string* why) {
  const auto reject = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (options.faults != nullptr) {
    return reject("fault injection needs the reference engine's per-link "
                  "medium state");
  }
  if (options.battery != nullptr) {
    return reject("battery banks need the reference engine's per-node "
                  "liveness checks");
  }
  if (options.observer != nullptr) {
    return reject("per-event observation defeats the batched slot kernel; "
                  "use the reference engine for tracing");
  }
  if (options.record_collisions) {
    return reject("collision event records are ordered by the reference "
                  "engine's discovery walk; use the reference engine");
  }
  return true;
}

void BulkSimulator::build_masks(const ImplicitLattice& lat) {
  const std::string key = lat.name();
  if (key == mask_key_ && masks_.size() == lat.rules().size() * words_) {
    return;
  }
  const std::size_t m = static_cast<std::size_t>(lat.m());
  masks_.assign(lat.rules().size() * words_, 0);
  for (std::size_t r = 0; r < lat.rules().size(); ++r) {
    const ShiftRule& rule = lat.rules()[r];
    std::vector<std::uint64_t> mask(words_, 0);
    // Coordinate ranges are row-aligned: fill each valid row's [xlo, xhi]
    // span wholesale (every second bit under the 2D-3 parity constraint).
    for (int z = std::max(1, rule.zlo); z <= std::min(lat.l(), rule.zhi);
         ++z) {
      for (int y = std::max(1, rule.ylo); y <= std::min(lat.n(), rule.yhi);
           ++y) {
        int xlo = std::max(1, rule.xlo);
        const int xhi = std::min(lat.m(), rule.xhi);
        if (rule.parity >= 0) {
          // (x + y) & 1 == parity pins x's parity for this row.
          const int want = rule.parity ^ (y & 1);
          if ((xlo & 1) != want) ++xlo;
        }
        if (xlo > xhi) continue;
        const std::size_t row =
            (static_cast<std::size_t>(z - 1) *
                 static_cast<std::size_t>(lat.n()) +
             static_cast<std::size_t>(y - 1)) *
            m;
        set_bit_range(mask, row + static_cast<std::size_t>(xlo - 1),
                      row + static_cast<std::size_t>(xhi - 1),
                      rule.parity >= 0);
      }
    }
    std::copy(mask.begin(), mask.end(),
              masks_.begin() + static_cast<std::ptrdiff_t>(r * words_));
  }
  mask_key_ = key;
}

template <typename PlanT>
BroadcastOutcome BulkSimulator::run_impl(const ImplicitLattice& lat,
                                         const PlanT& plan,
                                         const SimOptions& options) {
  const std::size_t n = lat.num_nodes();
  WSN_EXPECTS(plan.num_nodes() == n);
  std::string why;
  if (!options_supported(options, &why)) {
    WSN_EXPECTS(false && "SimOptions outside the bulk engine's surface");
  }
  plan.validate();

  const std::size_t prev_words = words_;
  words_ = word_count(n);
  if (words_ != prev_words) mask_key_.clear();
  build_masks(lat);

  const NodeId source = plan_source(plan);
  BroadcastOutcome out;
  out.stats.num_nodes = n;
  out.first_rx.assign(n, kNeverSlot);
  out.first_rx[source] = 0;
  if (options.record_node_energy) out.node_energy.assign(n, 0.0);

  transmitting_.assign(words_, 0);
  ones_.assign(words_, 0);
  twos_.assign(words_, 0);
  received_.assign(words_, 0);
  record_of_.resize(n);

  const std::vector<ShiftRule>& rules = lat.rules();
  const std::size_t num_rules = rules.size();
  const Joules rx_cost = options.radio.rx_energy(options.packet_bits);

  std::map<Slot, std::vector<NodeId>>& schedule = schedule_;
  schedule.clear();
  const auto schedule_node = [&](NodeId v, Slot received_at) {
    for (const Slot offset : plan_offsets(plan, v)) {
      schedule[received_at + offset].push_back(v);
    }
  };
  schedule_node(source, 0);
  set_bit(received_, source);

  std::vector<std::uint32_t>& touched = touched_words_;
  std::vector<std::uint32_t> tx_words;

  // Progress is pure observation: it reads R and the wall clock, never
  // the kernel state, so instrumented runs stay bit-identical.
  const auto run_start = std::chrono::steady_clock::now();
  std::uint64_t slots_done = 0;
  const auto report_progress = [&](Slot slot, std::size_t frontier) {
    BulkProgress p;
    p.slot = slot;
    p.slots_done = slots_done;
    p.frontier = frontier;
    p.total_nodes = n;
    for (const std::uint64_t w : received_) {
      p.reached += static_cast<std::size_t>(std::popcount(w));
    }
    p.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - run_start)
                      .count();
    progress_(p);
  };
  Slot last_slot = 0;
  std::size_t last_frontier = 0;

  while (!schedule.empty()) {
    auto it = schedule.begin();
    const Slot slot = it->first;
    std::vector<NodeId> transmitters = std::move(it->second);
    schedule.erase(it);
    if (slot > options.max_slots) break;
    std::sort(transmitters.begin(), transmitters.end());
    if (transmitters.empty()) continue;

    // --- transmit pass: records, energy, the T frontier -----------------
    //
    // Id-ascending, exactly the reference order, so the tx_energy running
    // sum sees the same addends in the same sequence bit for bit.
    tx_words.clear();
    for (const NodeId v : transmitters) {
      set_bit(transmitting_, v);
      const std::uint32_t w = static_cast<std::uint32_t>(v / kWordBits);
      if (tx_words.empty() || tx_words.back() != w) tx_words.push_back(w);
      record_of_[v] = static_cast<std::uint32_t>(out.transmissions.size());
      out.transmissions.push_back(TxRecord{slot, v, 0, 0});
      out.stats.tx += 1;
      const Joules cost =
          options.radio.tx_energy(options.packet_bits, lat.tx_range(v));
      out.stats.tx_energy += cost;
      if (options.record_node_energy) out.node_energy[v] += cost;
    }

    // --- hearer pass: Σ_rules shift(T & mask, delta) into ones/twos -----
    touched.clear();
    for (std::size_t r = 0; r < num_rules; ++r) {
      const std::uint64_t* mask = masks_.data() + r * words_;
      const std::int64_t delta = rules[r].delta;
      for (const std::uint32_t wi : tx_words) {
        const std::uint64_t bits = transmitting_[wi] & mask[wi];
        if (bits == 0) continue;
        // Target bit of this word's bit 0 is wi·64 + delta; floor-divide
        // into a word index and an in-word shift in [0, 64).
        const std::int64_t base =
            static_cast<std::int64_t>(wi) * static_cast<std::int64_t>(
                                                kWordBits) +
            delta;
        const std::int64_t q =
            base >= 0 ? base / static_cast<std::int64_t>(kWordBits)
                      : -((-base + static_cast<std::int64_t>(kWordBits) - 1) /
                          static_cast<std::int64_t>(kWordBits));
        const std::uint64_t s = static_cast<std::uint64_t>(
            base - q * static_cast<std::int64_t>(kWordBits));
        const std::uint64_t lo_part = s == 0 ? bits : bits << s;
        const std::uint64_t hi_part = s == 0 ? 0 : bits >> (kWordBits - s);
        // All masked sources have in-range targets, so any part that falls
        // off the array is necessarily zero and safe to drop.
        if (q >= 0 && static_cast<std::size_t>(q) < words_ && lo_part != 0) {
          const auto w = static_cast<std::size_t>(q);
          twos_[w] |= ones_[w] & lo_part;
          ones_[w] ^= lo_part;
          touched.push_back(static_cast<std::uint32_t>(w));
        }
        if (q + 1 >= 0 && static_cast<std::size_t>(q + 1) < words_ &&
            hi_part != 0) {
          const auto w = static_cast<std::size_t>(q + 1);
          twos_[w] |= ones_[w] & hi_part;
          ones_[w] ^= hi_part;
          touched.push_back(static_cast<std::uint32_t>(w));
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());

    // --- classification pass: word-parallel counting, then the (sparse)
    // per-reception attribution walk ------------------------------------
    for (const std::uint32_t w : touched) {
      const std::uint64_t t = transmitting_[w];
      const std::uint64_t collided = twos_[w] & ~t;
      const std::uint64_t rx = ones_[w] & ~twos_[w] & ~t;
      const std::uint64_t fresh = rx & ~received_[w];
      const std::uint64_t dup = rx & received_[w];
      out.stats.collisions +=
          static_cast<std::size_t>(std::popcount(collided));
      out.stats.duplicates += static_cast<std::size_t>(std::popcount(dup));
      const int rx_count = std::popcount(rx);
      out.stats.rx += static_cast<std::size_t>(rx_count);
      // One add per decode, like the reference -- the addends are all the
      // same constant, so matching the count matches the bits.
      for (int i = 0; i < rx_count; ++i) out.stats.rx_energy += rx_cost;
      if (options.charge_collisions) {
        const int coll_count = std::popcount(collided);
        for (int i = 0; i < coll_count; ++i) {
          out.stats.rx_energy += rx_cost;
        }
      }

      const auto attribute = [&](std::uint64_t set, bool is_fresh) {
        while (set != 0) {
          const auto u = static_cast<NodeId>(
              w * kWordBits +
              static_cast<std::size_t>(std::countr_zero(set)));
          set &= set - 1;
          if (options.record_node_energy) out.node_energy[u] += rx_cost;
          // The unique transmitting neighbor: invert each rule.
          NodeId from = kInvalidNode;
          for (std::size_t r = 0; r < num_rules; ++r) {
            const std::int64_t v64 =
                static_cast<std::int64_t>(u) - rules[r].delta;
            if (v64 < 0 || v64 >= static_cast<std::int64_t>(n)) continue;
            const auto v = static_cast<NodeId>(v64);
            if (!test_bit(transmitting_, v)) continue;
            if (((masks_[r * words_ + v / kWordBits] >>
                  (v % kWordBits)) &
                 1u) == 0) {
              continue;
            }
            from = v;
            break;
          }
          WSN_ASSERT(from != kInvalidNode);
          TxRecord& rec = out.transmissions[record_of_[from]];
          rec.delivered += 1;
          if (is_fresh) {
            rec.fresh += 1;
            out.first_rx[u] = slot;
            out.stats.delay = std::max(out.stats.delay, slot);
            schedule_node(u, slot);
          }
        }
      };
      attribute(fresh, true);
      attribute(dup, false);
      if (options.charge_collisions && options.record_node_energy) {
        std::uint64_t set = collided;
        while (set != 0) {
          const auto u = static_cast<NodeId>(
              w * kWordBits +
              static_cast<std::size_t>(std::countr_zero(set)));
          set &= set - 1;
          out.node_energy[u] += rx_cost;
        }
      }
      received_[w] |= fresh;
      ones_[w] = 0;
      twos_[w] = 0;
    }
    for (const NodeId v : transmitters) clear_bit(transmitting_, v);

    ++slots_done;
    last_slot = slot;
    last_frontier = transmitters.size();
    if (progress_ && progress_every_ != 0 &&
        slots_done % progress_every_ == 0) {
      report_progress(slot, transmitters.size());
    }
  }
  if (progress_ && slots_done != 0 &&
      (progress_every_ == 0 || slots_done % progress_every_ != 0)) {
    report_progress(last_slot, last_frontier);
  }

  std::size_t reached = 0;
  for (const std::uint64_t w : received_) {
    reached += static_cast<std::size_t>(std::popcount(w));
  }
  out.stats.reached = reached;
  return out;
}

BroadcastOutcome BulkSimulator::run(const ImplicitLattice& lat,
                                    const RelayPlan& plan,
                                    const SimOptions& options) {
  WSN_SPAN("sim.bulk_simulate");
  return run_impl(lat, plan, options);
}

BroadcastOutcome BulkSimulator::run(const ImplicitLattice& lat,
                                    const FlatRelayPlan& plan,
                                    const SimOptions& options) {
  WSN_SPAN("sim.bulk_simulate");
  return run_impl(lat, plan, options);
}

void BulkSimulator::set_progress(BulkProgressFn fn,
                                 std::uint64_t every_slots) {
  progress_ = std::move(fn);
  progress_every_ = every_slots;
}

BroadcastOutcome bulk_simulate(const ImplicitLattice& lat,
                               const RelayPlan& plan,
                               const SimOptions& options) {
  BulkSimulator sim(lat.num_nodes());
  return sim.run(lat, plan, options);
}

}  // namespace wsn
