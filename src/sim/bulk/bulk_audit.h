#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/bulk/bulk_simulator.h"
#include "topology/implicit.h"

/// Million-node result auditing for the bulk engine.
///
/// At bulk scale nobody eyeballs a trace; instead the audit recomputes
/// what a correct broadcast must satisfy and checks the outcome against
/// it in O(nodes) time and O(1) extra memory:
///
///   * conservation -- every node reached exactly once fresh, so the
///     TxRecords' fresh counts must sum to reached - 1;
///   * strided coverage -- first_rx probed at a stride (memory-bounded:
///     no per-node side structures are built) must show no unreached node
///     when stats.reached == nodes;
///   * relay-mean ETR -- the mean of fresh/degree over non-source
///     transmissions, accumulated in exact integer arithmetic (units of
///     1/840, the lcm of all degrees <= 8) so it can be compared for
///     *exact equality* against the closed-form model below.
///
/// The 2D-4 analytic model walks the paper's §3.1 relay geometry: every
/// non-source node has a unique predictable parent (the transmitter of its
/// first decode), so sum(1/deg(parent)) over all nodes -- minus the
/// source's own children, divided by the closed-form transmission count --
/// IS the relay-mean ETR of the full protocol run, no simulation needed.
/// tests/test_bulk_audit.cpp validates the model against the reference
/// simulator across many (m, n, source) and then holds the bulk engine to
/// it at 10^6 nodes within 1e-9 (in fact exactly).
namespace wsn {

struct BulkAuditReport {
  std::size_t nodes = 0;
  std::size_t reached = 0;
  std::size_t transmissions = 0;
  std::size_t fresh_total = 0;       // sum of TxRecord::fresh
  std::size_t sampled = 0;           // strided first_rx probes
  std::size_t sampled_unreached = 0;
  /// Mean of fresh/degree over non-source transmissions (the paper's
  /// relay ETR aggregated); 0 when there are no relay transmissions.
  double relay_mean_etr = 0.0;

  /// Fresh deliveries account for every reached node except the source.
  [[nodiscard]] bool conservation_ok() const noexcept {
    return reached > 0 && fresh_total == reached - 1;
  }
  [[nodiscard]] bool full_coverage() const noexcept {
    return reached == nodes && sampled_unreached == 0;
  }
};

/// Audits `outcome` (a bulk or reference run on `lat`'s topology);
/// `sample_stride` spaces the first_rx probes -- 1 checks every node.
///
/// The closed-form counterpart for 2D-4 lives with the protocol's other
/// closed forms: Mesh2d4Broadcast::analytic_relay_mean_etr
/// (protocol/mesh2d4_broadcast.h), which uses the same 1/840 integer
/// accumulation so a correct run matches it bit-for-bit.
[[nodiscard]] BulkAuditReport audit_bulk_outcome(
    const ImplicitLattice& lat, const BroadcastOutcome& outcome,
    NodeId source, std::size_t sample_stride = 4096);

}  // namespace wsn
