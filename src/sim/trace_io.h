#pragma once

#include <ostream>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// ns-style trace export: serializes a simulated broadcast as flat CSV
/// event streams that external tooling (pandas, gnuplot, trace diffing)
/// can consume.  Three record kinds share one file, discriminated by the
/// first column:
///
///   event,slot,node,x,y,z,detail1,detail2
///   tx,3,17,2,1,0,5,4        -- transmission: delivered=5, fresh=4
///   rx,3,18,3,1,0,17,1       -- reception: from=17, fresh=1
///   coll,3,20,5,1,0,2,0      -- collision: contenders=2
///
/// Receptions are reconstructed from first_rx plus the transmission trace;
/// duplicate receptions are not individually timestamped by the simulator,
/// so the rx stream carries first receptions only (fresh=1 always) -- the
/// tx stream's `delivered` column accounts for the duplicates in aggregate.
namespace wsn {

/// Writes the header plus every event of `outcome`, in slot order.
/// Collision events require the simulation to have run with
/// SimOptions::record_collisions.
void write_trace_csv(std::ostream& out, const Topology& topo,
                     const BroadcastOutcome& outcome);

/// Writes the relay plan itself (node, role, offsets) -- enough to replay
/// or diff plans across protocol versions:
///
///   node,x,y,z,role,offsets
///   17,2,1,0,relay,1
///   33,4,3,0,retransmitter,1|2
void write_plan_csv(std::ostream& out, const Topology& topo,
                    const RelayPlan& plan);

}  // namespace wsn
