#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "obs/event_sink.h"
#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// DEPRECATED trace format (kept for old artifacts; new code should
/// record through an Observer and export with obs/export.h -- JSONL or
/// Chrome/Perfetto trace-event JSON, both schema-versioned and richer:
/// duplicates, losses, relay activations, pipeline deferrals).
///
/// ns-style trace export: serializes a simulated broadcast as flat CSV
/// event streams.  Three record kinds share one file, discriminated by the
/// first column:
///
///   event,slot,node,x,y,z,detail1,detail2
///   tx,3,17,2,1,0,5,4        -- transmission: delivered=5, fresh=4
///   rx,3,18,3,1,0,17,1       -- reception: from=17, fresh=1
///   coll,3,20,5,1,0,2,0      -- collision: contenders=2
///
/// The writer is a *projection of the structured event stream*: the
/// legacy outcome-walking serializer is gone, and the CSV is derived from
/// the same Observer events the JSONL exporter uses, so both formats
/// always describe the identical run.  The rx stream carries first
/// receptions only (fresh=1 always, the format's historical behavior);
/// the tx stream's `delivered` column accounts for duplicates in
/// aggregate.
namespace wsn {

/// Writes the legacy CSV projection of `sink`'s events (header plus tx /
/// rx / coll rows, slot-ordered; within a slot tx then rx then coll, each
/// by node id).  A transmission's delivered/fresh columns are
/// reconstructed from the rx/dup events attributed to it.  Record the run
/// with an Observer whose EventSink has capacity for the whole trace.
/// Deprecated output format -- see the header comment.
void write_legacy_trace_csv(std::ostream& out, const Topology& topo,
                            const EventSink& sink);

/// One parsed row of the legacy CSV trace.
struct LegacyTraceRecord {
  std::string event;  // "tx" | "rx" | "coll"
  Slot slot = 0;
  NodeId node = kInvalidNode;
  Meters x = 0.0;
  Meters y = 0.0;
  Meters z = 0.0;
  std::uint64_t detail1 = 0;  // delivered / from / contenders
  std::uint64_t detail2 = 0;  // fresh / 1 / 0
};

/// Reads a legacy CSV trace back (header line required).  Malformed rows
/// are skipped; the reader exists so archived traces from earlier
/// releases stay loadable now that new exports use the obs schema.
[[nodiscard]] std::vector<LegacyTraceRecord> read_trace_csv(
    std::istream& in);

/// Writes the relay plan itself (node, role, offsets) -- enough to replay
/// or diff plans across protocol versions:
///
///   node,x,y,z,role,offsets
///   17,2,1,0,relay,1
///   33,4,3,0,retransmitter,1|2
void write_plan_csv(std::ostream& out, const Topology& topo,
                    const RelayPlan& plan);

}  // namespace wsn
