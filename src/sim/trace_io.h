#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// DEPRECATED trace format (kept for old artifacts; new code should
/// record through an Observer and export with obs/export.h -- JSONL or
/// Chrome/Perfetto trace-event JSON, both schema-versioned and richer:
/// duplicates, losses, relay activations, pipeline deferrals).
///
/// ns-style trace export: serializes a simulated broadcast as flat CSV
/// event streams.  Three record kinds share one file, discriminated by the
/// first column:
///
///   event,slot,node,x,y,z,detail1,detail2
///   tx,3,17,2,1,0,5,4        -- transmission: delivered=5, fresh=4
///   rx,3,18,3,1,0,17,1       -- reception: from=17, fresh=1
///   coll,3,20,5,1,0,2,0      -- collision: contenders=2
///
/// Receptions are reconstructed from first_rx plus the transmission trace;
/// duplicate receptions are not individually timestamped by the simulator,
/// so the rx stream carries first receptions only (fresh=1 always) -- the
/// tx stream's `delivered` column accounts for the duplicates in aggregate.
namespace wsn {

/// Writes the header plus every event of `outcome`, in slot order.
/// Collision events require the simulation to have run with
/// SimOptions::record_collisions.  Deprecated -- see the header comment.
void write_trace_csv(std::ostream& out, const Topology& topo,
                     const BroadcastOutcome& outcome);

/// One parsed row of the legacy CSV trace.
struct LegacyTraceRecord {
  std::string event;  // "tx" | "rx" | "coll"
  Slot slot = 0;
  NodeId node = kInvalidNode;
  Meters x = 0.0;
  Meters y = 0.0;
  Meters z = 0.0;
  std::uint64_t detail1 = 0;  // delivered / from / contenders
  std::uint64_t detail2 = 0;  // fresh / 1 / 0
};

/// Reads a legacy CSV trace back (header line required).  Malformed rows
/// are skipped; the reader exists so archived traces from earlier
/// releases stay loadable now that new exports use the obs schema.
[[nodiscard]] std::vector<LegacyTraceRecord> read_trace_csv(
    std::istream& in);

/// Writes the relay plan itself (node, role, offsets) -- enough to replay
/// or diff plans across protocol versions:
///
///   node,x,y,z,role,offsets
///   17,2,1,0,relay,1
///   33,4,3,0,retransmitter,1|2
void write_plan_csv(std::ostream& out, const Topology& topo,
                    const RelayPlan& plan);

}  // namespace wsn
