#include "sim/trace_io.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/csv.h"
#include "common/string_util.h"

namespace wsn {

namespace {

/// One legacy CSV data row before rendering; `rank` fixes the historical
/// within-slot order (tx, then rx, then coll).
struct LegacyRow {
  Slot slot = 0;
  int rank = 0;
  NodeId node = kInvalidNode;
  std::uint64_t detail1 = 0;
  std::uint64_t detail2 = 0;
};

constexpr std::uint64_t slot_peer_key(Slot slot, NodeId peer) noexcept {
  return (static_cast<std::uint64_t>(slot) << 32) | peer;
}

}  // namespace

void write_legacy_trace_csv(std::ostream& out, const Topology& topo,
                            const EventSink& sink) {
  const std::vector<Event> events = sink.events();

  // A kTx event does not carry its delivery outcome; reconstruct it from
  // the receptions it caused -- delivered = rx + dup events attributed to
  // this (slot, transmitter), fresh = the rx half.  The pair is keyed by
  // (slot, peer) because the slot-synchronous medium lets a node transmit
  // at most once per slot.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      deliveries;
  for (const Event& event : events) {
    if (event.kind != EventKind::kRx && event.kind != EventKind::kDuplicate) {
      continue;
    }
    if (event.peer == kInvalidNode) continue;
    auto& tally = deliveries[slot_peer_key(event.slot, event.peer)];
    tally.first += 1;
    if (event.kind == EventKind::kRx) tally.second += 1;
  }

  std::vector<LegacyRow> rows;
  rows.reserve(events.size());
  for (const Event& event : events) {
    LegacyRow row;
    row.slot = event.slot;
    row.node = event.node;
    switch (event.kind) {
      case EventKind::kTx: {
        row.rank = 0;
        const auto it = deliveries.find(slot_peer_key(event.slot, event.node));
        if (it != deliveries.end()) {
          row.detail1 = it->second.first;
          row.detail2 = it->second.second;
        }
        break;
      }
      case EventKind::kRx:
        // First receptions only, the format's historical scope; duplicates
        // stay aggregated in the transmitter's `delivered` column.
        row.rank = 1;
        row.detail1 = event.peer;
        row.detail2 = 1;
        break;
      case EventKind::kCollision:
        row.rank = 2;
        row.detail1 = event.detail;
        row.detail2 = 0;
        break;
      default:
        continue;  // dup/fade/crash/relay/defer have no legacy row kind
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const LegacyRow& a, const LegacyRow& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.node < b.node;
            });

  CsvWriter csv(out);
  csv.row({"event", "slot", "node", "x", "y", "z", "detail1", "detail2"});
  static constexpr const char* kRankName[] = {"tx", "rx", "coll"};
  for (const LegacyRow& row : rows) {
    const auto pos = topo.position(row.node);
    csv.row({kRankName[row.rank], std::to_string(row.slot),
             std::to_string(row.node), std::to_string(pos[0]),
             std::to_string(pos[1]), std::to_string(pos[2]),
             std::to_string(row.detail1), std::to_string(row.detail2)});
  }
}

std::vector<LegacyTraceRecord> read_trace_csv(std::istream& in) {
  std::vector<LegacyTraceRecord> records;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (!header_seen) {  // "event,slot,node,..." header row
      header_seen = true;
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (fields.size() != 8) continue;
    LegacyTraceRecord rec;
    rec.event = fields[0];
    std::uint64_t slot = 0;
    std::uint64_t node = 0;
    if (!parse_u64(fields[1], slot) || !parse_u64(fields[2], node) ||
        !parse_f64(fields[3], rec.x) || !parse_f64(fields[4], rec.y) ||
        !parse_f64(fields[5], rec.z) ||
        !parse_u64(fields[6], rec.detail1) ||
        !parse_u64(fields[7], rec.detail2)) {
      continue;
    }
    rec.slot = static_cast<Slot>(slot);
    rec.node = static_cast<NodeId>(node);
    records.push_back(std::move(rec));
  }
  return records;
}

void write_plan_csv(std::ostream& out, const Topology& topo,
                    const RelayPlan& plan) {
  CsvWriter csv(out);
  csv.row({"node", "x", "y", "z", "role", "offsets"});
  for (NodeId v = 0; v < plan.num_nodes(); ++v) {
    const auto p = topo.position(v);
    std::string role = "passive";
    if (v == plan.source) {
      role = "source";
    } else if (plan.tx_offsets[v].size() > 1) {
      role = "retransmitter";
    } else if (plan.tx_offsets[v].size() == 1) {
      role = "relay";
    }
    std::string offsets;
    for (std::size_t i = 0; i < plan.tx_offsets[v].size(); ++i) {
      if (i != 0) offsets += '|';
      offsets += std::to_string(plan.tx_offsets[v][i]);
    }
    csv.row({std::to_string(v), std::to_string(p[0]), std::to_string(p[1]),
             std::to_string(p[2]), role, offsets});
  }
}

}  // namespace wsn
