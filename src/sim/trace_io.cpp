#include "sim/trace_io.h"

#include <algorithm>
#include <string>

#include "common/csv.h"
#include "common/string_util.h"

namespace wsn {

namespace {

struct RxEvent {
  Slot slot;
  NodeId node;
  NodeId from;
};

}  // namespace

void write_trace_csv(std::ostream& out, const Topology& topo,
                     const BroadcastOutcome& outcome) {
  CsvWriter csv(out);
  csv.row({"event", "slot", "node", "x", "y", "z", "detail1", "detail2"});

  // First receptions, attributed to the transmitter whose slot matches.
  std::vector<RxEvent> receptions;
  for (NodeId v = 0; v < outcome.first_rx.size(); ++v) {
    const Slot slot = outcome.first_rx[v];
    if (slot == 0 || slot == kNeverSlot) continue;  // source / unreached
    NodeId from = kInvalidNode;
    for (const TxRecord& rec : outcome.transmissions) {
      if (rec.slot == slot && topo.adjacent(rec.node, v)) {
        from = rec.node;
        break;
      }
    }
    receptions.push_back(RxEvent{slot, v, from});
  }
  std::sort(receptions.begin(), receptions.end(),
            [](const RxEvent& a, const RxEvent& b) {
              return a.slot != b.slot ? a.slot < b.slot : a.node < b.node;
            });

  // Merge the three streams by slot; within a slot: tx, rx, coll.
  const auto emit_position = [&](NodeId v) {
    const auto p = topo.position(v);
    return std::array<std::string, 3>{std::to_string(p[0]),
                                      std::to_string(p[1]),
                                      std::to_string(p[2])};
  };
  std::size_t ti = 0;
  std::size_t ri = 0;
  std::size_t ci = 0;
  Slot slot = 1;
  while (ti < outcome.transmissions.size() || ri < receptions.size() ||
         ci < outcome.collision_events.size()) {
    for (; ti < outcome.transmissions.size() &&
           outcome.transmissions[ti].slot == slot;
         ++ti) {
      const TxRecord& rec = outcome.transmissions[ti];
      const auto pos = emit_position(rec.node);
      csv.row({"tx", std::to_string(rec.slot), std::to_string(rec.node),
               pos[0], pos[1], pos[2], std::to_string(rec.delivered),
               std::to_string(rec.fresh)});
    }
    for (; ri < receptions.size() && receptions[ri].slot == slot; ++ri) {
      const RxEvent& rx = receptions[ri];
      const auto pos = emit_position(rx.node);
      csv.row({"rx", std::to_string(rx.slot), std::to_string(rx.node),
               pos[0], pos[1], pos[2], std::to_string(rx.from), "1"});
    }
    for (; ci < outcome.collision_events.size() &&
           outcome.collision_events[ci].slot == slot;
         ++ci) {
      const CollisionRecord& ev = outcome.collision_events[ci];
      const auto pos = emit_position(ev.node);
      csv.row({"coll", std::to_string(ev.slot), std::to_string(ev.node),
               pos[0], pos[1], pos[2], std::to_string(ev.contenders), "0"});
    }
    ++slot;
  }
}

std::vector<LegacyTraceRecord> read_trace_csv(std::istream& in) {
  std::vector<LegacyTraceRecord> records;
  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (!header_seen) {  // "event,slot,node,..." header row
      header_seen = true;
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (fields.size() != 8) continue;
    LegacyTraceRecord rec;
    rec.event = fields[0];
    std::uint64_t slot = 0;
    std::uint64_t node = 0;
    if (!parse_u64(fields[1], slot) || !parse_u64(fields[2], node) ||
        !parse_f64(fields[3], rec.x) || !parse_f64(fields[4], rec.y) ||
        !parse_f64(fields[5], rec.z) ||
        !parse_u64(fields[6], rec.detail1) ||
        !parse_u64(fields[7], rec.detail2)) {
      continue;
    }
    rec.slot = static_cast<Slot>(slot);
    rec.node = static_cast<NodeId>(node);
    records.push_back(std::move(rec));
  }
  return records;
}

void write_plan_csv(std::ostream& out, const Topology& topo,
                    const RelayPlan& plan) {
  CsvWriter csv(out);
  csv.row({"node", "x", "y", "z", "role", "offsets"});
  for (NodeId v = 0; v < plan.num_nodes(); ++v) {
    const auto p = topo.position(v);
    std::string role = "passive";
    if (v == plan.source) {
      role = "source";
    } else if (plan.tx_offsets[v].size() > 1) {
      role = "retransmitter";
    } else if (plan.tx_offsets[v].size() == 1) {
      role = "relay";
    }
    std::string offsets;
    for (std::size_t i = 0; i < plan.tx_offsets[v].size(); ++i) {
      if (i != 0) offsets += '|';
      offsets += std::to_string(plan.tx_offsets[v][i]);
    }
    csv.row({std::to_string(v), std::to_string(p[0]), std::to_string(p[1]),
             std::to_string(p[2]), role, offsets});
  }
}

}  // namespace wsn
