#include "sim/pipeline.h"

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "obs/profile.h"

namespace wsn {

namespace {

struct Pending {
  NodeId node;
  std::uint32_t packet;

  friend bool operator<(const Pending& a, const Pending& b) noexcept {
    return a.node != b.node ? a.node < b.node : a.packet < b.packet;
  }
  friend bool operator==(const Pending& a, const Pending& b) noexcept {
    return a.node == b.node && a.packet == b.packet;
  }
};

/// The slot loop, compiled twice -- same split as simulator.cpp:
/// kObserved=false contains no observer code, keeping the pipeline-period
/// search exactly as fast as before instrumentation.
template <bool kObserved>
PipelineOutcome pipeline_impl(const Topology& topo, const RelayPlan& plan,
                              const PipelineOptions& options) {
  const std::size_t n = topo.num_nodes();
  const std::size_t packets = options.packets;
  WSN_EXPECTS(plan.num_nodes() == n);
  WSN_EXPECTS(packets >= 1);
  WSN_EXPECTS(options.interval >= 1);
  WSN_EXPECTS(options.sim.battery == nullptr);
  plan.validate();

  FaultModel* const faults = options.sim.faults;
  if (faults != nullptr) faults->begin_run();
  [[maybe_unused]] Observer* const obs = options.sim.observer;

  PipelineOutcome out;
  out.per_packet.assign(packets, BroadcastStats{});
  for (auto& stats : out.per_packet) stats.num_nodes = n;
  out.aggregate.num_nodes = n;

  // first_rx[p][v]; the source "has" packet p from its injection slot.
  std::vector<std::vector<Slot>> first_rx(
      packets, std::vector<Slot>(n, kNeverSlot));

  std::map<Slot, std::vector<Pending>> schedule;
  const auto schedule_node = [&](NodeId v, std::uint32_t packet,
                                 Slot received_at) {
    if constexpr (kObserved) {
      if (!plan.tx_offsets[v].empty()) {
        Observer::count(obs->relay_activations);
        obs->emit(
            Event{received_at, EventKind::kRelayActivation, v, kInvalidNode,
                  packet,
                  static_cast<std::uint32_t>(plan.tx_offsets[v].size())});
      }
    }
    for (Slot offset : plan.tx_offsets[v]) {
      schedule[received_at + offset].push_back(Pending{v, packet});
    }
  };
  for (std::uint32_t p = 0; p < packets; ++p) {
    const Slot base = static_cast<Slot>(p) * options.interval;
    first_rx[p][plan.source] = base;
    schedule_node(plan.source, p, base);
  }

  std::vector<std::uint32_t> hear_count(n, 0);
  std::vector<NodeId> heard_from(n, kInvalidNode);
  std::vector<std::uint32_t> tx_packet(n, 0);
  std::vector<char> is_transmitting(n, 0);
  std::vector<NodeId> touched;

  while (!schedule.empty()) {
    auto it = schedule.begin();
    const Slot slot = it->first;
    std::vector<Pending> entries = std::move(it->second);
    schedule.erase(it);
    if (slot > options.sim.max_slots) break;

    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());

    // One packet per node per slot: the oldest goes out, younger packets
    // defer one slot (dropping duplicates already scheduled there).
    std::vector<Pending> transmitters;
    for (std::size_t i = 0; i < entries.size();) {
      std::size_t j = i;
      while (j < entries.size() && entries[j].node == entries[i].node) ++j;
      transmitters.push_back(entries[i]);
      for (std::size_t k = i + 1; k < j; ++k) {
        auto& next_slot = schedule[slot + 1];
        if (std::find(next_slot.begin(), next_slot.end(), entries[k]) ==
            next_slot.end()) {
          next_slot.push_back(entries[k]);
          if constexpr (kObserved) {
            Observer::count(obs->pipeline_defers);
            obs->emit(Event{slot, EventKind::kPipelineDefer,
                            entries[k].node, kInvalidNode,
                            entries[k].packet, 1});
          }
        }
      }
      i = j;
    }

    // Crashed transmitters lose the slot's transmission outright, exactly
    // as in the single-packet simulator; the loss is charged per would-be
    // hearer to the suppressed packet.
    if (faults != nullptr) {
      std::erase_if(transmitters, [&](const Pending& t) {
        if (faults->node_up(t.node, slot)) return false;
        const auto lost = static_cast<std::uint32_t>(topo.degree(t.node));
        out.per_packet[t.packet].lost_to_crash += lost;
        if constexpr (kObserved) {
          Observer::count(obs->lost_to_crash, lost);
          obs->emit(Event{slot, EventKind::kLossCrash, t.node,
                          kInvalidNode, t.packet, lost});
        }
        return true;
      });
    }

    for (const Pending& t : transmitters) {
      is_transmitting[t.node] = 1;
      tx_packet[t.node] = t.packet;
      out.per_packet[t.packet].tx += 1;
      if constexpr (kObserved) {
        Observer::count(obs->tx);
        obs->emit(Event{slot, EventKind::kTx, t.node, kInvalidNode,
                        t.packet});
      }
      const Joules cost = options.sim.radio.tx_energy(
          options.sim.packet_bits, topo.tx_range(t.node));
      out.per_packet[t.packet].tx_energy += cost;
    }

    touched.clear();
    for (const Pending& t : transmitters) {
      for (NodeId u : topo.neighbors(t.node)) {
        if (faults != nullptr) {
          if (!faults->node_up(u, slot)) {
            out.per_packet[t.packet].lost_to_crash += 1;
            if constexpr (kObserved) {
              Observer::count(obs->lost_to_crash);
              obs->emit(Event{slot, EventKind::kLossCrash, u, t.node,
                              t.packet, 1});
            }
            continue;
          }
          if (!faults->link_delivers(t.node, u, slot)) {
            out.per_packet[t.packet].lost_to_fading += 1;
            if constexpr (kObserved) {
              Observer::count(obs->lost_to_fading);
              obs->emit(Event{slot, EventKind::kLossFading, u, t.node,
                              t.packet});
            }
            continue;
          }
        }
        if (hear_count[u] == 0) touched.push_back(u);
        hear_count[u] += 1;
        heard_from[u] = t.node;
      }
    }

    for (NodeId u : touched) {
      const std::uint32_t contenders = hear_count[u];
      hear_count[u] = 0;
      if (is_transmitting[u]) continue;

      if (contenders == 1) {
        const std::uint32_t packet = tx_packet[heard_from[u]];
        auto& stats = out.per_packet[packet];
        stats.rx += 1;
        if constexpr (kObserved) Observer::count(obs->rx);
        stats.rx_energy +=
            options.sim.radio.rx_energy(options.sim.packet_bits);
        if (first_rx[packet][u] == kNeverSlot) {
          first_rx[packet][u] = slot;
          const Slot base = static_cast<Slot>(packet) * options.interval;
          stats.delay = std::max(stats.delay, slot - base);
          if constexpr (kObserved) {
            obs->emit(Event{slot, EventKind::kRx, u, heard_from[u],
                            packet});
            if (obs->slot_delay != nullptr) {
              obs->slot_delay->observe(static_cast<double>(slot - base));
            }
          }
          schedule_node(u, packet, slot);
        } else {
          stats.duplicates += 1;
          if constexpr (kObserved) {
            Observer::count(obs->duplicates);
            obs->emit(Event{slot, EventKind::kDuplicate, u, heard_from[u],
                            packet});
          }
        }
      } else {
        // Cross- or same-packet pileup; attribution is ambiguous, so the
        // event counts once, in the aggregate (the event's packet field
        // names one of the contenders: the last transmitter heard).
        out.aggregate.collisions += 1;
        if constexpr (kObserved) {
          Observer::count(obs->collisions);
          obs->emit(Event{slot, EventKind::kCollision, u, kInvalidNode,
                          tx_packet[heard_from[u]], contenders});
        }
      }
    }

    for (const Pending& t : transmitters) is_transmitting[t.node] = 0;
  }

  for (std::uint32_t p = 0; p < packets; ++p) {
    auto& stats = out.per_packet[p];
    stats.reached = 0;
    for (Slot s : first_rx[p]) {
      if (s != kNeverSlot) stats.reached += 1;
    }
    out.aggregate.tx += stats.tx;
    out.aggregate.rx += stats.rx;
    out.aggregate.duplicates += stats.duplicates;
    out.aggregate.lost_to_fading += stats.lost_to_fading;
    out.aggregate.lost_to_crash += stats.lost_to_crash;
    out.aggregate.tx_energy += stats.tx_energy;
    out.aggregate.rx_energy += stats.rx_energy;
    const Slot base = static_cast<Slot>(p) * options.interval;
    out.aggregate.delay = std::max(out.aggregate.delay, stats.delay + base);
    out.aggregate.reached = stats.reached;  // last packet's reach
  }
  if constexpr (kObserved) {
    Observer::count(obs->runs);
    if (obs->reached != nullptr) {
      obs->reached->set(static_cast<double>(out.aggregate.reached));
    }
  }
  return out;
}

}  // namespace

PipelineOutcome simulate_pipeline(const Topology& topo, const RelayPlan& plan,
                                  const PipelineOptions& options) {
  WSN_SPAN("sim.pipeline");
  if (options.sim.observer != nullptr) {
    return pipeline_impl<true>(topo, plan, options);
  }
  return pipeline_impl<false>(topo, plan, options);
}

Slot min_pipeline_interval(const Topology& topo, const RelayPlan& plan,
                           std::size_t packets, Slot limit) {
  for (Slot interval = 1; interval <= limit; ++interval) {
    PipelineOptions options;
    options.packets = packets;
    options.interval = interval;
    if (simulate_pipeline(topo, plan, options).all_fully_reached()) {
      return interval;
    }
  }
  return 0;
}

}  // namespace wsn
