#include "sim/simulator.h"

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "obs/profile.h"

namespace wsn {

namespace {

/// End-of-run observability: distribution histograms and the reached
/// gauge.  Counters are mirrored inline at each stats increment; the
/// distributions (slot delay, per-node energy, per-transmission ETR) only
/// exist once the run is complete.
void observe_outcome(const Topology& topo, const BroadcastOutcome& out,
                     Observer& obs) {
  Observer::count(obs.runs);
  if (obs.reached != nullptr) {
    obs.reached->set(static_cast<double>(out.stats.reached));
  }
  if (obs.events_dropped != nullptr && obs.events != nullptr) {
    obs.events_dropped->set(static_cast<double>(obs.events->dropped()));
  }
  if (obs.slot_delay != nullptr) {
    for (NodeId v = 0; v < out.first_rx.size(); ++v) {
      const Slot slot = out.first_rx[v];
      if (slot == 0 || slot == kNeverSlot) continue;  // source / unreached
      obs.slot_delay->observe(static_cast<double>(slot));
    }
  }
  if (obs.node_energy != nullptr) {
    for (Joules j : out.node_energy) obs.node_energy->observe(j);
  }
  if (obs.etr != nullptr) {
    for (const TxRecord& rec : out.transmissions) {
      const std::size_t degree = topo.degree(rec.node);
      if (degree == 0) continue;
      obs.etr->observe(static_cast<double>(rec.fresh) /
                       static_cast<double>(degree));
    }
  }
}

}  // namespace

std::vector<NodeId> BroadcastOutcome::unreached() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < first_rx.size(); ++v) {
    if (first_rx[v] == kNeverSlot) out.push_back(v);
  }
  return out;
}

Slot BroadcastOutcome::first_tx(NodeId node) const noexcept {
  for (const TxRecord& rec : transmissions) {
    if (rec.node == node) return rec.slot;
  }
  return kNeverSlot;
}

Simulator::Simulator(std::size_t num_nodes) {
  hear_count_.reserve(num_nodes);
  heard_from_.reserve(num_nodes);
  is_transmitting_.reserve(num_nodes);
  touched_.reserve(num_nodes);
  record_of_.reserve(num_nodes);
}

/// The slot loop, compiled twice.  kObserved=false contains no observer
/// code at all -- identical work to the pre-instrumentation simulator, so
/// installing no observer costs nothing -- while kObserved=true carries
/// the event/metric emission inline.  Simulator::run dispatches once.
template <bool kObserved, typename PlanT>
BroadcastOutcome Simulator::run_impl(const Topology& topo,
                                     const PlanT& plan,
                                     const SimOptions& options) {
  const std::size_t n = topo.num_nodes();
  WSN_EXPECTS(plan.num_nodes() == n);
  WSN_EXPECTS(options.battery == nullptr || options.battery->size() == n);
  plan.validate();

  FaultModel* const faults = options.faults;
  if (faults != nullptr) faults->begin_run();
  [[maybe_unused]] Observer* const obs = options.observer;

  const NodeId source = plan_source(plan);
  BroadcastOutcome out;
  out.stats.num_nodes = n;
  out.first_rx.assign(n, kNeverSlot);
  out.first_rx[source] = 0;
  if (options.record_node_energy) out.node_energy.assign(n, 0.0);

  // Re-prime the scratch; `assign` on an already-sized vector is a plain
  // fill, so a reused Simulator starts every run in the exact state a
  // fresh one would without allocating.
  std::map<Slot, std::vector<NodeId>>& schedule = schedule_;
  schedule.clear();
  const auto schedule_node = [&](NodeId v, Slot received_at) {
    const std::span<const Slot> offsets = plan_offsets(plan, v);
    if constexpr (kObserved) {
      if (!offsets.empty()) {
        Observer::count(obs->relay_activations);
        obs->emit(
            Event{received_at, EventKind::kRelayActivation, v, kInvalidNode,
                  0, static_cast<std::uint32_t>(offsets.size())});
      }
    }
    for (Slot offset : offsets) {
      schedule[received_at + offset].push_back(v);
    }
  };
  schedule_node(source, 0);

  hear_count_.assign(n, 0);
  heard_from_.assign(n, kInvalidNode);
  is_transmitting_.assign(n, 0);
  touched_.clear();
  record_of_.assign(n, 0);
  std::vector<std::uint32_t>& hear_count = hear_count_;
  std::vector<NodeId>& heard_from = heard_from_;
  std::vector<char>& is_transmitting = is_transmitting_;
  std::vector<NodeId>& touched = touched_;
  std::vector<std::size_t>& record_of =
      record_of_;  // transmitter -> index into out.transmissions (valid per slot)

  while (!schedule.empty()) {
    auto it = schedule.begin();
    const Slot slot = it->first;
    std::vector<NodeId> transmitters = std::move(it->second);
    schedule.erase(it);
    if (slot > options.max_slots) break;

    // Deterministic order; a node appears at most once per slot (plan
    // offsets are strictly increasing).
    std::sort(transmitters.begin(), transmitters.end());

    // Battery-dead nodes drop out of the medium entirely this slot.
    if (options.battery != nullptr) {
      std::erase_if(transmitters, [&](NodeId v) {
        return !options.battery->alive(v);
      });
    }
    // Crashed transmitters lose the scheduled transmission outright (the
    // radio was off when the timer fired): no energy spent, and every
    // would-be hearer's delivery is charged to the crash.
    if (faults != nullptr) {
      std::erase_if(transmitters, [&](NodeId v) {
        if (faults->node_up(v, slot)) return false;
        const auto lost = static_cast<std::uint32_t>(topo.degree(v));
        out.stats.lost_to_crash += lost;
        if constexpr (kObserved) {
          Observer::count(obs->lost_to_crash, lost);
          obs->emit(Event{slot, EventKind::kLossCrash, v, kInvalidNode, 0,
                          lost});
        }
        return true;
      });
    }
    if (transmitters.empty()) continue;

    for (NodeId v : transmitters) {
      is_transmitting[v] = 1;
      record_of[v] = out.transmissions.size();
      out.transmissions.push_back(TxRecord{slot, v, 0, 0});
      out.stats.tx += 1;
      if constexpr (kObserved) {
        Observer::count(obs->tx);
        obs->emit(Event{slot, EventKind::kTx, v});
      }
      const Joules cost =
          options.radio.tx_energy(options.packet_bits, topo.tx_range(v));
      out.stats.tx_energy += cost;
      if (options.record_node_energy) out.node_energy[v] += cost;
      if (options.battery != nullptr) options.battery->drain(v, cost);
    }

    touched.clear();
    for (NodeId v : transmitters) {
      for (NodeId u : topo.neighbors(v)) {
        if (options.battery != nullptr && !options.battery->alive(u)) {
          continue;
        }
        if (faults != nullptr) {
          if (!faults->node_up(u, slot)) {
            out.stats.lost_to_crash += 1;
            if constexpr (kObserved) {
              Observer::count(obs->lost_to_crash);
              obs->emit(Event{slot, EventKind::kLossCrash, u, v, 0, 1});
            }
            continue;
          }
          // A faded packet is below the decode *and* interference
          // thresholds: it neither delivers nor contributes to collisions
          // (fault/fault_model.h).
          if (!faults->link_delivers(v, u, slot)) {
            out.stats.lost_to_fading += 1;
            if constexpr (kObserved) {
              Observer::count(obs->lost_to_fading);
              obs->emit(Event{slot, EventKind::kLossFading, u, v});
            }
            continue;
          }
        }
        if (hear_count[u] == 0) touched.push_back(u);
        hear_count[u] += 1;
        heard_from[u] = v;
      }
    }

    for (NodeId u : touched) {
      const std::uint32_t contenders = hear_count[u];
      hear_count[u] = 0;
      if (is_transmitting[u]) continue;  // half-duplex: deaf while sending

      if (contenders == 1) {
        out.stats.rx += 1;
        if constexpr (kObserved) Observer::count(obs->rx);
        const Joules cost = options.radio.rx_energy(options.packet_bits);
        out.stats.rx_energy += cost;
        if (options.record_node_energy) out.node_energy[u] += cost;
        if (options.battery != nullptr) options.battery->drain(u, cost);

        TxRecord& rec = out.transmissions[record_of[heard_from[u]]];
        rec.delivered += 1;
        if (out.first_rx[u] == kNeverSlot) {
          rec.fresh += 1;
          out.first_rx[u] = slot;
          out.stats.delay = std::max(out.stats.delay, slot);
          if constexpr (kObserved) {
            obs->emit(Event{slot, EventKind::kRx, u, heard_from[u]});
          }
          schedule_node(u, slot);
        } else {
          out.stats.duplicates += 1;
          if constexpr (kObserved) {
            Observer::count(obs->duplicates);
            obs->emit(Event{slot, EventKind::kDuplicate, u, heard_from[u]});
          }
        }
      } else {
        out.stats.collisions += 1;
        if constexpr (kObserved) {
          Observer::count(obs->collisions);
          obs->emit(Event{slot, EventKind::kCollision, u, kInvalidNode, 0,
                          contenders});
        }
        if (options.charge_collisions) {
          const Joules cost = options.radio.rx_energy(options.packet_bits);
          out.stats.rx_energy += cost;
          if (options.record_node_energy) out.node_energy[u] += cost;
          if (options.battery != nullptr) options.battery->drain(u, cost);
        }
        if (options.record_collisions) {
          out.collision_events.push_back(
              CollisionRecord{slot, u, contenders});
        }
      }
    }

    for (NodeId v : transmitters) is_transmitting[v] = 0;
  }

  out.stats.reached = n - out.unreached().size();
  if constexpr (kObserved) observe_outcome(topo, out, *obs);
  return out;
}

BroadcastOutcome Simulator::run(const Topology& topo, const RelayPlan& plan,
                                const SimOptions& options) {
  WSN_SPAN("sim.simulate");
  if (options.observer != nullptr) {
    return run_impl<true>(topo, plan, options);
  }
  return run_impl<false>(topo, plan, options);
}

BroadcastOutcome Simulator::run(const Topology& topo,
                                const FlatRelayPlan& plan,
                                const SimOptions& options) {
  WSN_SPAN("sim.simulate");
  if (options.observer != nullptr) {
    return run_impl<true>(topo, plan, options);
  }
  return run_impl<false>(topo, plan, options);
}

BroadcastOutcome simulate_broadcast(const Topology& topo,
                                    const RelayPlan& plan,
                                    const SimOptions& options) {
  Simulator simulator(topo.num_nodes());
  return simulator.run(topo, plan, options);
}

}  // namespace wsn
