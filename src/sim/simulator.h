#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "fault/fault_model.h"
#include "obs/observer.h"
#include "radio/battery.h"
#include "radio/energy_model.h"
#include "sim/plan.h"
#include "sim/stats.h"
#include "topology/topology.h"

/// Slot-synchronous broadcast simulator.
///
/// Semantics (paper §2/§3, "all the sensor nodes are synchronized"):
///
///   * Time advances in discrete slots; one packet fits one slot.
///   * A node transmitting in a slot is heard by all its topology
///     neighbors ("a transmission can cover all the neighboring nodes").
///   * A non-transmitting node with exactly ONE transmitting neighbor in a
///     slot decodes the packet (counted as a reception -- a duplicate if it
///     already had the message).
///   * A non-transmitting node with TWO OR MORE transmitting neighbors
///     suffers a collision: nothing is decoded, one collision event is
///     recorded at that node.
///   * A transmitting node hears nothing that slot (half-duplex).
///   * A relay's transmissions are scheduled by the RelayPlan relative to
///     its first successful reception; the source's relative to slot 0.
///
/// The run ends when no transmission remains scheduled, or at
/// `max_slots` (a runaway guard -- plans are finite so this only triggers
/// on misuse).
namespace wsn {

struct SimOptions {
  /// Packet length in bits; the paper evaluates with 512.
  std::size_t packet_bits = 512;
  /// Energy model; defaults to the paper's First Order Radio Model.
  FirstOrderRadioModel radio{};
  /// Record per-collision events (slot, node) in the outcome.
  bool record_collisions = false;
  /// Optional battery bank: transmissions/receptions drain it, dead nodes
  /// drop out of the medium.  Must have one cell per node when set.
  BatteryBank* battery = nullptr;
  /// Charge E_Rx for collided receptions too.  Off by default: the paper's
  /// published power numbers charge only successful decodes (DESIGN.md §4).
  bool charge_collisions = false;
  /// Track each node's individual energy spend in the outcome (the paper
  /// only totals energy; the per-node view exposes how unevenly relay duty
  /// burdens nodes -- its §1 critique of non-balancing protocols).
  bool record_node_energy = false;
  /// Optional fault injection (fault/fault_model.h): per-link packet loss
  /// and per-node crash windows.  nullptr (the default) keeps the paper's
  /// perfect medium and leaves the hot path untouched; when set, the model
  /// is consulted per (tx, rx, slot) edge and losses are attributed to
  /// `BroadcastStats::lost_to_fading` / `lost_to_crash`.  Like `battery`,
  /// the model is stateful and must not be shared across concurrent runs.
  FaultModel* faults = nullptr;
  /// Optional instrumentation (obs/observer.h): structured events into the
  /// observer's sink, stats mirrored into its metrics handles, end-of-run
  /// histograms (slot delay, per-node energy, per-transmission ETR).
  /// nullptr (the default) keeps the hot path untouched.  An observer with
  /// an event sink belongs to one run at a time; a metrics-only observer
  /// may be shared across concurrent sweep runs.
  Observer* observer = nullptr;
  /// Hard stop. Generous default: plans terminate on their own.
  Slot max_slots = 1u << 20;
};

/// One transmission as it happened, with its delivery outcome:
/// `delivered` neighbors decoded it, of which `fresh` were first-time
/// receptions.  ETR of the transmission = fresh / degree(node).
struct TxRecord {
  Slot slot = 0;
  NodeId node = kInvalidNode;
  std::uint32_t delivered = 0;
  std::uint32_t fresh = 0;
};

/// A collision event: `contenders` neighbors of `node` transmitted in
/// `slot` and nothing was decoded.
struct CollisionRecord {
  Slot slot = 0;
  NodeId node = kInvalidNode;
  std::uint32_t contenders = 0;
};

struct BroadcastOutcome {
  BroadcastStats stats;
  /// Slot of each node's first successful reception; 0 for the source,
  /// kNeverSlot for unreached nodes.
  std::vector<Slot> first_rx;
  /// Every transmission in slot order (ties by node id).
  std::vector<TxRecord> transmissions;
  /// Collision events; populated only when SimOptions::record_collisions.
  std::vector<CollisionRecord> collision_events;
  /// Per-node energy spend (J); populated only when
  /// SimOptions::record_node_energy.  Sums to stats.total_energy().
  std::vector<Joules> node_energy;

  [[nodiscard]] std::vector<NodeId> unreached() const;
  /// Slot of `node`'s first transmission, or kNeverSlot if it never
  /// transmitted.
  [[nodiscard]] Slot first_tx(NodeId node) const noexcept;
};

/// The simulation engine with its per-run scratch buffers.
///
/// One broadcast needs five O(n) scratch vectors plus the slot schedule;
/// allocating them per run is pure churn in the workloads that run
/// thousands of broadcasts back to back (the resolver's probe
/// simulations, the all-sources sweeps).  A Simulator owns the scratch
/// and re-primes it with size-preserving `assign` at the start of every
/// `run`, so repeated runs over same-sized topologies allocate nothing.
/// `run` is bitwise-deterministic and identical to `simulate_broadcast`
/// for any sequence of calls -- scratch reuse is invisible in the
/// outcome.
///
/// Not thread-safe: one Simulator belongs to one thread at a time (the
/// sweeps keep one per worker).
class Simulator {
 public:
  Simulator() = default;
  /// Pre-sizes the scratch for `num_nodes`-node topologies.
  explicit Simulator(std::size_t num_nodes);

  /// Runs one broadcast to completion; semantics of simulate_broadcast.
  [[nodiscard]] BroadcastOutcome run(const Topology& topo,
                                     const RelayPlan& plan,
                                     const SimOptions& options = {});

  /// Same run straight off a CSR plan (sim/plan.h) -- what the plan-store
  /// sweeps use, skipping any conversion back to RelayPlan.  Identical
  /// outcome to running the equivalent RelayPlan.
  [[nodiscard]] BroadcastOutcome run(const Topology& topo,
                                     const FlatRelayPlan& plan,
                                     const SimOptions& options = {});

 private:
  template <bool kObserved, typename PlanT>
  BroadcastOutcome run_impl(const Topology& topo, const PlanT& plan,
                            const SimOptions& options);

  // slot -> transmitters scheduled for it.  An ordered map keeps the main
  // loop a strict slot sweep even when plans schedule far ahead.
  std::map<Slot, std::vector<NodeId>> schedule_;
  // Per-slot scratch, epoch-free via the `touched_` list: hear_count_[u]
  // is nonzero only for u in touched_ and reset before the slot ends.
  std::vector<std::uint32_t> hear_count_;
  std::vector<NodeId> heard_from_;
  std::vector<char> is_transmitting_;
  std::vector<NodeId> touched_;
  std::vector<std::size_t> record_of_;  // transmitter -> transmissions index
};

/// Runs one broadcast to completion.  `plan.num_nodes()` must match the
/// topology.  Deterministic: identical inputs give identical outcomes.
/// Stateless convenience over a fresh Simulator; hot loops that run many
/// broadcasts keep a Simulator and call `run` to reuse its scratch.
[[nodiscard]] BroadcastOutcome simulate_broadcast(const Topology& topo,
                                                  const RelayPlan& plan,
                                                  const SimOptions& options = {});

}  // namespace wsn
