#pragma once

#include <vector>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Pipelined broadcasting: the source injects a stream of packets, one
/// every `interval` slots, all forwarded under the same relay plan.
///
/// The paper evaluates a single broadcast; a deployed WSN broadcasts
/// continuously, and the interesting figure of merit is the *pipeline
/// period*: the smallest injection interval at which consecutive
/// wavefronts never interfere (every packet still reaches everyone).  The
/// relay plans' spatial structure determines it -- wavefronts of packet p
/// and p+1 chase each other `interval` slots apart, and collide where a
/// relay serves both at once.
///
/// Medium semantics extend the single-packet rules packet-agnostically:
///   * a node transmits at most one packet per slot; when two packets'
///     schedules land on the same slot, the older packet goes first and
///     the younger is deferred one slot (repeatedly if needed);
///   * a non-transmitting node with exactly one transmitting neighbor
///     decodes that neighbor's packet; with two or more it decodes
///     nothing, whatever the packets involved (co-channel collision);
///   * each packet's relay offsets apply relative to that packet's own
///     first reception at the node.
namespace wsn {

struct PipelineOptions {
  /// Number of packets the source injects.
  std::size_t packets = 4;
  /// Slots between consecutive injections (≥ 1).
  Slot interval = 8;
  /// Medium / energy configuration (battery not supported here; fault
  /// injection via `sim.faults` is honored, with losses attributed to the
  /// affected packet's stats).
  SimOptions sim{};
};

struct PipelineOutcome {
  /// Per-packet stats; delay is measured from the packet's injection slot.
  std::vector<BroadcastStats> per_packet;
  /// Totals across the run (tx/rx/collisions/energy summed; delay = the
  /// slot of the last first-reception of any packet).
  BroadcastStats aggregate;

  [[nodiscard]] bool all_fully_reached() const {
    for (const BroadcastStats& s : per_packet) {
      if (!s.fully_reached()) return false;
    }
    return !per_packet.empty();
  }
};

/// Runs the pipelined broadcast to completion.  Deterministic.
[[nodiscard]] PipelineOutcome simulate_pipeline(const Topology& topo,
                                                const RelayPlan& plan,
                                                const PipelineOptions& options);

/// The smallest interval in [1, `limit`] at which every packet of a
/// `packets`-deep pipeline reaches every node, or 0 if none does.  Linear
/// scan: interference is not monotone in the interval, so each value is
/// tested directly.
[[nodiscard]] Slot min_pipeline_interval(const Topology& topo,
                                         const RelayPlan& plan,
                                         std::size_t packets, Slot limit);

}  // namespace wsn
