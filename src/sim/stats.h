#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

/// Aggregate metrics of one broadcast, matching the paper's §4 definitions:
///
///   * tx          -- "total times the message is transmitted by nodes"
///   * rx          -- "total times the message is received" (successful
///                    decodes, duplicates included)
///   * duplicates  -- receptions by nodes that already had the message
///   * collisions  -- (slot, node) events where ≥ 2 neighbors transmitted
///                    simultaneously and nothing was decoded
///   * delay       -- slot of the last first-reception ("time from the
///                    source initiated the broadcast to the time the
///                    broadcast is over", in time slots)
///   * energy      -- E_Tx summed over transmissions plus E_Rx summed over
///                    successful receptions (the paper's accounting; see
///                    DESIGN.md §4)
///
/// Under fault injection (SimOptions::faults) two loss counters join the
/// collision count; each counts directed (transmitter, receiver) reception
/// opportunities destroyed, so decode + collide + fade + crash partitions
/// the links a perfect medium would have delivered (half-duplex deafness
/// excepted, which was never a delivery in the paper's medium either):
///
///   * lost_to_fading -- the fault model dropped the packet on that link
///   * lost_to_crash  -- the transmitter was down when its slot fired (one
///                       loss per would-be hearer) or the receiver was
///                       down when the packet arrived
namespace wsn {

struct BroadcastStats {
  std::size_t num_nodes = 0;
  std::size_t reached = 0;  // nodes holding the message, source included
  std::size_t tx = 0;
  std::size_t rx = 0;
  std::size_t duplicates = 0;
  std::size_t collisions = 0;
  std::size_t lost_to_fading = 0;  // nonzero only under fault injection
  std::size_t lost_to_crash = 0;   // nonzero only under fault injection
  Slot delay = 0;
  Joules tx_energy = 0.0;
  Joules rx_energy = 0.0;

  [[nodiscard]] Joules total_energy() const noexcept {
    return tx_energy + rx_energy;
  }

  /// Fraction of nodes reached, in [0, 1]; the paper's protocols guarantee
  /// 1.0.
  [[nodiscard]] double reachability() const noexcept {
    return num_nodes == 0
               ? 0.0
               : static_cast<double>(reached) / static_cast<double>(num_nodes);
  }

  [[nodiscard]] bool fully_reached() const noexcept {
    return reached == num_nodes;
  }

  /// One-line human-readable summary for examples and logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace wsn
