#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

/// Aggregate metrics of one broadcast, matching the paper's §4 definitions:
///
///   * tx          -- "total times the message is transmitted by nodes"
///   * rx          -- "total times the message is received" (successful
///                    decodes, duplicates included)
///   * duplicates  -- receptions by nodes that already had the message
///   * collisions  -- (slot, node) events where ≥ 2 neighbors transmitted
///                    simultaneously and nothing was decoded
///   * delay       -- slot of the last first-reception ("time from the
///                    source initiated the broadcast to the time the
///                    broadcast is over", in time slots)
///   * energy      -- E_Tx summed over transmissions plus E_Rx summed over
///                    successful receptions (the paper's accounting; see
///                    DESIGN.md §4)
namespace wsn {

struct BroadcastStats {
  std::size_t num_nodes = 0;
  std::size_t reached = 0;  // nodes holding the message, source included
  std::size_t tx = 0;
  std::size_t rx = 0;
  std::size_t duplicates = 0;
  std::size_t collisions = 0;
  Slot delay = 0;
  Joules tx_energy = 0.0;
  Joules rx_energy = 0.0;

  [[nodiscard]] Joules total_energy() const noexcept {
    return tx_energy + rx_energy;
  }

  /// Fraction of nodes reached, in [0, 1]; the paper's protocols guarantee
  /// 1.0.
  [[nodiscard]] double reachability() const noexcept {
    return num_nodes == 0
               ? 0.0
               : static_cast<double>(reached) / static_cast<double>(num_nodes);
  }

  [[nodiscard]] bool fully_reached() const noexcept {
    return reached == num_nodes;
  }

  /// One-line human-readable summary for examples and logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace wsn
