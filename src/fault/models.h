#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fault/fault_model.h"

/// Concrete fault models.  All are seeded and deterministic: every answer
/// is a pure function of (seed, link/node, slot), independent of query
/// order, so a rerun with the same seed replays the exact same fault
/// pattern -- the property the resilience harness and the determinism
/// tests rely on.  Randomness comes from counter-mode splitmix64 hashing
/// (the same mixer `wsn::random` uses for seeding) rather than a shared
/// sequential stream, which a simulation's data-dependent query pattern
/// would scramble.
namespace wsn {

/// Independent and identically distributed packet loss: each directed link
/// drops each slot's packet with probability `loss_rate`, independently of
/// everything else.  The memoryless baseline of every loss study.
class IidLossModel final : public FaultModel {
 public:
  IidLossModel(double loss_rate, std::uint64_t seed) noexcept;

  [[nodiscard]] bool link_delivers(NodeId tx, NodeId rx,
                                   Slot slot) override;
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

 private:
  double loss_rate_;
  std::uint64_t seed_;
};

/// Gilbert-Elliott bursty loss: each directed link carries a two-state
/// Markov chain (Good/Bad) stepped once per slot; the packet drops with
/// `loss_good` in the Good state and `loss_bad` in the Bad state.  Chains
/// start Good at slot 0 and evolve with per-(link, slot) hashed draws, so
/// the state at any slot is a pure function of the seed -- lazily advanced
/// and memoized per link, reset by `begin_run()`.
class GilbertElliottModel final : public FaultModel {
 public:
  /// Transition probabilities per slot: Good->Bad `p_gb`, Bad->Good
  /// `p_bg`; all probabilities in [0, 1], `p_bg` > 0.
  GilbertElliottModel(double p_gb, double p_bg, double loss_good,
                      double loss_bad, std::uint64_t seed);

  /// Convenience: a chain whose stationary loss is `mean_loss` with mean
  /// bad-burst length `mean_burst` slots (loss_bad = 0.9, loss_good = 0).
  /// Requires mean_loss in [0, 0.9).
  [[nodiscard]] static GilbertElliottModel from_mean_loss(
      double mean_loss, double mean_burst, std::uint64_t seed);

  void begin_run() override { chains_.clear(); }
  [[nodiscard]] bool link_delivers(NodeId tx, NodeId rx,
                                   Slot slot) override;

  /// Long-run fraction of slots a link spends in the Bad state.
  [[nodiscard]] double stationary_bad() const noexcept;

 private:
  struct ChainState {
    Slot slot = 0;
    bool bad = false;
  };

  bool advance_to(std::uint64_t link_key, Slot slot);

  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, ChainState> chains_;
};

/// One node outage: `node` is down for slots in [down_from, up_at);
/// `up_at == kNeverSlot` means it never recovers.
struct CrashEvent {
  NodeId node = kInvalidNode;
  Slot down_from = 0;
  Slot up_at = kNeverSlot;
};

/// Deterministic per-node crash schedule (crash at slot t, optional
/// recovery).  Events are given explicitly or sampled once via `sample`;
/// either way the schedule is fixed data, so replays are exact.
class CrashScheduleModel final : public FaultModel {
 public:
  CrashScheduleModel(std::size_t num_nodes, std::vector<CrashEvent> events);

  /// Samples a schedule: each node independently crashes with probability
  /// `crash_prob`, at a slot uniform in [1, horizon]; a crashed node stays
  /// down `outage_slots` slots (0 = forever).  Seeded, deterministic.
  [[nodiscard]] static CrashScheduleModel sample(std::size_t num_nodes,
                                                 double crash_prob,
                                                 Slot horizon,
                                                 Slot outage_slots,
                                                 std::uint64_t seed);

  [[nodiscard]] bool node_up(NodeId node, Slot slot) override;
  [[nodiscard]] const std::vector<CrashEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<CrashEvent> events_;  // sorted by node
  std::vector<std::uint32_t> first_event_;  // node -> index into events_
};

/// Conjunction of fault models (non-owning): a node is up iff every part
/// says up; a packet survives iff every part delivers it.  Composes e.g.
/// a lossy medium with a crash schedule.
class CompositeFaultModel final : public FaultModel {
 public:
  explicit CompositeFaultModel(std::vector<FaultModel*> parts);

  void begin_run() override;
  [[nodiscard]] bool node_up(NodeId node, Slot slot) override;
  [[nodiscard]] bool link_delivers(NodeId tx, NodeId rx,
                                   Slot slot) override;

 private:
  std::vector<FaultModel*> parts_;
};

}  // namespace wsn
