#include "fault/models.h"

#include <algorithm>

#include "common/assert.h"
#include "common/random.h"

namespace wsn {

namespace {

/// Counter-mode uniform in [0, 1): splitmix64 over the (seed, a, b, c)
/// tuple, mapped to a 53-bit mantissa exactly like Xoshiro256::canonical.
double hashed_canonical(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) noexcept {
  std::uint64_t state = seed;
  state ^= splitmix64(state) + a;
  state ^= splitmix64(state) + b;
  state ^= splitmix64(state) + c;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::uint64_t link_key(NodeId tx, NodeId rx) noexcept {
  return (static_cast<std::uint64_t>(tx) << 32) | rx;
}

}  // namespace

IidLossModel::IidLossModel(double loss_rate, std::uint64_t seed) noexcept
    : loss_rate_(std::clamp(loss_rate, 0.0, 1.0)), seed_(seed) {}

bool IidLossModel::link_delivers(NodeId tx, NodeId rx, Slot slot) {
  if (loss_rate_ <= 0.0) return true;
  return hashed_canonical(seed_, link_key(tx, rx), slot, 0x11d) >=
         loss_rate_;
}

GilbertElliottModel::GilbertElliottModel(double p_gb, double p_bg,
                                         double loss_good, double loss_bad,
                                         std::uint64_t seed)
    : p_gb_(p_gb),
      p_bg_(p_bg),
      loss_good_(loss_good),
      loss_bad_(loss_bad),
      seed_(seed) {
  WSN_EXPECTS(p_gb >= 0.0 && p_gb <= 1.0);
  WSN_EXPECTS(p_bg > 0.0 && p_bg <= 1.0);
  WSN_EXPECTS(loss_good >= 0.0 && loss_good <= 1.0);
  WSN_EXPECTS(loss_bad >= 0.0 && loss_bad <= 1.0);
}

GilbertElliottModel GilbertElliottModel::from_mean_loss(double mean_loss,
                                                        double mean_burst,
                                                        std::uint64_t seed) {
  constexpr double kLossBad = 0.9;
  WSN_EXPECTS(mean_loss >= 0.0 && mean_loss < kLossBad);
  WSN_EXPECTS(mean_burst >= 1.0);
  // Stationary bad share pi_b = p_gb / (p_gb + p_bg); mean burst length
  // 1 / p_bg.  Solve pi_b * kLossBad = mean_loss for p_gb.
  const double p_bg = 1.0 / mean_burst;
  const double pi_b = mean_loss / kLossBad;
  const double p_gb = pi_b >= 1.0 ? 1.0 : p_bg * pi_b / (1.0 - pi_b);
  return GilbertElliottModel(std::min(p_gb, 1.0), p_bg, 0.0, kLossBad, seed);
}

double GilbertElliottModel::stationary_bad() const noexcept {
  return p_gb_ + p_bg_ == 0.0 ? 0.0 : p_gb_ / (p_gb_ + p_bg_);
}

bool GilbertElliottModel::advance_to(std::uint64_t key, Slot slot) {
  ChainState& chain = chains_[key];
  if (slot < chain.slot) chain = ChainState{};  // out-of-order query: replay
  while (chain.slot < slot) {
    chain.slot += 1;
    const double u = hashed_canonical(seed_, key, chain.slot, 0x6eb);
    chain.bad = chain.bad ? u >= p_bg_ : u < p_gb_;
  }
  return chain.bad;
}

bool GilbertElliottModel::link_delivers(NodeId tx, NodeId rx, Slot slot) {
  const std::uint64_t key = link_key(tx, rx);
  const double loss = advance_to(key, slot) ? loss_bad_ : loss_good_;
  if (loss <= 0.0) return true;
  return hashed_canonical(seed_, key, slot, 0x105) >= loss;
}

CrashScheduleModel::CrashScheduleModel(std::size_t num_nodes,
                                       std::vector<CrashEvent> events)
    : events_(std::move(events)) {
  for (const CrashEvent& ev : events_) {
    WSN_EXPECTS(ev.node < num_nodes);
    WSN_EXPECTS(ev.up_at > ev.down_from);
  }
  std::sort(events_.begin(), events_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.node != b.node ? a.node < b.node
                                      : a.down_from < b.down_from;
            });
  first_event_.assign(num_nodes + 1, 0);
  std::size_t i = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    first_event_[v] = static_cast<std::uint32_t>(i);
    while (i < events_.size() && events_[i].node == v) ++i;
  }
  first_event_[num_nodes] = static_cast<std::uint32_t>(i);
}

CrashScheduleModel CrashScheduleModel::sample(std::size_t num_nodes,
                                              double crash_prob,
                                              Slot horizon,
                                              Slot outage_slots,
                                              std::uint64_t seed) {
  WSN_EXPECTS(horizon >= 1);
  Xoshiro256 rng(seed);
  std::vector<CrashEvent> events;
  for (NodeId v = 0; v < num_nodes; ++v) {
    // One draw pair per node regardless of outcome keeps schedules for a
    // given node stable across crash_prob values with the same seed.
    const bool crashes = rng.chance(crash_prob);
    const Slot at = 1 + static_cast<Slot>(rng.below(horizon));
    if (!crashes) continue;
    const Slot up =
        outage_slots == 0 ? kNeverSlot : at + outage_slots;
    events.push_back(CrashEvent{v, at, up});
  }
  return CrashScheduleModel(num_nodes, std::move(events));
}

bool CrashScheduleModel::node_up(NodeId node, Slot slot) {
  for (std::uint32_t i = first_event_[node]; i < first_event_[node + 1];
       ++i) {
    if (slot >= events_[i].down_from && slot < events_[i].up_at) {
      return false;
    }
  }
  return true;
}

CompositeFaultModel::CompositeFaultModel(std::vector<FaultModel*> parts)
    : parts_(std::move(parts)) {
  for (FaultModel* part : parts_) WSN_EXPECTS(part != nullptr);
}

void CompositeFaultModel::begin_run() {
  for (FaultModel* part : parts_) part->begin_run();
}

bool CompositeFaultModel::node_up(NodeId node, Slot slot) {
  for (FaultModel* part : parts_) {
    if (!part->node_up(node, slot)) return false;
  }
  return true;
}

bool CompositeFaultModel::link_delivers(NodeId tx, NodeId rx, Slot slot) {
  for (FaultModel* part : parts_) {
    if (!part->link_delivers(tx, rx, slot)) return false;
  }
  return true;
}

}  // namespace wsn
