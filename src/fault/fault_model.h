#pragma once

#include "common/types.h"

/// Fault injection interface consulted by the simulators.
///
/// The paper's medium is perfect: every transmission reaches every
/// neighbor, and the only loss mechanism is the (fully predictable)
/// collision.  A `FaultModel` punches holes in that assumption -- per-link
/// packet loss and per-node crash windows -- without touching the
/// slot-synchronous semantics: the simulator asks, for each directed
/// (transmitter, receiver) pair in each slot, whether the packet survives,
/// and for each node whether its radio is operational that slot.
///
/// Contract:
///
///   * `begin_run()` is called once by the simulator before the first
///     slot; implementations reset any per-run caches there so the same
///     model instance can score several runs (the resolver simulates
///     repeatedly).  Two runs of the same model + seed + plan must produce
///     identical answers -- fault injection is seeded, never wall-clock
///     random.
///   * `node_up(v, s)` false means v neither transmits nor receives in
///     slot s.  A scheduled transmission during an outage is lost, not
///     deferred (the radio was off when its timer fired).
///   * `link_delivers(tx, rx, s)` false means rx does not decode tx's
///     packet in slot s.  A faded packet also contributes no interference:
///     loss models signal below the decode *and* carrier-sense thresholds,
///     the standard packet-level abstraction (cf. Xin & Xia's noisy-mesh
///     evaluation).  Queried once per directed link per slot, only for
///     links whose transmitter actually fired.
///
/// Implementations may keep mutable per-link state (the Gilbert-Elliott
/// chain does); therefore one model instance must not be shared by
/// concurrent simulations -- Monte-Carlo harnesses construct one per
/// trial (see analysis/resilience.h).
namespace wsn {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Resets per-run state; the simulator calls it before slot 0.
  virtual void begin_run() {}

  /// True if `node`'s radio is operational during `slot`.
  [[nodiscard]] virtual bool node_up([[maybe_unused]] NodeId node,
                                     [[maybe_unused]] Slot slot) {
    return true;
  }

  /// True if the packet on the directed link tx -> rx survives `slot`.
  [[nodiscard]] virtual bool link_delivers([[maybe_unused]] NodeId tx,
                                           [[maybe_unused]] NodeId rx,
                                           [[maybe_unused]] Slot slot) {
    return true;
  }
};

}  // namespace wsn
