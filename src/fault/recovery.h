#pragma once

#include <string_view>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Online-recovery policies: plan rewrites that buy fault tolerance with
/// bounded extra transmissions.
///
/// The paper's plans are minimal by design -- most nodes get the message
/// exactly once -- which makes them maximally fragile: any single lost
/// packet strands a subtree.  A recovery policy takes a `RelayPlan` and
/// returns an augmented plan whose redundancy bounds that damage.  The
/// output is an ordinary plan, so every retransmission's Tx/energy/delay
/// cost flows through the simulator's normal accounting and the resilience
/// harness can price the policy exactly.
///
///   * repeat-k: every relay (source included) transmits its whole offset
///     pattern k times, each repetition shifted by the pattern's span.
///     Protocol-agnostic brute redundancy; Tx cost is exactly k times the
///     base plan's.
///   * echo-repair: targeted redundancy.  A fault-free simulation finds
///     the *fragile* nodes -- those with exactly one successful reception,
///     for whom any single loss is fatal -- and schedules one extra "echo"
///     from a neighboring holder of the message after the plan's timeline,
///     packed into slots under the resolver's 2-hop separation rule so
///     echoes never collide.  Cost scales with the number of fragile
///     nodes, not with the plan size.
namespace wsn {

enum class RecoveryPolicy {
  kNone,        // the unmodified plan
  kRepeatK,     // repeat the whole schedule k times
  kEchoRepair,  // redundant helpers for single-reception nodes
  kAdaptive,    // run-time NACK/backoff ARQ (fault/adaptive.h)
};

/// Short stable tag used in CSV output and CLIs: "none", "repeat-k",
/// "echo-repair", "adaptive".
[[nodiscard]] std::string_view to_string(RecoveryPolicy policy) noexcept;

/// Parses the tags accepted by `to_string`; aborts on anything else.
[[nodiscard]] RecoveryPolicy parse_recovery_policy(std::string_view name);

/// Repeat-k: each relay's offsets {o_1..o_m} become k concatenated copies,
/// copy r shifted by r * o_m.  `k` >= 1; k == 1 returns the plan
/// unchanged.  planned_tx() of the result is exactly k times the input's.
[[nodiscard]] RelayPlan repeat_k(RelayPlan plan, unsigned k);

/// Echo-repair: one extra transmission per fragile-node cluster, placed in
/// fresh slots after the plan's fault-free timeline ends.  `options`
/// configures the probe simulation (leave defaulted unless the plan is
/// meant for a non-default medium).
[[nodiscard]] RelayPlan echo_repair(const Topology& topo, RelayPlan plan,
                                    const SimOptions& options = {});

/// Applies `policy` (`k` is the repeat-k factor; ignored otherwise).
[[nodiscard]] RelayPlan apply_recovery(const Topology& topo, RelayPlan plan,
                                       RecoveryPolicy policy,
                                       unsigned k = 2);

}  // namespace wsn
