#include "fault/link_estimator.h"

#include <algorithm>

#include "common/assert.h"

namespace wsn {

std::vector<double> estimate_link_quality(const Topology& topo,
                                          FaultModel& model,
                                          const LinkEstimatorConfig& config) {
  WSN_EXPECTS(config.probe_rounds >= 1);
  WSN_EXPECTS(config.slot_stride >= 1);
  WSN_EXPECTS(config.min_delivery > 0.0 && config.min_delivery <= 1.0);

  model.begin_run();
  std::vector<double> quality;
  quality.reserve(topo.num_directed_links());
  const double inv_rounds = 1.0 / static_cast<double>(config.probe_rounds);
  for (NodeId tx = 0; tx < topo.num_nodes(); ++tx) {
    for (NodeId rx : topo.neighbors(tx)) {
      std::size_t delivered = 0;
      // Probe slots start at 1 (slot 0 is the source's own epoch) and
      // advance by the stride; per-link chains (Gilbert-Elliott) are
      // walked forward monotonically, which is their cheap direction.
      for (std::size_t round = 0; round < config.probe_rounds; ++round) {
        const Slot slot =
            1 + static_cast<Slot>(round) * config.slot_stride;
        if (model.link_delivers(tx, rx, slot)) delivered += 1;
      }
      const double p = static_cast<double>(delivered) * inv_rounds;
      quality.push_back(std::clamp(p, config.min_delivery, 1.0));
    }
  }
  return quality;
}

void learn_link_quality(Topology& topo, FaultModel& model,
                        const LinkEstimatorConfig& config) {
  topo.set_link_quality(estimate_link_quality(topo, model, config));
}

double broadcast_etx(const Topology& topo, NodeId node) {
  double min_delivery = 1.0;
  for (NodeId rx : topo.neighbors(node)) {
    min_delivery = std::min(min_delivery, topo.link_delivery(node, rx));
  }
  return 1.0 / min_delivery;
}

}  // namespace wsn
