#pragma once

#include <cstddef>
#include <span>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Adaptive recovery: NACK/timeout-driven retransmission with capped
/// exponential backoff and a retry budget.
///
/// The static policies in fault/recovery.h spend their redundancy blind:
/// repeat-k pays k times the plan whether or not anything was lost.  The
/// adaptive scheme spends only on observed damage.  After the plan's
/// timeline runs out, nodes that never decoded the message are treated as
/// having NACKed (equivalently: their neighbors' delivery timers expired),
/// and for each stranded node one neighboring holder retransmits.  Waves
/// of retransmissions are separated by an exponentially growing, capped
/// backoff gap -- bursty channels (Gilbert-Elliott) that ate one wave are
/// given time to leave the bad state before the next -- and the whole
/// recovery is bounded by a retry budget.  When the budget (or the round
/// limit) is exhausted the broadcast degrades gracefully: the outcome
/// reports partial coverage and the report says exactly how many nodes
/// stayed unrepaired; nothing aborts.
///
/// Determinism & replay: the fault models are counter-mode -- every
/// loss is a pure function of (seed, link, slot) -- and every retry wave
/// is scheduled strictly after the previous timeline's last transmission,
/// so re-simulating an augmented plan replays the identical prefix (the
/// resolver's trick).  The iterative probe-and-repair loop is therefore
/// exactly equivalent to a single run of the final plan, which is what
/// gets executed under the caller's observer.
///
/// Link awareness: when a CSR quality span (or the topology's annotation)
/// is available, each stranded node's helper is the message-holding
/// neighbor with the *best delivery probability toward it* -- retries ride
/// the good links -- falling back to the resolver's earliest-reached
/// tie-break on a quality-less medium.
namespace wsn {

struct AdaptiveArqConfig {
  /// Maximum repair waves.  Each wave retransmits toward every stranded
  /// node at most once, so coverage grows monotonically across waves.
  std::size_t max_rounds = 8;
  /// Backoff gap (slots) between a timeline's end and wave 0; doubles per
  /// wave.  Must be >= 1.
  Slot base_backoff = 2;
  /// Cap on the backoff gap.
  Slot max_backoff = 32;
  /// Total extra transmissions the recovery may spend across all waves.
  std::size_t retry_budget = 256;
};

struct AdaptiveArqReport {
  /// Repair waves actually scheduled.
  std::size_t rounds = 0;
  /// Extra transmissions spent (<= config.retry_budget).
  std::size_t retries = 0;
  /// Echo of config.retry_budget, for downstream accounting (audit).
  std::size_t budget = 0;
  /// True when recovery stopped because the budget ran out with stranded
  /// nodes remaining.
  bool budget_exhausted = false;
  /// Nodes still without the message when recovery stopped (0 = full
  /// coverage).  Includes crashed and disconnected nodes.
  std::size_t unrepaired = 0;
};

/// Runs `base_plan` under `options` with adaptive recovery on top and
/// returns the final outcome (observed under `options.observer`, if any).
/// `quality` is an optional CSR-ordered delivery-probability span used for
/// helper selection; empty falls back to the topology's own annotation
/// (which may also be absent).  `options.battery` must be null: battery
/// drain is stateful across runs and would make the probe loop diverge
/// from the final replay.
[[nodiscard]] BroadcastOutcome run_adaptive_arq(
    const Topology& topo, const RelayPlan& base_plan,
    const SimOptions& options = {}, const AdaptiveArqConfig& config = {},
    AdaptiveArqReport* report = nullptr,
    std::span<const double> quality = {});

}  // namespace wsn
