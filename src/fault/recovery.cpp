#include "fault/recovery.h"

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "protocol/resolver.h"

namespace wsn {

std::string_view to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kNone:
      return "none";
    case RecoveryPolicy::kRepeatK:
      return "repeat-k";
    case RecoveryPolicy::kEchoRepair:
      return "echo-repair";
    case RecoveryPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

RecoveryPolicy parse_recovery_policy(std::string_view name) {
  if (name == "none") return RecoveryPolicy::kNone;
  if (name == "repeat-k") return RecoveryPolicy::kRepeatK;
  if (name == "echo-repair") return RecoveryPolicy::kEchoRepair;
  if (name == "adaptive") return RecoveryPolicy::kAdaptive;
  WSN_EXPECTS(false && "unknown recovery policy");
  return RecoveryPolicy::kNone;
}

RelayPlan repeat_k(RelayPlan plan, unsigned k) {
  WSN_EXPECTS(k >= 1);
  if (k == 1) return plan;
  for (auto& offsets : plan.tx_offsets) {
    if (offsets.empty()) continue;
    const std::size_t base = offsets.size();
    const Slot period = offsets.back();
    offsets.reserve(base * k);
    for (unsigned r = 1; r < k; ++r) {
      for (std::size_t i = 0; i < base; ++i) {
        // Strictly increasing: copy r starts at o_1 + r*o_m > r*o_m, the
        // previous copy's last offset.
        offsets.push_back(offsets[i] + static_cast<Slot>(r) * period);
      }
    }
  }
  plan.validate();
  return plan;
}

namespace {

/// Per-node successful-decode counts of a finished broadcast, recomputed
/// from its transmission log under the simulator's medium rules (single
/// transmitting neighbor, receiver not itself transmitting).  Also records
/// each node's deliverer when it decoded exactly once.
struct DecodeCensus {
  std::vector<std::uint32_t> decodes;
  std::vector<NodeId> sole_deliverer;
};

DecodeCensus census_decodes(const Topology& topo,
                            const BroadcastOutcome& outcome) {
  const std::size_t n = topo.num_nodes();
  DecodeCensus census{std::vector<std::uint32_t>(n, 0),
                      std::vector<NodeId>(n, kInvalidNode)};

  std::map<Slot, std::vector<NodeId>> by_slot;
  for (const TxRecord& rec : outcome.transmissions) {
    by_slot[rec.slot].push_back(rec.node);
  }

  std::vector<std::uint32_t> hear_count(n, 0);
  std::vector<NodeId> heard_from(n, kInvalidNode);
  std::vector<char> is_transmitting(n, 0);
  std::vector<NodeId> touched;
  for (const auto& [slot, transmitters] : by_slot) {
    for (NodeId v : transmitters) is_transmitting[v] = 1;
    touched.clear();
    for (NodeId v : transmitters) {
      for (NodeId u : topo.neighbors(v)) {
        if (hear_count[u] == 0) touched.push_back(u);
        hear_count[u] += 1;
        heard_from[u] = v;
      }
    }
    for (NodeId u : touched) {
      const std::uint32_t contenders = hear_count[u];
      hear_count[u] = 0;
      if (is_transmitting[u] || contenders != 1) continue;
      census.decodes[u] += 1;
      census.sole_deliverer[u] =
          census.decodes[u] == 1 ? heard_from[u] : kInvalidNode;
    }
    for (NodeId v : transmitters) is_transmitting[v] = 0;
  }
  return census;
}

}  // namespace

RelayPlan echo_repair(const Topology& topo, RelayPlan plan,
                      const SimOptions& options) {
  const std::size_t n = topo.num_nodes();
  WSN_EXPECTS(plan.num_nodes() == n);

  const BroadcastOutcome outcome = simulate_broadcast(topo, plan, options);
  const DecodeCensus census = census_decodes(topo, outcome);

  Slot t_end = 1;
  for (const TxRecord& rec : outcome.transmissions) {
    t_end = std::max(t_end, rec.slot);
  }

  // Fragile: reached with a single successful decode -- one lost packet
  // away from being stranded.  (Unreached nodes are the resolver's
  // problem, not a recovery policy's.)
  std::vector<char> fragile(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (u != plan.source && outcome.first_rx[u] != kNeverSlot &&
        census.decodes[u] == 1) {
      fragile[u] = 1;
    }
  }

  // One echo covers every fragile neighbor of its helper at once; prefer a
  // helper other than the node's sole deliverer so the two deliveries ride
  // independent links.
  std::vector<NodeId> helpers;
  std::vector<char> covered(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (!fragile[u] || covered[u]) continue;
    NodeId helper = kInvalidNode;
    Slot helper_rx = kNeverSlot;
    bool helper_is_deliverer = true;
    for (NodeId h : topo.neighbors(u)) {
      if (outcome.first_rx[h] == kNeverSlot) continue;
      const bool is_deliverer = h == census.sole_deliverer[u];
      const bool better =
          helper == kInvalidNode ||
          (helper_is_deliverer && !is_deliverer) ||
          (helper_is_deliverer == is_deliverer &&
           (outcome.first_rx[h] < helper_rx ||
            (outcome.first_rx[h] == helper_rx && h < helper)));
      if (better) {
        helper = h;
        helper_rx = outcome.first_rx[h];
        helper_is_deliverer = is_deliverer;
      }
    }
    if (helper == kInvalidNode) continue;
    helpers.push_back(helper);
    for (NodeId w : topo.neighbors(helper)) {
      if (fragile[w]) covered[w] = 1;
    }
  }

  // Pack echoes into fresh slots after the timeline, 2-hop-separated (the
  // resolver's rule), so concurrent echoes cannot collide at any receiver.
  std::vector<std::vector<NodeId>> slots;
  for (NodeId h : helpers) {
    std::size_t s = 0;
    for (;; ++s) {
      if (s == slots.size()) {
        slots.emplace_back();
        break;
      }
      const bool clash = std::any_of(
          slots[s].begin(), slots[s].end(),
          [&](NodeId other) { return within_two_hops(topo, h, other); });
      if (!clash) break;
    }
    slots[s].push_back(h);

    const Slot tx_slot = t_end + 1 + static_cast<Slot>(s);
    const Slot rx_slot = outcome.first_rx[h];
    auto& offsets = plan.tx_offsets[h];
    const Slot offset = tx_slot - rx_slot;
    WSN_ASSERT(offsets.empty() || offset > offsets.back());
    offsets.push_back(offset);
  }
  plan.validate();
  return plan;
}

RelayPlan apply_recovery(const Topology& topo, RelayPlan plan,
                         RecoveryPolicy policy, unsigned k) {
  switch (policy) {
    case RecoveryPolicy::kNone:
      return plan;
    case RecoveryPolicy::kRepeatK:
      return repeat_k(std::move(plan), k);
    case RecoveryPolicy::kEchoRepair:
      return echo_repair(topo, std::move(plan));
    case RecoveryPolicy::kAdaptive:
      // Adaptation happens at run time (fault/adaptive.h's ARQ loop), not
      // as a plan rewrite; callers route kAdaptive to run_adaptive_arq.
      return plan;
  }
  return plan;
}

}  // namespace wsn
