#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fault/fault_model.h"
#include "topology/topology.h"

/// Seeded link-quality estimation: learn per-edge ETX from probe rounds.
///
/// A deployment never knows its delivery probabilities a priori; it learns
/// them by counting acknowledged probes (the ETX estimator of De Couto et
/// al., carried into every serious mesh stack since -- cf. Meshtastic's
/// SNR-driven SignalRouting).  This module reproduces that measurement
/// offline: for each directed CSR link it asks the fault model whether a
/// probe packet would have survived each of `probe_rounds` probe slots and
/// reports the empirical delivery fraction, aligned with the topology's
/// CSR order so the result drops straight into
/// `Topology::set_link_quality` or the ETX planner's quality span.
///
/// Determinism: the fault models are counter-mode hashes of
/// (seed, link, slot), so the estimate is a pure function of
/// (model seed, config) -- rerunning the estimator replays the exact same
/// probes.  Probe slots are spread with a stride so bursty (Gilbert-
/// Elliott) channels are sampled across many coherence times instead of
/// inside one burst, giving an estimate of the *stationary* delivery rate.
namespace wsn {

struct LinkEstimatorConfig {
  /// Probes per directed link.  64 bounds the estimate's standard error
  /// near 0.06 -- enough to rank links, cheap enough to run per job.
  std::size_t probe_rounds = 64;
  /// Slot distance between consecutive probes of one link.  Larger
  /// strides decorrelate the samples of bursty channels; 7 clears the
  /// default Gilbert-Elliott burst length (4) with margin.
  Slot slot_stride = 7;
  /// Lower clamp on the reported delivery probability.  A link that
  /// drops every probe still has *some* capacity (the estimator just
  /// missed it); clamping keeps ETX = 1/p finite and planner weights
  /// totally ordered.
  double min_delivery = 1.0 / 64.0;
};

/// Probes every directed link of `topo` against `model` and returns the
/// empirical per-link delivery probabilities in CSR order (values in
/// [min_delivery, 1]).  `model` is reset via `begin_run()` first and left
/// in an unspecified probe state -- pass a dedicated instance, not the one
/// a simulation is about to consume.
[[nodiscard]] std::vector<double> estimate_link_quality(
    const Topology& topo, FaultModel& model,
    const LinkEstimatorConfig& config = {});

/// Convenience: estimates and installs the annotation on `topo`.
void learn_link_quality(Topology& topo, FaultModel& model,
                        const LinkEstimatorConfig& config = {});

/// Expected transmissions to cover all of `node`'s neighbors in one
/// broadcast slot-series under the quality annotation: the planner's
/// per-relay ETX weight.  With quality `p_i` per out-link, a broadcast
/// transmission is "useful" to neighbor i with probability p_i; the
/// bottleneck neighbor dominates, so the weight is 1 / min_i p_i (1.0
/// for perfect links or isolated nodes).
[[nodiscard]] double broadcast_etx(const Topology& topo, NodeId node);

}  // namespace wsn
