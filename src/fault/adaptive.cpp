#include "fault/adaptive.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "protocol/resolver.h"

namespace wsn {

BroadcastOutcome run_adaptive_arq(const Topology& topo,
                                  const RelayPlan& base_plan,
                                  const SimOptions& options,
                                  const AdaptiveArqConfig& config,
                                  AdaptiveArqReport* report,
                                  std::span<const double> quality) {
  const std::size_t n = topo.num_nodes();
  WSN_EXPECTS(base_plan.num_nodes() == n);
  WSN_EXPECTS(config.base_backoff >= 1);
  WSN_EXPECTS(config.max_backoff >= config.base_backoff);
  WSN_EXPECTS(options.battery == nullptr);
  WSN_EXPECTS(quality.empty() ||
              quality.size() == topo.num_directed_links());

  const auto delivery = [&](NodeId a, NodeId b) {
    if (quality.empty()) return topo.link_delivery(a, b);
    const std::size_t index = topo.link_index(a, b);
    return index == Topology::kNoLink ? 1.0 : quality[index];
  };

  // Probe runs are recovery internals, like the resolver's: they must not
  // leak events into the caller's observer.
  SimOptions probe_options = options;
  probe_options.observer = nullptr;

  AdaptiveArqReport local;
  local.budget = config.retry_budget;
  std::size_t budget = config.retry_budget;

  RelayPlan plan = base_plan;
  Simulator sim(n);

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    const BroadcastOutcome outcome = sim.run(topo, plan, probe_options);
    const std::vector<NodeId> unreached = outcome.unreached();
    if (unreached.empty()) break;
    if (budget == 0) {
      local.budget_exhausted = true;
      break;
    }

    Slot t_end = 1;
    for (const TxRecord& rec : outcome.transmissions) {
      t_end = std::max(t_end, rec.slot);
    }
    // Capped exponential backoff between the dead timeline and this wave;
    // bursty channels get time to leave the bad state before we respend.
    const std::uint64_t raw = static_cast<std::uint64_t>(config.base_backoff)
                              << std::min<std::size_t>(round, 32);
    const Slot gap = static_cast<Slot>(
        std::min<std::uint64_t>(raw, config.max_backoff));

    std::vector<char> is_unreached(n, 0);
    for (NodeId u : unreached) is_unreached[u] = 1;

    // One helper transmission covers all of its stranded neighbors at
    // once.  Prefer the holder with the best delivery probability toward
    // the stranded node (ride the good links); tie-break by earliest
    // reception, then lowest id -- the resolver's deterministic order.
    std::vector<NodeId> helpers;
    std::vector<char> covered(n, 0);
    for (NodeId u : unreached) {
      if (covered[u]) continue;
      NodeId helper = kInvalidNode;
      double helper_p = -1.0;
      Slot helper_rx = kNeverSlot;
      for (NodeId h : topo.neighbors(u)) {
        if (outcome.first_rx[h] == kNeverSlot) continue;  // no message
        const double p = delivery(h, u);
        const bool better =
            p > helper_p ||
            (p == helper_p && (outcome.first_rx[h] < helper_rx ||
                               (outcome.first_rx[h] == helper_rx &&
                                h < helper)));
        if (better) {
          helper = h;
          helper_p = p;
          helper_rx = outcome.first_rx[h];
        }
      }
      if (helper == kInvalidNode) continue;  // deeper in the void
      helpers.push_back(helper);
      for (NodeId w : topo.neighbors(helper)) {
        if (is_unreached[w]) covered[w] = 1;
      }
    }
    if (helpers.empty()) break;  // remainder disconnected or crashed

    // Pack the wave into fresh slots after the backoff gap, serializing
    // helpers within 2 hops of each other so retries never collide.
    std::vector<std::vector<NodeId>> slots;
    bool spent_any = false;
    for (NodeId h : helpers) {
      if (budget == 0) {
        local.budget_exhausted = true;
        break;
      }
      std::size_t s = 0;
      for (;; ++s) {
        if (s == slots.size()) {
          slots.emplace_back();
          break;
        }
        const bool clash = std::any_of(
            slots[s].begin(), slots[s].end(),
            [&](NodeId other) { return within_two_hops(topo, h, other); });
        if (!clash) break;
      }
      slots[s].push_back(h);

      const Slot tx_slot = t_end + gap + static_cast<Slot>(s);
      const Slot rx_slot = outcome.first_rx[h];
      WSN_ASSERT(tx_slot > rx_slot);
      auto& offsets = plan.tx_offsets[h];
      const Slot offset = tx_slot - rx_slot;
      WSN_ASSERT(offsets.empty() || offset > offsets.back());
      offsets.push_back(offset);
      budget -= 1;
      local.retries += 1;
      spent_any = true;
    }
    if (!spent_any) break;
    local.rounds += 1;
  }

  // The final plan replays the identical prefix (counter-mode faults, all
  // retries appended past the old timeline), now under the caller's
  // observer.
  const BroadcastOutcome final_outcome = sim.run(topo, plan, options);
  local.unrepaired = final_outcome.unreached().size();
  if (local.unrepaired > 0 && budget == 0) local.budget_exhausted = true;
  if (report != nullptr) *report = local;
  return final_outcome;
}

}  // namespace wsn
