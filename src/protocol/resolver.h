#pragma once

#include <cstddef>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Deterministic collision-repair resolver.
///
/// The paper's protocols achieve 100% reachability by scheduling
/// retransmissions wherever the (fully predictable) collisions would
/// otherwise strand a node: "since the topology of the network is
/// predetermined, we know where the collision will occur and which node
/// needs to retransmit the message" (§3.3).  For the 2D-4/2D-8/3D-6
/// topologies the paper spells out the main retransmission rules and we
/// implement them in the protocol plans; for the remaining cases (2D-3
/// repairs, border wedges in 2D-8, staggered 3D-6 borders) this resolver
/// derives the missing retransmissions offline, exactly in that spirit.
///
/// Algorithm: simulate the plan; while nodes remain unreached, walk them in
/// BFS order from the reached region and give each one a *helper* -- a
/// neighbor that already holds the message -- an extra transmission in a
/// fresh slot after the plan's activity has quieted.  Repairs are packed
/// greedily into slots subject to a 2-hop separation between helpers, so
/// concurrent repairs can never collide at anyone's receiver.  Because
/// every repair lands after the previous timeline ended, the simulation
/// prefix is unchanged and each round strictly grows the reached set;
/// termination in ≤ eccentricity rounds is guaranteed.
///
/// The repairs become ordinary plan offsets, so every reported Tx / energy
/// / delay number includes their full cost.
namespace wsn {

struct ResolveReport {
  /// Extra transmissions added across all rounds.
  std::size_t repairs = 0;
  /// Simulate-and-repair rounds executed (0 = plan was already complete).
  std::size_t rounds = 0;
  /// Nodes that could not be repaired (disconnected from the source);
  /// always 0 on connected topologies.
  std::size_t unreachable = 0;
  /// Nodes still unreached when the resolver stopped -- the disconnected
  /// remainder, or (never observed in practice) nodes left over if the
  /// round budget were exhausted.  0 means the returned plan reaches
  /// everyone; callers needing graceful degradation branch on this
  /// instead of trusting full reachability.
  std::size_t unrepaired = 0;
};

/// Returns `plan` augmented with repair transmissions until a simulation
/// under `options` reaches every node connected to the source.  Pure:
/// deterministic in its inputs.  `options.observer` is ignored: probe
/// simulations are construction internals and never emit events/metrics.
[[nodiscard]] RelayPlan resolve_full_reachability(
    const Topology& topo, RelayPlan plan, const SimOptions& options = {},
    ResolveReport* report = nullptr);

/// True if `a` and `b` are within 2 hops: adjacent, or sharing a neighbor.
/// Two transmitters this close must not share a slot -- a common neighbor
/// would see both and decode nothing.  Exposed for the echo-repair
/// recovery policy (fault/recovery.h), which packs redundant helpers into
/// slots under the same separation rule as the resolver's repairs.
[[nodiscard]] bool within_two_hops(const Topology& topo, NodeId a, NodeId b);

}  // namespace wsn
