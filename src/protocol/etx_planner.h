#pragma once

#include <span>

#include "protocol/broadcast_protocol.h"
#include "protocol/resolver.h"
#include "sim/simulator.h"

/// Link-quality-aware relay planning: select relays by minimum expected
/// transmission count (ETX) instead of pure geometry.
///
/// The paper's constructions assume every transmission is heard; on a
/// lossy medium the right relay is not the geometrically ideal one but the
/// one whose links actually deliver (De Couto's ETX metric; Xin & Xia's
/// latency-optimal broadcast on noisy meshes builds the same way).  This
/// planner works from per-directed-link delivery probabilities -- the
/// topology's `link_quality()` annotation, or an explicit CSR-ordered
/// span -- and greedily picks, ring by BFS ring, the relay whose single
/// transmission is *expected* to deliver the most still-unsatisfied
/// coverage mass:
///
///     gain(c) = Σ_{u ∈ N(c), unsatisfied} p(c,u) · miss(u)
///
/// where miss(u) = Π (1 - p(r,u)) over the relays already covering u.  A
/// node counts satisfied once its cumulative delivery probability reaches
/// `target_delivery`, so bad links buy redundant coverage and good links
/// buy none -- expected transmissions are minimized for the coverage
/// demanded.  Runtime losses beyond the target are the adaptive-ARQ
/// recovery layer's job (fault/adaptive.h), not the plan's.
///
/// Reduction to the paper: when every link is perfect the ETX metric
/// carries no information beyond hop count, and on the four regular
/// families the paper's geometric construction *is* the ETX-optimal relay
/// set (Tables 1-2 prove its transmission count optimal).  The planner
/// therefore detects the perfect-quality case and emits the paper plan
/// unchanged -- the reduction the acceptance tests pin down -- falling
/// back to the unit-weight greedy only off the regular families.
///
/// The output is an ordinary resolved `RelayPlan` (100% reachability on
/// the ideal channel), so the plan store, simulator and audit pipeline
/// consume it unchanged.
namespace wsn {

class EtxRelayPlanner final : public BroadcastProtocol {
 public:
  struct Config {
    /// Cumulative delivery probability at which a node counts covered.
    double target_delivery = 0.75;
    /// Smallest expected-coverage gain worth a relay.  Nodes reachable
    /// only through worse links are left to the resolver (ideal channel)
    /// and the ARQ layer (lossy channel).
    double min_gain = 0.2;
    /// ETX clamp: delivery probabilities below this are treated as this.
    double min_delivery = 1.0 / 64.0;
    /// Forwarding stagger window (the CDS planner's collision breaker).
    Slot stagger_window = 2;
  };

  EtxRelayPlanner() = default;
  explicit EtxRelayPlanner(Config config) noexcept : config_(config) {}

  /// Plans by the topology's own `link_quality()` annotation (perfect
  /// medium when absent).  The returned plan is *unresolved*; call
  /// `etx_plan` for the resolved form.
  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;

  /// Same, with an explicit CSR-ordered quality span overriding the
  /// topology's annotation -- what concurrent scenario jobs use, since a
  /// shared Topology must not be annotated per job.  Empty = perfect.
  [[nodiscard]] RelayPlan plan_with_quality(
      const Topology& topo, NodeId source,
      std::span<const double> quality) const;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
};

/// The full pipeline: ETX relay selection + deterministic collision-repair
/// resolution to 100% ideal-channel reachability.  `quality` empty means
/// "use the topology's annotation".  `report` receives the resolver's
/// account when non-null.
[[nodiscard]] RelayPlan etx_plan(const Topology& topo, NodeId source,
                                 std::span<const double> quality = {},
                                 const SimOptions& options = {},
                                 ResolveReport* report = nullptr,
                                 const EtxRelayPlanner::Config& config = {});

}  // namespace wsn
