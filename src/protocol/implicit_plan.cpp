#include "protocol/implicit_plan.h"

#include <utility>

#include "common/assert.h"
#include "obs/profile.h"
#include "protocol/mesh2d3_broadcast.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/mesh2d8_broadcast.h"
#include "protocol/mesh3d6_broadcast.h"
#include "protocol/resolver_core.h"
#include "topology/grid2d.h"
#include "topology/grid3d.h"

namespace wsn {

RelayPlan implicit_protocol_plan(const ImplicitLattice& lat, NodeId source) {
  WSN_SPAN("plan.build");
  const std::string& family = lat.family();
  if (family == "3D-6") {
    const Grid3D grid(lat.m(), lat.n(), lat.l(), lat.spacing());
    return Mesh3d6Broadcast::plan_on_grid(grid, source);
  }
  const Grid2D grid(lat.m(), lat.n(), lat.spacing());
  if (family == "2D-3") return Mesh2d3Broadcast::plan_on_grid(grid, source);
  if (family == "2D-4") return Mesh2d4Broadcast::plan_on_grid(grid, source);
  if (family == "2D-8") return Mesh2d8Broadcast::plan_on_grid(grid, source);
  WSN_EXPECTS(false && "no paper protocol for this lattice family");
  return RelayPlan::empty(lat.num_nodes(), source);
}

RelayPlan implicit_resolve_full_reachability(const ImplicitLattice& lat,
                                             RelayPlan plan,
                                             const SimOptions& options,
                                             ResolveReport* report) {
  std::string why;
  WSN_EXPECTS(BulkSimulator::options_supported(options, &why) &&
              "bulk resolver requires bulk-supported SimOptions");
  BulkSimulator sim(lat.num_nodes());
  return resolver_core::resolve_full_reachability(lat, std::move(plan),
                                                  options, report, sim);
}

RelayPlan implicit_paper_plan(const ImplicitLattice& lat, NodeId source,
                              const SimOptions& options,
                              ResolveReport* report) {
  RelayPlan plan = implicit_protocol_plan(lat, source);
  WSN_SPAN("plan.resolve");
  return implicit_resolve_full_reachability(lat, std::move(plan), options,
                                            report);
}

}  // namespace wsn
