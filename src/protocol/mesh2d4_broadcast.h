#pragma once

#include "protocol/broadcast_protocol.h"
#include "topology/mesh2d4.h"

/// The 2D-4 broadcasting protocol (paper §3.1).
///
/// With source (i, j) on an m×n mesh:
///
///   * every node of row j relays (the X-axis sweep; each hop advances the
///     wavefront one column and covers the two vertical neighbors);
///   * every node of the *relay columns* x = i + 3k relays along Y; the
///     spacing of 3 works because a vertical transmission also covers the
///     two adjacent columns;
///   * border columns 1 / m are added when column 2 / m-1 is not a relay
///     column (otherwise nobody covers them);
///   * the row nodes at x = i+1+3k and x = i-1-3k transmit simultaneously
///     with the first vertical hop of the adjacent relay column, colliding
///     at their vertical neighbors -- the paper resolves this by letting
///     exactly those row nodes retransmit one slot later (the gray nodes of
///     Fig. 5).
///
/// Most relays reach the optimal ETR of 3/4; the paper's evaluation finds
/// this topology the overall winner on power.
namespace wsn {

class Mesh2d4Broadcast final : public BroadcastProtocol {
 public:
  /// Collision-handling policy.  The paper argues for kRetransmit (§3.1);
  /// kDelayAvoidance implements the alternative it rejects -- delaying the
  /// vertical sweeps one extra slot so the colliding transmissions never
  /// overlap -- and exists for the ablation bench.
  enum class CollisionPolicy { kRetransmit, kDelayAvoidance };

  explicit Mesh2d4Broadcast(
      CollisionPolicy policy = CollisionPolicy::kRetransmit) noexcept
      : policy_(policy) {}

  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override;

  /// The plan computed directly from grid coordinates.  `plan` delegates
  /// here; the implicit-lattice path (protocol/implicit_plan.h) calls it
  /// with a free-standing Grid2D, never materializing a Topology.
  [[nodiscard]] static RelayPlan plan_on_grid(
      const Grid2D& grid, NodeId source,
      CollisionPolicy policy = CollisionPolicy::kRetransmit);

  /// True if x is a relay column for source column i on width-m mesh,
  /// including the border-column rule.  Exposed for tests and for the 3D-6
  /// protocol, which reuses the 2D-4 plan per plane.
  [[nodiscard]] static bool is_relay_column(int x, int i, int m) noexcept;

  /// True if (x, j) is one of the designated retransmitting row nodes
  /// (x = i+1+3k to the right, x = i-1-3k to the left).
  [[nodiscard]] static bool is_row_retransmitter(int x, int i,
                                                 int m) noexcept;

  /// Closed-form transmission count of a full broadcast from column `i` on
  /// an m×n mesh under the retransmit policy:
  ///
  ///   Tx = m  (the X-axis sweep)
  ///      + #retransmitters           (their second transmissions)
  ///      + #relay_columns · (n - 1)  (the Y sweeps, off-row cells)
  ///
  /// Valid because the protocol reaches every node (property-tested), so
  /// every planned transmission happens.  The row index j does not enter.
  /// The paper's Table 3/4 envelope is exactly {min, max} of this over i.
  [[nodiscard]] static std::size_t analytic_tx_count(int i, int m,
                                                     int n) noexcept;

  /// Closed-form relay-mean ETR of a full broadcast from (i, j) on an m×n
  /// mesh (retransmit policy): the mean of fresh/degree over all
  /// non-source transmissions, computed without simulating.
  ///
  /// Works because the protocol's delivery tree is predictable: every
  /// non-source node has a unique *parent* (the transmitter of its first
  /// decode) -- its row neighbor toward i on the source row, the source
  /// row node below/above it on rows j±1, the previous cell of its column
  /// sweep in a relay column, and otherwise the nearest-to-i adjacent
  /// relay column cell.  Summing 1/deg(parent) over nodes (excluding the
  /// source's own children) and dividing by analytic_tx_count - 1 gives
  /// the mean.  Accumulated in units of 1/840 with one final division --
  /// the exact arithmetic audit_bulk_outcome (sim/bulk/bulk_audit.h) uses
  /// -- so a correct simulated run matches this bit-for-bit; validated
  /// against the reference simulator across (m, n, source) sweeps and
  /// asserted at 10⁶ nodes in tests/test_bulk_audit.cpp.
  [[nodiscard]] static double analytic_relay_mean_etr(int i, int j, int m,
                                                      int n) noexcept;

 private:
  CollisionPolicy policy_;
};

}  // namespace wsn
