#include "protocol/flooding.h"

#include "common/random.h"

namespace wsn {

RelayPlan Flooding::plan(const Topology& topo, NodeId source) const {
  RelayPlan plan = RelayPlan::empty(topo.num_nodes(), source);
  Xoshiro256 rng(seed_ ^ (0x9e3779b97f4a7c15ull * (source + 1)));
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const Slot jitter =
        window_ == 0 ? 0 : static_cast<Slot>(rng.below(window_ + 1));
    plan.tx_offsets[v] = {1 + jitter};
  }
  // The source ignores jitter: it initiates at slot 1 by definition.
  plan.tx_offsets[source] = {1};
  return plan;
}

std::string Flooding::name() const {
  return window_ == 0 ? "flooding"
                      : "flooding(jitter=" + std::to_string(window_) + ")";
}

}  // namespace wsn
