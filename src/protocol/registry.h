#pragma once

#include <memory>
#include <string_view>

#include "protocol/broadcast_protocol.h"
#include "protocol/resolver.h"

/// Family-keyed access to the paper's protocols.
namespace wsn {

/// The paper's protocol for a topology family ("2D-3", "2D-4", "2D-8",
/// "3D-6").  Aborts on an unknown family.
[[nodiscard]] std::unique_ptr<BroadcastProtocol> make_paper_protocol(
    std::string_view family);

/// Convenience: builds the family's plan for `topo`/`source` and resolves
/// it to 100% reachability (the paper's full protocol: explicit rules plus
/// the predetermined collision repairs).  `report`, when non-null, receives
/// the resolver's repair counts.
[[nodiscard]] RelayPlan paper_plan(const Topology& topo, NodeId source,
                                   const SimOptions& options = {},
                                   ResolveReport* report = nullptr);

}  // namespace wsn
