#pragma once

#include <cstdint>

#include "protocol/broadcast_protocol.h"

/// Probabilistic gossip: each node forwards once with probability `p`
/// after first hearing the message.  The standard stochastic remedy for
/// flooding's redundancy; included as the second "traditional" baseline --
/// it trades reachability for transmissions, while the paper's protocols
/// keep reachability at 100% *and* cut transmissions.
///
/// Forwarding decisions and the optional jitter are deterministic in
/// (seed, source, node) so every run is reproducible.
namespace wsn {

class Gossip final : public BroadcastProtocol {
 public:
  explicit Gossip(double forward_probability, Slot jitter_window = 0,
                  std::uint64_t seed = 0x90551eedull) noexcept
      : p_(forward_probability), window_(jitter_window), seed_(seed) {}

  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double p_;
  Slot window_;
  std::uint64_t seed_;
};

}  // namespace wsn
