#include "protocol/registry.h"

#include "common/assert.h"
#include "obs/profile.h"
#include "protocol/mesh2d3_broadcast.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/mesh2d8_broadcast.h"
#include "protocol/mesh3d6_broadcast.h"

namespace wsn {

std::unique_ptr<BroadcastProtocol> make_paper_protocol(
    std::string_view family) {
  if (family == "2D-3") return std::make_unique<Mesh2d3Broadcast>();
  if (family == "2D-4") return std::make_unique<Mesh2d4Broadcast>();
  if (family == "2D-8") return std::make_unique<Mesh2d8Broadcast>();
  if (family == "3D-6") return std::make_unique<Mesh3d6Broadcast>();
  WSN_EXPECTS(false && "no paper protocol for this topology family");
  return nullptr;
}

RelayPlan paper_plan(const Topology& topo, NodeId source,
                     const SimOptions& options, ResolveReport* report) {
  const auto protocol = make_paper_protocol(topo.family());
  RelayPlan plan = [&] {
    WSN_SPAN("plan.build");
    return protocol->plan(topo, source);
  }();
  WSN_SPAN("plan.resolve");
  return resolve_full_reachability(topo, std::move(plan), options, report);
}

}  // namespace wsn
