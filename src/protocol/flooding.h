#pragma once

#include <cstdint>

#include "protocol/broadcast_protocol.h"

/// Blind flooding: every node forwards the message once after first
/// hearing it -- the "traditional broadcasting protocol [where] almost all
/// the nodes need to forward the data and thus cause severe collisions"
/// that the paper's §3 argues against.
///
/// With `jitter_window == 0` every first-time receiver forwards in the very
/// next slot; on regular meshes whole wavefronts transmit simultaneously
/// and the broadcast can strand large regions behind collisions.  A nonzero
/// window draws each node's forwarding delay uniformly from
/// [1, 1 + window], the classic randomized repair, trading delay for
/// reachability.  The draw is deterministic in (seed, source, node).
namespace wsn {

class Flooding final : public BroadcastProtocol {
 public:
  explicit Flooding(Slot jitter_window = 0,
                    std::uint64_t seed = 0x5eedf100du) noexcept
      : window_(jitter_window), seed_(seed) {}

  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Slot window_;
  std::uint64_t seed_;
};

}  // namespace wsn
