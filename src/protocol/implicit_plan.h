#pragma once

#include "protocol/resolver.h"
#include "sim/bulk/bulk_simulator.h"
#include "sim/plan.h"
#include "topology/implicit.h"

/// Plan construction on an ImplicitLattice -- the bulk engine's analogue
/// of make_paper_protocol + paper_plan, with no Topology anywhere.
///
/// The protocol rules are purely coordinate-based (each plan_on_grid
/// consumes only a Grid2D/Grid3D value), so the raw plan is trivially
/// identical to the materialized path's.  Resolution runs the SAME
/// templated algorithm (protocol/resolver_core.h) with BulkSimulator
/// probes; since bulk outcomes are bit-identical and implicit neighbor
/// sets byte-identical, the resolved plan equals resolve_full_reachability
/// on the materialized twin -- asserted per family in
/// tests/test_implicit_plan.cpp.  This is what lets a 10⁶-node schedule be
/// compiled and simulated in O(words) memory.
namespace wsn {

/// The family's raw protocol plan (paper rules only, no collision
/// repairs).  Aborts on families without a paper protocol (tori).
[[nodiscard]] RelayPlan implicit_protocol_plan(const ImplicitLattice& lat,
                                               NodeId source);

/// `plan` augmented with repair transmissions until a bulk simulation
/// under `options` reaches every node -- resolve_full_reachability with
/// BulkSimulator probes.  `options` must be on the bulk engine's supported
/// surface (BulkSimulator::options_supported).
[[nodiscard]] RelayPlan implicit_resolve_full_reachability(
    const ImplicitLattice& lat, RelayPlan plan,
    const SimOptions& options = {}, ResolveReport* report = nullptr);

/// The full paper protocol on an implicit lattice: raw plan + resolver
/// repairs (mirrors paper_plan in protocol/registry.h).
[[nodiscard]] RelayPlan implicit_paper_plan(const ImplicitLattice& lat,
                                            NodeId source,
                                            const SimOptions& options = {},
                                            ResolveReport* report = nullptr);

}  // namespace wsn
