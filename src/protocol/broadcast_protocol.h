#pragma once

#include <memory>
#include <string>

#include "sim/plan.h"
#include "topology/topology.h"

/// A broadcasting protocol: a pure function from (topology, source) to a
/// RelayPlan.
///
/// This mirrors the paper's key premise -- "since the network topologies
/// are regular and fixed, we may choose the necessary relay nodes according
/// to the network topology" (§3).  Everything a node does is decidable
/// offline from the topology and the source id; the simulator then executes
/// the plan under real collision semantics.
namespace wsn {

class BroadcastProtocol {
 public:
  virtual ~BroadcastProtocol() = default;

  /// Builds the relay plan for broadcasting from `source`.  Aborts if the
  /// topology is not of the family this protocol understands (programming
  /// error; pick protocols via protocol/registry.h).
  [[nodiscard]] virtual RelayPlan plan(const Topology& topo,
                                       NodeId source) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace wsn
