#pragma once

#include "protocol/broadcast_protocol.h"
#include "topology/mesh2d8.h"

/// The 2D-8 broadcasting protocol (paper §3.2).
///
/// Diagonal transmissions dominate here: a hop along a diagonal delivers 5
/// fresh neighbors (ETR 5/8) versus 3 for an axis hop (Fig. 6), and covers
/// the 5 diagonals c-2..c+2 of the perpendicular family.  The plan is:
///
///   * a *feeder* diagonal through the source (the paper's basic relays
///     S1(i+j) and S2(i-j); the perpendicular one seeds the family);
///   * the *family* of parallel diagonals spaced 5 apart
///     (S2(i-j+5k) in the paper's presentation), each propagating both ways
///     from where the feeder's transmissions first reach it;
///   * the two feeder nodes adjacent to the source retransmit once: their
///     first transmissions overlap the family's first hops and collide at
///     the axis neighbors two steps from the source (the paper's (i+2, j)
///     example, resolved by letting (i+1, j-1) retransmit).
///
/// The paper fixes the family on the S2 axis "(or S1 but not both)"; we use
/// that freedom adaptively, picking as feeder whichever source diagonal is
/// longer so the family is seeded as widely as possible.  Sources near a
/// border still leave far wedges unseeded (beyond feeder reach ±2); those
/// are repaired by the deterministic resolver, and the repairs are counted
/// in every reported number (DESIGN.md §3).
namespace wsn {

class Mesh2d8Broadcast final : public BroadcastProtocol {
 public:
  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override { return "mesh2d8-broadcast"; }

  /// The plan computed directly from grid coordinates; `plan` delegates
  /// here and the implicit-lattice path calls it without a Topology.
  [[nodiscard]] static RelayPlan plan_on_grid(const Grid2D& grid,
                                              NodeId source);

  /// Which axis carries the parallel relay family for this source: true if
  /// the family runs along S2 (feeder S1), the paper's default.  Chooses the
  /// longer feeder; ties keep the paper's S2 family.
  [[nodiscard]] static bool family_on_s2(Vec2 src, int m, int n) noexcept;

 private:
};

}  // namespace wsn
