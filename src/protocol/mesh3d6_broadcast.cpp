#include "protocol/mesh3d6_broadcast.h"

#include <cstdlib>
#include <deque>

#include "common/assert.h"
#include "geometry/lattice.h"
#include "protocol/mesh2d4_broadcast.h"

namespace wsn {

namespace {

std::size_t xy_index(Vec2 v, int m) noexcept {
  return static_cast<std::size_t>(v.y - 1) * static_cast<std::size_t>(m) +
         static_cast<std::size_t>(v.x - 1);
}

}  // namespace

std::vector<Vec2> Mesh3d6Broadcast::border_relays(Vec2 src_xy, int m, int n) {
  const std::vector<Vec2> uncovered = uncovered_by_zrelays(src_xy, m, n);
  if (uncovered.empty()) return {};

  const std::size_t cells = static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n);
  std::vector<char> is_uncovered(cells, 0);
  for (Vec2 u : uncovered) is_uncovered[xy_index(u, m)] = 1;

  // Multi-source BFS from the covered region across the plane's 4-neighbor
  // adjacency; the parent of each uncovered cell must transmit so the cell
  // receives.  Deterministic: covered seeds and neighbors in fixed order.
  std::vector<char> visited(cells, 0);
  std::vector<char> is_parent(cells, 0);
  std::deque<Vec2> queue;
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      if (!is_uncovered[xy_index({x, y}, m)]) {
        visited[xy_index({x, y}, m)] = 1;
        queue.push_back({x, y});
      }
    }
  }
  const auto in_grid = [&](Vec2 v) {
    return v.x >= 1 && v.x <= m && v.y >= 1 && v.y <= n;
  };
  while (!queue.empty()) {
    const Vec2 v = queue.front();
    queue.pop_front();
    constexpr Vec2 kSteps[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    for (Vec2 step : kSteps) {
      const Vec2 u = v + step;
      if (!in_grid(u) || visited[xy_index(u, m)]) continue;
      visited[xy_index(u, m)] = 1;
      is_parent[xy_index(v, m)] = 1;  // v delivers u
      queue.push_back(u);
    }
  }

  std::vector<Vec2> out;
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      if (is_parent[xy_index({x, y}, m)]) out.push_back({x, y});
    }
  }
  return out;
}

RelayPlan Mesh3d6Broadcast::plan_on_grid(const Grid3D& grid, NodeId source) {
  const Vec3 src = grid.to_coord(source);
  const int m = grid.m();
  const int n = grid.n();
  const int l = grid.l();

  // Per-XY-cell roles, shared by every plane.
  const std::size_t cells = grid.plane_size();
  std::vector<char> is_zrelay(cells, 0);
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      if (in_zrelay_lattice({x, y}, src.xy())) {
        is_zrelay[xy_index({x, y}, m)] = 1;
      }
    }
  }
  std::vector<char> is_border(cells, 0);
  if (l > 1) {
    for (Vec2 b : border_relays(src.xy(), m, n)) {
      is_border[xy_index(b, m)] = 1;
    }
  }

  RelayPlan plan = RelayPlan::empty(grid.num_nodes(), source);
  for (NodeId id = 0; id < grid.num_nodes(); ++id) {
    const Vec3 v = grid.to_coord(id);
    const std::size_t cell = xy_index(v.xy(), m);
    auto& offsets = plan.tx_offsets[id];

    if (v.z == src.z) {
      // Part 1: the 2D-4 protocol inside the source plane.
      if (v.y == src.y) {
        offsets = Mesh2d4Broadcast::is_row_retransmitter(v.x, src.x, m)
                      ? std::vector<Slot>{1, 2}
                      : std::vector<Slot>{1};
      } else if (Mesh2d4Broadcast::is_relay_column(v.x, src.x, m)) {
        offsets = {1};
      } else if (l > 1 && is_zrelay[cell]) {
        // Pure z-relay in the source plane: forward one slot late to stay
        // clear of the in-plane wavefront (§3.4).
        offsets = {2};
      }
    } else {
      if (is_zrelay[cell]) {
        const bool source_column_neighbor =
            v.x == src.x && v.y == src.y && std::abs(v.z - src.z) == 1;
        // The Z pair next to the source collided in slot 2 with the other
        // source neighbors; it retransmits two slots later (slot 4).
        offsets = source_column_neighbor ? std::vector<Slot>{1, 3}
                                         : std::vector<Slot>{1};
      } else if (is_border[cell]) {
        // Border relay: "wait for two time slots and then forward".
        offsets = {3};
      }
    }
  }
  return plan;
}

RelayPlan Mesh3d6Broadcast::plan(const Topology& topo, NodeId source) const {
  const auto* mesh = dynamic_cast<const Mesh3D6*>(&topo);
  WSN_EXPECTS(mesh != nullptr);
  return plan_on_grid(mesh->grid(), source);
}

}  // namespace wsn
