#include "protocol/gossip.h"

#include "common/random.h"
#include "common/string_util.h"

namespace wsn {

RelayPlan Gossip::plan(const Topology& topo, NodeId source) const {
  RelayPlan plan = RelayPlan::empty(topo.num_nodes(), source);
  Xoshiro256 rng(seed_ ^ (0x9e3779b97f4a7c15ull * (source + 1)));
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    const bool forwards = rng.chance(p_);
    const Slot jitter =
        window_ == 0 ? 0 : static_cast<Slot>(rng.below(window_ + 1));
    if (v == source) continue;  // keep the rng stream aligned per node
    if (forwards) plan.tx_offsets[v] = {1 + jitter};
  }
  return plan;
}

std::string Gossip::name() const {
  std::string out = "gossip(p=" + fixed(p_, 2);
  if (window_ != 0) out += ",jitter=" + std::to_string(window_);
  return out + ")";
}

}  // namespace wsn
