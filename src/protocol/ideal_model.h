#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/types.h"
#include "radio/energy_model.h"

/// The paper's "ideal case" comparator (§4, Table 2): every relay achieves
/// the optimal ETR and no collision ever happens.
///
/// Reverse-engineered closed forms that reproduce Table 2 exactly
/// (DESIGN.md §5):
///
///   2D meshes:  Tx = 1 + ⌈(N − 1 − deg_full) / M_opt⌉
///               (source covers deg_full nodes; every further relay covers
///               M_opt = deg_full·ETR_opt fresh ones)
///   3D-6:       Tx = Tx_2D4(m×n) + ⌈mn/5⌉·l − 1
///               (2D-4 sweep of the source plane, plus ⌈mn/5⌉ z-columns
///               transmitting in every plane, the source's own column
///               counted once)
///   Rx = Tx · deg_full     (every transmission heard by a full
///                           neighborhood; the ideal case ignores borders)
///   Power = Σ E_Tx + Σ E_Rx with the First Order Radio Model.
namespace wsn {

/// Optimal ETR of a topology family as the exact rational of Table 1.
struct OptimalEtr {
  int fresh;      // M: new receivers per ideal transmission
  int neighbors;  // N: full degree

  [[nodiscard]] double value() const noexcept {
    return static_cast<double>(fresh) / static_cast<double>(neighbors);
  }
};

/// Table 1: 2D-3 -> 2/3, 2D-4 -> 3/4, 2D-8 -> 5/8, 3D-6 -> 5/6.
/// Aborts on an unknown family.
[[nodiscard]] OptimalEtr optimal_etr(std::string_view family);

struct IdealCase {
  std::size_t tx = 0;
  std::size_t rx = 0;
  Joules power = 0.0;
};

/// Ideal case for a 2D family on an m×n mesh (`spacing` meters, `bits` per
/// packet), or for "3D-6" on an m×n×l mesh.
[[nodiscard]] IdealCase ideal_case(std::string_view family, int m, int n,
                                   int l = 1, Meters spacing = 0.5,
                                   std::size_t bits = 512,
                                   const FirstOrderRadioModel& radio =
                                       FirstOrderRadioModel{});

}  // namespace wsn
