#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "protocol/resolver.h"
#include "sim/plan.h"
#include "sim/simulator.h"

/// The resolver algorithm, templated over the network representation.
///
/// resolve_full_reachability (resolver.h) must produce the *same plan* on
/// a materialized Topology and on an ImplicitLattice of the same
/// family/dims -- otherwise the bulk engine's bit-exactness contract stops
/// at raw protocol plans.  Rather than maintain two copies of a subtle
/// algorithm, the whole body lives here as a template over
///
///   * `Net`  -- num_nodes(), neighbors(id) (sorted ascending; span or
///     value type), adjacent(a, b);
///   * `SimT` -- run(net, plan, options) -> BroadcastOutcome, reusing its
///     scratch across probes (Simulator and BulkSimulator both qualify).
///
/// Every decision the resolver makes (helper choice by min first_rx then
/// min id, quiet-slot probing, 2-hop slot packing) consumes only neighbor
/// sets and simulation outcomes; byte-identical neighbor iteration plus
/// bit-identical outcomes therefore force identical resolved plans, which
/// tests/test_implicit_plan.cpp asserts per family.
namespace wsn::resolver_core {

template <typename Net>
[[nodiscard]] bool within_two_hops(const Net& net, NodeId a, NodeId b) {
  if (net.adjacent(a, b)) return true;
  // Bind both sets to locals: neighbors() may return a value type, and
  // begin()/end() drawn from two separate temporaries would be UB.
  const auto na = net.neighbors(a);
  const auto nb = net.neighbors(b);
  // Merge-walk two sorted ranges looking for a common element.
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < na.size() && ib < nb.size()) {
    if (na[ia] == nb[ib]) return true;
    if (na[ia] < nb[ib]) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

/// Optimistic repair phase: gives helpers an immediate retransmission (one
/// slot after their last scheduled transmission), the way the paper's own
/// gray nodes retransmit "in next time slot".  Early retransmissions change
/// downstream collision dynamics, so this iterates to a fixpoint, keeps the
/// best plan seen, and gives up after a few non-improving rounds -- the
/// guaranteed quiet-slot phase finishes whatever is left.
template <typename Net, typename SimT>
RelayPlan optimistic_repairs(const Net& net, RelayPlan plan,
                             const SimOptions& options,
                             ResolveReport& report, SimT& sim) {
  constexpr std::size_t kPatience = 3;
  constexpr std::size_t kMaxIters = 48;
  constexpr Slot kMaxProbe = 8;  // how far past the helper's last tx we look

  const std::size_t n = net.num_nodes();
  RelayPlan best = plan;
  std::size_t best_unreached = sim.run(net, best, options).unreached().size();
  std::size_t stall = 0;

  // Sorted per-node slots at which some neighbor transmitted; lets a repair
  // be placed into a slot that is quiet at every victim.
  std::vector<std::vector<Slot>> heard_slots(n);
  const auto neighbor_tx_at = [&](NodeId u, Slot s) {
    const auto& slots = heard_slots[u];
    return std::binary_search(slots.begin(), slots.end(), s);
  };

  for (std::size_t iter = 0; iter < kMaxIters && best_unreached > 0; ++iter) {
    const BroadcastOutcome outcome = sim.run(net, plan, options);
    const std::vector<NodeId> unreached = outcome.unreached();
    if (unreached.empty()) {
      report.rounds += 1;
      return plan;
    }

    for (auto& slots : heard_slots) slots.clear();
    for (const TxRecord& rec : outcome.transmissions) {
      for (NodeId u : net.neighbors(rec.node)) {
        heard_slots[u].push_back(rec.slot);
      }
    }
    for (auto& slots : heard_slots) std::sort(slots.begin(), slots.end());

    std::vector<char> is_unreached(n, 0);
    for (NodeId u : unreached) is_unreached[u] = 1;

    // Tracks slots already claimed by this round's repairs, per node, so two
    // repairs placed in the same round don't collide at a shared victim.
    std::vector<std::vector<Slot>> claimed(n);
    const auto claimed_at = [&](NodeId u, Slot s) {
      const auto& slots = claimed[u];
      return std::find(slots.begin(), slots.end(), s) != slots.end();
    };

    std::vector<char> covered(n, 0);
    std::size_t added = 0;
    for (NodeId u : unreached) {
      if (covered[u]) continue;
      NodeId helper = kInvalidNode;
      Slot helper_rx = kNeverSlot;
      for (NodeId h : net.neighbors(u)) {
        if (outcome.first_rx[h] == kNeverSlot) continue;
        if (outcome.first_rx[h] < helper_rx ||
            (outcome.first_rx[h] == helper_rx && h < helper)) {
          helper = h;
          helper_rx = outcome.first_rx[h];
        }
      }
      if (helper == kInvalidNode) continue;

      // Place the retransmission in the earliest slot after the helper's
      // last transmission that (a) is quiet at each of its unreached
      // neighbors, so the repair actually lands, and (b) is not the slot in
      // which any already-reached neighbor got its *first* reception, which
      // the new transmission would knock out.
      auto& offsets = plan.tx_offsets[helper];
      const Slot last_tx =
          offsets.empty() ? helper_rx : helper_rx + offsets.back();
      Slot chosen = 0;
      for (Slot s = last_tx + 1; s <= last_tx + kMaxProbe; ++s) {
        bool ok = true;
        for (NodeId w : net.neighbors(helper)) {
          if (is_unreached[w] &&
              (neighbor_tx_at(w, s) || claimed_at(w, s))) {
            ok = false;
            break;
          }
          if (!is_unreached[w] && outcome.first_rx[w] == s) {
            ok = false;
            break;
          }
        }
        if (ok) {
          chosen = s;
          break;
        }
      }
      if (chosen == 0) continue;  // quiet-slot phase will handle this one

      offsets.push_back(chosen - helper_rx);
      added += 1;
      for (NodeId w : net.neighbors(helper)) {
        if (is_unreached[w]) {
          covered[w] = 1;
          claimed[w].push_back(chosen);
          // A stranded relay whose whole neighborhood is already reached
          // forwards nothing anyone needs; getting it the message late and
          // then letting it transmit would only re-collide downstream.
          // Prune its transmissions (it still counts as reached).
          const auto nw = net.neighbors(w);
          const bool all_neighbors_reached = std::all_of(
              nw.begin(), nw.end(),
              [&](NodeId x) { return outcome.first_rx[x] != kNeverSlot; });
          if (all_neighbors_reached && w != plan.source) {
            plan.tx_offsets[w].clear();
          }
        }
      }
    }
    if (added == 0) break;  // interior void; quiet-slot phase handles it
    report.rounds += 1;

    const std::size_t now_unreached =
        sim.run(net, plan, options).unreached().size();
    if (now_unreached < best_unreached) {
      best = plan;
      best_unreached = now_unreached;
      stall = 0;
    } else if (++stall >= kPatience) {
      break;
    }
  }
  return best;
}

template <typename Net, typename SimT>
RelayPlan resolve_full_reachability(const Net& net, RelayPlan plan,
                                    const SimOptions& caller_options,
                                    ResolveReport* report, SimT& sim) {
  // Probe simulations are plan-construction internals: they must not leak
  // into the caller's observer (metrics/trace describe requested runs, not
  // the resolver's trial broadcasts).
  SimOptions options = caller_options;
  options.observer = nullptr;

  ResolveReport local;
  const std::size_t n = net.num_nodes();
  WSN_EXPECTS(plan.num_nodes() == n);

  const std::size_t planned_before = plan.planned_tx();
  plan = optimistic_repairs(net, std::move(plan), options, local, sim);
  // Net extra transmissions; the optimistic phase also *prunes* stranded
  // relays, so the difference can be negative -- clamp rather than let the
  // unsigned arithmetic wrap.
  const std::size_t planned_after = plan.planned_tx();
  if (planned_after > planned_before) {
    local.repairs += planned_after - planned_before;
  }

  // Each round strictly grows the reached set by the whole boundary of the
  // unreached region, so n rounds is a safe upper bound.
  for (std::size_t round = 0; round < n; ++round) {
    const BroadcastOutcome outcome = sim.run(net, plan, options);
    const std::vector<NodeId> unreached = outcome.unreached();
    if (unreached.empty()) {
      if (report != nullptr) *report = local;
      return plan;
    }
    local.rounds += 1;

    Slot t_end = 1;
    for (const TxRecord& rec : outcome.transmissions) {
      t_end = std::max(t_end, rec.slot);
    }

    std::vector<char> is_unreached(n, 0);
    for (NodeId u : unreached) is_unreached[u] = 1;

    // Pick helpers: walk the unreached boundary; one helper transmission
    // covers all of its unreached neighbors at once.
    std::vector<NodeId> helpers;
    std::vector<char> covered(n, 0);
    for (NodeId u : unreached) {
      if (covered[u]) continue;
      NodeId helper = kInvalidNode;
      Slot helper_rx = kNeverSlot;
      for (NodeId h : net.neighbors(u)) {
        if (outcome.first_rx[h] == kNeverSlot) continue;  // no message
        if (outcome.first_rx[h] < helper_rx ||
            (outcome.first_rx[h] == helper_rx && h < helper)) {
          helper = h;
          helper_rx = outcome.first_rx[h];
        }
      }
      if (helper == kInvalidNode) continue;  // deeper in the void; next round
      helpers.push_back(helper);
      for (NodeId covered_now : net.neighbors(helper)) {
        if (is_unreached[covered_now]) covered[covered_now] = 1;
      }
    }

    if (helpers.empty()) {
      // Nothing adjacent to the reached region: the rest is disconnected.
      local.unreachable = unreached.size();
      local.unrepaired = unreached.size();
      if (report != nullptr) *report = local;
      return plan;
    }

    // Pack repairs into fresh slots after the old timeline; helpers within
    // 2 hops of each other are serialized so no repair can collide.
    std::vector<std::vector<NodeId>> slots;  // slots[s] = helpers at t_end+1+s
    for (NodeId h : helpers) {
      std::size_t s = 0;
      for (;; ++s) {
        if (s == slots.size()) {
          slots.emplace_back();
          break;
        }
        const bool clash = std::any_of(
            slots[s].begin(), slots[s].end(), [&](NodeId other) {
              return resolver_core::within_two_hops(net, h, other);
            });
        if (!clash) break;
      }
      slots[s].push_back(h);

      const Slot tx_slot = t_end + 1 + static_cast<Slot>(s);
      const Slot rx_slot = outcome.first_rx[h];
      WSN_ASSERT(tx_slot > rx_slot);
      auto& offsets = plan.tx_offsets[h];
      const Slot offset = tx_slot - rx_slot;
      WSN_ASSERT(offsets.empty() || offset > offsets.back());
      offsets.push_back(offset);
      local.repairs += 1;
    }
  }

  // Round budget exhausted without convergence.  Each round strictly grows
  // the reached set, so this cannot happen on any topology the simulator
  // accepts -- but degrade gracefully instead of aborting: report what is
  // left unrepaired and return the best plan built so far.
  local.unrepaired = sim.run(net, plan, options).unreached().size();
  if (report != nullptr) *report = local;
  return plan;
}

}  // namespace wsn::resolver_core
