#include "protocol/etx_planner.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/random.h"
#include "protocol/registry.h"
#include "topology/graph_algos.h"

namespace wsn {
namespace {

constexpr std::uint64_t kEtxStaggerSeed = 0x4554582d706c616eull;  // "ETX-plan"

[[nodiscard]] bool is_paper_family(std::string_view family) noexcept {
  return family == "2D-3" || family == "2D-4" || family == "2D-8" ||
         family == "3D-6";
}

[[nodiscard]] bool all_perfect(std::span<const double> quality) noexcept {
  return std::all_of(quality.begin(), quality.end(),
                     [](double p) { return p >= 1.0 - 1e-12; });
}

}  // namespace

RelayPlan EtxRelayPlanner::plan(const Topology& topo, NodeId source) const {
  return plan_with_quality(topo, source, topo.link_quality());
}

RelayPlan EtxRelayPlanner::plan_with_quality(
    const Topology& topo, NodeId source,
    std::span<const double> quality) const {
  const std::size_t n = topo.num_nodes();
  WSN_EXPECTS(source < n);
  WSN_EXPECTS(quality.empty() || quality.size() == topo.num_directed_links());
  WSN_EXPECTS(config_.target_delivery > 0.0 && config_.target_delivery <= 1.0);
  WSN_EXPECTS(config_.min_delivery > 0.0 && config_.min_delivery <= 1.0);

  // Perfect medium: ETX degenerates to hop count, and on the regular
  // families the paper's geometric relay set is the proven transmission
  // optimum (Tables 1-2) -- emit it verbatim so the reduction is exact.
  if (quality.empty() || all_perfect(quality)) {
    if (is_paper_family(topo.family())) {
      return make_paper_protocol(topo.family())->plan(topo, source);
    }
  }

  const auto delivery = [&](NodeId a, NodeId b) {
    if (quality.empty()) return 1.0;
    const std::size_t index = topo.link_index(a, b);
    WSN_ASSERT(index != Topology::kNoLink);
    return std::clamp(quality[index], config_.min_delivery, 1.0);
  };

  const std::vector<std::uint32_t> layer = bfs_distances(topo, source);
  std::uint32_t depth = 0;
  for (std::uint32_t d : layer) {
    if (d != kUnreachable) depth = std::max(depth, d);
  }

  // miss[u] = probability u has heard none of the selected transmitters;
  // a node is satisfied once its cumulative delivery reaches the target.
  std::vector<double> miss(n, 1.0);
  std::vector<char> satisfied(n, 0);
  std::vector<char> relay(n, 0);
  relay[source] = 1;
  satisfied[source] = 1;
  miss[source] = 0.0;
  const auto transmit = [&](NodeId tx) {
    for (NodeId u : topo.neighbors(tx)) {
      miss[u] *= 1.0 - delivery(tx, u);
      if (1.0 - miss[u] >= config_.target_delivery) satisfied[u] = 1;
    }
  };
  transmit(source);

  // Greedy dominant pruning with expected-coverage gain, one BFS ring at
  // a time (the CDS planner's structure): candidates are the satisfied
  // nodes of ring d; each step picks the candidate whose transmission is
  // expected to deliver the most still-missing coverage mass.  Gains
  // below `min_gain` are not worth a transmission -- stragglers belong to
  // the resolver (ideal channel) and the ARQ layer (lossy channel).
  std::vector<NodeId> candidates;
  for (std::uint32_t d = 1; d <= depth; ++d) {
    while (true) {
      candidates.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (layer[v] == d && satisfied[v] && !relay[v]) candidates.push_back(v);
      }
      NodeId best = kInvalidNode;
      double best_gain = 0.0;
      for (NodeId c : candidates) {
        double g = 0.0;
        for (NodeId u : topo.neighbors(c)) {
          if (!satisfied[u]) g += delivery(c, u) * miss[u];
        }
        if (g > best_gain) {
          best = c;
          best_gain = g;
        }
      }
      if (best == kInvalidNode || best_gain < config_.min_gain) break;
      relay[best] = 1;
      transmit(best);
    }
  }

  // Deterministic per-node stagger decouples the rings' lock-step
  // transmissions; the resolver cleans up whatever still collides.
  RelayPlan plan = RelayPlan::empty(n, source);
  Xoshiro256 rng(kEtxStaggerSeed ^ (0x9e3779b97f4a7c15ull * (source + 1)));
  for (NodeId v = 0; v < n; ++v) {
    const Slot stagger =
        config_.stagger_window == 0
            ? 0
            : static_cast<Slot>(rng.below(config_.stagger_window + 1));
    if (v == source) continue;  // keep the stream aligned per node
    if (relay[v]) plan.tx_offsets[v] = {1 + stagger};
  }
  return plan;
}

std::string EtxRelayPlanner::name() const {
  return "etx-planner(target=" + std::to_string(config_.target_delivery) +
         ")";
}

RelayPlan etx_plan(const Topology& topo, NodeId source,
                   std::span<const double> quality, const SimOptions& options,
                   ResolveReport* report,
                   const EtxRelayPlanner::Config& config) {
  const EtxRelayPlanner planner(config);
  RelayPlan plan = quality.empty()
                       ? planner.plan(topo, source)
                       : planner.plan_with_quality(topo, source, quality);
  return resolve_full_reachability(topo, std::move(plan), options, report);
}

}  // namespace wsn
