#pragma once

#include <cstddef>
#include <vector>

#include "sim/simulator.h"
#include "topology/topology.h"

/// Efficient-transmission-ratio analysis over a simulated broadcast.
///
/// ETR of one transmission = M/N: of the transmitter's N neighbors, M
/// decoded a *non-duplicate* message from it (paper §3).  The TxRecord
/// trace carries exactly M (`fresh`), so this module is pure arithmetic
/// over an outcome.
namespace wsn {

struct EtrSample {
  NodeId node;
  Slot slot;
  std::size_t fresh;      // M
  std::size_t neighbors;  // N

  [[nodiscard]] double value() const noexcept {
    return neighbors == 0
               ? 0.0
               : static_cast<double>(fresh) / static_cast<double>(neighbors);
  }
};

struct EtrSummary {
  std::size_t transmissions = 0;
  double mean = 0.0;
  double max = 0.0;
  /// Transmissions achieving at least `fresh_opt` fresh deliveries (the
  /// per-family optimum M); the paper's "most of the relay nodes can
  /// achieve the optimal ETR" claim quantified.
  std::size_t at_optimum = 0;

  [[nodiscard]] double optimal_share() const noexcept {
    return transmissions == 0 ? 0.0
                              : static_cast<double>(at_optimum) /
                                    static_cast<double>(transmissions);
  }
};

/// Per-transmission ETR samples in trace order.
[[nodiscard]] std::vector<EtrSample> etr_samples(const Topology& topo,
                                                 const BroadcastOutcome& outcome);

/// Aggregates samples; `fresh_opt` is the family's optimal M (e.g. 3 for
/// 2D-4).  The source transmission is excluded from `at_optimum` counting
/// when `exclude_source` (its ETR is 100%, above any relay's optimum).
[[nodiscard]] EtrSummary summarize_etr(const Topology& topo,
                                       const BroadcastOutcome& outcome,
                                       std::size_t fresh_opt,
                                       NodeId source,
                                       bool exclude_source = true);

}  // namespace wsn
