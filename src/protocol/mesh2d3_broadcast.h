#pragma once

#include "protocol/broadcast_protocol.h"
#include "topology/mesh2d3.h"

/// The 2D-3 broadcasting protocol (paper §3.3).
///
/// In the brick-wall mesh a "diagonal" is a staircase: a connected zigzag
/// alternating between two adjacent diagonal indices.  That is why the
/// paper's base-relay sets are *pairs* -- B1(i,j) = S1(c) ∪ S1(c±1) and
/// B2(i,j) = S2(c) ∪ S2(c∓1), the pairing chosen by the node's vertical
/// parity.  A B1 staircase runs upper-left/lower-right; a B2 staircase
/// upper-right/lower-left.  Each staircase touches the source row at two
/// adjacent nodes (one feeds the climb, one the descent), so the X-axis
/// sweep seeds them all.
///
/// Relay selection:
///   * every node of the source row relays;
///   * staircases are anchored at row nodes x = i + 4k (a staircase's
///     transmissions cover 4 consecutive diagonal indices, hence the
///     spacing);
///   * in region 1, a node takes the staircase family that flows *toward*
///     it: B1 for the upper-right / lower-left quadrants, B2 for
///     upper-left / lower-right (rules R1/R2);
///   * in the wedges straight above (region 3) and below (region 2) the
///     source, the family is chosen so its anchors stay inside the grid:
///     a source in the left half uses B1 above / B2 below (R3), a source
///     in the right half the mirror image (R4).
///
/// The paper gives no explicit retransmission table for this topology
/// ("since the topology ... is predetermined, we know where the collision
/// will occur"); the deterministic resolver supplies those retransmissions
/// and they are counted in every reported figure.
namespace wsn {

class Mesh2d3Broadcast final : public BroadcastProtocol {
 public:
  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override { return "mesh2d3-broadcast"; }

  /// The plan computed directly from grid coordinates; `plan` delegates
  /// here and the implicit-lattice path calls it without a Topology.
  [[nodiscard]] static RelayPlan plan_on_grid(const Grid2D& grid,
                                              NodeId source);

  /// True if `v` is in the B1(i+4k, j) family for the given source (any
  /// valid anchor k).  Exposed for tests.
  [[nodiscard]] static bool in_b1_family(Vec2 v, Vec2 src) noexcept;
  /// Same for B2(i+4k, j).
  [[nodiscard]] static bool in_b2_family(Vec2 v, Vec2 src) noexcept;
};

}  // namespace wsn
