#include "protocol/resolver.h"

#include "protocol/resolver_core.h"

namespace wsn {

bool within_two_hops(const Topology& topo, NodeId a, NodeId b) {
  return resolver_core::within_two_hops(topo, a, b);
}

RelayPlan resolve_full_reachability(const Topology& topo, RelayPlan plan,
                                    const SimOptions& caller_options,
                                    ResolveReport* report) {
  // One scratch-reusing simulator serves every probe of this resolve call;
  // plan compilation runs dozens of probes, all on the same topology.
  Simulator sim(topo.num_nodes());
  return resolver_core::resolve_full_reachability(topo, std::move(plan),
                                                  caller_options, report, sim);
}

}  // namespace wsn
