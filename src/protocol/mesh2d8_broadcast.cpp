#include "protocol/mesh2d8_broadcast.h"

#include <algorithm>

#include "common/assert.h"
#include "geometry/diagonal.h"

namespace wsn {

namespace {

/// Number of grid nodes on S1(c) / S2(c) inside an m×n grid.
int s1_length(int c, int m, int n) noexcept {
  return std::max(0, std::min(m, c - 1) - std::max(1, c - n) + 1);
}
int s2_length(int c, int m, int n) noexcept {
  return std::max(0, std::min(m, c + n) - std::max(1, c + 1) + 1);
}

}  // namespace

bool Mesh2d8Broadcast::family_on_s2(Vec2 src, int m, int n) noexcept {
  const int feeder_s1 = s1_length(s1_index(src), m, n);
  const int feeder_s2 = s2_length(s2_index(src), m, n);
  // Family on S2 needs the S1 feeder; keep it (the paper's default) unless
  // the S2 feeder is strictly longer.
  return feeder_s1 >= feeder_s2;
}

RelayPlan Mesh2d8Broadcast::plan_on_grid(const Grid2D& grid, NodeId source) {
  const Vec2 src = grid.to_coord(source);
  const int m = grid.m();
  const int n = grid.n();
  const bool s2_family = family_on_s2(src, m, n);

  // The feeder's transmissions seed family diagonals at most 2 indices past
  // the feeder's own span; diagonals further out sit in *border wedges* the
  // paper never reaches.  We complete the scheme with border sweeps: relay
  // lines along the perimeter from each feeder endpoint toward the wedge's
  // corner, crossing (and thereby seeding) every wedge diagonal exactly
  // where it touches the border.
  const auto on_family_line = [&](Vec2 v) {
    return s2_family ? in_s2_family(v, s2_index(src), 5)
                     : in_s1_family(v, s1_index(src), 5);
  };
  // 0 = not on a sweep; otherwise the cell's forwarding offset.  The first
  // cell of a sweep waits one extra slot (the feeder endpoint's own family
  // diagonal departs simultaneously and would collide one cell ahead), and
  // so does the cell following a family crossing, for the same reason.
  std::vector<Slot> sweep_offset(grid.num_nodes(), 0);
  const auto sweep_to_corner = [&](Vec2 from, Vec2 corner) {
    Vec2 v = from;
    bool stagger = true;  // true right after the endpoint / a crossing
    while (v != corner) {
      if (v.x != corner.x && (v.y == 1 || v.y == n)) {
        v.x += corner.x > v.x ? 1 : -1;
      } else {
        v.y += corner.y > v.y ? 1 : -1;
      }
      sweep_offset[grid.to_id(v)] = stagger ? 2 : 1;
      stagger = on_family_line(v);
    }
  };
  Vec2 feeder_end_a;
  Vec2 feeder_end_b;
  if (s2_family) {
    // Feeder S1(i+j) runs ↘ from top-left end eA to bottom-right end eB.
    const int c = s1_index(src);
    feeder_end_a = {std::max(1, c - n), std::min(n, c - 1)};  // low s2 end
    feeder_end_b = {std::min(m, c - 1), std::max(1, c - m)};  // high s2 end
    sweep_to_corner(feeder_end_a, {1, n});  // seeds s2 below feeder reach
    sweep_to_corner(feeder_end_b, {m, 1});  // seeds s2 above feeder reach
  } else {
    // Feeder S2(i-j) runs ↗ from bottom-left end eA to top-right end eB.
    const int c = s2_index(src);
    feeder_end_a = {std::max(1, c + 1), std::max(1, 1 - c)};  // low s1 end
    feeder_end_b = {std::min(m, c + n), std::min(n, m - c)};  // high s1 end
    sweep_to_corner(feeder_end_a, {1, 1});  // seeds s1 below feeder reach
    sweep_to_corner(feeder_end_b, {m, n});  // seeds s1 above feeder reach
  }

  RelayPlan plan = RelayPlan::empty(grid.num_nodes(), source);
  for (NodeId id = 0; id < grid.num_nodes(); ++id) {
    const Vec2 v = grid.to_coord(id);
    const bool on_feeder = s2_family ? on_s1(v, s1_index(src))
                                     : on_s2(v, s2_index(src));
    const bool on_family = on_family_line(v);
    if (!on_feeder && !on_family && sweep_offset[id] == 0) continue;

    // Feeder nodes adjacent to the source retransmit once: their first
    // transmission collides with the family's first hop at the axis nodes
    // two steps out (paper: "we let node (i+1, j-1) retransmit").
    const bool near_source_feeder = on_feeder && chebyshev(v, src) == 1 &&
                                    v != src;
    // Feeder endpoints also retransmit: at a border endpoint the feeder and
    // its adjacent family seeds all receive from the same penultimate
    // feeder cell and transmit together, stranding the border sweep's first
    // cell behind a collision.
    const bool feeder_endpoint =
        on_feeder && (v == feeder_end_a || v == feeder_end_b) && v != src;
    if (near_source_feeder || feeder_endpoint) {
      plan.tx_offsets[id] = {1, 2};
    } else if (on_feeder || on_family) {
      plan.tx_offsets[id] = {1};
    } else {
      plan.tx_offsets[id] = {sweep_offset[id]};
    }
  }
  return plan;
}

RelayPlan Mesh2d8Broadcast::plan(const Topology& topo, NodeId source) const {
  const auto* mesh = dynamic_cast<const Mesh2D8*>(&topo);
  WSN_EXPECTS(mesh != nullptr);
  return plan_on_grid(mesh->grid(), source);
}

}  // namespace wsn
