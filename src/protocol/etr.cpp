#include "protocol/etr.h"

#include <algorithm>

namespace wsn {

std::vector<EtrSample> etr_samples(const Topology& topo,
                                   const BroadcastOutcome& outcome) {
  std::vector<EtrSample> out;
  out.reserve(outcome.transmissions.size());
  for (const TxRecord& rec : outcome.transmissions) {
    out.push_back(EtrSample{rec.node, rec.slot, rec.fresh,
                            topo.degree(rec.node)});
  }
  return out;
}

EtrSummary summarize_etr(const Topology& topo,
                         const BroadcastOutcome& outcome,
                         std::size_t fresh_opt, NodeId source,
                         bool exclude_source) {
  EtrSummary summary;
  double sum = 0.0;
  for (const EtrSample& s : etr_samples(topo, outcome)) {
    summary.transmissions += 1;
    const double v = s.value();
    sum += v;
    summary.max = std::max(summary.max, v);
    if (exclude_source && s.node == source) continue;
    if (s.fresh >= fresh_opt) summary.at_optimum += 1;
  }
  if (summary.transmissions > 0) {
    summary.mean = sum / static_cast<double>(summary.transmissions);
  }
  return summary;
}

}  // namespace wsn
