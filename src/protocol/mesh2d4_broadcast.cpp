#include "protocol/mesh2d4_broadcast.h"

#include <cstdint>
#include <cstdlib>

#include "common/assert.h"
#include "geometry/diagonal.h"

namespace wsn {

namespace {

/// (x - i) ≡ 0 (mod 3): x is one of the paper's i + 3k columns.
bool on_column_lattice(int x, int i) noexcept {
  return floor_mod(x - i, 3) == 0;
}

}  // namespace

bool Mesh2d4Broadcast::is_relay_column(int x, int i, int m) noexcept {
  if (on_column_lattice(x, i)) return true;
  // Border rule (§3.1): node (1, y) / (m, y) becomes a relay when column
  // 2 / m-1 is not a relay column, otherwise nobody ever covers column
  // 1 / m vertically.
  if (x == 1 && m >= 2 && !on_column_lattice(2, i)) return true;
  if (x == m && m >= 2 && !on_column_lattice(m - 1, i)) return true;
  return false;
}

bool Mesh2d4Broadcast::is_row_retransmitter(int x, int i, int m) noexcept {
  if (x < 1 || x > m) return false;
  if (x > i) return floor_mod(x - i, 3) == 1;  // x = i + 1 + 3k
  if (x < i) return floor_mod(i - x, 3) == 1;  // x = i - 1 - 3k
  return false;
}

std::size_t Mesh2d4Broadcast::analytic_tx_count(int i, int m,
                                                int n) noexcept {
  std::size_t columns = 0;
  std::size_t retransmitters = 0;
  for (int x = 1; x <= m; ++x) {
    if (is_relay_column(x, i, m)) ++columns;
    if (is_row_retransmitter(x, i, m)) ++retransmitters;
  }
  return static_cast<std::size_t>(m) + retransmitters +
         columns * static_cast<std::size_t>(n - 1);
}

double Mesh2d4Broadcast::analytic_relay_mean_etr(int i, int j, int m,
                                                 int n) noexcept {
  WSN_EXPECTS(i >= 1 && i <= m && j >= 1 && j <= n);
  const auto degree = [&](int x, int y) {
    return 4 - (x == 1) - (x == m) - (y == 1) - (y == n);
  };

  std::uint64_t acc = 0;  // sum of 840/deg(parent) over non-source-fed nodes
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      if (x == i && y == j) continue;
      int px = 0;
      int py = 0;
      if (y == j) {
        // X-axis sweep: fed by the row neighbor toward the source.
        px = x > i ? x - 1 : x + 1;
        py = j;
      } else if (y == j - 1 || y == j + 1) {
        // Covered sideways by the row wavefront (the retransmitters'
        // second transmissions repair the cells their first ones collided
        // at, so the parent is the row node either way).
        px = x;
        py = j;
      } else if (is_relay_column(x, i, m)) {
        // Column sweep: previous cell of the same column.
        px = x;
        py = y > j ? y - 1 : y + 1;
      } else {
        // Fed sideways by an adjacent relay column.  The spacing-3 lattice
        // plus the border rule guarantees one exists; when both neighbors
        // are relay columns the one nearer the source column transmits
        // first (its sweep started earlier) and delivers the cell.
        int best = 0;
        for (const int c : {x - 1, x + 1}) {
          if (c < 1 || c > m || !is_relay_column(c, i, m)) continue;
          if (best == 0 || std::abs(c - i) < std::abs(best - i)) best = c;
        }
        WSN_ASSERT(best != 0);
        px = best;
        py = y;
      }
      if (px == i && py == j) continue;  // the source's own children
      acc += 840u / static_cast<std::uint64_t>(degree(px, py));
    }
  }

  const std::size_t relays = analytic_tx_count(i, m, n) - 1;
  return relays == 0 ? 0.0
                     : (static_cast<double>(acc) / 840.0) /
                           static_cast<double>(relays);
}

RelayPlan Mesh2d4Broadcast::plan_on_grid(const Grid2D& grid, NodeId source,
                                         CollisionPolicy policy) {
  const Vec2 src = grid.to_coord(source);

  RelayPlan plan = RelayPlan::empty(grid.num_nodes(), source);
  for (NodeId id = 0; id < grid.num_nodes(); ++id) {
    const Vec2 v = grid.to_coord(id);
    if (v.y == src.y) {
      // X-axis sweep: every row node forwards; the nodes straddling a relay
      // column collide with its first vertical hop and retransmit.
      if (policy == CollisionPolicy::kRetransmit &&
          is_row_retransmitter(v.x, src.x, grid.m())) {
        plan.tx_offsets[id] = {1, 2};
      } else {
        plan.tx_offsets[id] = {1};
      }
    } else if (is_relay_column(v.x, src.x, grid.m())) {
      // Y-axis sweeps.  Under the rejected delay-avoidance policy the first
      // vertical hop waits an extra slot so it never overlaps the row
      // wavefront (the paper's §3.1 alternative, kept for the ablation).
      const bool first_hop = std::abs(v.y - src.y) == 1;
      if (policy == CollisionPolicy::kDelayAvoidance && first_hop) {
        plan.tx_offsets[id] = {2};
      } else {
        plan.tx_offsets[id] = {1};
      }
    }
  }
  return plan;
}

RelayPlan Mesh2d4Broadcast::plan(const Topology& topo, NodeId source) const {
  const auto* mesh = dynamic_cast<const Mesh2D4*>(&topo);
  WSN_EXPECTS(mesh != nullptr);
  return plan_on_grid(mesh->grid(), source, policy_);
}

std::string Mesh2d4Broadcast::name() const {
  return policy_ == CollisionPolicy::kRetransmit
             ? "mesh2d4-broadcast"
             : "mesh2d4-broadcast(delay-avoidance)";
}

}  // namespace wsn
