#pragma once

#include <cstdint>

#include "protocol/broadcast_protocol.h"

/// Generic topology-aware broadcast: greedy connected-dominating-set relay
/// selection over BFS layers.
///
/// The paper's four protocols exploit closed-form structure that only
/// regular meshes have.  This protocol is the library's generalization to
/// *any* connected topology (random unit-disk graphs, tori, meshes with
/// holes): it computes BFS layers from the source and greedily picks, per
/// layer, the covered nodes whose transmissions cover the most
/// still-uncovered next-layer nodes -- a classic dominant-pruning relay
/// set.  Relays forward one slot after first reception plus a small
/// deterministic per-node stagger that breaks the lock-step collisions of
/// synchronized wavefronts.
///
/// On the paper's own meshes it lands close to the specialized protocols
/// (see bench/baseline_comparison), which is exactly the point: the
/// specialized rules buy the last ~10-20% and the perfect delay, the CDS
/// buys generality.
namespace wsn {

class CdsBroadcast final : public BroadcastProtocol {
 public:
  /// `stagger_window` spreads relay forwarding over [1, 1+window] slots
  /// (deterministic per node); 0 forwards everything next-slot.
  explicit CdsBroadcast(Slot stagger_window = 2,
                        std::uint64_t seed = 0xcd5b40adca57ull) noexcept
      : window_(stagger_window), seed_(seed) {}

  [[nodiscard]] RelayPlan plan(const Topology& topo,
                               NodeId source) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Slot window_;
  std::uint64_t seed_;
};

}  // namespace wsn
