#include "protocol/mesh2d3_broadcast.h"

#include <algorithm>

#include "common/assert.h"
#include "geometry/diagonal.h"
#include "geometry/region.h"

namespace wsn {

namespace {

/// Per-cell relay preference, rules R1-R4: which staircase family is in
/// charge of `v`.
bool prefers_b1(Vec2 v, Vec2 src, bool source_on_left) noexcept {
  switch (region_of(v, src)) {
    case Region::kOne: {
      // R1: B1 serves the upper-right / lower-left quadrants.
      return (v.x >= src.x && v.y >= src.y) || (v.x <= src.x && v.y <= src.y);
    }
    case Region::kTwo:
      return !source_on_left;  // R3/R4, wedge below the source
    case Region::kThree:
      return source_on_left;  // R3/R4, wedge above the source
  }
  return false;
}

bool prefers_b2(Vec2 v, Vec2 src, bool source_on_left) noexcept {
  switch (region_of(v, src)) {
    case Region::kOne: {
      // R2: B2 serves the upper-left / lower-right quadrants.
      return (v.x <= src.x && v.y >= src.y) || (v.x >= src.x && v.y <= src.y);
    }
    case Region::kTwo:
      return source_on_left;
    case Region::kThree:
      return !source_on_left;
  }
  return false;
}

/// Anchor columns x = i + 4k clipped to [1, m].
struct AnchorRange {
  int min;
  int max;

  [[nodiscard]] bool empty() const noexcept { return min > max; }
};
AnchorRange anchor_range(int i, int m) noexcept {
  return {1 + floor_mod(i - 1, 4), m - floor_mod(m - i, 4)};
}

}  // namespace

bool Mesh2d3Broadcast::in_b1_family(Vec2 v, Vec2 src) noexcept {
  const int r = floor_mod(s1_index(v) - s1_index(src), 4);
  return brick_has_up(src) ? (r == 0 || r == 1) : (r == 0 || r == 3);
}

bool Mesh2d3Broadcast::in_b2_family(Vec2 v, Vec2 src) noexcept {
  const int r = floor_mod(s2_index(v) - s2_index(src), 4);
  return brick_has_up(src) ? (r == 0 || r == 3) : (r == 0 || r == 1);
}

RelayPlan Mesh2d3Broadcast::plan_on_grid(const Grid2D& grid, NodeId source) {
  const Vec2 src = grid.to_coord(source);
  const int m = grid.m();
  const int n = grid.n();
  // Paper R3/R4: "the left side of the network, i.e. 1 ≤ i ≤ m/2".
  const bool on_left = 2 * src.x <= m;
  // d = +1 when the source row's parity has its vertical link upward; the
  // B1 pair is then {c, c+1} and the B2 pair {c, c-1} (§3.3).
  const int d = brick_has_up(src) ? 1 : -1;
  const AnchorRange anchors = anchor_range(src.x, m);

  // Transmissions from a family's staircases cover one diagonal index past
  // the pair on each side; cells beyond the clipped anchor range of their
  // *preferred* family fall to the other family ("responsibility" below).
  // These bounds say which diagonal indices each family can actually serve.
  const int b1_cover_lo = std::min(0, d) - 1;  // relative to pair base
  const int b1_cover_hi = std::max(0, d) + 1;
  const int s1_lo = anchors.min + src.y + b1_cover_lo;
  const int s1_hi = anchors.max + src.y + b1_cover_hi;
  const int s2_lo = anchors.min - src.y - b1_cover_hi;  // B2 pair mirrors B1
  const int s2_hi = anchors.max - src.y - b1_cover_lo;

  const auto b1_responsible = [&](Vec2 v) {
    return s2_index(v) < s2_lo || s2_index(v) > s2_hi;
  };
  const auto b2_responsible = [&](Vec2 v) {
    return s1_index(v) < s1_lo || s1_index(v) > s1_hi;
  };

  std::vector<char> relay(grid.num_nodes(), 0);
  for (int x = 1; x <= m; ++x) relay[grid.to_id({x, src.y})] = 1;

  // Walks one vertical branch (dy = ±1) of a staircase whose cells at row y
  // are x = base - s·y and x = base + d_pair - s·y (s = +1 for B1 staircases,
  // -1 for B2).  The branch relays contiguously from the source row out to
  // the farthest cell it must serve, so it is always seeded and connected.
  const auto walk_branch = [&](int base, int d_pair, int s, int dy,
                               auto&& serves) {
    int farthest = 0;  // |y - src.y| of the farthest served cell
    std::vector<Vec2> cells;
    for (int y = src.y + dy; y >= 1 && y <= n; y += dy) {
      for (int xx : {base - s * y, base + d_pair - s * y}) {
        const Vec2 v{xx, y};
        if (!grid.contains(v)) continue;
        cells.push_back(v);
        if (serves(v)) farthest = std::abs(y - src.y);
      }
    }
    for (const Vec2 v : cells) {
      if (std::abs(v.y - src.y) <= farthest) relay[grid.to_id(v)] = 1;
    }
  };

  for (int a = anchors.min; a <= anchors.max; a += 4) {
    // B1 staircase through anchor (a, j): pair {a+j, a+j+d}; cells at row y
    // satisfy x + y ∈ pair.
    const int c1 = a + src.y;
    const auto b1_serves = [&](Vec2 v) {
      return prefers_b1(v, src, on_left) || b1_responsible(v);
    };
    walk_branch(c1, d, +1, +1, b1_serves);
    walk_branch(c1, d, +1, -1, b1_serves);

    // B2 staircase: pair {a-j, a-j-d}; cells satisfy x - y ∈ pair.
    const int c2 = a - src.y;
    const auto b2_serves = [&](Vec2 v) {
      return prefers_b2(v, src, on_left) || b2_responsible(v);
    };
    walk_branch(c2, -d, -1, +1, b2_serves);
    walk_branch(c2, -d, -1, -1, b2_serves);
  }

  RelayPlan plan = RelayPlan::empty(grid.num_nodes(), source);
  for (NodeId id = 0; id < grid.num_nodes(); ++id) {
    if (!relay[id]) continue;
    const Vec2 v = grid.to_coord(id);
    // B1 staircases start one slot late: their first step off the row
    // otherwise advances in lockstep with the row wavefront and the B2
    // starts, and the cells wedged between two same-slot transmitters
    // never decode anything.  Empirically this halves the stranded cells;
    // the remaining deterministic collisions are repaired by the resolver.
    const bool staircase_start =
        v.y == src.y + 1 || v.y == src.y - 1;
    if (staircase_start && in_b1_family(v, src)) {
      plan.tx_offsets[id] = {2};
    } else {
      plan.tx_offsets[id] = {1};
    }
  }
  plan.tx_offsets[source] = {1};
  return plan;
}

RelayPlan Mesh2d3Broadcast::plan(const Topology& topo, NodeId source) const {
  const auto* mesh = dynamic_cast<const Mesh2D3*>(&topo);
  WSN_EXPECTS(mesh != nullptr);
  return plan_on_grid(mesh->grid(), source);
}

}  // namespace wsn
