#include "protocol/cds_broadcast.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "common/random.h"
#include "topology/graph_algos.h"

namespace wsn {

RelayPlan CdsBroadcast::plan(const Topology& topo, NodeId source) const {
  const std::size_t n = topo.num_nodes();
  WSN_EXPECTS(source < n);

  const std::vector<std::uint32_t> layer = bfs_distances(topo, source);
  std::uint32_t depth = 0;
  for (std::uint32_t d : layer) {
    if (d != kUnreachable) depth = std::max(depth, d);
  }

  std::vector<char> covered(n, 0);
  std::vector<char> relay(n, 0);
  relay[source] = 1;
  covered[source] = 1;
  for (NodeId u : topo.neighbors(source)) covered[u] = 1;

  // Greedy dominant pruning, one BFS ring at a time: candidates are the
  // covered nodes of ring d (they will hold the message when their turn
  // comes); each greedy step picks the candidate covering the most
  // still-uncovered ring-(d+1) nodes.
  std::vector<NodeId> candidates;
  for (std::uint32_t d = 1; d <= depth; ++d) {
    candidates.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (layer[v] == d && covered[v] && !relay[v]) candidates.push_back(v);
    }
    const auto gain = [&](NodeId c) {
      std::size_t fresh = 0;
      for (NodeId u : topo.neighbors(c)) {
        if (!covered[u]) ++fresh;
      }
      return fresh;
    };
    while (true) {
      NodeId best = kInvalidNode;
      std::size_t best_gain = 0;
      for (NodeId c : candidates) {
        if (relay[c]) continue;
        const std::size_t g = gain(c);
        if (g > best_gain || (g == best_gain && g > 0 && c < best)) {
          best = c;
          best_gain = g;
        }
      }
      if (best == kInvalidNode || best_gain == 0) break;
      relay[best] = 1;
      for (NodeId u : topo.neighbors(best)) covered[u] = 1;
    }
  }

  // Deterministic per-node stagger decouples the rings' lock-step
  // transmissions; the resolver cleans up whatever still collides.
  RelayPlan plan = RelayPlan::empty(n, source);
  Xoshiro256 rng(seed_ ^ (0x9e3779b97f4a7c15ull * (source + 1)));
  for (NodeId v = 0; v < n; ++v) {
    const Slot stagger =
        window_ == 0 ? 0 : static_cast<Slot>(rng.below(window_ + 1));
    if (v == source) continue;  // keep the stream aligned per node
    if (relay[v]) plan.tx_offsets[v] = {1 + stagger};
  }
  return plan;
}

std::string CdsBroadcast::name() const {
  return "cds-broadcast(window=" + std::to_string(window_) + ")";
}

}  // namespace wsn
