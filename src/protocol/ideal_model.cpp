#include "protocol/ideal_model.h"

#include <cmath>

#include "common/assert.h"

namespace wsn {

OptimalEtr optimal_etr(std::string_view family) {
  if (family == "2D-3") return {2, 3};
  if (family == "2D-4") return {3, 4};
  if (family == "2D-8") return {5, 8};
  if (family == "3D-6") return {5, 6};
  WSN_EXPECTS(false && "unknown topology family");
  return {0, 1};
}

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Ideal transmissions for a 2D family: source reaches deg_full nodes, each
/// further relay M_opt fresh ones.
std::size_t ideal_tx_2d(std::string_view family, std::size_t nodes) {
  const OptimalEtr etr = optimal_etr(family);
  const auto deg = static_cast<std::size_t>(etr.neighbors);
  const auto fresh = static_cast<std::size_t>(etr.fresh);
  if (nodes <= deg + 1) return 1;
  return 1 + ceil_div(nodes - 1 - deg, fresh);
}

}  // namespace

IdealCase ideal_case(std::string_view family, int m, int n, int l,
                     Meters spacing, std::size_t bits,
                     const FirstOrderRadioModel& radio) {
  WSN_EXPECTS(m >= 1 && n >= 1 && l >= 1);
  const auto plane = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);

  IdealCase out;
  Meters range = spacing;
  if (family == "3D-6") {
    // 2D-4 sweep of the source plane plus one transmission per z-column per
    // plane; the source column's plane-k transmission is already in the
    // sweep, hence the -1.
    out.tx = ideal_tx_2d("2D-4", plane) +
             ceil_div(plane, 5) * static_cast<std::size_t>(l) - 1;
  } else {
    out.tx = ideal_tx_2d(family, plane * static_cast<std::size_t>(l));
    if (family == "2D-8") range = spacing * std::sqrt(2.0);  // diagonal hops
  }
  const auto deg =
      static_cast<std::size_t>(optimal_etr(family).neighbors);
  out.rx = out.tx * deg;
  out.power = static_cast<double>(out.tx) * radio.tx_energy(bits, range) +
              static_cast<double>(out.rx) * radio.rx_energy(bits);
  return out;
}

}  // namespace wsn
