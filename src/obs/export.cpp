#include "obs/export.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace wsn {

namespace {

/// Chrome's viewer groups instants by name; collisions get a loud one.
const char* chrome_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCollision: return "collision";
    case EventKind::kLossFading: return "loss:fade";
    case EventKind::kLossCrash: return "loss:crash";
    case EventKind::kRelayActivation: return "relay-activation";
    case EventKind::kPipelineDefer: return "defer";
    default: return to_string(kind).data();  // names are literals
  }
}

/// Optional Event fields follow one rule everywhere: peer only when valid,
/// packet/detail only when non-zero.  The trace reader (obs/audit) relies
/// on exactly this shape.
void event_members(JsonWriter& w, const Event& e) {
  if (e.peer != kInvalidNode) w.member("peer", std::uint64_t{e.peer});
  if (e.packet != 0) w.member("packet", std::uint64_t{e.packet});
  if (e.detail != 0) w.member("detail", std::uint64_t{e.detail});
}

}  // namespace

void write_events_jsonl(std::ostream& out, const EventSink& sink) {
  JsonWriter header;
  header.begin_object()
      .member("schema", "meshbcast.trace")
      .member("version", std::uint64_t{kEventSchemaVersion})
      .member("events", std::uint64_t{sink.size()})
      .member("dropped", std::uint64_t{sink.dropped()})
      .end_object();
  out << std::move(header).str() << "\n";
  for (const Event& e : sink.events()) {
    JsonWriter w;
    w.begin_object()
        .member("slot", std::uint64_t{e.slot})
        .member("kind", to_string(e.kind))
        .member("node", std::uint64_t{e.node});
    event_members(w, e);
    w.end_object();
    out << std::move(w).str() << "\n";
  }
}

void write_chrome_trace(std::ostream& out, const EventSink& sink,
                        std::uint32_t slot_us) {
  const std::vector<Event> events = sink.events();

  out << "[";
  bool first = true;
  const auto emit = [&](JsonWriter&& w) {
    if (!first) out << ",";
    first = false;
    out << "\n" << std::move(w).str();
  };

  // Track metadata: one named row per node that appears, sorted so the
  // viewer lists node 0 at the top.
  std::vector<NodeId> nodes;
  for (const Event& e : events) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  {
    JsonWriter w;
    w.begin_object()
        .member("name", "process_name")
        .member("ph", "M")
        .member("pid", std::uint64_t{0})
        .key("args").begin_object()
        .member("name", "meshbcast")
        .end_object().end_object();
    emit(std::move(w));
  }
  for (NodeId v : nodes) {
    JsonWriter name;
    name.begin_object()
        .member("name", "thread_name")
        .member("ph", "M")
        .member("pid", std::uint64_t{0})
        .member("tid", std::uint64_t{v})
        .key("args").begin_object()
        .member("name", "node " + std::to_string(v))
        .end_object().end_object();
    emit(std::move(name));
    JsonWriter sort;
    sort.begin_object()
        .member("name", "thread_sort_index")
        .member("ph", "M")
        .member("pid", std::uint64_t{0})
        .member("tid", std::uint64_t{v})
        .key("args").begin_object()
        .member("sort_index", std::uint64_t{v})
        .end_object().end_object();
    emit(std::move(sort));
  }

  for (const Event& e : events) {
    const std::uint64_t ts = static_cast<std::uint64_t>(e.slot) * slot_us;
    JsonWriter w;
    w.begin_object()
        .member("name", chrome_name(e.kind))
        .member("cat", "sim");
    if (e.kind == EventKind::kTx) {
      w.member("ph", "X").member("ts", ts)
          .member("dur", std::uint64_t{slot_us});
    } else {
      w.member("ph", "i").member("s", "t").member("ts", ts);
    }
    w.member("pid", std::uint64_t{0})
        .member("tid", std::uint64_t{e.node})
        .key("args").begin_object()
        .member("slot", std::uint64_t{e.slot});
    event_members(w, e);
    w.end_object().end_object();
    emit(std::move(w));
  }
  out << "\n]\n";
}

}  // namespace wsn
