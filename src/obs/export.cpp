#include "obs/export.h"

#include <algorithm>
#include <string>
#include <vector>

namespace wsn {

namespace {

/// Chrome's viewer groups instants by name; collisions get a loud one.
const char* chrome_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCollision: return "collision";
    case EventKind::kLossFading: return "loss:fade";
    case EventKind::kLossCrash: return "loss:crash";
    case EventKind::kRelayActivation: return "relay-activation";
    case EventKind::kPipelineDefer: return "defer";
    default: return to_string(kind).data();  // names are literals
  }
}

}  // namespace

void write_events_jsonl(std::ostream& out, const EventSink& sink) {
  out << "{\"schema\":\"meshbcast.trace\",\"version\":" << kEventSchemaVersion
      << ",\"events\":" << sink.size() << ",\"dropped\":" << sink.dropped()
      << "}\n";
  for (const Event& e : sink.events()) {
    out << "{\"slot\":" << e.slot << ",\"kind\":\"" << to_string(e.kind)
        << "\",\"node\":" << e.node;
    if (e.peer != kInvalidNode) out << ",\"peer\":" << e.peer;
    if (e.packet != 0) out << ",\"packet\":" << e.packet;
    if (e.detail != 0) out << ",\"detail\":" << e.detail;
    out << "}\n";
  }
}

void write_chrome_trace(std::ostream& out, const EventSink& sink,
                        std::uint32_t slot_us) {
  const std::vector<Event> events = sink.events();

  out << "[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Track metadata: one named row per node that appears, sorted so the
  // viewer lists node 0 at the top.
  std::vector<NodeId> nodes;
  for (const Event& e : events) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  sep();
  out << R"({"name":"process_name","ph":"M","pid":0,)"
      << R"("args":{"name":"meshbcast"}})";
  for (NodeId v : nodes) {
    sep();
    out << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << v
        << R"(,"args":{"name":"node )" << v << "\"}}";
    sep();
    out << R"({"name":"thread_sort_index","ph":"M","pid":0,"tid":)" << v
        << R"(,"args":{"sort_index":)" << v << "}}";
  }

  for (const Event& e : events) {
    const std::uint64_t ts =
        static_cast<std::uint64_t>(e.slot) * slot_us;
    sep();
    out << "{\"name\":\"" << chrome_name(e.kind) << "\",\"cat\":\"sim\",";
    if (e.kind == EventKind::kTx) {
      out << "\"ph\":\"X\",\"ts\":" << ts << ",\"dur\":" << slot_us << ",";
    } else {
      out << "\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts << ",";
    }
    out << "\"pid\":0,\"tid\":" << e.node << ",\"args\":{\"slot\":"
        << e.slot;
    if (e.peer != kInvalidNode) out << ",\"peer\":" << e.peer;
    if (e.packet != 0) out << ",\"packet\":" << e.packet;
    if (e.detail != 0) out << ",\"detail\":" << e.detail;
    out << "}}";
  }
  out << "\n]\n";
}

}  // namespace wsn
