#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

/// Periodic telemetry sampler: a background thread that, every
/// `period_ms`, scrapes the metrics registry and the live worker states
/// and appends one `meshbcast.timeseries` v1 JSONL line.
///
/// The sampler is wall-clock driven and therefore lives strictly outside
/// the determinism boundary: it observes an engine run, it never feeds
/// it.  Nothing the sampler writes can reach a results record, and an
/// engine run with the sampler attached is byte-identical to one without
/// (the acceptance tests pin this).
///
/// Worker states come through a swappable provider callback
/// (`set_worker_states`): the scenario engine installs one for the
/// duration of `run()` and removes it before returning, so the sampler
/// can outlive any single run.  States are the WorkerState enum below;
/// per-state instantaneous counts and cumulative utilization shares are
/// written per tick and, when a registry is configured, mirrored into
/// `scenario.worker_util.{busy,idle,blocked}` gauges.
namespace wsn {

/// What a worker thread is doing right now.
enum class WorkerState : std::uint8_t {
  kIdle = 0,     // waiting for work (queue empty)
  kBusy = 1,     // executing a job
  kBlocked = 2,  // stalled on shared state (collector lock / emission)
};

class TelemetrySampler {
 public:
  struct Config {
    /// Sampling cadence; clamped to >= 1.
    std::size_t period_ms = 100;
    /// Scraped each tick (counters + gauges; nullable).
    MetricsRegistry* metrics = nullptr;
  };

  explicit TelemetrySampler(Config config);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Opens `path`, writes the header line and starts the sampling
  /// thread.  False when the file cannot be opened or sampling is
  /// already running.
  [[nodiscard]] bool start(const std::string& path);

  /// Stops and joins the sampling thread, taking one final sample first
  /// so short runs always leave at least one tick.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Ticks written since start().
  [[nodiscard]] std::size_t ticks() const noexcept {
    return ticks_.load(std::memory_order_acquire);
  }

  /// Installs (or, with an empty function, removes) the worker-state
  /// provider.  Callable while sampling runs; the engine installs it at
  /// run start and removes it before run() returns.
  void set_worker_states(std::function<std::vector<WorkerState>()> provider);

 private:
  void sample_once();

  const std::size_t period_ms_;
  MetricsRegistry* const metrics_;

  std::mutex mutex_;  // guards out_, provider_, cumulative counts
  std::ofstream out_;
  std::function<std::vector<WorkerState>()> provider_;
  std::uint64_t samples_busy_ = 0;
  std::uint64_t samples_idle_ = 0;
  std::uint64_t samples_blocked_ = 0;
  std::chrono::steady_clock::time_point started_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> ticks_{0};
};

}  // namespace wsn
