#pragma once

#include "obs/event_sink.h"
#include "obs/metrics.h"

/// The simulator-facing instrumentation bundle.
///
/// `SimOptions::observer` takes one of these (nullable, like `faults`):
/// the simulator then mirrors every stats increment into pre-resolved
/// metric handles and every per-slot phenomenon into the event sink.
/// Either half may be absent -- a metrics-only observer is safe to share
/// across the concurrent runs of a `parallel_for` sweep (the registry is
/// thread-safe), while the event sink, like FaultModel, belongs to one
/// run at a time.
///
/// Metric names mirror BroadcastStats one-to-one, so after any run
/// `scrape().counter_or("sim.tx") == stats.tx` and so on -- the
/// registry is the long-lived, cross-run accumulation of the same
/// quantities the per-run struct reports.
namespace wsn {

struct Observer {
  Observer() = default;
  /// Binds the metric handles when `metrics` is non-null.
  explicit Observer(EventSink* event_sink,
                    MetricsRegistry* metrics = nullptr);

  EventSink* events = nullptr;

  /// Pre-resolved handles; all null until a registry is bound.
  Counter* tx = nullptr;
  Counter* rx = nullptr;
  Counter* duplicates = nullptr;
  Counter* collisions = nullptr;
  Counter* lost_to_fading = nullptr;
  Counter* lost_to_crash = nullptr;
  Counter* relay_activations = nullptr;
  Counter* pipeline_defers = nullptr;
  Counter* runs = nullptr;
  Gauge* reached = nullptr;
  /// Ring-buffer overflow of the attached sink after the last run; a
  /// nonzero value means the exported trace is truncated and any audit of
  /// it must flag incompleteness (obs/audit).
  Gauge* events_dropped = nullptr;
  Histogram* slot_delay = nullptr;
  Histogram* node_energy = nullptr;
  Histogram* etr = nullptr;

  /// Resolves every handle out of `registry` (idempotent per registry).
  void bind_metrics(MetricsRegistry& registry);

  void emit(const Event& event) {
    if (events != nullptr) events->record(event);
  }
  static void count(Counter* counter, std::uint64_t n = 1) noexcept {
    if (counter != nullptr) counter->add(n);
  }
};

}  // namespace wsn
