#include "obs/heartbeat.h"

#include <chrono>
#include <csignal>
#include <cstdio>

#include "common/assert.h"
#include "common/json.h"

namespace wsn {

namespace {

/// The process-global latch the handlers write.  Signal handlers cannot
/// carry state, so the flag lives here; SignalDrain scopes the handler
/// installation around it.
std::atomic<bool> g_drain_requested{false};
std::atomic<bool> g_drain_live{false};

void drain_handler(int) {
  g_drain_requested.store(true, std::memory_order_release);
}

}  // namespace

std::string heartbeat_json(const HeartbeatRecord& beat) {
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.heartbeat")
      .member("version", std::uint64_t{1})
      .member("emitted", std::uint64_t{beat.emitted})
      .member("jobs", std::uint64_t{beat.jobs_total})
      .member("errors", std::uint64_t{beat.errors})
      .member("queue_depth", std::uint64_t{beat.queue_depth})
      .member("workers_busy", std::uint64_t{beat.workers_busy})
      .end_object();
  return std::move(w).str();
}

void heartbeat_to_stderr(const HeartbeatRecord& beat) {
  std::fprintf(stderr, "%s\n", heartbeat_json(beat).c_str());
}

SignalDrain::SignalDrain() {
  WSN_EXPECTS(!g_drain_live.exchange(true, std::memory_order_acq_rel));
  g_drain_requested.store(false, std::memory_order_release);
  prev_int_ = std::signal(SIGINT, drain_handler);
  prev_term_ = std::signal(SIGTERM, drain_handler);
}

SignalDrain::~SignalDrain() {
  std::signal(SIGINT, prev_int_ == SIG_ERR ? SIG_DFL : prev_int_);
  std::signal(SIGTERM, prev_term_ == SIG_ERR ? SIG_DFL : prev_term_);
  g_drain_live.store(false, std::memory_order_release);
}

bool SignalDrain::requested() const noexcept {
  return g_drain_requested.load(std::memory_order_acquire);
}

void SignalDrain::trigger() noexcept {
  g_drain_requested.store(true, std::memory_order_release);
}

const std::atomic<bool>* SignalDrain::flag() const noexcept {
  return &g_drain_requested;
}

HeartbeatEmitter::HeartbeatEmitter(Config config)
    : config_(std::move(config)) {
  if (!config_.sink) config_.sink = heartbeat_to_stderr;
  if (config_.period_ms == 0) config_.period_ms = 1000;
}

HeartbeatEmitter::~HeartbeatEmitter() { stop(); }

void HeartbeatEmitter::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ || !config_.sample) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> wait_lock(mutex_);
    while (!stopping_) {
      // Interruptible sleep: stop() wakes the thread immediately instead
      // of waiting out the period.
      cv_.wait_for(wait_lock, std::chrono::milliseconds(config_.period_ms),
                   [this] { return stopping_; });
      if (stopping_) break;
      wait_lock.unlock();
      config_.sink(config_.sample());
      wait_lock.lock();
    }
  });
}

void HeartbeatEmitter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  // Closing beat: the terminal state after the drain.
  config_.sink(config_.sample());
}

}  // namespace wsn
