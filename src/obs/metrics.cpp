#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.h"
#include "common/json.h"

namespace wsn {

namespace obs_detail {

std::size_t thread_shard() noexcept {
  // Round-robin assignment at first use spreads threads evenly even when
  // parallel_for spawns short-lived workers in bursts.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace obs_detail

namespace {

/// Relaxed fetch-min/max via CAS; first observation seeds the slot.
void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

template <typename T>
T* find_named(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
    std::string_view name) {
  for (auto& [key, metric] : entries) {
    if (key == name) return metric.get();
  }
  return nullptr;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  WSN_EXPECTS(!upper_bounds_.empty());
  WSN_EXPECTS(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, midpoint-free: the classic
  // "nearest-rank with interpolation" estimator over bucket counts).
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // The bucket covering the target rank.  Interpolate linearly between
    // its lower and upper edges; the open-ended edges fall back to the
    // exact extrema.
    const double lower = i == 0 ? min : upper_bounds[i - 1];
    const double upper = i < upper_bounds.size() ? upper_bounds[i] : max;
    const double within =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    const double value = lower + (upper - lower) * within;
    return std::min(max, std::max(min, value));
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* existing = find_named(counters_, name)) return *existing;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* existing = find_named(gauges_, name)) return *existing;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* existing = find_named(histograms_, name)) return *existing;
  histograms_.emplace_back(
      std::string(name),
      std::make_unique<Histogram>(std::move(upper_bounds)));
  return *histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::scrape() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, metric] : counters_) {
    snap.counters.emplace_back(name, metric->value());
  }
  for (const auto& [name, metric] : gauges_) {
    snap.gauges.emplace_back(name, metric->value());
  }
  for (const auto& [name, metric] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.upper_bounds = metric->upper_bounds();
    h.buckets = metric->bucket_counts();
    h.count = metric->count();
    h.sum = metric->sum();
    h.min = metric->min();
    h.max = metric->max();
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

void write_metrics_json(std::ostream& out,
                        const MetricsSnapshot& snapshot) {
  // Compact JsonWriter output: %.17g doubles round-trip through
  // parse_json exactly, infinities clamp to +/-1e308 (json_number).
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.metrics")
      .member("version", std::uint64_t{1});
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) w.member(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.member(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.key("upper_bounds").begin_array();
    for (const double bound : h.upper_bounds) w.value(bound);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.member("count", h.count)
        .member("sum", h.sum)
        .member("min", h.min)
        .member("max", h.max)
        .member("p50", h.percentile(0.50))
        .member("p95", h.percentile(0.95))
        .member("p99", h.percentile(0.99))
        .end_object();
  }
  w.end_object().end_object();
  out << std::move(w).str() << "\n";
}

}  // namespace wsn
