#include "obs/observer.h"

namespace wsn {

Observer::Observer(EventSink* event_sink, MetricsRegistry* metrics)
    : events(event_sink) {
  if (metrics != nullptr) bind_metrics(*metrics);
}

void Observer::bind_metrics(MetricsRegistry& registry) {
  tx = &registry.counter("sim.tx");
  rx = &registry.counter("sim.rx");
  duplicates = &registry.counter("sim.duplicates");
  collisions = &registry.counter("sim.collisions");
  lost_to_fading = &registry.counter("sim.lost_to_fading");
  lost_to_crash = &registry.counter("sim.lost_to_crash");
  relay_activations = &registry.counter("sim.relay_activations");
  pipeline_defers = &registry.counter("sim.pipeline_defers");
  runs = &registry.counter("sim.runs");
  reached = &registry.gauge("sim.reached");
  events_dropped = &registry.gauge("sim.events_dropped");

  // Slot-delay edges cover the paper topologies (Table 5 tops out at 46
  // slots on 2D-3); overflow catches anything bigger, max() stays exact.
  slot_delay = &registry.histogram(
      "sim.slot_delay",
      {4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 64, 96, 128});
  // Per-node energy in joules; 512-bit packets land around 1e-5 J per op.
  node_energy = &registry.histogram(
      "sim.node_energy_j",
      {1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2});
  // ETR is fresh/degree in [0, 1].
  etr = &registry.histogram(
      "sim.etr", {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0});
}

}  // namespace wsn
