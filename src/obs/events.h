#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

/// The structured event vocabulary of the simulation stack.
///
/// Every per-slot phenomenon the paper reasons about -- transmissions,
/// receptions, the predictable collisions, scheduled relay activations --
/// plus the extension semantics (fault losses, pipeline deferrals) maps to
/// exactly one event kind.  Events are small PODs so a ring buffer of a
/// million of them costs ~24 MB and recording one is a couple of stores;
/// the simulator emits them only when an Observer is installed
/// (sim/simulator.h), so the uninstrumented hot path stays untouched.
///
/// The schema is versioned: exporters (obs/export.h) stamp
/// `kEventSchemaVersion` into their headers so downstream tooling can
/// reject traces it does not understand instead of misparsing them.
namespace wsn {

inline constexpr int kEventSchemaVersion = 1;

enum class EventKind : std::uint8_t {
  kTx = 0,            // node transmitted the packet this slot
  kRx,                // first successful reception at node (from peer)
  kDuplicate,         // successful decode of an already-held packet
  kCollision,         // >= 2 neighbors transmitted; detail = contenders
  kLossFading,        // fault model dropped the link packet (peer -> node)
  kLossCrash,         // crash destroyed deliveries; detail = links lost
  kRelayActivation,   // node's relay schedule armed; detail = #offsets
  kPipelineDefer,     // node deferred a younger packet to the next slot
};

inline constexpr std::size_t kEventKindCount = 8;

/// Stable short name used by every exporter ("tx", "rx", "dup", "coll",
/// "fade", "crash", "relay_on", "defer").
[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// Inverse of to_string, for trace re-readers (obs/audit).  Returns false
/// when `name` is not one of the stable short names.
[[nodiscard]] bool event_kind_from_string(std::string_view name,
                                          EventKind& out) noexcept;

struct Event {
  Slot slot = 0;
  EventKind kind = EventKind::kTx;
  /// Where the event happened (receiver for rx/dup/coll/fade, transmitter
  /// for tx/crash, the deferring relay for defer).
  NodeId node = kInvalidNode;
  /// The transmitter heard/lost, when one is attributable.
  NodeId peer = kInvalidNode;
  /// Pipeline packet index; 0 in single-broadcast runs.
  std::uint32_t packet = 0;
  /// Kind-specific payload (collision contenders, links lost to a crash,
  /// relay offset count); 0 when unused.
  std::uint32_t detail = 0;

  friend bool operator==(const Event& a, const Event& b) noexcept = default;
};

}  // namespace wsn
