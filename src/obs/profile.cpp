#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/json.h"

namespace wsn {

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const char* name, std::uint64_t ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (SpanStats& s : stats_) {
    if (s.name == name) {
      s.count += 1;
      s.total_ns += ns;
      s.min_ns = std::min(s.min_ns, ns);
      s.max_ns = std::max(s.max_ns, ns);
      return;
    }
  }
  stats_.push_back(SpanStats{name, 1, ns, ns, ns});
}

std::vector<Profiler::SpanStats> Profiler::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out = stats_;
  std::sort(out.begin(), out.end(),
            [](const SpanStats& a, const SpanStats& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
}

std::string Profiler::report_text() const {
  const std::vector<SpanStats> spans = snapshot();
  std::ostringstream out;
  out << "span                      count     total ms      mean us"
      << "       max us\n";
  for (const SpanStats& s : spans) {
    char line[128];
    std::snprintf(line, sizeof line, "%-24s %6llu %12.3f %12.3f %12.3f\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6, s.mean_ns() / 1e3,
                  static_cast<double>(s.max_ns) / 1e3);
    out << line;
  }
  if (spans.empty()) out << "(no spans recorded -- profiling enabled?)\n";
  return out.str();
}

void Profiler::write_report_json(std::ostream& out) const {
  const std::vector<SpanStats> spans = snapshot();
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.profile")
      .member("version", std::uint64_t{1})
      .key("spans").begin_array();
  for (const SpanStats& s : spans) {
    w.begin_object()
        .member("name", s.name)
        .member("count", s.count)
        .member("total_ns", s.total_ns)
        .member("min_ns", s.min_ns)
        .member("max_ns", s.max_ns)
        .end_object();
  }
  w.end_array().end_object();
  out << std::move(w).str() << "\n";
}

}  // namespace wsn
