#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/json.h"

namespace wsn {

namespace obs_detail {

std::atomic<std::uint32_t>& profile_mode() noexcept {
  static std::atomic<std::uint32_t> mode{0};
  return mode;
}

}  // namespace obs_detail

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::Shard& Profiler::local_shard() {
  // One shard per recording thread, registered on first use and kept for
  // the process lifetime (a retired thread's aggregates stay mergeable).
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  return *shard;
}

void Profiler::record(const char* name, std::uint64_t ns) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  for (SpanStats& s : shard.stats) {
    if (s.name == name) {
      s.count += 1;
      s.total_ns += ns;
      s.min_ns = std::min(s.min_ns, ns);
      s.max_ns = std::max(s.max_ns, ns);
      return;
    }
  }
  shard.stats.push_back(SpanStats{name, 1, ns, ns, ns});
}

std::vector<Profiler::SpanStats> Profiler::snapshot() const {
  std::vector<SpanStats> out;
  {
    const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      for (const SpanStats& s : shard->stats) {
        SpanStats* merged = nullptr;
        for (SpanStats& m : out) {
          if (m.name == s.name) {
            merged = &m;
            break;
          }
        }
        if (merged == nullptr) {
          out.push_back(s);
        } else {
          merged->count += s.count;
          merged->total_ns += s.total_ns;
          merged->min_ns = std::min(merged->min_ns, s.min_ns);
          merged->max_ns = std::max(merged->max_ns, s.max_ns);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanStats& a, const SpanStats& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->stats.clear();
  }
}

std::string Profiler::report_text() const {
  const std::vector<SpanStats> spans = snapshot();
  std::ostringstream out;
  out << "span                      count     total ms      mean us"
      << "       max us\n";
  for (const SpanStats& s : spans) {
    char line[128];
    std::snprintf(line, sizeof line, "%-24s %6llu %12.3f %12.3f %12.3f\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6, s.mean_ns() / 1e3,
                  static_cast<double>(s.max_ns) / 1e3);
    out << line;
  }
  if (spans.empty()) out << "(no spans recorded -- profiling enabled?)\n";
  return out.str();
}

void Profiler::write_report_json(std::ostream& out) const {
  const std::vector<SpanStats> spans = snapshot();
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.profile")
      .member("version", std::uint64_t{1})
      .key("spans").begin_array();
  for (const SpanStats& s : spans) {
    w.begin_object()
        .member("name", s.name)
        .member("count", s.count)
        .member("total_ns", s.total_ns)
        .member("min_ns", s.min_ns)
        .member("max_ns", s.max_ns)
        .end_object();
  }
  w.end_array().end_object();
  out << std::move(w).str() << "\n";
}

}  // namespace wsn
