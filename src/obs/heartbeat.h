#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

/// Liveness plumbing shared by every long-running front end: the
/// `meshbcast.heartbeat` line format, a periodic background emitter, and
/// the SIGINT/SIGTERM -> atomic-flag drain latch.
///
/// Two consumers drive the shape of this header.  The scenario runner
/// emits COUNT-based heartbeats (every N emitted records, through the
/// engine's `on_heartbeat` hook) and needs a signal latch its engine can
/// poll between jobs so Ctrl-C leaves a clean, resumable checkpoint.  The
/// broadcast-planning daemon (`meshbcastd`) emits TIME-based heartbeats
/// (a liveness thread on a fixed period) and needs the same latch to
/// trigger its graceful drain.  Both used to hand-roll this; now they
/// share one implementation, and the record format stays identical across
/// front ends so one log scraper serves both.
namespace wsn {

/// One heartbeat observation.  Field meaning is front-end-relative --
/// the scenario engine reports emitted records over total jobs, the
/// service reports served requests over admitted -- but the *shape* (and
/// therefore the schema) is shared.
struct HeartbeatRecord {
  std::size_t emitted = 0;
  std::size_t jobs_total = 0;
  std::size_t errors = 0;
  std::size_t queue_depth = 0;
  std::size_t workers_busy = 0;
};

/// One-line `meshbcast.heartbeat` v1 JSON rendering (no trailing newline).
[[nodiscard]] std::string heartbeat_json(const HeartbeatRecord& beat);

/// The canonical sink: one heartbeat line to stderr, newline-terminated,
/// written with a single stdio call so concurrent emitters never
/// interleave mid-line.
void heartbeat_to_stderr(const HeartbeatRecord& beat);

/// Scoped SIGINT/SIGTERM latch for cooperative drains.
///
///   SignalDrain drain;
///   config.cancel = drain.flag();      // engine polls between jobs
///   ...
///   if (drain.requested()) { /* finish in-flight, flush, exit */ }
///
/// The handlers only set a process-global atomic (the one async-signal-
/// safe thing a handler can do); everything else -- queue cancellation,
/// checkpoint flushing, socket teardown -- happens on normal threads that
/// poll the flag.  The destructor restores the previous handlers, so the
/// latch nests correctly around a scoped run.  `trigger()` sets the same
/// flag programmatically -- the daemon's `shutdown` RPC and the tests use
/// it so every drain path exercises the same code.
///
/// At most one instance may be live at a time (the flag is necessarily
/// process-global); a second concurrent instance is a precondition
/// violation.
class SignalDrain {
 public:
  SignalDrain();
  ~SignalDrain();
  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  /// True once a signal arrived (or `trigger()` ran).
  [[nodiscard]] bool requested() const noexcept;
  /// Programmatic drain request; same observable effect as SIGINT.
  void trigger() noexcept;
  /// The underlying flag, shaped for `EngineConfig::cancel`.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept;

 private:
  void (*prev_int_)(int);
  void (*prev_term_)(int);
};

/// Periodic heartbeat thread: samples a snapshot closure every
/// `period_ms` and hands it to the sink.  Start/stop are idempotent and
/// the destructor stops; the final beat is emitted by `stop()` so a
/// drain always leaves a closing line (tests key off it, and operators
/// get the terminal queue state for free).
class HeartbeatEmitter {
 public:
  struct Config {
    std::size_t period_ms = 1000;
    /// Snapshot provider; called on the emitter thread.
    std::function<HeartbeatRecord()> sample;
    /// Defaults to `heartbeat_to_stderr` when empty.
    std::function<void(const HeartbeatRecord&)> sink;
  };

  explicit HeartbeatEmitter(Config config);
  ~HeartbeatEmitter();
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  void start();
  /// Joins the thread and emits one final beat (no-op when not started).
  void stop();

 private:
  Config config_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace wsn
