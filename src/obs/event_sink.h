#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/events.h"

/// Ring-buffered event sink.
///
/// Recording must be cheap enough to leave on for full paper-sized runs,
/// so the sink is a fixed-capacity ring that keeps the *most recent*
/// `capacity` events: long runs lose their oldest history, never their
/// tail, and `dropped()` says exactly how much fell off.  Per-kind totals
/// are counted for every recorded event -- dropped or retained -- so
/// aggregate checks (e.g. "collision events == BroadcastStats::collisions")
/// hold regardless of retention.
///
/// Like FaultModel and BatteryBank, a sink is owned by one run at a time:
/// `record` is not synchronized and must not be shared across concurrent
/// simulations (metrics -- obs/metrics.h -- are the thread-safe half of the
/// observability story).
namespace wsn {

class EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit EventSink(std::size_t capacity = kDefaultCapacity);

  void record(const Event& event);

  /// Retained events in chronological order (oldest first).
  [[nodiscard]] std::vector<Event> events() const;

  /// Events recorded since construction/clear, dropped ones included.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Events that fell off the ring (total - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size_;
  }
  /// Retained event count (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }

  /// Total recorded events of `kind`, dropped ones included.
  [[nodiscard]] std::uint64_t count(EventKind kind) const noexcept {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }

  /// Forgets every event and zeroes all counts; capacity is kept.
  void clear() noexcept;

 private:
  std::vector<Event> ring_;
  std::size_t next_ = 0;   // ring slot the next event lands in
  std::size_t size_ = 0;   // retained events
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kEventKindCount> kind_counts_{};
};

}  // namespace wsn
