#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profile.h"

/// Timeline mode for the profiler: per-thread ring buffers of timestamped
/// span records.
///
/// The aggregate Profiler answers "how much total time went into
/// plan.resolve"; the timeline answers the concurrency questions the
/// aggregates erase -- *when* did worker 3 block on the queue, did the
/// plan-store lock waits line up with the emission stalls, which worker
/// went idle first.  Every WSN_SPAN therefore records into both sinks:
/// the process-wide aggregate (when `Profiler` is enabled) and the
/// calling thread's ring buffer here (when the Timeline is enabled).
/// Both modes share one relaxed atomic mode word, so a fully disabled
/// span still costs exactly one relaxed load and no clock read -- the
/// PR-2 invariant the benchmarks gate.
///
/// The hot path is lock-free: each thread owns its ring (registered once,
/// on first use, under a registry mutex) and publishes records with a
/// release store of the head index.  Ring capacity is bounded; a full
/// ring overwrites its oldest records and counts them as dropped, so a
/// long run degrades to "most recent window" instead of unbounded memory.
/// `snapshot()` is meant for quiesced readers (after workers joined):
/// it reads each ring's published prefix, but records older than
/// `capacity` behind a still-running writer may be overwritten mid-copy.
///
/// Export formats:
///   * `write_timeline_jsonl` -- `meshbcast.timeline` v1: one header
///     line, one thread-description line per thread, one line per span.
///   * `write_timeline_perfetto` -- Chrome trace-event JSON ("X" complete
///     events, one tid track per recorded thread) for ui.perfetto.dev.
namespace wsn {

/// One finished span on one thread.  `name` points at static storage
/// (span names are string literals), so records are trivially copyable.
/// `tag` carries the request id the span belonged to (0 = untagged);
/// the service sets it via RequestTagScope so perf_report can pull one
/// request's spans out of a busy daemon timeline.
struct TimelineRecord {
  std::uint64_t begin_ns = 0;  // since the process timeline epoch
  std::uint64_t end_ns = 0;
  const char* name = nullptr;
  std::uint64_t tag = 0;
};

namespace obs_detail {

/// Thread-local request tag attached to every span the calling thread
/// finishes while it is nonzero.  Reading/writing it costs a TLS access
/// only on paths that already record (the disabled-span fast path never
/// touches it).
[[nodiscard]] std::uint64_t request_tag() noexcept;
void set_request_tag(std::uint64_t tag) noexcept;

}  // namespace obs_detail

/// RAII scope that tags spans finishing on this thread with a request
/// id.  Nested scopes restore the outer tag on destruction.  Constructed
/// with tag 0 it changes nothing until `set()` is called -- useful when
/// the id only becomes known mid-scope (after parsing a frame) but the
/// enclosing span must still pick it up.
class RequestTagScope {
 public:
  explicit RequestTagScope(std::uint64_t tag = 0) noexcept
      : previous_(obs_detail::request_tag()) {
    if (tag != 0) obs_detail::set_request_tag(tag);
  }
  RequestTagScope(const RequestTagScope&) = delete;
  RequestTagScope& operator=(const RequestTagScope&) = delete;
  ~RequestTagScope() { obs_detail::set_request_tag(previous_); }

  void set(std::uint64_t tag) noexcept { obs_detail::set_request_tag(tag); }

 private:
  std::uint64_t previous_;
};

/// Everything one thread recorded, oldest-first.
struct TimelineThreadDump {
  std::uint32_t tid = 0;     // registration order, stable per thread
  std::string label;         // "worker/3", "producer", ... ("" = unnamed)
  std::uint64_t dropped = 0; // records overwritten by ring wrap
  std::vector<TimelineRecord> records;
};

class Timeline {
 public:
  static Timeline& instance();

  /// Flips the timeline bit of the shared profile mode word.
  void set_enabled(bool enabled) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return (obs_detail::profile_mode().load(std::memory_order_relaxed) &
            obs_detail::kProfileTimeline) != 0;
  }

  /// Ring capacity (records) for threads registering *after* the call;
  /// rounded up to a power of two, minimum 64.  Default 65536 (~1.5 MB
  /// per thread).
  void set_thread_capacity(std::size_t records);

  /// Nanoseconds since the process timeline epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Appends one record to the calling thread's ring.  Lock-free after
  /// the thread's first record.  No-op while disabled.  `tag` overrides
  /// the thread-local request tag when nonzero (explicit tagging for
  /// records written on behalf of a request from an untagged context,
  /// e.g. a worker logging the queue wait it just finished).
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::uint64_t tag = 0) noexcept;

  /// Convenience for wait instrumentation: a span of `wait_ns` ending
  /// now.  No-op while disabled, so callers can invoke it unconditionally
  /// on their (already rare) contended paths.  `tag` as in `record`.
  void record_wait(const char* name, std::uint64_t wait_ns,
                   std::uint64_t tag = 0) noexcept;

  /// Names the calling thread's track in snapshots and exports.
  /// Registers the thread's ring if it has none yet; overwrites any
  /// earlier label.
  void set_thread_label(const std::string& label);

  /// Point-in-time copy of every thread's ring, tid-ordered.  Intended
  /// for quiesced rings (see file comment).
  [[nodiscard]] std::vector<TimelineThreadDump> snapshot() const;

  /// Drops every record and label; thread registrations (tids) survive.
  /// Call only while no thread is recording.
  void reset();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity_pow2)
        : mask(capacity_pow2 - 1), slots(capacity_pow2) {}
    const std::size_t mask;
    std::vector<TimelineRecord> slots;
    std::atomic<std::uint64_t> head{0};  // total records ever written
    std::string label;                   // guarded by registry_mutex_
  };

  Timeline();
  [[nodiscard]] Ring& local_ring();

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_pow2_ = 1u << 16;
};

/// `meshbcast.timeline` v1 JSONL:
///   {"schema":"meshbcast.timeline","version":1,"threads":T,"records":N}
///   {"thread":0,"label":"worker/0","records":n,"dropped":d}   (per thread)
///   {"thread":0,"name":"scenario.job","begin_ns":...,"end_ns":...}  (per span)
/// Tagged spans additionally carry `"req":<id>` (omitted when 0).
void write_timeline_jsonl(std::ostream& out,
                          const std::vector<TimelineThreadDump>& threads);

/// Chrome trace-event array ("X" complete events; one tid per thread,
/// thread_name metadata from the labels) for about://tracing and
/// https://ui.perfetto.dev.
void write_timeline_perfetto(std::ostream& out,
                             const std::vector<TimelineThreadDump>& threads);

}  // namespace wsn
