#include "obs/event_sink.h"

#include "common/assert.h"

namespace wsn {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kTx: return "tx";
    case EventKind::kRx: return "rx";
    case EventKind::kDuplicate: return "dup";
    case EventKind::kCollision: return "coll";
    case EventKind::kLossFading: return "fade";
    case EventKind::kLossCrash: return "crash";
    case EventKind::kRelayActivation: return "relay_on";
    case EventKind::kPipelineDefer: return "defer";
  }
  return "?";
}

bool event_kind_from_string(std::string_view name, EventKind& out) noexcept {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (to_string(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

EventSink::EventSink(std::size_t capacity) : ring_(capacity) {
  WSN_EXPECTS(capacity >= 1);
}

void EventSink::record(const Event& event) {
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) size_ += 1;
  total_ += 1;
  kind_counts_[static_cast<std::size_t>(event.kind)] += 1;
}

std::vector<Event> EventSink::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  // Oldest retained event: `next_` once the ring wrapped, 0 before.
  const std::size_t start = size_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void EventSink::clear() noexcept {
  next_ = 0;
  size_ = 0;
  total_ = 0;
  kind_counts_.fill(0);
}

}  // namespace wsn
