#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/events.h"
#include "radio/energy_model.h"
#include "topology/topology.h"

/// Derived ledgers over a broadcast event stream (obs/events.h), built in
/// ONE forward pass.  The pass leans on two ordering guarantees the
/// simulator provides: slots are non-decreasing across the stream, and
/// within a slot every kTx precedes every reception-side event of that
/// slot.  That makes per-slot transmitter attribution a running set that
/// is flushed on slot change -- no lookahead, no second pass, O(events)
/// time and O(nodes) working state.
///
/// Four ledgers come out:
///   * transmissions -- per-tx ETR reconstruction (fresh M out of N
///     neighbors, Table 1's metric) attributed from kRx/kDuplicate peers;
///   * collision chains -- each kCollision joined forward to the
///     retransmission that eventually repaired the receiver (its later
///     first kRx), the paper's "predictable collision" made auditable;
///   * a per-node energy ledger re-priced from the First Order Radio
///     Model event by event, in the simulator's own accumulation order so
///     totals reconcile bit-for-bit against BroadcastStats;
///   * the reachability frontier -- cumulative covered-node count per
///     slot, whose last step is the broadcast delay.
///
/// Streams that violate the physics (an rx from a silent peer, a second
/// first-reception, time running backwards) land in `anomalies`; the
/// auditor turns those into violations instead of this pass aborting.
namespace wsn {

struct TxLedgerEntry {
  Slot slot = 0;
  NodeId node = kInvalidNode;
  /// First receptions attributed to this transmission (M of ETR = M/N).
  std::uint32_t fresh = 0;
  /// Duplicate decodes attributed to this transmission.
  std::uint32_t duplicates = 0;
};

struct CollisionChain {
  Slot slot = 0;
  NodeId node = kInvalidNode;  // the receiver that lost the slot
  std::uint32_t contenders = 0;
  /// First successful reception of `node` after the collision, i.e. the
  /// scheduled retransmission that repaired it; kNeverSlot when the node
  /// was already covered (duplicate traffic collided) or never recovered.
  Slot repaired_slot = kNeverSlot;
  NodeId repaired_by = kInvalidNode;
};

struct LedgerOptions {
  /// Packet size and radio must match the run that produced the trace;
  /// defaults are the paper's (512 bits, First Order Radio Model).
  std::size_t packet_bits = 512;
  FirstOrderRadioModel radio{};
  /// Mirror of SimOptions::charge_collisions for the energy ledger.
  bool charge_collisions = false;
  /// Broadcast source; kInvalidNode infers it (the unique node that
  /// transmits without ever receiving).
  NodeId source = kInvalidNode;
};

struct TraceLedger {
  std::uint64_t num_events = 0;
  NodeId source = kInvalidNode;

  /// Totals mirroring BroadcastStats field-for-field (rx includes
  /// duplicates, losses count directed opportunities).
  std::uint64_t tx = 0;
  std::uint64_t rx = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t collisions = 0;
  std::uint64_t lost_to_fading = 0;
  std::uint64_t lost_to_crash = 0;
  std::uint64_t relay_activations = 0;
  std::uint64_t pipeline_defers = 0;
  std::size_t reached = 0;  // nodes holding the message, source included
  Slot delay = 0;           // slot of the last first-reception

  std::vector<TxLedgerEntry> transmissions;
  std::vector<CollisionChain> collision_chains;
  /// Per-node first-reception slot: 0 for the source, kNeverSlot for
  /// unreached nodes -- same convention as BroadcastOutcome::first_rx.
  std::vector<Slot> first_rx;
  /// First Order Radio reconstruction, per node and totalled.
  std::vector<Joules> node_energy;
  Joules tx_energy = 0.0;
  Joules rx_energy = 0.0;

  /// frontier[s] = nodes covered by the end of slot s (cumulative,
  /// source counted from slot 0); size delay + 1.
  std::vector<std::size_t> frontier;

  /// Physics violations found during the pass, as human-readable
  /// diagnostics.  Empty for any stream the simulator actually emitted.
  std::vector<std::string> anomalies;

  /// Mean ETR over every transmission and the share of relay
  /// transmissions achieving `fresh_opt` fresh deliveries -- the same
  /// definitions as protocol/etr.h summarize_etr, so trace-derived values
  /// are directly comparable with Tables 1-2.
  [[nodiscard]] double mean_etr(const Topology& topo) const;
  [[nodiscard]] double optimal_share(const Topology& topo,
                                     int fresh_opt) const;
  [[nodiscard]] std::vector<NodeId> unreached() const;
};

/// Builds every ledger in one forward pass over `events` (a live sink's
/// `events()` or a re-read trace).  `topo` must be the topology of the
/// run; node ids out of range are reported as anomalies and skipped.
[[nodiscard]] TraceLedger build_ledger(const Topology& topo,
                                       std::span<const Event> events,
                                       const LedgerOptions& options = {});

}  // namespace wsn
