#include "obs/audit/ledger.h"

#include <algorithm>

namespace wsn {

namespace {

constexpr std::size_t kNoEntry = ~std::size_t{0};

std::string node_str(NodeId v) { return std::to_string(v); }
std::string slot_str(Slot s) { return std::to_string(s); }

}  // namespace

double TraceLedger::mean_etr(const Topology& topo) const {
  if (transmissions.empty()) return 0.0;
  double sum = 0.0;
  for (const TxLedgerEntry& t : transmissions) {
    const std::size_t degree = topo.degree(t.node);
    if (degree == 0) continue;
    sum += static_cast<double>(t.fresh) / static_cast<double>(degree);
  }
  return sum / static_cast<double>(transmissions.size());
}

double TraceLedger::optimal_share(const Topology& topo,
                                  int fresh_opt) const {
  (void)topo;
  if (transmissions.empty()) return 0.0;
  std::size_t at_optimum = 0;
  for (const TxLedgerEntry& t : transmissions) {
    if (t.node == source) continue;  // the source's 100% ETR is not a relay's
    if (t.fresh >= static_cast<std::uint32_t>(fresh_opt)) at_optimum += 1;
  }
  return static_cast<double>(at_optimum) /
         static_cast<double>(transmissions.size());
}

std::vector<NodeId> TraceLedger::unreached() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < first_rx.size(); ++v) {
    if (first_rx[v] == kNeverSlot) out.push_back(v);
  }
  return out;
}

TraceLedger build_ledger(const Topology& topo,
                         std::span<const Event> events,
                         const LedgerOptions& options) {
  const std::size_t n = topo.num_nodes();
  TraceLedger ledger;
  ledger.num_events = events.size();
  ledger.first_rx.assign(n, kNeverSlot);
  ledger.node_energy.assign(n, 0.0);

  const auto anomaly = [&ledger](std::string what) {
    // Cap the list: one rotten stream should not balloon the report.
    if (ledger.anomalies.size() < 64) {
      ledger.anomalies.push_back(std::move(what));
    }
  };

  // Per-slot running state, flushed on slot change.  tx_entry[v] is v's
  // index into `transmissions` for the CURRENT slot only.
  std::vector<std::size_t> tx_entry(n, kNoEntry);
  std::vector<NodeId> slot_transmitters;
  Slot current_slot = 0;
  const auto flush_slot = [&] {
    for (NodeId v : slot_transmitters) tx_entry[v] = kNoEntry;
    slot_transmitters.clear();
  };

  // Collision chains still awaiting their repairing retransmission,
  // indexed per receiver.
  std::vector<std::vector<std::size_t>> open_chains(n);
  // kDuplicate seen before any kRx at that node: legal only for the
  // source (it holds the packet from slot 0), decided after inference.
  std::vector<NodeId> early_duplicates;
  // First transmission slot per node, for source inference diagnostics.
  std::vector<Slot> first_tx(n, kNeverSlot);

  const Joules rx_cost = options.radio.rx_energy(options.packet_bits);

  for (const Event& e : events) {
    if (e.node >= n) {
      anomaly("event node " + node_str(e.node) + " out of range");
      continue;
    }
    if (e.slot < current_slot) {
      anomaly("slot " + slot_str(e.slot) + " after slot " +
              slot_str(current_slot) + ": time ran backwards");
      flush_slot();
      current_slot = e.slot;
    } else if (e.slot > current_slot) {
      flush_slot();
      current_slot = e.slot;
    }

    switch (e.kind) {
      case EventKind::kTx: {
        if (tx_entry[e.node] != kNoEntry) {
          anomaly("node " + node_str(e.node) + " transmitted twice in slot " +
                  slot_str(e.slot));
          break;
        }
        tx_entry[e.node] = ledger.transmissions.size();
        slot_transmitters.push_back(e.node);
        ledger.transmissions.push_back(TxLedgerEntry{e.slot, e.node, 0, 0});
        ledger.tx += 1;
        if (first_tx[e.node] == kNeverSlot) first_tx[e.node] = e.slot;
        const Joules cost =
            options.radio.tx_energy(options.packet_bits,
                                    topo.tx_range(e.node));
        ledger.tx_energy += cost;
        ledger.node_energy[e.node] += cost;
        break;
      }
      case EventKind::kRx:
      case EventKind::kDuplicate: {
        ledger.rx += 1;
        ledger.rx_energy += rx_cost;
        ledger.node_energy[e.node] += rx_cost;
        // Attribute the decode to the sending transmission of this slot.
        if (e.peer >= n || tx_entry[e.peer] == kNoEntry) {
          anomaly("node " + node_str(e.node) + " decoded from " +
                  node_str(e.peer) + " in slot " + slot_str(e.slot) +
                  " but that peer did not transmit");
        } else if (e.kind == EventKind::kRx) {
          ledger.transmissions[tx_entry[e.peer]].fresh += 1;
        } else {
          ledger.transmissions[tx_entry[e.peer]].duplicates += 1;
        }
        if (e.kind == EventKind::kRx) {
          if (ledger.first_rx[e.node] != kNeverSlot) {
            anomaly("node " + node_str(e.node) +
                    " first-received twice (slots " +
                    slot_str(ledger.first_rx[e.node]) + " and " +
                    slot_str(e.slot) + ")");
            break;
          }
          ledger.first_rx[e.node] = e.slot;
          ledger.delay = std::max(ledger.delay, e.slot);
          // Close this receiver's pending collision chains: the paper's
          // scheduled retransmission repaired them here.
          for (std::size_t chain : open_chains[e.node]) {
            ledger.collision_chains[chain].repaired_slot = e.slot;
            ledger.collision_chains[chain].repaired_by = e.peer;
          }
          open_chains[e.node].clear();
        } else {
          ledger.duplicates += 1;
          if (ledger.first_rx[e.node] == kNeverSlot) {
            early_duplicates.push_back(e.node);
          }
        }
        break;
      }
      case EventKind::kCollision: {
        ledger.collisions += 1;
        if (ledger.first_rx[e.node] == kNeverSlot) {
          open_chains[e.node].push_back(ledger.collision_chains.size());
        }
        ledger.collision_chains.push_back(
            CollisionChain{e.slot, e.node, e.detail, kNeverSlot,
                           kInvalidNode});
        if (options.charge_collisions) {
          ledger.rx_energy += rx_cost;
          ledger.node_energy[e.node] += rx_cost;
        }
        break;
      }
      case EventKind::kLossFading:
        ledger.lost_to_fading += 1;
        break;
      case EventKind::kLossCrash:
        // Transmitter crash carries the whole lost neighborhood in
        // `detail`; receiver crash carries 1.  Both count directed
        // reception opportunities, like BroadcastStats.
        ledger.lost_to_crash += e.detail;
        break;
      case EventKind::kRelayActivation:
        ledger.relay_activations += 1;
        break;
      case EventKind::kPipelineDefer:
        ledger.pipeline_defers += 1;
        break;
    }
  }
  flush_slot();

  // Source: declared, or inferred as the unique transmitter that never
  // received (every relay's kTx follows its kRx; the source's never can).
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < n; ++v) {
    if (first_tx[v] != kNeverSlot && ledger.first_rx[v] == kNeverSlot) {
      candidates.push_back(v);
    }
  }
  if (options.source != kInvalidNode) {
    ledger.source = options.source;
    for (NodeId v : candidates) {
      if (v != ledger.source) {
        anomaly("node " + node_str(v) + " transmitted (slot " +
                slot_str(first_tx[v]) + ") without ever receiving");
      }
    }
  } else if (candidates.size() == 1) {
    ledger.source = candidates.front();
  } else if (!candidates.empty()) {
    // Ambiguous; earliest first transmission wins, the rest are physics
    // violations.
    ledger.source = *std::min_element(
        candidates.begin(), candidates.end(),
        [&](NodeId a, NodeId b) { return first_tx[a] < first_tx[b]; });
    for (NodeId v : candidates) {
      if (v != ledger.source) {
        anomaly("node " + node_str(v) + " transmitted (slot " +
                slot_str(first_tx[v]) + ") without ever receiving");
      }
    }
  }
  if (ledger.source != kInvalidNode && ledger.source < n) {
    if (ledger.first_rx[ledger.source] != kNeverSlot) {
      anomaly("source " + node_str(ledger.source) +
              " has a first-reception event");
    }
    ledger.first_rx[ledger.source] = 0;
  }
  for (NodeId v : early_duplicates) {
    if (v != ledger.source) {
      anomaly("node " + node_str(v) +
              " decoded a duplicate before any first reception");
    }
  }

  for (const Slot s : ledger.first_rx) {
    if (s != kNeverSlot) ledger.reached += 1;
  }

  // Cumulative coverage per slot; the last step is the delay.
  ledger.frontier.assign(static_cast<std::size_t>(ledger.delay) + 1, 0);
  for (const Slot s : ledger.first_rx) {
    if (s != kNeverSlot) ledger.frontier[s] += 1;
  }
  for (std::size_t s = 1; s < ledger.frontier.size(); ++s) {
    ledger.frontier[s] += ledger.frontier[s - 1];
  }

  return ledger;
}

}  // namespace wsn
