#include "obs/audit/trace_reader.h"

#include <fstream>
#include <sstream>

#include "common/json.h"

namespace wsn {

namespace {

bool fail(std::string* error, std::size_t line, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + what;
  }
  return false;
}

/// Member as a u64 within `max`, with presence control.  The writer emits
/// plain non-negative integers for every numeric event field.
bool read_u64(const JsonValue& obj, std::string_view key, bool required,
              std::uint64_t max, std::uint64_t fallback, std::uint64_t& out,
              std::string& what) {
  const JsonValue* member = obj.find(key);
  if (member == nullptr) {
    if (required) {
      what = "missing \"" + std::string(key) + "\"";
      return false;
    }
    out = fallback;
    return true;
  }
  if (!member->to_u64(out) || out > max) {
    what = "invalid \"" + std::string(key) + "\"";
    return false;
  }
  return true;
}

}  // namespace

bool read_trace_jsonl(std::string_view text, TraceDocument& out,
                      std::string* error) {
  out = TraceDocument{};
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue value;
    std::string parse_error;
    if (!parse_json(line, value, &parse_error)) {
      return fail(error, line_no, parse_error);
    }
    if (!value.is_object()) return fail(error, line_no, "expected object");

    std::string what;
    if (!saw_header) {
      if (value.string_or("schema", "") != "meshbcast.trace") {
        return fail(error, line_no, "not a meshbcast.trace header");
      }
      std::uint64_t version = 0;
      if (!read_u64(value, "version", true, 1u << 20, 0, version, what)) {
        return fail(error, line_no, what);
      }
      if (version != static_cast<std::uint64_t>(kEventSchemaVersion)) {
        return fail(error, line_no,
                    "unsupported trace version " + std::to_string(version));
      }
      out.version = static_cast<int>(version);
      const std::uint64_t u64_max = ~std::uint64_t{0};
      if (!read_u64(value, "events", false, u64_max, 0,
                    out.declared_events, what) ||
          !read_u64(value, "dropped", false, u64_max, 0, out.dropped,
                    what)) {
        return fail(error, line_no, what);
      }
      saw_header = true;
      continue;
    }

    Event e;
    const JsonValue* kind = value.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        !event_kind_from_string(kind->as_string(), e.kind)) {
      return fail(error, line_no, "unknown event kind");
    }
    std::uint64_t slot = 0;
    std::uint64_t node = 0;
    std::uint64_t peer = 0;
    std::uint64_t packet = 0;
    std::uint64_t detail = 0;
    // kNeverSlot / kInvalidNode are representable on purpose: a defer
    // event's slot and an absent peer round-trip unchanged.
    if (!read_u64(value, "slot", true, kNeverSlot, 0, slot, what) ||
        !read_u64(value, "node", true, kInvalidNode, 0, node, what) ||
        !read_u64(value, "peer", false, kInvalidNode, kInvalidNode, peer,
                  what) ||
        !read_u64(value, "packet", false, 0xffffffffu, 0, packet, what) ||
        !read_u64(value, "detail", false, 0xffffffffu, 0, detail, what)) {
      return fail(error, line_no, what);
    }
    e.slot = static_cast<Slot>(slot);
    e.node = static_cast<NodeId>(node);
    e.peer = static_cast<NodeId>(peer);
    e.packet = static_cast<std::uint32_t>(packet);
    e.detail = static_cast<std::uint32_t>(detail);
    out.events.push_back(e);
  }
  if (!saw_header) return fail(error, line_no, "empty trace (no header)");
  return true;
}

bool read_trace_file(const std::string& path, TraceDocument& out,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_trace_jsonl(buffer.str(), out, error);
}

}  // namespace wsn
