#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/audit/ledger.h"
#include "obs/event_sink.h"
#include "sim/stats.h"
#include "topology/topology.h"

/// Invariant auditing over the derived ledgers (obs/audit/ledger.h): the
/// paper's checkable claims, cross-validated three ways -- trace vs
/// BroadcastStats (the run's own accounting), trace vs the analytic model
/// (First Order Radio energy, per-family ETR optimum, Table 5 delay), and
/// trace vs the topology's physics (a wavefront cannot outrun BFS).
///
/// An audit never aborts: every failed check becomes a structured
/// violation in the returned AuditReport, so a CI step or a scenario
/// sweep can collect all of them and decide what is fatal.  A truncated
/// trace (ring-buffer drops) is itself a violation -- an incomplete
/// stream must not silently pass.
namespace wsn {

enum class AuditCheck : std::uint8_t {
  kTraceComplete = 0,  // no ring-buffer drops; header count matches
  kTraceConsistent,    // stream obeys the medium's physics
  kStatsMatch,         // ledger totals == BroadcastStats field-for-field
  kEnergyModel,        // ledger energy == stats energy (First Order model)
  kCoverage,           // every node reached
  kCausality,          // first_rx[v] >= BFS distance from the source
  kEtrBound,           // mean relay ETR within the family optimum
  kDelayBound,         // delay within [source ecc, paper Table 5 + slack]
  kExpectedDelivery,   // observed delivery ratio vs the link model's mean
  kRetryAccounting,    // tx <= planned + retries; retries <= budget
  kCoverageFrontier,   // coverage shortfall only with an exhausted budget
};

inline constexpr std::size_t kAuditCheckCount = 11;

/// Stable short name ("trace_complete", "stats_match", ...).
[[nodiscard]] std::string_view to_string(AuditCheck check) noexcept;

struct AuditViolation {
  AuditCheck check = AuditCheck::kTraceComplete;
  std::string message;
};

struct AuditConfig {
  /// Run parameters; must match the run that produced the trace.
  std::size_t packet_bits = 512;
  FirstOrderRadioModel radio{};
  bool charge_collisions = false;
  /// Source node; kInvalidNode infers it from the trace.
  NodeId source = kInvalidNode;
  /// Ring-buffer overflow (EventSink::dropped() or the trace header).
  std::uint64_t dropped_events = 0;
  /// Header-declared event count; 0 skips the count cross-check.
  std::uint64_t declared_events = 0;
  /// Expect 100% coverage (the paper's guarantee under a perfect
  /// medium).  Disable for fault-injected runs where coverage loss is
  /// the finding, not the bug -- the report still lists the unreached
  /// set either way.
  bool expect_full_coverage = true;
  /// Cross-validate against the run's own stats when non-null.
  const BroadcastStats* stats = nullptr;
  /// Topology family ("2D-3", "2D-4", "2D-8", "3D-6") enables the
  /// analytic checks (ETR optimum, Table 5 delay); empty skips them.
  std::string family;
  /// Energy reconciliation tolerance, relative.  The ledger replays the
  /// simulator's accumulation order, so the default is tight.
  double energy_rel_tol = 1e-12;
  /// Mean-relay-ETR headroom over the family optimum: border relays can
  /// individually beat the full-degree optimum ratio, but the mean of a
  /// healthy run stays at or below it.
  double etr_tol = 1e-9;
  /// Delay slack over the paper's Table 5 value, matching the
  /// integration-test tolerance for our collision-free schedules.
  Slot delay_slack = 12;

  // --- lossy-mode checks (9-11), for fault-injected runs; each stays
  // --- skipped until its enabling field is set ----------------------------

  /// Mean per-link delivery probability of the run's link model (e.g.
  /// 1 - mean_loss for the i.i.d. and Gilbert-Elliott models).  >= 0
  /// enables check 9: the observed per-attempt delivery ratio
  /// rx / (rx + lost_to_fading) must not fall below this mean by more
  /// than `delivery_tol` -- the run must not underperform the channel's
  /// stationary rate.  (Exceeding it is fine: a quality-aware plan rides
  /// the good links.)
  double mean_link_delivery = -1.0;
  /// Absolute tolerance on the observed delivery ratio.  The effective
  /// slack is max(delivery_tol, 5 sigma) where sigma is the binomial
  /// standard error of the attempt count inflated by `delivery_burst` --
  /// small or bursty samples get proportionally more room, so the check
  /// flags systematic undershoot, not sampling noise.
  double delivery_tol = 0.15;
  /// Mean burst length of the link model (1 = i.i.d.).  Correlated losses
  /// shrink the effective sample size by roughly this factor.
  double delivery_burst = 1.0;
  /// Minimum deliver-or-fade attempts before check 9 is statistically
  /// meaningful; below this the check passes vacuously.
  std::size_t delivery_min_samples = 32;

  /// Base plan's planned transmission count; > 0 enables check 10:
  /// observed tx <= planned_tx + retries, and retries <= retry_budget
  /// (when a budget is declared).
  std::size_t planned_tx = 0;
  /// Retries actually spent by the recovery layer (AdaptiveArqReport).
  std::size_t retries = 0;
  /// Declared retry budget; 0 skips the budget half of check 10.
  std::size_t retry_budget = 0;

  /// True when adaptive ARQ ran; enables check 11: nodes connected to
  /// the source may only be left uncovered if the retry budget ran out,
  /// the round limit was hit, or crash faults removed nodes -- silent
  /// shortfall is a recovery bug.
  bool arq = false;
  bool budget_exhausted = false;
  std::size_t arq_rounds = 0;
  std::size_t arq_max_rounds = 0;
};

struct AuditReport {
  TraceLedger ledger;
  std::vector<AuditViolation> violations;
  std::vector<NodeId> unreached;
  std::size_t checks_run = 0;
  /// Headline derived values (also available via the ledger).
  double mean_etr = 0.0;
  double optimal_share = 0.0;
  Joules total_energy = 0.0;
  std::uint64_t dropped_events = 0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
  [[nodiscard]] bool violated(AuditCheck check) const noexcept {
    for (const AuditViolation& v : violations) {
      if (v.check == check) return true;
    }
    return false;
  }
};

/// Audits an event stream against `topo` under `config`.  Builds the
/// ledgers (one forward pass) and runs every applicable check.
[[nodiscard]] AuditReport audit_trace(const Topology& topo,
                                      std::span<const Event> events,
                                      const AuditConfig& config = {});

/// Audits a live sink; its `dropped()` feeds the completeness check (the
/// config's `dropped_events`/`declared_events` are overridden).
[[nodiscard]] AuditReport audit_sink(const Topology& topo,
                                     const EventSink& sink,
                                     const AuditConfig& config = {});

/// Serializes a report as one `meshbcast.audit` JSON document.
void write_audit_json(std::ostream& out, const AuditReport& report);

/// Human-readable multi-line summary for CLI output.
[[nodiscard]] std::string audit_summary_text(const AuditReport& report);

}  // namespace wsn
