#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_sink.h"
#include "obs/events.h"

/// Re-reader for the JSONL trace format of obs/export.h: a
/// `meshbcast.trace` header line followed by one compact event object per
/// line.  This is the offline half of the audit engine -- a trace written
/// by any run (CLI, scenario job, CI artifact) parses back into the same
/// `Event` records the ring buffer held, so `audit_trace` works identically
/// on a live sink and on a file re-read days later.
///
/// Parsing is strict where the schema is load-bearing (header must name
/// the schema and a version we understand; `kind` must be a known short
/// name; slot/node must be present integers) and lenient where the writer
/// is (absent peer means kInvalidNode, absent packet/detail mean 0 --
/// exactly the fields export.cpp omits).
namespace wsn {

struct TraceDocument {
  int version = 0;
  /// Event count the header declared; mismatch vs events.size() is
  /// flagged by the auditor, not here.
  std::uint64_t declared_events = 0;
  /// Ring-buffer overflow at export time.  Nonzero means the trace is a
  /// suffix of the run, and audits of it are advisory at best.
  std::uint64_t dropped = 0;
  std::vector<Event> events;
};

/// Parses a full JSONL trace text.  Returns false (with a line-numbered
/// message in `error` when non-null) on malformed input; a parsed
/// document may still fail its audit.
[[nodiscard]] bool read_trace_jsonl(std::string_view text,
                                    TraceDocument& out,
                                    std::string* error = nullptr);

/// Reads and parses `path`.  False on I/O or parse failure.
[[nodiscard]] bool read_trace_file(const std::string& path,
                                   TraceDocument& out,
                                   std::string* error = nullptr);

}  // namespace wsn
