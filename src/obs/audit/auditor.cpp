#include "obs/audit/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "analysis/report.h"
#include "common/json.h"
#include "protocol/ideal_model.h"
#include "topology/graph_algos.h"

namespace wsn {

namespace {

void violate(AuditReport& report, AuditCheck check, std::string message) {
  report.violations.push_back(AuditViolation{check, std::move(message)});
}

bool close_rel(double a, double b, double rel_tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel_tol * std::max(scale, 1e-300);
}

void check_stat(AuditReport& report, std::string_view name,
                std::uint64_t from_trace, std::uint64_t from_stats) {
  if (from_trace != from_stats) {
    violate(report, AuditCheck::kStatsMatch,
            std::string(name) + ": trace says " +
                std::to_string(from_trace) + ", stats say " +
                std::to_string(from_stats));
  }
}

std::string join_nodes(const std::vector<NodeId>& nodes,
                       std::size_t limit = 16) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size() && i < limit; ++i) {
    if (i != 0) out += ",";
    out += std::to_string(nodes[i]);
  }
  if (nodes.size() > limit) {
    out += ",... (" + std::to_string(nodes.size()) + " total)";
  }
  return out;
}

}  // namespace

std::string_view to_string(AuditCheck check) noexcept {
  switch (check) {
    case AuditCheck::kTraceComplete: return "trace_complete";
    case AuditCheck::kTraceConsistent: return "trace_consistent";
    case AuditCheck::kStatsMatch: return "stats_match";
    case AuditCheck::kEnergyModel: return "energy_model";
    case AuditCheck::kCoverage: return "coverage";
    case AuditCheck::kCausality: return "causality";
    case AuditCheck::kEtrBound: return "etr_bound";
    case AuditCheck::kDelayBound: return "delay_bound";
    case AuditCheck::kExpectedDelivery: return "expected_delivery";
    case AuditCheck::kRetryAccounting: return "retry_accounting";
    case AuditCheck::kCoverageFrontier: return "coverage_frontier";
  }
  return "?";
}

AuditReport audit_trace(const Topology& topo, std::span<const Event> events,
                        const AuditConfig& config) {
  LedgerOptions ledger_options;
  ledger_options.packet_bits = config.packet_bits;
  ledger_options.radio = config.radio;
  ledger_options.charge_collisions = config.charge_collisions;
  ledger_options.source = config.source;

  AuditReport report;
  report.ledger = build_ledger(topo, events, ledger_options);
  const TraceLedger& ledger = report.ledger;
  const std::size_t n = topo.num_nodes();
  report.unreached = ledger.unreached();
  report.total_energy = ledger.tx_energy + ledger.rx_energy;
  report.dropped_events = config.dropped_events;

  // 1. Completeness: a truncated ring buffer means every later check is
  // running on a suffix of the run; that can never silently pass.
  report.checks_run += 1;
  if (config.dropped_events > 0) {
    violate(report, AuditCheck::kTraceComplete,
            std::to_string(config.dropped_events) +
                " events dropped by the ring buffer; trace is truncated");
  }
  if (config.declared_events != 0 &&
      config.declared_events != ledger.num_events) {
    violate(report, AuditCheck::kTraceComplete,
            "header declares " + std::to_string(config.declared_events) +
                " events, stream holds " +
                std::to_string(ledger.num_events));
  }

  // 2. Stream physics, gathered by the ledger pass, plus the per-tx
  // delivery bound (a transmission cannot freshly cover more than its
  // neighborhood).
  report.checks_run += 1;
  for (const std::string& anomaly : ledger.anomalies) {
    violate(report, AuditCheck::kTraceConsistent, anomaly);
  }
  for (const TxLedgerEntry& t : ledger.transmissions) {
    const std::size_t degree = topo.degree(t.node);
    if (t.fresh + t.duplicates > degree) {
      violate(report, AuditCheck::kTraceConsistent,
              "transmission by node " + std::to_string(t.node) +
                  " in slot " + std::to_string(t.slot) + " delivered " +
                  std::to_string(t.fresh + t.duplicates) + " > degree " +
                  std::to_string(degree));
    }
  }

  // 3. Trace totals vs the run's own accounting.
  if (config.stats != nullptr) {
    const BroadcastStats& stats = *config.stats;
    report.checks_run += 1;
    check_stat(report, "num_nodes", n, stats.num_nodes);
    check_stat(report, "tx", ledger.tx, stats.tx);
    check_stat(report, "rx", ledger.rx, stats.rx);
    check_stat(report, "duplicates", ledger.duplicates, stats.duplicates);
    check_stat(report, "collisions", ledger.collisions, stats.collisions);
    check_stat(report, "lost_to_fading", ledger.lost_to_fading,
               stats.lost_to_fading);
    check_stat(report, "lost_to_crash", ledger.lost_to_crash,
               stats.lost_to_crash);
    check_stat(report, "reached", ledger.reached, stats.reached);
    check_stat(report, "delay", ledger.delay, stats.delay);

    // 4. Energy, re-priced event by event from the First Order Radio
    // Model in the simulator's own accumulation order.
    report.checks_run += 1;
    if (!close_rel(ledger.tx_energy, stats.tx_energy,
                   config.energy_rel_tol) ||
        !close_rel(ledger.rx_energy, stats.rx_energy,
                   config.energy_rel_tol)) {
      std::ostringstream what;
      what.precision(17);
      what << "trace re-pricing gives Tx " << ledger.tx_energy << " J / Rx "
           << ledger.rx_energy << " J, stats say " << stats.tx_energy
           << " / " << stats.rx_energy;
      violate(report, AuditCheck::kEnergyModel, what.str());
    }
  }

  // 5. Coverage: the paper's guarantee.  The unreached set rides in the
  // report either way; the check only fires when full coverage was
  // promised (perfect-medium runs).
  if (config.expect_full_coverage) {
    report.checks_run += 1;
    if (!report.unreached.empty()) {
      violate(report, AuditCheck::kCoverage,
              std::to_string(report.unreached.size()) + " of " +
                  std::to_string(n) + " nodes unreached: " +
                  join_nodes(report.unreached));
    }
  }

  // 6. Causality: the wavefront cannot outrun BFS from the source (one
  // hop per slot, first transmission no earlier than slot 1).
  if (ledger.source != kInvalidNode && ledger.source < n) {
    report.checks_run += 1;
    const std::vector<std::uint32_t> dist =
        bfs_distances(topo, ledger.source);
    std::vector<NodeId> early;
    for (NodeId v = 0; v < n; ++v) {
      const Slot slot = ledger.first_rx[v];
      if (slot == kNeverSlot || v == ledger.source) continue;
      if (dist[v] == kUnreachable || slot < dist[v]) early.push_back(v);
    }
    if (!early.empty()) {
      violate(report, AuditCheck::kCausality,
              std::to_string(early.size()) +
                  " nodes received before the BFS wavefront could arrive: " +
                  join_nodes(early));
    }
  }

  report.mean_etr = ledger.mean_etr(topo);
  if (!config.family.empty()) {
    const OptimalEtr opt = optimal_etr(config.family);
    report.optimal_share = ledger.optimal_share(topo, opt.fresh);

    // 7. Tables 1-2: relay transmissions average at or below the family
    // optimum (border relays can individually exceed the full-degree
    // ratio, the mean of a healthy run cannot by much).
    report.checks_run += 1;
    double relay_sum = 0.0;
    std::size_t relay_count = 0;
    for (const TxLedgerEntry& t : ledger.transmissions) {
      if (t.node == ledger.source) continue;
      const std::size_t degree = topo.degree(t.node);
      if (degree == 0) continue;
      relay_sum +=
          static_cast<double>(t.fresh) / static_cast<double>(degree);
      relay_count += 1;
    }
    const double relay_mean =
        relay_count == 0 ? 0.0
                         : relay_sum / static_cast<double>(relay_count);
    if (relay_count > 0 &&
        relay_mean > opt.value() + config.etr_tol) {
      std::ostringstream what;
      what.precision(17);
      what << "mean relay ETR " << relay_mean << " exceeds the "
           << config.family << " optimum " << opt.value() << " + tol "
           << config.etr_tol;
      violate(report, AuditCheck::kEtrBound, what.str());
    }

    // 8. Table 5: on a fully covered run the delay is at least the
    // source eccentricity and at most the paper's published maximum plus
    // the collision-free-schedule slack.
    if (config.expect_full_coverage && report.unreached.empty() &&
        ledger.source != kInvalidNode && ledger.source < n) {
      report.checks_run += 1;
      const std::uint32_t ecc = eccentricity(topo, ledger.source);
      const Slot paper = paper_max_delay(config.family);
      if (ledger.delay < ecc) {
        violate(report, AuditCheck::kDelayBound,
                "delay " + std::to_string(ledger.delay) +
                    " below the source eccentricity " +
                    std::to_string(ecc));
      }
      if (ledger.delay > paper + config.delay_slack) {
        violate(report, AuditCheck::kDelayBound,
                "delay " + std::to_string(ledger.delay) +
                    " exceeds the paper's Table 5 maximum " +
                    std::to_string(paper) + " + slack " +
                    std::to_string(config.delay_slack));
      }
    }
  }

  // 9. Expected vs observed delivery under the link model: of every
  // reception attempt that was decided by the channel (decoded or faded;
  // collisions are a separate mechanism), at least the model's stationary
  // share must have landed.  A quality-aware plan may beat the mean --
  // never undershoot it beyond tolerance.
  if (config.mean_link_delivery >= 0.0) {
    report.checks_run += 1;
    const std::uint64_t attempts = ledger.rx + ledger.lost_to_fading;
    if (attempts >= config.delivery_min_samples) {
      const double observed = static_cast<double>(ledger.rx) /
                              static_cast<double>(attempts);
      const double p = config.mean_link_delivery;
      const double sigma =
          std::sqrt(std::max(p * (1.0 - p), 0.0) *
                    std::max(config.delivery_burst, 1.0) /
                    static_cast<double>(attempts));
      const double slack = std::max(config.delivery_tol, 5.0 * sigma);
      if (observed < p - slack) {
        std::ostringstream what;
        what.precision(17);
        what << "observed delivery ratio " << observed << " ("
             << ledger.rx << "/" << attempts
             << " attempts) undershoots the link model's mean "
             << config.mean_link_delivery << " - slack " << slack;
        violate(report, AuditCheck::kExpectedDelivery, what.str());
      }
    }
  }

  // 10. Retry accounting: the run may not transmit more than the base
  // plan scheduled plus the recovery layer's declared retries, and the
  // retries may not exceed their budget.
  if (config.planned_tx > 0) {
    report.checks_run += 1;
    if (ledger.tx > config.planned_tx + config.retries) {
      violate(report, AuditCheck::kRetryAccounting,
              "observed tx " + std::to_string(ledger.tx) +
                  " exceeds planned " + std::to_string(config.planned_tx) +
                  " + retries " + std::to_string(config.retries));
    }
    if (config.retry_budget > 0 && config.retries > config.retry_budget) {
      violate(report, AuditCheck::kRetryAccounting,
              "retries " + std::to_string(config.retries) +
                  " exceed the declared budget " +
                  std::to_string(config.retry_budget));
    }
  }

  // 11. Coverage-vs-budget frontier: with adaptive ARQ running, a node
  // connected to the source may only stay uncovered for a stated reason
  // (budget exhausted, round limit hit, crash faults).  Anything else is
  // a silent recovery shortfall.
  if (config.arq && ledger.source != kInvalidNode && ledger.source < n) {
    report.checks_run += 1;
    const bool round_capped = config.arq_max_rounds > 0 &&
                              config.arq_rounds >= config.arq_max_rounds;
    if (!report.unreached.empty() && !config.budget_exhausted &&
        !round_capped && ledger.lost_to_crash == 0) {
      const std::vector<std::uint32_t> dist =
          bfs_distances(topo, ledger.source);
      std::vector<NodeId> stranded;
      for (NodeId v : report.unreached) {
        if (dist[v] != kUnreachable) stranded.push_back(v);
      }
      if (!stranded.empty()) {
        violate(report, AuditCheck::kCoverageFrontier,
                std::to_string(stranded.size()) +
                    " connected nodes unreached with retry budget and "
                    "rounds to spare: " +
                    join_nodes(stranded));
      }
    }
  }

  return report;
}

AuditReport audit_sink(const Topology& topo, const EventSink& sink,
                       const AuditConfig& config) {
  AuditConfig effective = config;
  effective.dropped_events = sink.dropped();
  effective.declared_events = 0;  // the ring IS the stream; no header
  const std::vector<Event> events = sink.events();
  return audit_trace(topo, events, effective);
}

void write_audit_json(std::ostream& out, const AuditReport& report) {
  const TraceLedger& ledger = report.ledger;
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.audit")
      .member("version", std::uint64_t{1})
      .member("passed", report.passed())
      .member("checks_run", std::uint64_t{report.checks_run});
  w.key("summary").begin_object()
      .member("events", ledger.num_events)
      .member("dropped", report.dropped_events)
      .member("source",
              ledger.source == kInvalidNode
                  ? std::int64_t{-1}
                  : static_cast<std::int64_t>(ledger.source))
      .member("num_nodes", std::uint64_t{ledger.first_rx.size()})
      .member("reached", std::uint64_t{ledger.reached})
      .member("tx", ledger.tx)
      .member("rx", ledger.rx)
      .member("duplicates", ledger.duplicates)
      .member("collisions", ledger.collisions)
      .member("lost_to_fading", ledger.lost_to_fading)
      .member("lost_to_crash", ledger.lost_to_crash)
      .member("relay_activations", ledger.relay_activations)
      .member("delay", std::uint64_t{ledger.delay})
      .member("mean_etr", report.mean_etr)
      .member("optimal_share", report.optimal_share)
      .member("tx_energy_j", ledger.tx_energy)
      .member("rx_energy_j", ledger.rx_energy)
      .member("total_energy_j", report.total_energy)
      .end_object();
  w.key("frontier").begin_array();
  for (const std::size_t count : ledger.frontier) {
    w.value(std::uint64_t{count});
  }
  w.end_array();
  w.key("unreached").begin_array();
  for (const NodeId v : report.unreached) w.value(std::uint64_t{v});
  w.end_array();
  w.key("violations").begin_array();
  for (const AuditViolation& v : report.violations) {
    w.begin_object()
        .member("check", to_string(v.check))
        .member("message", v.message)
        .end_object();
  }
  w.end_array().end_object();
  out << std::move(w).str() << "\n";
}

std::string audit_summary_text(const AuditReport& report) {
  const TraceLedger& ledger = report.ledger;
  std::ostringstream out;
  out << "audit: " << (report.passed() ? "PASS" : "FAIL") << " ("
      << report.violations.size() << " violations / " << report.checks_run
      << " checks)\n";
  out << "  events " << ledger.num_events << " (dropped "
      << report.dropped_events << "), tx " << ledger.tx << ", rx "
      << ledger.rx << ", dup " << ledger.duplicates << ", coll "
      << ledger.collisions << "\n";
  out << "  reached " << ledger.reached << "/" << ledger.first_rx.size()
      << ", delay " << ledger.delay << " slots\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "  mean ETR %.4f, optimal share %.1f%%, energy %.6e J\n",
                report.mean_etr, 100.0 * report.optimal_share,
                report.total_energy);
  out << line;
  for (const AuditViolation& v : report.violations) {
    out << "  [" << to_string(v.check) << "] " << v.message << "\n";
  }
  return out.str();
}

}  // namespace wsn
