#include "obs/sampler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/json.h"

namespace wsn {

TelemetrySampler::TelemetrySampler(Config config)
    : period_ms_(config.period_ms == 0 ? 1 : config.period_ms),
      metrics_(config.metrics) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

bool TelemetrySampler::start(const std::string& path) {
  if (running_.load(std::memory_order_acquire)) return false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_.open(path, std::ios::trunc);
    if (!out_) return false;
    JsonWriter w;
    w.begin_object()
        .member("schema", "meshbcast.timeseries")
        .member("version", std::uint64_t{1})
        .member("period_ms", std::uint64_t{period_ms_})
        .end_object();
    out_ << std::move(w).str() << "\n";
    out_.flush();
    samples_busy_ = samples_idle_ = samples_blocked_ = 0;
    started_ = std::chrono::steady_clock::now();
  }
  ticks_.store(0, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      sample_once();
      // Sliced sleep so stop() returns promptly even at long periods.
      std::size_t slept = 0;
      while (slept < period_ms_ && !stop_.load(std::memory_order_acquire)) {
        const std::size_t slice = std::min<std::size_t>(period_ms_ - slept, 10);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
      }
    }
  });
  return true;
}

void TelemetrySampler::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // Final sample: short runs (faster than one period) still record the
  // end state of the run they observed.
  sample_once();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_.close();
  }
  running_.store(false, std::memory_order_release);
}

void TelemetrySampler::set_worker_states(
    std::function<std::vector<WorkerState>()> provider) {
  const std::lock_guard<std::mutex> lock(mutex_);
  provider_ = std::move(provider);
}

void TelemetrySampler::sample_once() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_) return;
  const auto now = std::chrono::steady_clock::now();
  const auto t_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - started_)
                        .count();

  JsonWriter w;
  w.begin_object().member(
      "t_ms", static_cast<std::uint64_t>(t_ms < 0 ? 0 : t_ms));

  if (metrics_ != nullptr) {
    const MetricsSnapshot snap = metrics_->scrape();
    w.key("counters").begin_object();
    for (const auto& [name, value] : snap.counters) w.member(name, value);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, value] : snap.gauges) w.member(name, value);
    w.end_object();
  }

  if (provider_) {
    const std::vector<WorkerState> states = provider_();
    std::uint64_t busy = 0;
    std::uint64_t idle = 0;
    std::uint64_t blocked = 0;
    for (const WorkerState s : states) {
      if (s == WorkerState::kBusy) busy += 1;
      else if (s == WorkerState::kBlocked) blocked += 1;
      else idle += 1;
    }
    samples_busy_ += busy;
    samples_idle_ += idle;
    samples_blocked_ += blocked;
    const std::uint64_t total =
        samples_busy_ + samples_idle_ + samples_blocked_;
    const double busy_share =
        total == 0 ? 0.0
                   : static_cast<double>(samples_busy_) /
                         static_cast<double>(total);
    const double idle_share =
        total == 0 ? 0.0
                   : static_cast<double>(samples_idle_) /
                         static_cast<double>(total);
    const double blocked_share =
        total == 0 ? 0.0
                   : static_cast<double>(samples_blocked_) /
                         static_cast<double>(total);
    w.key("workers").begin_object();
    w.member("busy", std::uint64_t{busy})
        .member("idle", std::uint64_t{idle})
        .member("blocked", std::uint64_t{blocked});
    w.key("states").begin_array();
    for (const WorkerState s : states) {
      w.value(std::uint64_t{static_cast<std::uint8_t>(s)});
    }
    w.end_array().end_object();
    w.key("utilization").begin_object();
    w.member("busy", busy_share)
        .member("idle", idle_share)
        .member("blocked", blocked_share)
        .end_object();
    if (metrics_ != nullptr) {
      metrics_->gauge("scenario.worker_util.busy").set(busy_share);
      metrics_->gauge("scenario.worker_util.idle").set(idle_share);
      metrics_->gauge("scenario.worker_util.blocked").set(blocked_share);
    }
  }

  w.end_object();
  out_ << std::move(w).str() << "\n";
  out_.flush();
  ticks_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace wsn
