#pragma once

#include <ostream>

#include "obs/event_sink.h"

/// Exporters for the structured event stream.
///
/// Two formats cover the two consumers:
///
///   * JSONL -- one self-describing header line, then one JSON object per
///     event.  Greppable, streamable, trivially loaded by pandas
///     (`pd.read_json(path, lines=True, skiprows=1)`-style tooling).
///
///   * Chrome trace-event JSON -- the `[{...}, ...]` array format that
///     `about://tracing` and https://ui.perfetto.dev open directly.  Each
///     simulation slot is rendered as `slot_us` microseconds of trace
///     time; every node becomes a named track (tid), transmissions are
///     duration blocks and everything else instants, so a broadcast's
///     wavefront reads left-to-right off the timeline.
namespace wsn {

/// Header line:
///   {"schema":"meshbcast.trace","version":1,"events":N,"dropped":D}
/// then the retained events oldest-first, e.g.
///   {"slot":3,"kind":"rx","node":18,"peer":17}
/// `peer` is omitted when unattributed, `packet`/`detail` when zero.
void write_events_jsonl(std::ostream& out, const EventSink& sink);

/// Chrome trace-event array.  `slot_us` sets the rendered width of one
/// slot (default 1000 us = 1 ms per slot).
void write_chrome_trace(std::ostream& out, const EventSink& sink,
                        std::uint32_t slot_us = 1000);

}  // namespace wsn
