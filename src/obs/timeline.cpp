#include "obs/timeline.h"

#include <algorithm>

#include "common/json.h"

namespace wsn {

namespace {

std::uint64_t to_ns(std::chrono::steady_clock::duration d) noexcept {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

namespace obs_detail {

namespace {
thread_local std::uint64_t t_request_tag = 0;
}  // namespace

std::uint64_t request_tag() noexcept { return t_request_tag; }

void set_request_tag(std::uint64_t tag) noexcept { t_request_tag = tag; }

void timeline_record_span(const char* name,
                          std::chrono::steady_clock::time_point begin,
                          std::chrono::steady_clock::time_point end) noexcept {
  Timeline& timeline = Timeline::instance();
  // Both stamps share the timeline epoch so records from different
  // threads land on one comparable axis.
  const std::uint64_t end_ns = timeline.now_ns();
  const std::uint64_t span_ns = to_ns(end - begin);
  timeline.record(name, end_ns >= span_ns ? end_ns - span_ns : 0, end_ns);
}

}  // namespace obs_detail

Timeline::Timeline() : epoch_(std::chrono::steady_clock::now()) {}

Timeline& Timeline::instance() {
  static Timeline timeline;
  return timeline;
}

void Timeline::set_enabled(bool enabled) noexcept {
  if (enabled) {
    obs_detail::profile_mode().fetch_or(obs_detail::kProfileTimeline,
                                        std::memory_order_relaxed);
  } else {
    obs_detail::profile_mode().fetch_and(~obs_detail::kProfileTimeline,
                                         std::memory_order_relaxed);
  }
}

void Timeline::set_thread_capacity(std::size_t records) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_pow2_ = round_up_pow2(records);
}

std::uint64_t Timeline::now_ns() const noexcept {
  return to_ns(std::chrono::steady_clock::now() - epoch_);
}

Timeline::Ring& Timeline::local_ring() {
  thread_local Ring* ring = nullptr;
  thread_local const Timeline* owner = nullptr;
  // The singleton never moves, but tests that hammer threads across
  // suites reuse pool threads; the owner check keeps the cached pointer
  // honest if a second Timeline ever exists (it does not today).
  if (ring == nullptr || owner != this) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    rings_.push_back(std::make_unique<Ring>(capacity_pow2_));
    ring = rings_.back().get();
    owner = this;
  }
  return *ring;
}

void Timeline::record(const char* name, std::uint64_t begin_ns,
                      std::uint64_t end_ns, std::uint64_t tag) noexcept {
  if (!enabled()) return;
  Ring& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  TimelineRecord& slot = ring.slots[head & ring.mask];
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.tag = tag != 0 ? tag : obs_detail::request_tag();
  slot.name = name;
  // Release-publish: a reader that acquires `head` sees the slot fields.
  ring.head.store(head + 1, std::memory_order_release);
}

void Timeline::record_wait(const char* name, std::uint64_t wait_ns,
                           std::uint64_t tag) noexcept {
  if (!enabled()) return;
  const std::uint64_t end_ns = now_ns();
  record(name, end_ns >= wait_ns ? end_ns - wait_ns : 0, end_ns, tag);
}

void Timeline::set_thread_label(const std::string& label) {
  Ring& ring = local_ring();
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  ring.label = label;
}

std::vector<TimelineThreadDump> Timeline::snapshot() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TimelineThreadDump> out;
  out.reserve(rings_.size());
  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    const Ring& ring = *rings_[tid];
    TimelineThreadDump dump;
    dump.tid = static_cast<std::uint32_t>(tid);
    dump.label = ring.label;
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring.mask + 1;
    const std::uint64_t kept = std::min(head, capacity);
    dump.dropped = head - kept;
    dump.records.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = head - kept; i < head; ++i) {
      dump.records.push_back(ring.slots[i & ring.mask]);
    }
    out.push_back(std::move(dump));
  }
  return out;
}

void Timeline::reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
    ring->label.clear();
  }
}

void write_timeline_jsonl(std::ostream& out,
                          const std::vector<TimelineThreadDump>& threads) {
  std::size_t total = 0;
  for (const TimelineThreadDump& t : threads) total += t.records.size();
  {
    JsonWriter w;
    w.begin_object()
        .member("schema", "meshbcast.timeline")
        .member("version", std::uint64_t{1})
        .member("threads", std::uint64_t{threads.size()})
        .member("records", std::uint64_t{total})
        .end_object();
    out << std::move(w).str() << "\n";
  }
  for (const TimelineThreadDump& t : threads) {
    JsonWriter w;
    w.begin_object()
        .member("thread", std::uint64_t{t.tid})
        .member("label", t.label)
        .member("records", std::uint64_t{t.records.size()})
        .member("dropped", t.dropped)
        .end_object();
    out << std::move(w).str() << "\n";
  }
  for (const TimelineThreadDump& t : threads) {
    for (const TimelineRecord& r : t.records) {
      JsonWriter w;
      w.begin_object()
          .member("thread", std::uint64_t{t.tid})
          .member("name", r.name == nullptr ? "" : r.name)
          .member("begin_ns", r.begin_ns)
          .member("end_ns", r.end_ns);
      if (r.tag != 0) w.member("req", r.tag);
      w.end_object();
      out << std::move(w).str() << "\n";
    }
  }
}

void write_timeline_perfetto(std::ostream& out,
                             const std::vector<TimelineThreadDump>& threads) {
  // Chrome trace-event "complete" (ph:X) events; timestamps in
  // microseconds as the format requires, durations kept >= 1 us so
  // sub-microsecond spans stay visible instead of vanishing.
  out << "[";
  bool first = true;
  for (const TimelineThreadDump& t : threads) {
    if (!t.label.empty()) {
      out << (first ? "" : ",\n")
          << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << t.tid << ",\"args\":{\"name\":\"" << json_escape(t.label)
          << "\"}}";
      first = false;
    }
    for (const TimelineRecord& r : t.records) {
      const std::uint64_t dur_ns =
          r.end_ns >= r.begin_ns ? r.end_ns - r.begin_ns : 0;
      out << (first ? "" : ",\n") << "{\"name\":\""
          << json_escape(r.name == nullptr ? "" : r.name)
          << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << t.tid
          << ",\"ts\":" << r.begin_ns / 1000 << ",\"dur\":"
          << std::max<std::uint64_t>(1, dur_ns / 1000) << "}";
      first = false;
    }
  }
  out << "]\n";
}

}  // namespace wsn
