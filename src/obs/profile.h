#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/// RAII profiling spans over the hot phases of the stack.
///
///   void resolve(...) {
///     WSN_SPAN("plan.resolve");
///     ...
///   }
///
/// Spans aggregate into the process-wide Profiler: per-name call count,
/// total/min/max wall time.  Profiling is *off* by default -- a disabled
/// span costs one relaxed atomic load and no clock read, which is what
/// lets the spans live permanently inside `simulate_broadcast` and the
/// sweep loops without moving the benchmarks.  Enable with
/// `Profiler::instance().set_enabled(true)` (the CLI's `--profile` flag),
/// then render `report_text()` or `write_report_json()`.
namespace wsn {

class Profiler {
 public:
  struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;

    [[nodiscard]] double mean_ns() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(total_ns) /
                              static_cast<double>(count);
    }
  };

  static Profiler& instance();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Folds one finished span into the aggregate.  Thread-safe.
  void record(const char* name, std::uint64_t ns);

  /// Aggregates so far, sorted by descending total time.
  [[nodiscard]] std::vector<SpanStats> snapshot() const;

  /// Drops every aggregate (the enabled flag is kept).
  void reset();

  /// Fixed-width text table of `snapshot()`.
  [[nodiscard]] std::string report_text() const;

  /// {"schema":"meshbcast.profile","version":1,"spans":[...]}.
  void write_report_json(std::ostream& out) const;

 private:
  Profiler() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<SpanStats> stats_;  // few distinct names; linear scan
};

/// One timed region; construct via WSN_SPAN.  Non-copyable, tolerates
/// being moved out of scope only by not supporting it.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name) noexcept
      : name_(name), active_(Profiler::instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileSpan() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().record(
        name_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

#define WSN_SPAN_CONCAT_IMPL(a, b) a##b
#define WSN_SPAN_CONCAT(a, b) WSN_SPAN_CONCAT_IMPL(a, b)
#define WSN_SPAN(name) \
  ::wsn::ProfileSpan WSN_SPAN_CONCAT(wsn_profile_span_, __LINE__)(name)

}  // namespace wsn
