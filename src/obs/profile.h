#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/// RAII profiling spans over the hot phases of the stack.
///
///   void resolve(...) {
///     WSN_SPAN("plan.resolve");
///     ...
///   }
///
/// Spans feed two sinks, each behind its own bit of one shared mode word:
///
///   * the process-wide aggregate Profiler (per-name call count,
///     total/min/max wall time) -- `Profiler::instance().set_enabled(true)`
///     (the CLI's `--profile` flag);
///   * the per-thread Timeline rings (obs/timeline.h) -- timestamped
///     begin/end records for concurrency attribution.
///
/// Both off is the default, and a fully disabled span costs one relaxed
/// atomic load and no clock read -- which is what lets the spans live
/// permanently inside `simulate_broadcast` and the sweep loops without
/// moving the benchmarks.
///
/// Aggregation is sharded per thread: `record` folds into the calling
/// thread's shard under a mutex only `snapshot()` ever contends, so the
/// profiler itself never serializes the workers it is measuring.
/// `snapshot()` merges the shards by name.
namespace wsn {

namespace obs_detail {
/// Bits of the shared span mode word.
inline constexpr std::uint32_t kProfileAggregate = 1u << 0;
inline constexpr std::uint32_t kProfileTimeline = 1u << 1;
/// The one atomic every ProfileSpan reads (defined in profile.cpp).
[[nodiscard]] std::atomic<std::uint32_t>& profile_mode() noexcept;
/// Folds a finished span into the Timeline's per-thread ring (defined in
/// timeline.cpp; declared here so the inline ProfileSpan destructor can
/// call it without an include cycle).
void timeline_record_span(const char* name,
                          std::chrono::steady_clock::time_point begin,
                          std::chrono::steady_clock::time_point end) noexcept;
}  // namespace obs_detail

class Profiler {
 public:
  struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;

    [[nodiscard]] double mean_ns() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(total_ns) /
                              static_cast<double>(count);
    }
  };

  static Profiler& instance();

  void set_enabled(bool enabled) noexcept {
    if (enabled) {
      obs_detail::profile_mode().fetch_or(obs_detail::kProfileAggregate,
                                          std::memory_order_relaxed);
    } else {
      obs_detail::profile_mode().fetch_and(~obs_detail::kProfileAggregate,
                                           std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool enabled() const noexcept {
    return (obs_detail::profile_mode().load(std::memory_order_relaxed) &
            obs_detail::kProfileAggregate) != 0;
  }

  /// Folds one finished span into the calling thread's shard.
  /// Thread-safe; never contends with other recording threads.
  void record(const char* name, std::uint64_t ns);

  /// Aggregates so far, merged across thread shards and sorted by
  /// descending total time.
  [[nodiscard]] std::vector<SpanStats> snapshot() const;

  /// Drops every aggregate on every shard (the enabled flag is kept).
  void reset();

  /// Fixed-width text table of `snapshot()`.
  [[nodiscard]] std::string report_text() const;

  /// {"schema":"meshbcast.profile","version":1,"spans":[...]}.
  void write_report_json(std::ostream& out) const;

 private:
  /// One recording thread's private aggregates.  The mutex is
  /// effectively uncontended: the owning thread takes it per record,
  /// snapshot()/reset() take it rarely from outside.
  struct Shard {
    std::mutex mutex;
    std::vector<SpanStats> stats;  // few distinct names; linear scan
  };

  Profiler() = default;
  [[nodiscard]] Shard& local_shard();

  mutable std::mutex registry_mutex_;  // guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// One timed region; construct via WSN_SPAN.  Non-copyable, tolerates
/// being moved out of scope only by not supporting it.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name) noexcept
      : name_(name),
        mode_(obs_detail::profile_mode().load(std::memory_order_relaxed)) {
    if (mode_ != 0) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileSpan() {
    if (mode_ == 0) return;
    const auto end = std::chrono::steady_clock::now();
    if ((mode_ & obs_detail::kProfileAggregate) != 0) {
      Profiler::instance().record(
          name_, static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         end - start_)
                         .count()));
    }
    if ((mode_ & obs_detail::kProfileTimeline) != 0) {
      obs_detail::timeline_record_span(name_, start_, end);
    }
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  std::uint32_t mode_;
};

#define WSN_SPAN_CONCAT_IMPL(a, b) a##b
#define WSN_SPAN_CONCAT(a, b) WSN_SPAN_CONCAT_IMPL(a, b)
#define WSN_SPAN(name) \
  ::wsn::ProfileSpan WSN_SPAN_CONCAT(wsn_profile_span_, __LINE__)(name)

}  // namespace wsn
