#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// Metrics registry: named counters, gauges and fixed-bucket histograms.
///
/// Built for the analysis sweeps: hundreds of simulations run concurrently
/// under `parallel_for` and all of them hammer the same handful of
/// metrics.  Counters therefore shard their storage across cache-line-
/// padded cells -- each thread picks a shard once (thread-local) and
/// increments it with a relaxed atomic add, so concurrent writers almost
/// never touch the same cache line -- and `value()`/`scrape()` merge the
/// shards on read.  Gauges and histograms use plain relaxed atomics: they
/// are written orders of magnitude less often than the tx/rx counters.
///
/// Handles returned by the registry (`Counter&` etc.) are stable for the
/// registry's lifetime; resolve them once (obs/observer.h does) and keep
/// the hot path lookup-free.
namespace wsn {

namespace obs_detail {
/// Shard index of the calling thread, stable for the thread's lifetime.
[[nodiscard]] std::size_t thread_shard() noexcept;
inline constexpr std::size_t kShards = 16;
}  // namespace obs_detail

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    shards_[obs_detail::thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Merged total across shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, obs_detail::kShards> shards_{};
};

/// Last-writer-wins scalar.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets (strictly increasing); one implicit overflow bucket
/// catches everything above the last edge.  Tracks count/sum/min/max
/// exactly, so extrema (e.g. Table 5's max delay) never suffer bucket
/// resolution.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  /// Per-bucket counts; the last entry is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of one histogram, for snapshots and exporters.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  // bounds + overflow
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside
  /// the covering bucket, clamped to the exact [min, max] extrema (so
  /// p0/p100 are exact and a single-bucket histogram stays sane).
  /// 0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;
};

/// Everything the registry held at scrape time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; `fallback` when absent.
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  /// Histogram by name, or nullptr.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the reference stays valid for the registry's
  /// lifetime.  For an existing histogram the bounds argument is ignored.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  /// Merged point-in-time copy of every metric, sorted by name.
  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Zeroes every metric (names and handles survive).
  void reset();

 private:
  template <typename T>
  using Named = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  mutable std::mutex mutex_;
  Named<Counter> counters_;
  Named<Gauge> gauges_;
  Named<Histogram> histograms_;
};

/// JSON object: {"schema":"meshbcast.metrics","version":1,
/// "counters":{...},"gauges":{...},"histograms":{...}}.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace wsn
