#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "protocol/resolver.h"
#include "sim/plan.h"

/// Versioned, checksummed binary serialization of compiled plans.
///
/// A stored artifact is the unit the plan store moves around: the resolved
/// `RelayPlan` together with the `ResolveReport` describing how it was
/// repaired.  The wire format (version 1, little-endian, all integral --
/// round-trips are bit-exact):
///
///   offset  size  field
///   0       8     magic "WSNPLAN1"
///   8       4     u32 format version (= 1)
///   12      4     u32 node count
///   16      4     u32 source id
///   20      4     u32 flags (reserved, 0)
///   24      8     u64 report.repairs
///   32      8     u64 report.rounds
///   40      8     u64 report.unreachable
///   48      8     u64 report.unrepaired
///   56      8     u64 total offset count (redundant; cross-checked)
///   64      ...   per node: u32 count, then count x u32 offsets
///   end-8   8     u64 checksum of every preceding byte (eight byte-lane
///                 FNV-1a streams folded together; see serialize.cpp)
///
/// Decoding is total: every failure mode maps to a `PlanSerdeStatus`
/// instead of a contract abort, so a corrupted or stale artifact is a
/// cache *miss*, never a crash.  Structural rules (source in range,
/// offsets >= 1 and strictly increasing) are re-verified after the
/// checksum as defense in depth -- `RelayPlan::validate()` aborts, and
/// nothing read from disk may reach it unvalidated.
namespace wsn {

/// A compiled plan plus the resolver's account of building it.  The plan
/// is kept in CSR form (FlatRelayPlan): it deserializes in O(1)
/// allocations and simulates directly; call `plan.to_relay_plan()` when a
/// construction-form copy is needed.
struct StoredPlan {
  FlatRelayPlan plan;
  ResolveReport report;
};

inline constexpr std::uint32_t kPlanFormatVersion = 1;
inline constexpr std::size_t kPlanMagicSize = 8;
inline constexpr char kPlanMagic[kPlanMagicSize + 1] = "WSNPLAN1";

enum class PlanSerdeStatus {
  kOk,
  kNotFound,          // no artifact at that path / key
  kIoError,           // artifact exists but open/read failed (EIO, EACCES,
                      // NFS hiccup...) -- transient, worth retrying
  kTruncated,         // shorter than its own structure claims
  kBadMagic,          // not a plan artifact at all
  kBadVersion,        // a format this build does not speak
  kChecksumMismatch,  // bytes damaged after the artifact was written
  kMalformed,         // intact bytes, structurally invalid plan
};

[[nodiscard]] std::string_view to_string(PlanSerdeStatus status) noexcept;

/// FNV-1a 64-bit over `bytes`; the checksum used by the artifact trailer
/// and the fingerprint hashes (store/fingerprint.h).
[[nodiscard]] std::uint64_t fnv1a64(
    std::string_view bytes,
    std::uint64_t basis = 0xcbf29ce484222325ull) noexcept;

/// Encodes `value` into the version-1 artifact format.
[[nodiscard]] std::string serialize_plan(const StoredPlan& value);

/// Decodes an artifact.  On any status other than kOk, `out` is left
/// untouched.
[[nodiscard]] PlanSerdeStatus deserialize_plan(std::string_view bytes,
                                               StoredPlan& out);

/// Writes the artifact to `path` (not atomic; PlanDiskStore layers
/// temp-file + rename on top).  False on I/O failure.
[[nodiscard]] bool write_plan_file(const std::string& path,
                                   const StoredPlan& value);

/// Reads and decodes the artifact at `path`; kNotFound when absent,
/// kIoError when present but unreadable (retry-worthy).
[[nodiscard]] PlanSerdeStatus read_plan_file(const std::string& path,
                                             StoredPlan& out);

}  // namespace wsn
