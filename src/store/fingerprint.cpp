#include "store/fingerprint.h"

#include <cstdio>

#include "store/serialize.h"

namespace wsn {

namespace {

/// FNV-1a over the CSR adjacency: per node, the degree then each neighbor
/// id, all as little-endian u32.  Symmetric topologies hash identically on
/// every host because neighbor spans are sorted by construction.
std::uint64_t adjacency_digest(const Topology& topo) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix_u32 = [&hash](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (value >> shift) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  const auto n = static_cast<NodeId>(topo.num_nodes());
  for (NodeId v = 0; v < n; ++v) {
    mix_u32(static_cast<std::uint32_t>(topo.degree(v)));
    for (NodeId u : topo.neighbors(v)) mix_u32(u);
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

std::string PlanFingerprint::hex() const {
  return hex64(key.hi) + hex64(key.lo);
}

bool plan_cache_eligible(const SimOptions& options) noexcept {
  return options.faults == nullptr && options.battery == nullptr;
}

TopologyDigest digest_topology(const Topology& topo) {
  TopologyDigest digest;
  digest.prefix.reserve(128);
  digest.prefix += "v1;family=";
  digest.prefix += topo.family();
  digest.prefix += ";topo=";
  digest.prefix += topo.name();
  digest.prefix += ";nodes=" + std::to_string(topo.num_nodes());
  digest.prefix += ";links=" + std::to_string(topo.num_directed_links());
  digest.prefix += ";adj=" + hex64(adjacency_digest(topo));
  return digest;
}

PlanFingerprint fingerprint_plan_request(const Topology& topo, NodeId source,
                                         std::string_view protocol_id,
                                         const SimOptions& options) {
  return fingerprint_plan_request(digest_topology(topo), source, protocol_id,
                                  options);
}

PlanFingerprint fingerprint_plan_request(const TopologyDigest& digest,
                                         NodeId source,
                                         std::string_view protocol_id,
                                         const SimOptions& options) {
  PlanFingerprint fp;
  fp.canonical.reserve(digest.prefix.size() + 64);
  fp.canonical += digest.prefix;
  fp.canonical += ";src=" + std::to_string(source);
  fp.canonical += ";proto=";
  fp.canonical += protocol_id;
  fp.canonical += ";max_slots=" + std::to_string(options.max_slots);
  // Two independent 64-bit FNV streams (distinct bases) make the stored
  // key 128 bits wide; the canonical string remains the ground truth.
  fp.key.hi = fnv1a64(fp.canonical);
  fp.key.lo = fnv1a64(fp.canonical, 0xcbf29ce484222325ull ^
                                        0x517cc1b727220a95ull);
  return fp;
}

}  // namespace wsn
