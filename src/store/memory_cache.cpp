#include "store/memory_cache.h"

#include <algorithm>
#include <string>

#include "common/assert.h"

namespace wsn {

ShardedPlanCache::ShardedPlanCache() : ShardedPlanCache(Config{}) {}

ShardedPlanCache::ShardedPlanCache(Config config)
    : per_shard_capacity_((std::max<std::size_t>(config.capacity, 1) +
                           std::max<std::size_t>(config.shards, 1) - 1) /
                          std::max<std::size_t>(config.shards, 1)),
      shards_(std::max<std::size_t>(config.shards, 1)) {}

void ShardedPlanCache::bind_metrics(MetricsRegistry& registry,
                                    std::string_view prefix) {
  const std::string base(prefix);
  hits_metric_ = &registry.counter(base + ".hits");
  misses_metric_ = &registry.counter(base + ".misses");
  insertions_metric_ = &registry.counter(base + ".insertions");
  evictions_metric_ = &registry.counter(base + ".evictions");
}

std::shared_ptr<const StoredPlan> ShardedPlanCache::get(const PlanKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const StoredPlan> value;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      value = it->second->value;
    }
  }
  if (value == nullptr) {
    count(misses_, misses_metric_);
  } else {
    count(hits_, hits_metric_);
  }
  return value;
}

void ShardedPlanCache::put(const PlanKey& key,
                           std::shared_ptr<const StoredPlan> value) {
  WSN_EXPECTS(value != nullptr);
  Shard& shard = shard_for(key);
  bool inserted = false;
  bool evicted = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value)});
      shard.index.emplace(key, shard.lru.begin());
      inserted = true;
      if (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evicted = true;
      }
    }
  }
  if (inserted) count(insertions_, insertions_metric_);
  if (evicted) count(evictions_, evictions_metric_);
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

ShardedPlanCache::Stats ShardedPlanCache::stats() const noexcept {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed)};
}

void ShardedPlanCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace wsn
