#include "store/memory_cache.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/assert.h"
#include "obs/timeline.h"

namespace wsn {

ShardedPlanCache::ShardedPlanCache() : ShardedPlanCache(Config{}) {}

ShardedPlanCache::ShardedPlanCache(Config config)
    : per_shard_capacity_((std::max<std::size_t>(config.capacity, 1) +
                           std::max<std::size_t>(config.shards, 1) - 1) /
                          std::max<std::size_t>(config.shards, 1)),
      shards_(std::max<std::size_t>(config.shards, 1)) {}

void ShardedPlanCache::bind_metrics(MetricsRegistry& registry,
                                    std::string_view prefix) {
  const std::string base(prefix);
  hits_metric_ = &registry.counter(base + ".hits");
  misses_metric_ = &registry.counter(base + ".misses");
  insertions_metric_ = &registry.counter(base + ".insertions");
  evictions_metric_ = &registry.counter(base + ".evictions");
  lock_wait_metric_ = &registry.histogram(
      base + ".lock_wait_ms",
      {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0});
}

std::unique_lock<std::mutex> ShardedPlanCache::acquire_shard(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    const auto start = std::chrono::steady_clock::now();
    lock.lock();
    const auto waited = std::chrono::steady_clock::now() - start;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
    const std::uint64_t wait_ns =
        ns <= 0 ? 1 : static_cast<std::uint64_t>(ns);
    lock_waits_.fetch_add(1, std::memory_order_relaxed);
    lock_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    if (lock_wait_metric_ != nullptr) {
      lock_wait_metric_->observe(static_cast<double>(wait_ns) / 1e6);
    }
    Timeline::instance().record_wait("store.lock_wait", wait_ns);
  }
  return lock;
}

std::shared_ptr<const StoredPlan> ShardedPlanCache::get(const PlanKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const StoredPlan> value;
  {
    const std::unique_lock<std::mutex> lock = acquire_shard(shard);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      value = it->second->value;
    }
  }
  if (value == nullptr) {
    count(misses_, misses_metric_);
  } else {
    count(hits_, hits_metric_);
  }
  return value;
}

void ShardedPlanCache::put(const PlanKey& key,
                           std::shared_ptr<const StoredPlan> value) {
  WSN_EXPECTS(value != nullptr);
  Shard& shard = shard_for(key);
  bool inserted = false;
  bool evicted = false;
  {
    const std::unique_lock<std::mutex> lock = acquire_shard(shard);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value)});
      shard.index.emplace(key, shard.lru.begin());
      inserted = true;
      if (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evicted = true;
      }
    }
  }
  if (inserted) count(insertions_, insertions_metric_);
  if (evicted) count(evictions_, evictions_metric_);
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

ShardedPlanCache::Stats ShardedPlanCache::stats() const noexcept {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed),
               lock_waits_.load(std::memory_order_relaxed),
               lock_wait_ns_.load(std::memory_order_relaxed)};
}

void ShardedPlanCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace wsn
