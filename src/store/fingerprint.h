#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/simulator.h"
#include "topology/topology.h"

/// Content-addressed keys for compiled plans.
///
/// Two plan requests must share a key exactly when plan *construction*
/// cannot distinguish them.  Compilation (protocol rules + resolver
/// probes) sees only the adjacency structure, the source, the protocol's
/// own rules, and the probe-simulation horizon -- so the canonical
/// fingerprint covers:
///
///   * the topology: family, `name()` (which carries dims/wrap), node and
///     link counts, and a digest of the full CSR adjacency.  The digest is
///     what makes the guarantee structural rather than nominal: two
///     topologies that wire nodes differently can never collide, even if
///     a future family forgets to put its dims in `name()` (random
///     geometric seeds, torus wraps and 1xN degenerates all differ right
///     here);
///   * the source node;
///   * a caller-chosen protocol id ("paper", "cds", "flood:7", ...) --
///     same topology, different rules, different key;
///   * the only SimOptions field the probes can observe: `max_slots`.
///
/// Energy parameters (packet_bits, radio, spacing) deliberately stay out:
/// they scale the reported joules but never change which plan is built,
/// and folding them in would shatter the cache across sweeps that vary
/// only the radio.  Options that make probes *stateful* -- fault models,
/// batteries -- make a request ineligible for caching instead
/// (`plan_cache_eligible`), because no finite key can name a mutable
/// model's future behavior.
namespace wsn {

/// 128-bit content hash; the address of an artifact in every store tier.
struct PlanKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  [[nodiscard]] std::size_t operator()(const PlanKey& key) const noexcept {
    return static_cast<std::size_t>(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// A key plus the human-readable canonical request string it was hashed
/// from (kept for manifests and debugging collisions that cannot happen).
struct PlanFingerprint {
  PlanKey key;
  std::string canonical;

  /// 32 lowercase hex chars, hi then lo; the artifact's file stem.
  [[nodiscard]] std::string hex() const;
};

/// True when plan construction under `options` is a pure function of the
/// fingerprint: no fault model, no battery.  Ineligible requests bypass
/// every cache tier and compile fresh.
[[nodiscard]] bool plan_cache_eligible(const SimOptions& options) noexcept;

/// The topology-dependent prefix of the canonical request string.  Walking
/// the CSR adjacency is O(links) -- by far the dominant fingerprint cost --
/// while a sweep asks about the *same* topology once per source, so
/// PlanStore digests each topology once and stamps per-request suffixes
/// onto the cached prefix.
struct TopologyDigest {
  /// "v1;family=..;topo=..;nodes=..;links=..;adj=<hex64>"
  std::string prefix;
};

/// Digests `topo` for fingerprinting (O(links)).
[[nodiscard]] TopologyDigest digest_topology(const Topology& topo);

/// Builds the canonical fingerprint of a plan request.
[[nodiscard]] PlanFingerprint fingerprint_plan_request(
    const Topology& topo, NodeId source, std::string_view protocol_id,
    const SimOptions& options = {});

/// Same fingerprint from a precomputed topology digest (O(1) in the
/// topology size).  `digest` must describe the topology of the request.
[[nodiscard]] PlanFingerprint fingerprint_plan_request(
    const TopologyDigest& digest, NodeId source, std::string_view protocol_id,
    const SimOptions& options = {});

}  // namespace wsn
