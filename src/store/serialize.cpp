#include "store/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wsn {

std::string_view to_string(PlanSerdeStatus status) noexcept {
  switch (status) {
    case PlanSerdeStatus::kOk:
      return "ok";
    case PlanSerdeStatus::kNotFound:
      return "not found";
    case PlanSerdeStatus::kIoError:
      return "i/o error";
    case PlanSerdeStatus::kTruncated:
      return "truncated";
    case PlanSerdeStatus::kBadMagic:
      return "bad magic";
    case PlanSerdeStatus::kBadVersion:
      return "unsupported format version";
    case PlanSerdeStatus::kChecksumMismatch:
      return "checksum mismatch";
    case PlanSerdeStatus::kMalformed:
      return "malformed plan";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t basis) noexcept {
  std::uint64_t hash = basis;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

// Explicit little-endian encoding keeps artifacts portable across hosts.
void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

// The or-of-shifted-bytes idiom compiles to a single load on little-endian
// hosts while still decoding correctly on big-endian ones.
std::uint32_t le32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t le64(const unsigned char* p) noexcept {
  return static_cast<std::uint64_t>(le32(p)) |
         static_cast<std::uint64_t>(le32(p + 4)) << 32;
}

/// Bounds-checked little-endian reader over the artifact bytes.
class Reader {
 public:
  explicit Reader(std::string_view bytes)
      : data_(reinterpret_cast<const unsigned char*>(bytes.data())),
        size_(bytes.size()) {}

  [[nodiscard]] bool read_u32(std::uint32_t& value) noexcept {
    if (size_ - pos_ < 4) return false;
    value = le32(data_ + pos_);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& value) noexcept {
    if (size_ - pos_ < 8) return false;
    value = le64(data_ + pos_);
    pos_ += 8;
    return true;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kTrailerSize = 8;

/// The artifact trailer checksum: eight interleaved FNV-1a streams, one
/// per byte lane, folded into one word.  Interleaving breaks the serial
/// xor-multiply dependency chain of plain FNV, giving ~8x the throughput
/// on the multi-KB bodies the disk tier verifies on every load; any
/// single-byte change still lands in exactly one lane and flips the fold.
std::uint64_t plan_checksum(std::string_view bytes) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
  std::uint64_t lane[8];
  for (std::uint64_t j = 0; j < 8; ++j) lane[j] = kBasis + j;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t n = bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      lane[j] = (lane[j] ^ p[i + j]) * kPrime;
    }
  }
  for (; i < n; ++i) {
    lane[i % 8] = (lane[i % 8] ^ p[i]) * kPrime;
  }
  std::uint64_t hash = kBasis ^ n;
  for (std::uint64_t l : lane) {
    hash = (hash ^ (l & 0xff)) * kPrime;
    hash ^= l >> 8;
    hash *= kPrime;
  }
  return hash;
}

}  // namespace

std::string serialize_plan(const StoredPlan& value) {
  const FlatRelayPlan& plan = value.plan;
  const std::size_t node_count = plan.num_nodes();
  const std::uint64_t total_offsets = plan.total_offsets();

  std::string out;
  out.reserve(kHeaderSize + 4 * node_count +
              4 * static_cast<std::size_t>(total_offsets) + kTrailerSize);
  out.append(kPlanMagic, kPlanMagicSize);
  put_u32(out, kPlanFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(node_count));
  put_u32(out, plan.source());
  put_u32(out, 0);  // flags
  put_u64(out, value.report.repairs);
  put_u64(out, value.report.rounds);
  put_u64(out, value.report.unreachable);
  put_u64(out, value.report.unrepaired);
  put_u64(out, total_offsets);
  for (NodeId v = 0; v < node_count; ++v) {
    const std::span<const Slot> offsets = plan.offsets(v);
    put_u32(out, static_cast<std::uint32_t>(offsets.size()));
    for (Slot offset : offsets) put_u32(out, offset);
  }
  put_u64(out, plan_checksum(out));
  return out;
}

PlanSerdeStatus deserialize_plan(std::string_view bytes, StoredPlan& out) {
  if (bytes.size() < kPlanMagicSize + 4) return PlanSerdeStatus::kTruncated;
  if (std::memcmp(bytes.data(), kPlanMagic, kPlanMagicSize) != 0) {
    return PlanSerdeStatus::kBadMagic;
  }
  Reader header(bytes.substr(kPlanMagicSize));
  std::uint32_t version = 0;
  if (!header.read_u32(version)) return PlanSerdeStatus::kTruncated;
  if (version != kPlanFormatVersion) return PlanSerdeStatus::kBadVersion;
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return PlanSerdeStatus::kTruncated;
  }

  const std::string_view body = bytes.substr(0, bytes.size() - kTrailerSize);
  Reader trailer(bytes.substr(bytes.size() - kTrailerSize));
  std::uint64_t stored_checksum = 0;
  if (!trailer.read_u64(stored_checksum)) return PlanSerdeStatus::kTruncated;
  if (plan_checksum(body) != stored_checksum) {
    return PlanSerdeStatus::kChecksumMismatch;
  }

  Reader r(body.substr(kPlanMagicSize + 4));
  std::uint32_t node_count = 0;
  std::uint32_t source = 0;
  std::uint32_t flags = 0;
  std::uint64_t repairs = 0;
  std::uint64_t rounds = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t unrepaired = 0;
  std::uint64_t total_offsets = 0;
  if (!r.read_u32(node_count) || !r.read_u32(source) || !r.read_u32(flags) ||
      !r.read_u64(repairs) || !r.read_u64(rounds) ||
      !r.read_u64(unreachable) || !r.read_u64(unrepaired) ||
      !r.read_u64(total_offsets)) {
    return PlanSerdeStatus::kTruncated;
  }
  if (node_count == 0 || source >= node_count || flags != 0) {
    return PlanSerdeStatus::kMalformed;
  }

  // Cross-check the claimed sizes against the actual byte count before
  // allocating anything -- a corrupted header must not drive a giant
  // resize.
  const std::size_t payload = body.size() - kHeaderSize;
  if (payload / 4 < node_count ||
      total_offsets > (payload - 4 * static_cast<std::size_t>(node_count)) / 4) {
    return PlanSerdeStatus::kTruncated;
  }

  std::vector<std::uint32_t> starts(node_count + 1, 0);
  std::vector<Slot> flat_offsets(static_cast<std::size_t>(total_offsets));
  std::uint64_t seen_offsets = 0;
  const auto* base = reinterpret_cast<const unsigned char*>(body.data());
  std::size_t pos = kHeaderSize;
  for (std::uint32_t v = 0; v < node_count; ++v) {
    if (body.size() - pos < 4) return PlanSerdeStatus::kTruncated;
    const std::uint32_t count = le32(base + pos);
    pos += 4;
    const std::uint64_t begin = seen_offsets;
    seen_offsets += count;
    if (seen_offsets > total_offsets) return PlanSerdeStatus::kMalformed;
    if ((body.size() - pos) / 4 < count) return PlanSerdeStatus::kTruncated;
    starts[v + 1] = static_cast<std::uint32_t>(seen_offsets);
    // One bulk decode per node instead of a push_back per offset; the
    // contract checks (offsets >= 1, strictly increasing -- validate()
    // aborts on violation, so enforce here instead) run over the decoded
    // values in place.
    Slot previous = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t offset = le32(base + pos + 4 * i);
      if (offset < 1 || offset <= previous) return PlanSerdeStatus::kMalformed;
      previous = offset;
      flat_offsets[static_cast<std::size_t>(begin) + i] = offset;
    }
    pos += 4 * static_cast<std::size_t>(count);
  }
  if (seen_offsets != total_offsets) return PlanSerdeStatus::kMalformed;
  if (pos != body.size()) {
    return PlanSerdeStatus::kMalformed;  // trailing garbage under checksum
  }
  if (starts[source + 1] == starts[source]) {
    return PlanSerdeStatus::kMalformed;  // source must be a relay
  }

  StoredPlan result;
  result.plan =
      FlatRelayPlan::adopt(source, std::move(starts), std::move(flat_offsets));
  result.report.repairs = repairs;
  result.report.rounds = rounds;
  result.report.unreachable = unreachable;
  result.report.unrepaired = unrepaired;
  out = std::move(result);
  return PlanSerdeStatus::kOk;
}

bool write_plan_file(const std::string& path, const StoredPlan& value) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string bytes = serialize_plan(value);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

PlanSerdeStatus read_plan_file(const std::string& path, StoredPlan& out) {
  // A warm-cache sweep loads hundreds of artifacts, so the slurp path is
  // deliberately lean: raw descriptors on POSIX (no stream buffering, no
  // FILE allocation), plain stdio elsewhere.
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Absence is a clean miss; anything else (EIO, EACCES, a flaky
    // network mount) is a transient I/O error the caller may retry.
    return errno == ENOENT || errno == ENOTDIR ? PlanSerdeStatus::kNotFound
                                               : PlanSerdeStatus::kIoError;
  }
  // Typical artifacts (a few KB) fit the stack buffer and decode without
  // touching the heap; larger ones spill into `bytes`.
  char stack_buffer[16384];
  std::string bytes;
  std::size_t have = 0;
  for (;;) {
    char* dst = have < sizeof stack_buffer ? stack_buffer + have : nullptr;
    std::size_t room = sizeof stack_buffer - have;
    if (dst == nullptr) {
      if (bytes.empty()) bytes.assign(stack_buffer, have);
      bytes.resize(have + sizeof stack_buffer);
      dst = bytes.data() + have;
      room = sizeof stack_buffer;
    }
    const ssize_t got = ::read(fd, dst, room);
    if (got < 0) {
      ::close(fd);
      return PlanSerdeStatus::kIoError;
    }
    if (got == 0) break;
    have += static_cast<std::size_t>(got);
  }
  ::close(fd);
  if (!bytes.empty()) {
    bytes.resize(have);
    return deserialize_plan(bytes, out);
  }
  return deserialize_plan(std::string_view(stack_buffer, have), out);
#else
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return errno == ENOENT ? PlanSerdeStatus::kNotFound
                           : PlanSerdeStatus::kIoError;
  }
  std::string bytes;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.append(chunk, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return PlanSerdeStatus::kIoError;
  return deserialize_plan(bytes, out);
#endif
}

}  // namespace wsn
