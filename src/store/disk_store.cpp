#include "store/disk_store.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>

namespace wsn {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST.tsv";
constexpr const char* kArtifactSuffix = ".plan";

/// Reads the keys already recorded in the manifest so reopening a store
/// does not duplicate its lines.
std::unordered_set<std::string> read_manifest_keys(const fs::path& path) {
  std::unordered_set<std::string> keys;
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) {
    const std::size_t tab = line.find('\t');
    if (tab != std::string::npos) keys.insert(line.substr(0, tab));
  }
  return keys;
}

/// The test-only fault injector (see disk_store.h); nullptr in production.
std::atomic<PlanDiskStore::LoadFaultInjector> g_load_fault_injector{nullptr};

}  // namespace

void PlanDiskStore::set_load_fault_injector(LoadFaultInjector hook) {
  g_load_fault_injector.store(hook, std::memory_order_release);
}

PlanDiskStore::PlanDiskStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ok_ = !ec && fs::is_directory(dir_, ec);
  if (!ok_) {
    std::fprintf(stderr, "plan store: cannot open directory %s\n",
                 dir_.c_str());
    return;
  }
  manifested_ = read_manifest_keys(fs::path(dir_) / kManifestName);
}

std::string PlanDiskStore::artifact_path(const PlanFingerprint& fp) const {
  return (fs::path(dir_) / (fp.hex() + kArtifactSuffix)).string();
}

PlanSerdeStatus PlanDiskStore::load(const PlanFingerprint& fp,
                                    StoredPlan& out) const {
  if (!ok_) return PlanSerdeStatus::kNotFound;
  const std::string path = artifact_path(fp);
  // Transient I/O failures (EIO under load, a flaky network mount) get a
  // bounded retry with exponential backoff; every other status -- hit,
  // miss, or verification failure -- surfaces immediately.  Exhausting
  // the attempts surfaces kIoError and the caller recompiles: slow is
  // acceptable, wrong or crashed is not.
  PlanSerdeStatus status = PlanSerdeStatus::kNotFound;
  for (int attempt = 0; attempt < kLoadAttempts; ++attempt) {
    status = read_plan_file(path, out);
    if (const LoadFaultInjector hook =
            g_load_fault_injector.load(std::memory_order_acquire)) {
      status = hook(status, attempt);
    }
    if (status != PlanSerdeStatus::kIoError) return status;
    if (attempt + 1 < kLoadAttempts) {
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1L << attempt));
    }
  }
  return status;
}

bool PlanDiskStore::save(const PlanFingerprint& fp, const StoredPlan& value) {
  if (!ok_) return false;
  // Unique temp name per writer, then an atomic rename: a reader never
  // observes a half-written artifact, and concurrent writers of the same
  // key each install identical bytes.
  static std::atomic<std::uint64_t> temp_serial{0};
  const std::string final_path = artifact_path(fp);
  const std::string temp_path =
      final_path + ".tmp" +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  if (!write_plan_file(temp_path, value)) {
    std::error_code ec;
    fs::remove(temp_path, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return false;
  }

  const std::lock_guard<std::mutex> lock(manifest_mutex_);
  if (manifested_.insert(fp.hex()).second) {
    std::ofstream manifest(fs::path(dir_) / kManifestName, std::ios::app);
    if (manifest) {
      manifest << fp.hex() << '\t' << fp.canonical << '\n';
    }
  }
  return true;
}

std::size_t PlanDiskStore::artifact_count() const {
  if (!ok_) return 0;
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == kArtifactSuffix) ++count;
  }
  return count;
}

}  // namespace wsn
