#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "store/fingerprint.h"
#include "store/serialize.h"

/// Thread-safe sharded-LRU cache of compiled plans.
///
/// The contention profile is a source sweep: every `parallel_for` worker
/// looks up (and occasionally inserts) plans against one shared cache.
/// Keys are uniform 128-bit hashes, so sharding by `key.lo` spreads the
/// workers across independent mutexes; within a shard, a classic
/// list+map LRU keeps get/put O(1).  Values are `shared_ptr<const
/// StoredPlan>`: a hit hands out a reference the caller can keep using
/// after the entry is evicted, and concurrent readers share one immutable
/// plan instead of copying 512 offset vectors per lookup.
///
/// Capacity is bounded per shard (total/shards, rounded up), so the
/// worst-case footprint is `capacity + shards - 1` entries.  Hit, miss,
/// insertion and eviction counts are kept in local atomics and, once
/// `bind_metrics` is called, mirrored into a MetricsRegistry
/// (`store.mem.hits` etc.) so sweeps expose their cache behavior through
/// the same scrape as the simulator counters.
namespace wsn {

class ShardedPlanCache {
 public:
  struct Config {
    /// Total entry bound across shards (>= 1).
    std::size_t capacity = 2048;
    /// Lock shards (>= 1); 16 matches the metrics registry's sharding.
    std::size_t shards = 16;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Shard-lock acquisitions that found the lock held (try_lock
    /// failed) and the total nanoseconds those blocked acquisitions
    /// waited.  The uncontended path costs one try_lock and never reads
    /// a clock.
    std::uint64_t lock_waits = 0;
    std::uint64_t lock_wait_ns = 0;
  };

  ShardedPlanCache();
  explicit ShardedPlanCache(Config config);

  /// Mirrors the counters into `registry` as `<prefix>.hits` etc.  Call
  /// before handing the cache to concurrent workers.
  void bind_metrics(MetricsRegistry& registry,
                    std::string_view prefix = "store.mem");

  /// The cached plan, refreshed to most-recently-used; nullptr on miss.
  [[nodiscard]] std::shared_ptr<const StoredPlan> get(const PlanKey& key);

  /// Inserts or refreshes `key`, evicting the shard's LRU tail when over
  /// capacity.
  void put(const PlanKey& key, std::shared_ptr<const StoredPlan> value);

  /// Entries currently resident, summed over shards.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] Stats stats() const noexcept;

  void clear();

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const StoredPlan> value;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash>
        index;
  };

  [[nodiscard]] Shard& shard_for(const PlanKey& key) noexcept {
    return shards_[key.lo % shards_.size()];
  }
  void count(std::atomic<std::uint64_t>& local, Counter* mirrored) noexcept {
    local.fetch_add(1, std::memory_order_relaxed);
    if (mirrored != nullptr) mirrored->increment();
  }

  /// Takes the shard mutex, timing the acquisition only when a try_lock
  /// probe finds it held.  A contended acquisition feeds the lock-wait
  /// stats, the `<prefix>.lock_wait_ms` histogram (when bound) and the
  /// span timeline as "store.lock_wait".
  [[nodiscard]] std::unique_lock<std::mutex> acquire_shard(Shard& shard);

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> lock_waits_{0};
  std::atomic<std::uint64_t> lock_wait_ns_{0};
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* insertions_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Histogram* lock_wait_metric_ = nullptr;
};

}  // namespace wsn
