#include "store/plan_store.h"

#include <cstdio>

#include "common/assert.h"

namespace wsn {

PlanStore::PlanStore() : PlanStore(Config{}) {}

PlanStore::PlanStore(Config config)
    : memory_(ShardedPlanCache::Config{config.mem_capacity,
                                       config.mem_shards}) {
  if (!config.disk_dir.empty()) disk_.emplace(config.disk_dir);
}

void PlanStore::bind_metrics(MetricsRegistry& registry) {
  memory_.bind_metrics(registry, "store.mem");
  disk_hits_metric_ = &registry.counter("store.disk.hits");
  disk_rejects_metric_ = &registry.counter("store.disk.rejects");
  compiles_metric_ = &registry.counter("store.compiles");
  bypasses_metric_ = &registry.counter("store.bypasses");
  read_retries_metric_ = &registry.counter("store.read_retries");
}

std::shared_ptr<const StoredPlan> PlanStore::fetch_or_compile(
    const Topology& topo, NodeId source, std::string_view protocol_id,
    const SimOptions& options, const CompileFn& compile, Origin* origin) {
  const auto compiled = [&] {
    auto value = std::make_shared<StoredPlan>();
    value->plan = FlatRelayPlan::from(compile(value->report));
    WSN_ENSURES(value->plan.num_nodes() == topo.num_nodes());
    return std::shared_ptr<const StoredPlan>(std::move(value));
  };

  if (!plan_cache_eligible(options)) {
    count(bypasses_, bypasses_metric_);
    if (origin != nullptr) *origin = Origin::kBypass;
    return compiled();
  }

  const PlanFingerprint fp =
      fingerprint_plan_request(digest_for(topo), source, protocol_id,
                               options);

  if (auto hit = memory_.get(fp.key)) {
    if (origin != nullptr) *origin = Origin::kMemory;
    return hit;
  }

  bool rewrite_artifact = false;
  if (disk_) {
    StoredPlan from_disk;
    const std::uint64_t retries_before = disk_->read_retries();
    const PlanSerdeStatus status = disk_->load(fp, from_disk);
    const std::uint64_t retries_spent =
        disk_->read_retries() - retries_before;
    if (retries_spent > 0) {
      read_retries_.fetch_add(retries_spent, std::memory_order_relaxed);
      if (read_retries_metric_ != nullptr) {
        read_retries_metric_->add(retries_spent);
      }
    }
    if (status == PlanSerdeStatus::kOk &&
        from_disk.plan.num_nodes() == topo.num_nodes() &&
        from_disk.plan.source() == source) {
      count(disk_hits_, disk_hits_metric_);
      auto value = std::make_shared<const StoredPlan>(std::move(from_disk));
      memory_.put(fp.key, value);
      if (origin != nullptr) *origin = Origin::kDisk;
      return value;
    }
    if (status != PlanSerdeStatus::kNotFound) {
      // Corrupt, stale-version, or (impossible short of a key collision)
      // mismatched artifact: a miss that the recompile below overwrites.
      count(disk_rejects_, disk_rejects_metric_);
      rewrite_artifact = true;
    }
  }

  count(compiles_, compiles_metric_);
  std::shared_ptr<const StoredPlan> value = compiled();
  memory_.put(fp.key, value);
  if (disk_ && !disk_->save(fp, *value) && rewrite_artifact) {
    std::fprintf(stderr, "plan store: cannot rewrite artifact %s\n",
                 disk_->artifact_path(fp).c_str());
  }
  if (origin != nullptr) *origin = Origin::kCompiled;
  return value;
}

TopologyDigest PlanStore::digest_for(const Topology& topo) {
  const std::string name = topo.name();
  const std::size_t nodes = topo.num_nodes();
  const std::size_t links = topo.num_directed_links();
  {
    const std::lock_guard<std::mutex> lock(digests_mutex_);
    const auto it = digests_.find(&topo);
    if (it != digests_.end() && it->second.name == name &&
        it->second.nodes == nodes && it->second.links == links) {
      return it->second.digest;
    }
  }
  TopologyDigest digest = digest_topology(topo);
  {
    const std::lock_guard<std::mutex> lock(digests_mutex_);
    digests_[&topo] = DigestEntry{name, nodes, links, digest};
  }
  return digest;
}

PlanStore::Stats PlanStore::stats() const noexcept {
  return Stats{disk_hits_.load(std::memory_order_relaxed),
               disk_rejects_.load(std::memory_order_relaxed),
               compiles_.load(std::memory_order_relaxed),
               bypasses_.load(std::memory_order_relaxed),
               read_retries_.load(std::memory_order_relaxed)};
}

std::string_view to_string(PlanStore::Origin origin) noexcept {
  switch (origin) {
    case PlanStore::Origin::kMemory:
      return "memory hit";
    case PlanStore::Origin::kDisk:
      return "disk hit";
    case PlanStore::Origin::kCompiled:
      return "compiled";
    case PlanStore::Origin::kBypass:
      return "bypass";
  }
  return "unknown";
}

RelayPlan paper_plan_cached(const Topology& topo, NodeId source,
                            const SimOptions& options, PlanStore& store,
                            ResolveReport* report,
                            PlanStore::Origin* origin) {
  const std::shared_ptr<const StoredPlan> stored = store.fetch_or_compile(
      topo, source, "paper", options,
      [&](ResolveReport& fresh_report) {
        return paper_plan(topo, source, options, &fresh_report);
      },
      origin);
  if (report != nullptr) *report = stored->report;
  return stored->plan.to_relay_plan();
}

}  // namespace wsn
