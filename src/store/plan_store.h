#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "protocol/registry.h"
#include "store/disk_store.h"
#include "store/fingerprint.h"
#include "store/memory_cache.h"
#include "store/serialize.h"

/// The plan store facade: memory tier over an optional disk tier over
/// compilation.
///
/// `fetch_or_compile` is the one entry point the rest of the system uses
/// (sweeps, the CLI, warm_plans).  Resolution order:
///
///   1. ineligible request (fault model / battery installed)  -> compile,
///      uncached (`Origin::kBypass`);
///   2. sharded in-memory LRU                                 -> kMemory;
///   3. disk artifact, fully verified; a corrupt / truncated / stale-
///      version artifact counts as a miss and is *rewritten* after the
///      recompile -- the store self-heals, it never trusts and never
///      aborts                                                -> kDisk;
///   4. compile via the supplied callback, then populate both
///      tiers                                                 -> kCompiled.
///
/// Thread-safe throughout; a sweep shares one PlanStore across all of its
/// workers.  Two workers racing to compile the same key both succeed and
/// install identical values (plan compilation is deterministic -- that is
/// what made it cacheable), so no per-key compile lock is needed.
namespace wsn {

class PlanStore {
 public:
  struct Config {
    /// Memory-tier entry bound.
    std::size_t mem_capacity = 2048;
    /// Memory-tier lock shards.
    std::size_t mem_shards = 16;
    /// Artifact directory; empty = memory-only store.
    std::string disk_dir;
  };

  /// Where a fetched plan came from.
  enum class Origin { kMemory, kDisk, kCompiled, kBypass };

  struct Stats {
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_rejects = 0;  // artifacts that failed verification
    std::uint64_t compiles = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t read_retries = 0;  // transient disk-read retries
  };

  PlanStore();
  explicit PlanStore(Config config);

  /// Mirrors memory-tier and facade counters into `registry`
  /// (`store.mem.*`, `store.disk.hits`, `store.disk.rejects`,
  /// `store.compiles`, `store.bypasses`, `store.read_retries`).  Call
  /// before going concurrent.
  void bind_metrics(MetricsRegistry& registry);

  /// Builds `(topo, source, protocol_id, options)`'s plan via the cache
  /// tiers, calling `compile` only on a full miss.  `compile` must be a
  /// pure function of those inputs and safe to call concurrently.
  using CompileFn = std::function<RelayPlan(ResolveReport&)>;
  [[nodiscard]] std::shared_ptr<const StoredPlan> fetch_or_compile(
      const Topology& topo, NodeId source, std::string_view protocol_id,
      const SimOptions& options, const CompileFn& compile,
      Origin* origin = nullptr);

  [[nodiscard]] ShardedPlanCache& memory() noexcept { return memory_; }
  /// The disk tier, or nullptr for a memory-only store.
  [[nodiscard]] PlanDiskStore* disk() noexcept {
    return disk_ ? &*disk_ : nullptr;
  }

  [[nodiscard]] Stats stats() const noexcept;

 private:
  void count(std::atomic<std::uint64_t>& local, Counter* mirrored) noexcept {
    local.fetch_add(1, std::memory_order_relaxed);
    if (mirrored != nullptr) mirrored->increment();
  }

  /// The O(links) topology digest, memoized per Topology object so a
  /// 512-source sweep pays for it once, not per source.  Entries are
  /// keyed by address and re-verified against the cheap identity fields
  /// (`name`, node and link counts) on every use: topologies here are
  /// immutable after construction, so a matching identity at the same
  /// address is the same adjacency.
  [[nodiscard]] TopologyDigest digest_for(const Topology& topo);

  struct DigestEntry {
    std::string name;
    std::size_t nodes = 0;
    std::size_t links = 0;
    TopologyDigest digest;
  };
  std::mutex digests_mutex_;
  std::unordered_map<const Topology*, DigestEntry> digests_;

  ShardedPlanCache memory_;
  std::optional<PlanDiskStore> disk_;

  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> disk_rejects_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> bypasses_{0};
  std::atomic<std::uint64_t> read_retries_{0};
  Counter* disk_hits_metric_ = nullptr;
  Counter* disk_rejects_metric_ = nullptr;
  Counter* compiles_metric_ = nullptr;
  Counter* bypasses_metric_ = nullptr;
  Counter* read_retries_metric_ = nullptr;
};

[[nodiscard]] std::string_view to_string(PlanStore::Origin origin) noexcept;

/// `paper_plan` (protocol/registry.h) through a PlanStore: the family's
/// protocol id is "paper".  Drop-in for call sites that hold a store.
[[nodiscard]] RelayPlan paper_plan_cached(const Topology& topo, NodeId source,
                                          const SimOptions& options,
                                          PlanStore& store,
                                          ResolveReport* report = nullptr,
                                          PlanStore::Origin* origin = nullptr);

}  // namespace wsn
