#pragma once

#include <mutex>
#include <string>
#include <unordered_set>

#include "store/fingerprint.h"
#include "store/serialize.h"

/// Disk-backed plan store: a directory of content-addressed artifacts
/// plus a human-readable manifest.
///
/// Layout:
///
///   <dir>/<32-hex-key>.plan   -- one version-1 artifact per fingerprint
///   <dir>/MANIFEST.tsv        -- "<hex key>\t<canonical request>" lines
///
/// The manifest is documentation, not an index: loads go straight to the
/// content-addressed path, so a torn or missing manifest can never serve
/// a wrong plan.  Saves are atomic (unique temp file + rename) and
/// last-writer-wins, which is exactly right for a content-addressed
/// store -- every writer of a key writes the same bytes.
///
/// Failure policy: every load problem -- absent file, truncation, bad
/// magic, stale format version, checksum damage, structural nonsense --
/// is reported as a status for the caller to treat as a cache miss.
/// Nothing here aborts, and nothing that fails verification is ever
/// returned as a plan.
namespace wsn {

class PlanDiskStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.  False return
  /// from `ok()` means the directory could not be created; loads then
  /// miss and saves fail, but nothing throws.
  explicit PlanDiskStore(std::string dir);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Path the artifact for `fp` lives at (whether or not it exists yet).
  [[nodiscard]] std::string artifact_path(const PlanFingerprint& fp) const;

  /// Loads and fully verifies the artifact; kNotFound when absent.
  [[nodiscard]] PlanSerdeStatus load(const PlanFingerprint& fp,
                                     StoredPlan& out) const;

  /// Writes the artifact atomically and appends the manifest line (once
  /// per key per store lifetime).  False on I/O failure.
  [[nodiscard]] bool save(const PlanFingerprint& fp, const StoredPlan& value);

  /// Number of `.plan` artifacts currently in the directory.
  [[nodiscard]] std::size_t artifact_count() const;

 private:
  std::string dir_;
  bool ok_ = false;
  std::mutex manifest_mutex_;
  std::unordered_set<std::string> manifested_;
};

}  // namespace wsn
