#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

#include "store/fingerprint.h"
#include "store/serialize.h"

/// Disk-backed plan store: a directory of content-addressed artifacts
/// plus a human-readable manifest.
///
/// Layout:
///
///   <dir>/<32-hex-key>.plan   -- one version-1 artifact per fingerprint
///   <dir>/MANIFEST.tsv        -- "<hex key>\t<canonical request>" lines
///
/// The manifest is documentation, not an index: loads go straight to the
/// content-addressed path, so a torn or missing manifest can never serve
/// a wrong plan.  Saves are atomic (unique temp file + rename) and
/// last-writer-wins, which is exactly right for a content-addressed
/// store -- every writer of a key writes the same bytes.
///
/// Failure policy: every load problem -- absent file, truncation, bad
/// magic, stale format version, checksum damage, structural nonsense --
/// is reported as a status for the caller to treat as a cache miss.
/// Nothing here aborts, and nothing that fails verification is ever
/// returned as a plan.
namespace wsn {

class PlanDiskStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.  False return
  /// from `ok()` means the directory could not be created; loads then
  /// miss and saves fail, but nothing throws.
  explicit PlanDiskStore(std::string dir);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Path the artifact for `fp` lives at (whether or not it exists yet).
  [[nodiscard]] std::string artifact_path(const PlanFingerprint& fp) const;

  /// Transient-read retry policy: a load whose raw read reports kIoError
  /// (artifact present, open/read failed) is retried up to this many
  /// attempts with a short exponential backoff before the error surfaces
  /// and the caller falls back to recompiling.
  static constexpr int kLoadAttempts = 3;

  /// Loads and fully verifies the artifact; kNotFound when absent,
  /// kIoError only after `kLoadAttempts` reads all failed.
  [[nodiscard]] PlanSerdeStatus load(const PlanFingerprint& fp,
                                     StoredPlan& out) const;

  /// Transient-read retries performed by this store so far.
  [[nodiscard]] std::uint64_t read_retries() const noexcept {
    return read_retries_.load(std::memory_order_relaxed);
  }

  /// Test hook (process-global): rewrites each raw read's status before
  /// the retry policy sees it, given the 0-based attempt number -- lets
  /// tests inject transient I/O failures without touching the
  /// filesystem.  Pass nullptr to clear.
  using LoadFaultInjector = PlanSerdeStatus (*)(PlanSerdeStatus status,
                                                int attempt);
  static void set_load_fault_injector(LoadFaultInjector hook);

  /// Writes the artifact atomically and appends the manifest line (once
  /// per key per store lifetime).  False on I/O failure.
  [[nodiscard]] bool save(const PlanFingerprint& fp, const StoredPlan& value);

  /// Number of `.plan` artifacts currently in the directory.
  [[nodiscard]] std::size_t artifact_count() const;

 private:
  std::string dir_;
  bool ok_ = false;
  mutable std::atomic<std::uint64_t> read_retries_{0};
  std::mutex manifest_mutex_;
  std::unordered_set<std::string> manifested_;
};

}  // namespace wsn
