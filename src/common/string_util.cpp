#include "common/string_util.h"

#include <charconv>
#include <cstdio>

namespace wsn {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits - 1, value);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out += text;
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

bool parse_u64(std::string_view text, std::uint64_t& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_f64(std::string_view text, double& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool is_valid_utf8(std::string_view text) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(text.data());
  const unsigned char* end = p + text.size();
  while (p < end) {
    const unsigned char lead = *p;
    if (lead < 0x80) {
      p += 1;
      continue;
    }
    std::size_t trail = 0;
    std::uint32_t code = 0;
    std::uint32_t min_code = 0;
    if ((lead & 0xe0) == 0xc0) {
      trail = 1;
      code = lead & 0x1fu;
      min_code = 0x80;
    } else if ((lead & 0xf0) == 0xe0) {
      trail = 2;
      code = lead & 0x0fu;
      min_code = 0x800;
    } else if ((lead & 0xf8) == 0xf0) {
      trail = 3;
      code = lead & 0x07u;
      min_code = 0x10000;
    } else {
      return false;  // bare continuation byte or 0xf8+ lead
    }
    if (static_cast<std::size_t>(end - p) < trail + 1) return false;
    for (std::size_t i = 1; i <= trail; ++i) {
      if ((p[i] & 0xc0) != 0x80) return false;
      code = (code << 6) | (p[i] & 0x3fu);
    }
    if (code < min_code) return false;                    // overlong
    if (code >= 0xd800 && code <= 0xdfff) return false;   // surrogate
    if (code > 0x10ffff) return false;
    p += trail + 1;
  }
  return true;
}

}  // namespace wsn
