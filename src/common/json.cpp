#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/assert.h"
#include "common/string_util.h"

namespace wsn {

bool JsonValue::as_bool() const {
  WSN_EXPECTS(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  WSN_EXPECTS(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  WSN_EXPECTS(kind_ == Kind::kString);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  WSN_EXPECTS(kind_ == Kind::kArray && array_ != nullptr);
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  WSN_EXPECTS(kind_ == Kind::kObject && object_ != nullptr);
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject || object_ == nullptr) return nullptr;
  for (const Member& member : *object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::string(fallback);
}

bool JsonValue::to_u64(std::uint64_t& out) const noexcept {
  if (kind_ != Kind::kNumber) return false;
  if (!(number_ >= 0.0) || number_ > 9007199254740992.0) return false;
  if (number_ != std::floor(number_)) return false;
  out = static_cast<std::uint64_t>(number_);
  return true;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::make_shared<Array>(std::move(v));
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::make_shared<Object>(std::move(v));
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    bool ok = parse_value(out, 0);
    if (ok) {
      skip_ws();
      if (pos_ != text_.size()) {
        ok = fail("trailing characters after the document");
      }
    }
    if (!ok && error != nullptr) {
      *error = "line " + std::to_string(line_) + ": " + message_;
    }
    return ok;
  }

 private:
  bool fail(std::string message) {
    if (message_.empty()) message_ = std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        out = JsonValue::make_bool(true);
        return consume_literal("true");
      case 'f':
        out = JsonValue::make_bool(false);
        return consume_literal("false");
      case 'n':
        out = JsonValue::make_null();
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
      out = out * 16 + digit;
    }
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape sequence");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return fail("invalid number");
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (digits() == 0) return fail("digits required after '.'");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) return fail("digits required in exponent");
    }
    double value = 0.0;
    if (!parse_f64(text_.substr(start, pos_ - start), value)) {
      return fail("invalid number");
    }
    out = JsonValue::make_number(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::string message_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  return Parser(text).parse(out, error);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace wsn
