#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// Minimal blocking POSIX sockets plus the length-prefixed frame codec
/// the `meshbcast.rpc` protocol rides on (service/rpc.h).
///
/// Scope: loopback TCP and Unix-domain stream sockets, blocking I/O,
/// EINTR-safe full reads/writes, and a 4-byte big-endian length-prefixed
/// framing layer with an explicit per-frame size cap.  No TLS, no
/// non-blocking state machines: the service's concurrency model is
/// thread-per-connection over a bounded admission queue, so blocking
/// calls are exactly what the handlers want.
///
/// Failure discipline mirrors the plan store's: malformed input from the
/// network -- an oversized length prefix, a truncated payload, a peer
/// vanishing mid-frame -- is a *status*, never a crash and never a hang
/// (frame reads are bounded by the declared length, and writes use
/// MSG_NOSIGNAL so a dead peer yields an error instead of SIGPIPE).
namespace wsn {

/// Owning socket fd; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Reads exactly `n` bytes unless the peer closes first; `got` reports
  /// the bytes actually read.  Returns false on a hard error (`got` is
  /// still valid).  A clean EOF with got < n returns true -- the caller
  /// distinguishes "closed at a boundary" from "truncated mid-frame".
  [[nodiscard]] bool read_exact(void* buf, std::size_t n, std::size_t& got);

  /// Writes all `n` bytes; false on any error (peer gone included).
  [[nodiscard]] bool write_all(const void* buf, std::size_t n);

  /// Half-closes both directions: a peer (or our own handler thread)
  /// blocked in read returns immediately with EOF.  The fd stays owned.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Frame codec result.  Every outcome an attacker (or a dying peer) can
/// produce has its own value so the server can answer with a structured
/// error -- or drop the connection -- instead of guessing.
enum class FrameStatus : std::uint8_t {
  kOk = 0,
  /// Peer closed cleanly between frames.
  kClosed,
  /// Declared length exceeds the caller's cap.  The payload was NOT
  /// consumed; the stream can no longer be resynchronized, so respond
  /// (the 4-byte header was all we read) and close.
  kOversized,
  /// Peer closed mid-header or mid-payload: a torn frame.
  kTruncated,
  /// Transport error (ECONNRESET and friends).
  kError,
};

[[nodiscard]] std::string_view to_string(FrameStatus status) noexcept;

/// Reads one frame: 4-byte big-endian payload length, then the payload.
/// `max_bytes` caps the declared length (the request-size knob).
[[nodiscard]] FrameStatus read_frame(Socket& sock, std::string& payload,
                                     std::size_t max_bytes);

/// Writes one frame.  False on transport error.  Payloads above 2^32-1
/// bytes are a precondition violation (the length prefix cannot carry
/// them).
[[nodiscard]] bool write_frame(Socket& sock, std::string_view payload);

/// Listening socket: loopback TCP (`listen_tcp`, port 0 = ephemeral) or
/// Unix-domain (`listen_unix`; the path is unlinked first and again on
/// close so stale sockets never block a restart).
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { close(); }

  [[nodiscard]] static bool listen_tcp(int port, Listener& out,
                                       std::string& error);
  [[nodiscard]] static bool listen_unix(const std::string& path,
                                        Listener& out, std::string& error);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Bound TCP port (resolved for ephemeral binds); -1 for Unix sockets.
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` for a connection.  Returns true with a
  /// valid socket on accept; false with an invalid socket on timeout or
  /// a closed/failed listener -- the accept loop polls its stop flag
  /// between calls, which is the whole graceful-drain story.
  [[nodiscard]] bool accept(Socket& out, int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  int port_ = -1;
  std::string unix_path_;
};

[[nodiscard]] bool connect_tcp(const std::string& host, int port, Socket& out,
                               std::string& error);
[[nodiscard]] bool connect_unix(const std::string& path, Socket& out,
                                std::string& error);

}  // namespace wsn
