#include "common/csv.h"

#include <cstdio>

namespace wsn {

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace wsn
