#pragma once

#include <cstddef>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

/// Fork-join parallelism for the analysis sweeps.
///
/// The paper's Tables 3-5 require running one full broadcast simulation per
/// source position (512 positions x 4 topologies).  Runs are independent, so
/// we expose a static-chunked `parallel_for` over an index range -- the same
/// shape as `#pragma omp parallel for schedule(static)` but with no OpenMP
/// dependency and deterministic chunk boundaries (worker w owns chunk w, so
/// results written to per-index slots never race and never depend on thread
/// timing).
namespace wsn {

/// Number of workers `parallel_for` uses by default: the MESHBCAST_THREADS
/// environment variable when set to a positive integer (pinning for CI and
/// reproducible sweeps), otherwise hardware concurrency, at least 1.
std::size_t default_worker_count() noexcept;

/// Parses a `--workers` flag value, the one helper every CLI shares
/// (meshbcast_cli, resilience_sweep, scenario_runner).  Plain digits only;
/// returns false on malformed input.  The resolution chain is
/// flag > MESHBCAST_THREADS > hardware: a positive flag value is returned
/// as-is, while "0" (the conventional "auto" spelling) yields 0, which
/// every downstream `workers` parameter resolves through
/// `default_worker_count()` -- the env var, then the hardware count.
[[nodiscard]] bool parse_worker_flag(std::string_view text,
                                     std::size_t& out) noexcept;

/// Workers a `parallel_for(..., workers)` call over `count` indices will
/// actually spawn: the default (or requested) count, never more than
/// `count`, at least 1.  Callers sizing per-worker state (one Simulator
/// per worker in the sweeps) use this to match the pool exactly.
[[nodiscard]] std::size_t resolve_worker_count(std::size_t count,
                                               std::size_t workers) noexcept;

/// Invokes `body(i)` for every `i` in `[begin, end)` across `workers`
/// threads (0 = default).  Blocks until every invocation finished.  The body
/// must be safe to call concurrently for distinct indices; invocations of
/// the same index never overlap (each index runs exactly once).
///
/// Exceptions: the body must not throw.  A worker that throws would
/// terminate the process (std::thread semantics), and simulation bodies have
/// no recoverable failures -- contract violations abort anyway.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

/// `parallel_for` that also hands the body its worker's index, `worker` in
/// `[0, resolve_worker_count(end - begin, workers))`.  All indices owned
/// by one worker run sequentially on one thread, so per-worker state
/// (scratch buffers, simulators) indexed by `worker` needs no locking.
void parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t worker, std::size_t index)>& body,
    std::size_t workers = 0);

/// Convenience: map `body` over `[0, count)` collecting results into a
/// vector, one slot per index (no ordering hazards).
template <typename T, typename Body>
std::vector<T> parallel_map(std::size_t count, Body&& body,
                            std::size_t workers = 0) {
  std::vector<T> out(count);
  parallel_for(
      0, count, [&](std::size_t i) { out[i] = body(i); }, workers);
  return out;
}

}  // namespace wsn
