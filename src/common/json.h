#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Dependency-free JSON reader for the declarative scenario specs
/// (scenario/spec.h) plus the escaping helper every JSONL emitter shares.
///
/// Scope is deliberately RFC-8259-minimal: objects, arrays, strings
/// (escape sequences incl. \uXXXX with surrogate pairs), numbers parsed as
/// double, true/false/null.  No comments, no trailing commas, no NaN/Inf
/// literals -- a spec file either parses bit-for-bit the same everywhere
/// or fails with a line-numbered diagnostic.  Numbers keep their double
/// value only; the scenario schema stays inside the 2^53 integer range.
///
/// Objects preserve insertion order (a vector of pairs, not a map): spec
/// fingerprints and error messages refer to the file as written.
namespace wsn {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; each aborts (contract check) unless the value holds
  /// that kind.  Callers branch on `kind()` / `is_*` first.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key, or nullptr (also nullptr on non-objects, so
  /// lookups chain without kind checks).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Schema conveniences: the member's value when present and of the right
  /// kind, else `fallback`.  A *present but wrongly typed* member is a
  /// spec error the caller must detect -- use `find` for strict paths.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  /// True iff the number holds a non-negative integer representable
  /// without loss (|v| <= 2^53, no fractional part); writes it to `out`.
  [[nodiscard]] bool to_u64(std::uint64_t& out) const noexcept;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays complete inside its own containers.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  On failure returns false and, when `error`
/// is non-null, stores a "line L: message" diagnostic.  Nesting depth is
/// capped (64) so hostile inputs cannot blow the stack.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

/// Escapes `text` for placement inside a JSON string literal (quotes not
/// included): ", \ and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace wsn
