#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Dependency-free JSON reader for the declarative scenario specs
/// (scenario/spec.h) plus the escaping helper every JSONL emitter shares.
///
/// Scope is deliberately RFC-8259-minimal: objects, arrays, strings
/// (escape sequences incl. \uXXXX with surrogate pairs), numbers parsed as
/// double, true/false/null.  No comments, no trailing commas, no NaN/Inf
/// literals -- a spec file either parses bit-for-bit the same everywhere
/// or fails with a line-numbered diagnostic.  Numbers keep their double
/// value only; the scenario schema stays inside the 2^53 integer range.
///
/// Objects preserve insertion order (a vector of pairs, not a map): spec
/// fingerprints and error messages refer to the file as written.
namespace wsn {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; each aborts (contract check) unless the value holds
  /// that kind.  Callers branch on `kind()` / `is_*` first.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key, or nullptr (also nullptr on non-objects, so
  /// lookups chain without kind checks).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Schema conveniences: the member's value when present and of the right
  /// kind, else `fallback`.  A *present but wrongly typed* member is a
  /// spec error the caller must detect -- use `find` for strict paths.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  /// True iff the number holds a non-negative integer representable
  /// without loss (|v| <= 2^53, no fractional part); writes it to `out`.
  [[nodiscard]] bool to_u64(std::uint64_t& out) const noexcept;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays complete inside its own containers.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  On failure returns false and, when `error`
/// is non-null, stores a "line L: message" diagnostic.  Nesting depth is
/// capped (64) so hostile inputs cannot blow the stack.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

/// Escapes `text` for placement inside a JSON string literal (quotes not
/// included): ", \ and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Formats a double the way every emitter in the repo expects: %.17g so a
/// reparse with parse_json recovers the exact bit pattern, non-finite
/// values clamped to +/-1e308 (JSON has no Inf/NaN literals; NaN becomes
/// 0 so a scrape never produces an unparseable document).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer producing compact RFC-8259 output (no whitespace,
/// members in call order -- the mirror of the reader above, which keeps
/// insertion order).  Comma placement is handled by a context stack, so
/// emitters never hand-roll separator bookkeeping:
///
///   JsonWriter w;
///   w.begin_object().key("slot").value(std::uint64_t{1})
///    .key("kind").value("tx").end_object();
///   w.str();  // {"slot":1,"kind":"tx"}
///
/// Doubles go through json_number (round-trippable, Inf clamped).  The
/// writer does not validate grammar beyond comma placement; callers pair
/// begin/end and alternate key/value as usual.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    separate();
    out_.push_back('{');
    stack_.push_back(Frame{true});
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_.push_back('}');
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_.push_back('[');
    stack_.push_back(Frame{true});
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_.push_back(']');
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    out_.push_back('"');
    out_ += json_escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    out_.push_back('"');
    out_ += json_escape(v);
    out_.push_back('"');
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v) {
    separate();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  /// key+value in one call, for the common object-member case.
  template <typename T>
  JsonWriter& member(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Splices pre-rendered JSON (e.g. a nested document built elsewhere)
  /// as the next value, with normal comma handling.
  JsonWriter& raw(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }

  [[nodiscard]] const std::string& str() const& noexcept { return out_; }
  [[nodiscard]] std::string str() && { return std::move(out_); }

 private:
  struct Frame {
    bool first;
  };

  // Emits the separating comma when this value follows a sibling; a value
  // directly after key() never takes one.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().first) {
      stack_.back().first = false;
    } else {
      out_.push_back(',');
    }
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_value_ = false;
};

}  // namespace wsn
