#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Minimal command-line parsing for the examples and bench binaries.
///
/// Supports `--name value`, `--name=value`, boolean `--flag`, and free
/// positional arguments; prints a generated usage block on `--help` or on
/// the first malformed option.  Deliberately tiny: downstream users embed
/// the library, not the parser.
namespace wsn {

class CliParser {
 public:
  /// `program` and `summary` feed the usage header.
  CliParser(std::string program, std::string summary);

  /// Declares an option with a value; `fallback` is used when absent.
  void add_option(std::string name, std::string description,
                  std::string fallback);

  /// Declares a boolean flag (false unless present).
  void add_flag(std::string name, std::string description);

  /// Parses argv.  Returns false (after printing usage to stderr) on an
  /// unknown option, a missing value, or `--help`.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Accessors; all expect that `parse` succeeded and the name was declared.
  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view name) const;
  [[nodiscard]] double get_f64(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The generated usage text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string description;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  Option* find(std::string_view name) noexcept;
  const Option* find(std::string_view name) const noexcept;

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace wsn
