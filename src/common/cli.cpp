#include "common/cli.h"

#include <cstdio>

#include "common/assert.h"
#include "common/string_util.h"

namespace wsn {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_option(std::string name, std::string description,
                           std::string fallback) {
  WSN_EXPECTS(find(name) == nullptr);
  options_.push_back(Option{std::move(name), std::move(description),
                            std::move(fallback), /*is_flag=*/false,
                            /*seen=*/false});
}

void CliParser::add_flag(std::string name, std::string description) {
  WSN_EXPECTS(find(name) == nullptr);
  options_.push_back(Option{std::move(name), std::move(description), "",
                            /*is_flag=*/true, /*seen=*/false});
}

CliParser::Option* CliParser::find(std::string_view name) noexcept {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

const CliParser::Option* CliParser::find(std::string_view name) const noexcept {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string_view value;
    bool has_inline_value = false;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%.*s\n\n", program_.c_str(),
                   static_cast<int>(arg.size()), arg.data());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (opt->is_flag) {
      if (has_inline_value) {
        std::fprintf(stderr, "%s: flag --%s takes no value\n\n",
                     program_.c_str(), opt->name.c_str());
        std::fputs(usage().c_str(), stderr);
        return false;
      }
      opt->seen = true;
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option --%s requires a value\n\n",
                     program_.c_str(), opt->name.c_str());
        std::fputs(usage().c_str(), stderr);
        return false;
      }
      value = argv[++i];
    }
    opt->value = std::string(value);
    opt->seen = true;
  }
  return true;
}

std::string CliParser::get(std::string_view name) const {
  const Option* opt = find(name);
  WSN_EXPECTS(opt != nullptr && !opt->is_flag);
  return opt->value;
}

std::uint64_t CliParser::get_u64(std::string_view name) const {
  std::uint64_t out = 0;
  const std::string text = get(name);
  WSN_EXPECTS(parse_u64(text, out));
  return out;
}

double CliParser::get_f64(std::string_view name) const {
  double out = 0.0;
  const std::string text = get(name);
  WSN_EXPECTS(parse_f64(text, out));
  return out;
}

bool CliParser::get_flag(std::string_view name) const {
  const Option* opt = find(name);
  WSN_EXPECTS(opt != nullptr && opt->is_flag);
  return opt->seen;
}

std::string CliParser::usage() const {
  std::string out = program_ + " - " + summary_ + "\n\noptions:\n";
  std::size_t width = 0;
  for (const auto& opt : options_) width = std::max(width, opt.name.size());
  for (const auto& opt : options_) {
    out += "  --" + pad_right(opt.name, width + 2) + opt.description;
    if (!opt.is_flag && !opt.value.empty()) {
      out += " (default: " + opt.value + ")";
    }
    out += "\n";
  }
  out += "  --" + pad_right("help", width + 2) + "show this message\n";
  return out;
}

}  // namespace wsn
