#pragma once

#include <cstdio>
#include <cstdlib>

/// Contract-checking macros in the spirit of the Core Guidelines'
/// `Expects`/`Ensures` (I.6, I.8).  They stay enabled in release builds:
/// every check guards an invariant whose violation would silently corrupt
/// simulation statistics, and the cost is negligible next to the simulator's
/// per-slot work.
///
/// `WSN_EXPECTS`  -- precondition at a public API boundary.
/// `WSN_ENSURES`  -- postcondition before returning a result.
/// `WSN_ASSERT`   -- internal invariant.
///
/// All three abort with a file/line diagnostic; the simulator has no
/// meaningful way to continue past a broken invariant.

namespace wsn::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "meshbcast: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace wsn::detail

#define WSN_CONTRACT_CHECK(kind, cond)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::wsn::detail::contract_failure(kind, #cond, __FILE__, __LINE__);    \
    }                                                                      \
  } while (false)

#define WSN_EXPECTS(cond) WSN_CONTRACT_CHECK("precondition", cond)
#define WSN_ENSURES(cond) WSN_CONTRACT_CHECK("postcondition", cond)
#define WSN_ASSERT(cond) WSN_CONTRACT_CHECK("invariant", cond)
