#pragma once

#include <array>
#include <cstdint>

/// Deterministic pseudo-random generation for the stochastic baselines
/// (probabilistic gossip, flooding jitter, random-geometric topology).
///
/// The paper's own protocols are fully deterministic; randomness only enters
/// through the comparison baselines, and those must be reproducible across
/// runs and platforms.  We therefore ship our own xoshiro256** instead of
/// relying on the unspecified std::default_random_engine, and our own
/// bounded-int / canonical-double mappings instead of std distributions
/// (whose outputs are implementation-defined).
namespace wsn {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` using splitmix64, so nearby
  /// seeds still produce decorrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept;

  /// Advances the state by 2^128 steps; hands independent subsequences to
  /// parallel workers (one jump per worker) without shared state.
  void jump() noexcept;

  /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
  /// `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in `[0, 1)` with 53 random bits.
  double canonical() noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0, 1]).
  bool chance(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// splitmix64 single step; exposed for seeding other generators in tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace wsn
