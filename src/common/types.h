#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

/// Core scalar types shared by every meshbcast subsystem.
///
/// Node identity is a dense index into the topology's node table; time is a
/// discrete slot counter (the paper's protocols are slot-synchronous, see
/// DESIGN.md section 3).  Both are kept as plain integral aliases rather
/// than wrapper classes: they index arrays in the simulator hot loop and
/// the zero-overhead guarantee matters more than nominal typing here.
namespace wsn {

/// Dense node index, 0-based.  Valid ids are `[0, Topology::num_nodes())`.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. an unreached node's delivery parent).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Discrete time slot.  Slot 0 means "before the broadcast"; the source
/// transmits in slot 1, matching the sequence numbers in the paper's
/// figures 5, 7 and 8.
using Slot = std::uint32_t;

/// Sentinel for "never happens" (e.g. the reception slot of an unreached
/// node while the simulation is still running).
inline constexpr Slot kNeverSlot = std::numeric_limits<Slot>::max();

/// Energy in joules.  The First Order Radio Model works in nJ/pJ per bit;
/// double precision holds those exactly enough for 10^6-transmission runs.
using Joules = double;

/// Distance in meters (grid spacing in the paper's evaluation is 0.5 m).
using Meters = double;

}  // namespace wsn
