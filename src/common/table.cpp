#include "common/table.h"

#include <algorithm>

#include "common/assert.h"
#include "common/string_util.h"

namespace wsn {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WSN_EXPECTS(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  WSN_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void AsciiTable::add_rule() { pending_rule_ = true; }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto render_rule = [&] {
    std::string line = "|";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '|';
    }
    line += '\n';
    return line;
  };
  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += pad_right(cells[c], widths[c]);
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += render_cells(headers_);
  out += render_rule();
  for (const auto& row : rows_) {
    if (row.rule_before) out += render_rule();
    out += render_cells(row.cells);
  }
  return out;
}

}  // namespace wsn
