#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "common/assert.h"
#include "common/string_util.h"

namespace wsn {

std::size_t default_worker_count() noexcept {
  // MESHBCAST_THREADS pins the pool size: CI machines oversubscribe
  // hardware_concurrency, and reproducible sweeps want a fixed width.
  // Non-numeric or zero values fall through to the hardware default.
  if (const char* env = std::getenv("MESHBCAST_THREADS")) {
    // strtoul alone would accept "-2" (it wraps negatives), so insist the
    // value is plain digits before parsing.
    if (env[0] >= '0' && env[0] <= '9') {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (*end == '\0' && parsed >= 1) {
        return static_cast<std::size_t>(parsed);
      }
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool parse_worker_flag(std::string_view text, std::size_t& out) noexcept {
  std::uint64_t parsed = 0;
  if (text.empty() || !parse_u64(text, parsed)) return false;
  out = static_cast<std::size_t>(parsed);
  return true;
}

std::size_t resolve_worker_count(std::size_t count,
                                 std::size_t workers) noexcept {
  if (workers == 0) workers = default_worker_count();
  return std::max<std::size_t>(std::min(workers, count), 1);
}

void parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t worker, std::size_t index)>& body,
    std::size_t workers) {
  WSN_EXPECTS(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;

  workers = resolve_worker_count(count, workers);

  if (workers == 1) {
    for (std::size_t i = begin; i < end; ++i) body(0, i);
    return;
  }

  // Static chunking: worker w owns [begin + w*chunk, ...); the last worker
  // absorbs the remainder.  Deterministic ownership keeps per-index output
  // slots race-free by construction.
  const std::size_t chunk = count / workers;
  const std::size_t remainder = count % workers;

  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::size_t next = begin;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t size = chunk + (w < remainder ? 1 : 0);
    const std::size_t lo = next;
    const std::size_t hi = lo + size;
    next = hi;
    pool.emplace_back([w, lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(w, i);
    });
  }
  WSN_ASSERT(next == end);
  for (auto& t : pool) t.join();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  parallel_for_workers(
      begin, end, [&body](std::size_t, std::size_t i) { body(i); }, workers);
}

}  // namespace wsn
