#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// RFC-4180-style CSV emission for the bench harness (`--csv` outputs feed
/// external plotting).  Fields containing separators, quotes or newlines are
/// quoted and inner quotes doubled.
namespace wsn {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emits one row; every call terminates the line.
  void row(const std::vector<std::string>& fields);

  /// Variadic convenience: accepts any mix of string-likes, integers and
  /// doubles (doubles rendered with max_digits10 round-trip precision).
  template <typename... Fields>
  void typed_row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    row(cells);
  }

  /// Escapes a single field per RFC 4180.
  static std::string escape(std::string_view field);

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(std::string_view s) { return std::string(s); }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  template <typename Int>
    requires std::is_integral_v<Int>
  static std::string to_cell(Int v) {
    return std::to_string(v);
  }

  std::ostream* out_;
};

}  // namespace wsn
