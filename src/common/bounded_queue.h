#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "common/assert.h"

/// Bounded multi-producer / multi-consumer queue -- the scheduling spine
/// of the scenario engine (scenario/engine.h).
///
/// `common/parallel` covers fork-join sweeps where the index range is
/// known up front; a batch engine instead wants a *long-lived* pool fed
/// through a queue with
///
///   * backpressure -- `push` blocks while the queue is at capacity, so a
///     producer expanding a million-job matrix never materializes more
///     than `capacity` jobs ahead of the workers;
///   * a drain protocol -- `close()` says "no more items"; consumers keep
///     popping until the queue is empty, then `pop` returns nullopt;
///   * cooperative cancellation -- `cancel()` additionally discards the
///     queued backlog and unblocks *producers* too (`push` returns
///     false), so a Ctrl-C stops the run after the in-flight items, not
///     after the whole backlog.
///
/// Blocking is condition-variable based; there are no timeouts and no
/// spurious item loss: every pushed item is popped exactly once unless
/// `cancel()` discarded it.  All operations are linearizable under one
/// mutex -- at scenario granularity (one item = one full simulation) the
/// queue is nowhere near being a bottleneck, and the simple invariants
/// are what the TSan suite locks in.
///
/// Contention instrumentation: `set_wait_hooks` installs callbacks fired
/// with the nanoseconds a `push` spent blocked on a full queue or a `pop`
/// on an empty one.  The queue sits below the observability layer, so the
/// hooks are plain std::functions the owner wires into whatever sink it
/// likes (the scenario engine feeds histograms and the span timeline).
/// Cost discipline: the clock is read only when a wait actually happens
/// -- the satisfied-predicate fast path adds one branch, no clock, no
/// callback -- and hooks run *outside* the queue mutex so they may take
/// other locks freely.
namespace wsn {

/// Timed-wait callbacks for BoundedQueue; either may be empty.  Install
/// before the queue goes concurrent.
struct QueueWaitHooks {
  /// A push blocked this long on a full queue (called even if the wait
  /// ended in close/cancel).
  std::function<void(std::uint64_t wait_ns)> on_push_wait;
  /// A pop blocked this long on an empty queue.
  std::function<void(std::uint64_t wait_ns)> on_pop_wait;
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    WSN_EXPECTS(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Installs the timed-wait callbacks.  NOT thread-safe against
  /// concurrent push/pop; call during setup.
  void set_wait_hooks(QueueWaitHooks hooks) { hooks_ = std::move(hooks); }

  /// Blocks until there is room (or the queue is closed/cancelled).
  /// Returns false -- item dropped -- iff the queue was closed first.
  [[nodiscard]] bool push(T item) {
    std::uint64_t wait_ns = 0;
    bool accepted = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!closed_ && items_.size() >= capacity_) {
        wait_ns = timed_wait(not_full_, lock, [&] {
          return closed_ || items_.size() < capacity_;
        });
      }
      if (!closed_) {
        items_.push_back(std::move(item));
        accepted = true;
      }
    }
    if (accepted) not_empty_.notify_one();
    if (wait_ns != 0 && hooks_.on_push_wait) hooks_.on_push_wait(wait_ns);
    return accepted;
  }

  /// Non-blocking push; false when full or closed.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then nullopt -- the consumer's signal to exit).
  [[nodiscard]] std::optional<T> pop() {
    std::uint64_t wait_ns = 0;
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!closed_ && items_.empty()) {
        wait_ns = timed_wait(not_empty_, lock,
                             [&] { return closed_ || !items_.empty(); });
      }
      if (!items_.empty()) {
        item.emplace(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (item.has_value()) not_full_.notify_one();
    if (wait_ns != 0 && hooks_.on_pop_wait) hooks_.on_pop_wait(wait_ns);
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  [[nodiscard]] std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes; queued items still drain.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Close *and* discard the backlog: consumers finish their in-flight
  /// item and then see nullopt.  Returns the number discarded.
  std::size_t cancel() {
    std::size_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      dropped = items_.size();
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    return dropped;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Waits for `ready` and returns the nanoseconds spent blocked (>= 1:
  /// callers use 0 as "no wait happened").  Clock reads bracket the wait
  /// only -- this is never called on the satisfied fast path.
  template <typename Pred>
  [[nodiscard]] std::uint64_t timed_wait(std::condition_variable& cv,
                                         std::unique_lock<std::mutex>& lock,
                                         Pred ready) {
    const auto start = std::chrono::steady_clock::now();
    cv.wait(lock, ready);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return ns <= 0 ? 1 : static_cast<std::uint64_t>(ns);
  }

  const std::size_t capacity_;
  QueueWaitHooks hooks_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wsn
