#pragma once

#include <string>
#include <string_view>
#include <vector>

/// Small string helpers shared by the CLI parser, CSV writer and report
/// formatting.  Kept deliberately minimal -- no locale dependence, no
/// allocation surprises.
namespace wsn {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `value` with `digits` significant digits in scientific notation,
/// e.g. 2.61e-02 -- the style of the paper's power columns.
std::string sci(double value, int digits = 3);

/// Formats `value` with `decimals` places in fixed notation.
std::string fixed(double value, int decimals = 2);

/// Left-pads (`pad_left`) or right-pads `text` with spaces to `width`.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// Parses a non-negative integer; returns false on any malformed input or
/// overflow instead of throwing.
bool parse_u64(std::string_view text, std::uint64_t& out) noexcept;

/// Parses a double via std::from_chars; returns false on malformed input.
bool parse_f64(std::string_view text, double& out) noexcept;

/// True iff `text` is well-formed UTF-8: no truncated sequences, no
/// overlong encodings, no surrogate code points, nothing past U+10FFFF.
/// The RPC framing layer rejects non-UTF-8 payloads before JSON parsing
/// so malformed bytes can never reach a response echo.
bool is_valid_utf8(std::string_view text) noexcept;

}  // namespace wsn
