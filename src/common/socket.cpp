#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/assert.h"

namespace wsn {

namespace {

std::string errno_text(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Request/response protocols die under Nagle + delayed ACK (a small
/// request can stall ~40ms waiting for the peer's ACK), so every TCP
/// socket here runs with TCP_NODELAY.  No-op (EOPNOTSUPP) on Unix
/// sockets, so it is safe to apply blindly to accepted fds.
void set_nodelay(int fd) noexcept {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::read_exact(void* buf, std::size_t n, std::size_t& got) {
  got = 0;
  auto* bytes = static_cast<unsigned char*>(buf);
  while (got < n) {
    const ssize_t r = ::recv(fd_, bytes + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return true;  // clean EOF; got < n tells the caller
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Socket::write_all(const void* buf, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer is an EPIPE error, never a SIGPIPE.
    const ssize_t r = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string_view to_string(FrameStatus status) noexcept {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kOversized:
      return "oversized";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kError:
      return "error";
  }
  return "unknown";
}

FrameStatus read_frame(Socket& sock, std::string& payload,
                       std::size_t max_bytes) {
  payload.clear();
  unsigned char header[4];
  std::size_t got = 0;
  if (!sock.read_exact(header, sizeof header, got)) return FrameStatus::kError;
  if (got == 0) return FrameStatus::kClosed;
  if (got < sizeof header) return FrameStatus::kTruncated;
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  // The cap is checked BEFORE any payload allocation: a hostile 4 GiB
  // length prefix costs four bytes of reading and nothing else.
  if (length > max_bytes) return FrameStatus::kOversized;
  payload.resize(length);
  if (length == 0) return FrameStatus::kOk;
  if (!sock.read_exact(payload.data(), length, got)) {
    return FrameStatus::kError;
  }
  if (got < length) return FrameStatus::kTruncated;
  return FrameStatus::kOk;
}

bool write_frame(Socket& sock, std::string_view payload) {
  WSN_EXPECTS(payload.size() <= 0xffffffffull);
  const auto length = static_cast<std::uint32_t>(payload.size());
  // Header and payload go out in ONE send: two small writes would cost a
  // syscall each and -- even with TCP_NODELAY -- risk landing in two
  // segments for no reason.
  std::string frame;
  frame.reserve(sizeof(std::uint32_t) + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return sock.write_all(frame.data(), frame.size());
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.port_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.port_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

bool Listener::listen_tcp(int port, Listener& out, std::string& error) {
  out.close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = errno_text("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) < 0) {
    error = errno_text("listen");
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    error = errno_text("getsockname");
    ::close(fd);
    return false;
  }
  out.fd_ = fd;
  out.port_ = static_cast<int>(ntohs(bound.sin_port));
  return true;
}

bool Listener::listen_unix(const std::string& path, Listener& out,
                           std::string& error) {
  out.close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    error = "unix socket path empty or too long (" +
            std::to_string(path.size()) + " bytes, limit " +
            std::to_string(sizeof addr.sun_path - 1) + "): " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A stale socket file from a crashed daemon must never block a
  // restart; remove_all on a socket path is just unlink.
  std::error_code ec;
  std::filesystem::remove(path, ec);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = errno_text("bind " + path);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) < 0) {
    error = errno_text("listen " + path);
    ::close(fd);
    return false;
  }
  out.fd_ = fd;
  out.port_ = -1;
  out.unix_path_ = path;
  return true;
}

bool Listener::accept(Socket& out, int timeout_ms) {
  out = Socket();
  if (fd_ < 0) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return false;  // timeout or error; caller re-polls
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return false;
  set_nodelay(conn);
  out = Socket(conn);
  return true;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(unix_path_, ec);
    unix_path_.clear();
  }
  port_ = -1;
}

bool connect_tcp(const std::string& host, int port, Socket& out,
                 std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "invalid IPv4 address: " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    error = errno_text("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return false;
  }
  set_nodelay(fd);
  out = Socket(fd);
  return true;
}

bool connect_unix(const std::string& path, Socket& out, std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    error = "unix socket path empty or too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    error = errno_text("connect " + path);
    ::close(fd);
    return false;
  }
  out = Socket(fd);
  return true;
}

}  // namespace wsn
