#pragma once

#include <string>
#include <string_view>
#include <vector>

/// Fixed-width ASCII table rendering; the bench binaries print the paper's
/// Tables 1-5 in this format so paper-vs-measured comparisons read side by
/// side in a terminal.
namespace wsn {

class AsciiTable {
 public:
  /// Column headers fix the column count; rows must match it.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends one row; `cells.size()` must equal the header count.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with a header rule, column padding and `|` separators:
  ///
  ///   | Topology | Tx  | Rx  |
  ///   |----------|-----|-----|
  ///   | 2D-4     | 170 | 680 |
  [[nodiscard]] std::string render() const;

  /// Optional table title printed above the grid.
  void set_title(std::string title) { title_ = std::move(title); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace wsn
