#include "common/random.h"

namespace wsn {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept : state_{} {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::canonical() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return canonical() < p;
}

}  // namespace wsn
