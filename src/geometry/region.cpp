#include "geometry/region.h"

#include "geometry/diagonal.h"

namespace wsn {

BaseNodes base_nodes_2d3(Vec2 source) noexcept {
  if (brick_has_down(source)) {
    return {{source.x, source.y - 2}, {source.x, source.y + 1}};
  }
  return {{source.x, source.y - 1}, {source.x, source.y + 2}};
}

Region region_of(Vec2 v, Vec2 source) noexcept {
  const BaseNodes base = base_nodes_2d3(source);
  if (s1_index(v) <= s1_index(base.a) && s2_index(v) >= s2_index(base.a)) {
    return Region::kTwo;
  }
  if (s1_index(v) >= s1_index(base.b) && s2_index(v) <= s2_index(base.b)) {
    return Region::kThree;
  }
  return Region::kOne;
}

DiagonalPair b1_indices(Vec2 node) noexcept {
  const int c = s1_index(node);
  return brick_has_up(node) ? DiagonalPair{c, c + 1} : DiagonalPair{c, c - 1};
}

DiagonalPair b2_indices(Vec2 node) noexcept {
  const int c = s2_index(node);
  return brick_has_up(node) ? DiagonalPair{c, c - 1} : DiagonalPair{c, c + 1};
}

}  // namespace wsn
