#pragma once

#include <compare>
#include <cstdlib>
#include <string>

#include "geometry/vec2.h"

/// 3D lattice coordinates for the 3D mesh with 6 neighbors (paper §3.4).
namespace wsn {

struct Vec3 {
  int x = 0;
  int y = 0;
  int z = 0;

  /// The XY-plane projection; the 3D-6 protocol runs the 2D-4 protocol on
  /// these projections.
  [[nodiscard]] constexpr Vec2 xy() const noexcept { return {x, y}; }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr bool operator==(Vec3, Vec3) noexcept = default;
  friend constexpr auto operator<=>(Vec3, Vec3) noexcept = default;
};

[[nodiscard]] constexpr int manhattan(Vec3 a, Vec3 b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

[[nodiscard]] inline std::string to_string(Vec3 v) {
  std::string out;
  out += '(';
  out += std::to_string(v.x);
  out += ',';
  out += std::to_string(v.y);
  out += ',';
  out += std::to_string(v.z);
  out += ')';
  return out;
}

}  // namespace wsn
