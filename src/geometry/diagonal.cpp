#include "geometry/diagonal.h"

#include <algorithm>

#include "common/assert.h"

namespace wsn {

bool in_s2_family(Vec2 v, int base, int step) noexcept {
  return floor_mod(s2_index(v) - base, step) == 0;
}

bool in_s1_family(Vec2 v, int base, int step) noexcept {
  return floor_mod(s1_index(v) - base, step) == 0;
}

std::vector<Vec2> s1_nodes_in_grid(int c, int m, int n) {
  WSN_EXPECTS(m >= 1 && n >= 1);
  std::vector<Vec2> out;
  // x + y = c with 1 <= x <= m, 1 <= y <= n  =>  x in [c-n, c-1] ∩ [1, m].
  const int lo = std::max(1, c - n);
  const int hi = std::min(m, c - 1);
  for (int x = lo; x <= hi; ++x) out.push_back({x, c - x});
  return out;
}

std::vector<Vec2> s2_nodes_in_grid(int c, int m, int n) {
  WSN_EXPECTS(m >= 1 && n >= 1);
  std::vector<Vec2> out;
  // x - y = c with 1 <= x <= m, 1 <= y <= n  =>  x in [c+1, c+n] ∩ [1, m].
  const int lo = std::max(1, c + 1);
  const int hi = std::min(m, c + n);
  for (int x = lo; x <= hi; ++x) out.push_back({x, x - c});
  return out;
}

}  // namespace wsn
